"""Directed tests that force each dispatch-stall path in the core.

Every structural stall the power/CPI analyses rely on (ROB full, issue
queue full, rename exhaustion, branch-tag limit, LDQ/STQ full, MSHR
exhaustion) gets a microbenchmark that provably triggers its counter.
"""

import dataclasses

from repro.isa.assembler import assemble
from repro.uarch.config import CacheParams, MEDIUM_BOOM
from repro.uarch.core import BoomCore

EXIT = "li a7, 93\n    ecall"


def run_core(source, config):
    core = BoomCore(config, assemble(source))
    core.run()
    return core.stats


def test_rob_full_stall():
    """A long-latency head op with a tiny ROB backs dispatch up."""
    config = dataclasses.replace(MEDIUM_BOOM, rob_entries=8)
    filler = "\n".join("    addi t2, t2, 1" for _ in range(30))
    stats = run_core(f"""
    _start:
        li t0, -1
        li t1, 3
        li t3, 40
    loop:
        divu t4, t0, t1
{filler}
        addi t3, t3, -1
        bnez t3, loop
        li a0, 0
        {EXIT}
    """, config)
    assert stats.rob.full_stall_cycles > 50


def test_int_iq_full_stall():
    """Dependent ops behind a divide fill a tiny integer queue."""
    config = dataclasses.replace(MEDIUM_BOOM, int_iq_entries=4)
    chain = "\n".join("    add t4, t4, t4" for _ in range(20))
    stats = run_core(f"""
    _start:
        li t0, -1
        li t1, 3
        li t3, 30
    loop:
        divu t4, t0, t1
{chain}
        addi t3, t3, -1
        bnez t3, loop
        li a0, 0
        {EXIT}
    """, config)
    assert stats.int_iq.full_stall_cycles > 50


def test_rename_stall_on_physreg_exhaustion():
    """More in-flight destinations than spare physical registers."""
    config = dataclasses.replace(MEDIUM_BOOM, int_phys_regs=38,
                                 rob_entries=64)
    body = "\n".join(f"    addi t{1 + i % 3}, t0, {i}" for i in range(24))
    stats = run_core(f"""
    _start:
        li t0, -1
        li t5, 3
        li t6, 30
    loop:
        divu t0, t0, t5
{body}
        addi t6, t6, -1
        bnez t6, loop
        li a0, 0
        {EXIT}
    """, config)
    assert stats.int_rename.stall_cycles > 20


def test_stq_fills_behind_slow_commit():
    """Stores pile into a tiny STQ while a divide blocks commit."""
    config = dataclasses.replace(MEDIUM_BOOM, stq_entries=2)
    stores = "\n".join(f"    sd t2, {8 * i}(s10)" for i in range(12))
    stats = run_core(f"""
        .data
    buf: .space 256
        .text
    _start:
        la s10, buf
        li t0, -1
        li t1, 3
        li t3, 25
    loop:
        divu t2, t0, t1
{stores}
        addi t3, t3, -1
        bnez t3, loop
        li a0, 0
        {EXIT}
    """, config)
    # occupancy stays pinned at capacity while commits drain slowly
    assert stats.lsu.stq_occupancy / stats.cycles > 1.0


def test_branch_tag_limit():
    """More in-flight branches than tags stalls dispatch."""
    config = dataclasses.replace(MEDIUM_BOOM, max_branches=2)
    branches = "\n".join(
        f"    beq t4, t5, nowhere{i}\nnowhere{i}:" for i in range(10))
    stats = run_core(f"""
    _start:
        li t0, -1
        li t1, 3
        li t3, 30
    loop:
        divu t4, t0, t1
{branches}
        addi t3, t3, -1
        bnez t3, loop
        li a0, 0
        {EXIT}
    """, config)
    snapshots_per_cycle = stats.int_rename.snapshots / stats.cycles
    assert snapshots_per_cycle < 0.5  # dispatch visibly throttled


def test_mshr_exhaustion_counted():
    """A pointer-striding loop with one MSHR hits the retry path."""
    dcache = CacheParams(size_bytes=4096, ways=2, mshrs=1)
    config = dataclasses.replace(MEDIUM_BOOM, dcache=dcache)
    loads = "\n".join(f"    ld t{1 + i % 3}, {128 * i}(s10)"
                      for i in range(8))
    stats = run_core(f"""
        .data
    buf: .space 8192
        .text
    _start:
        la s10, buf
        li t6, 60
    loop:
{loads}
        addi t6, t6, -1
        addi s10, s10, 8
        addi s10, s10, -8
        bnez t6, loop
        li a0, 0
        {EXIT}
    """, config)
    assert stats.dcache.mshr_full_stalls > 10
    assert stats.dcache.misses > 10
