"""Tests for the future-work extensions: ring issue queues and lazy FP
rename snapshots (the optimizations Key Takeaways #3 and #5 propose)."""

import pytest

from repro.errors import ConfigError
from repro.isa.assembler import assemble
from repro.isa.instructions import Instruction
from repro.sim.executor import Executor
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM
from repro.uarch.core import BoomCore
from repro.uarch.issue import make_issue_queue, RingIssueQueue
from repro.uarch.stats import IssueQueueStats
from repro.uarch.uop import Uop

EXIT = "li a7, 93\n    ecall"

INT_LOOP = f"""
_start:
    li t0, 2000
loop:
    addi t0, t0, -1
    xor  t1, t1, t0
    add  t2, t2, t1
    bnez t0, loop
    li a0, 0
    {EXIT}
"""


class TestRingQueue:
    def make(self, entries=4):
        return RingIssueQueue("int", entries, IssueQueueStats())

    def make_uop(self, seq):
        return Uop(seq, Instruction("add", rd=1, rs1=2, rs2=3))

    def test_insert_fills_free_slots(self):
        queue = self.make()
        queue.insert(self.make_uop(0))
        queue.insert(self.make_uop(1))
        assert len(queue) == 2
        assert queue.stats.slot_writes[0] == 1
        assert queue.stats.slot_writes[1] == 1

    def test_no_shifts_ever(self):
        queue = self.make()
        for seq in range(4):
            queue.insert(self.make_uop(seq))
        queue.select(0, 4, lambda u, c: u.seq == 1)
        assert queue.stats.shifts == 0
        assert len(queue) == 3

    def test_holes_reused(self):
        queue = self.make(entries=2)
        queue.insert(self.make_uop(0))
        queue.insert(self.make_uop(1))
        queue.select(0, 1, lambda u, c: u.seq == 0)
        assert queue.has_space()
        queue.insert(self.make_uop(2))
        # Slot 0 (the hole) was reused.
        assert queue.stats.slot_writes[0] == 2

    def test_oldest_first_across_holes(self):
        queue = self.make()
        for seq in (5, 1, 9, 3):
            queue.insert(self.make_uop(seq))
        issued = queue.select(0, 2, lambda u, c: True)
        assert [u.seq for u in issued] == [1, 3]

    def test_full_insert_raises(self):
        queue = self.make(entries=1)
        queue.insert(self.make_uop(0))
        with pytest.raises(IndexError):
            queue.insert(self.make_uop(1))

    def test_factory(self):
        from repro.uarch.issue import IssueQueue

        assert isinstance(make_issue_queue("ring", "int", 4,
                                           IssueQueueStats()),
                          RingIssueQueue)
        assert isinstance(make_issue_queue("collapsing", "int", 4,
                                           IssueQueueStats()),
                          IssueQueue)

    def test_invalid_kind_rejected_by_config(self):
        import dataclasses

        with pytest.raises(ConfigError):
            dataclasses.replace(MEGA_BOOM, issue_queue_kind="fifo")


class TestRingCore:
    def test_architectural_equivalence(self):
        """Both queue designs retire the same architectural stream."""
        reference = Executor(assemble(INT_LOOP))
        reference.run_to_completion()
        ring_config = MEGA_BOOM.with_issue_queues("ring")
        core = BoomCore(ring_config, assemble(INT_LOOP))
        core.run()
        assert core.frontend.state.x == reference.state.x

    def test_same_ipc_no_shift_stats(self):
        collapsing = BoomCore(MEGA_BOOM, assemble(INT_LOOP))
        collapsing.run()
        ring = BoomCore(MEGA_BOOM.with_issue_queues("ring"),
                        assemble(INT_LOOP))
        ring.run()
        # Oldest-first selection either way: IPC within a whisker.
        assert ring.stats.ipc == pytest.approx(collapsing.stats.ipc,
                                               rel=0.05)
        assert ring.stats.int_iq.shifts == 0
        assert collapsing.stats.int_iq.shifts > 0


class TestLazyFpSnapshots:
    def test_int_code_skips_fp_snapshots(self):
        config = MEDIUM_BOOM.with_lazy_fp_snapshots()
        core = BoomCore(config, assemble(INT_LOOP))
        core.run()
        assert core.stats.fp_rename.snapshots == 0
        assert core.stats.int_rename.snapshots > 400

    def test_fp_code_still_snapshots(self):
        source = f"""
            .data
        vals: .double 1.0, 2.0
            .text
        _start:
            la t0, vals
            li t1, 300
        loop:
            fld fa0, 0(t0)
            fadd.d fa1, fa1, fa0
            addi t1, t1, -1
            bnez t1, loop
            li a0, 0
            {EXIT}
        """
        config = MEDIUM_BOOM.with_lazy_fp_snapshots()
        core = BoomCore(config, assemble(source))
        core.run()
        assert core.stats.fp_rename.snapshots > 200

    def test_default_config_always_snapshots(self):
        core = BoomCore(MEDIUM_BOOM, assemble(INT_LOOP))
        core.run()
        assert core.stats.fp_rename.snapshots == \
            core.stats.int_rename.snapshots

    def test_architectural_equivalence(self):
        reference = Executor(assemble(INT_LOOP))
        reference.run_to_completion()
        core = BoomCore(MEDIUM_BOOM.with_lazy_fp_snapshots(),
                        assemble(INT_LOOP))
        core.run()
        assert core.frontend.state.x == reference.state.x
