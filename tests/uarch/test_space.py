"""Tests for the design-space lattice (repro.uarch.space)."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.uarch.config import (
    ALL_CONFIGS,
    config_by_name,
    config_id,
    LARGE_BOOM,
    MEDIUM_BOOM,
    PRESET_CONFIGS,
)
from repro.uarch.space import (
    DEFAULT_AXES,
    DEFAULT_CONSTRAINTS,
    DesignSpace,
    generate_points,
    ParamAxis,
    points_from_dict,
    points_to_dict,
    SpaceSpec,
    spec_from_dict,
    spec_to_dict,
)

#: sha256 over the default SpaceSpec's config-ID list — pinned so a
#: fresh process (CI, another machine) must reproduce today's byte-exact
#: draw; any change to axes, defaults, or sampling order trips this.
_DEFAULT_SPEC_DIGEST = \
    "7db379ad658bf8b109efad581c2cb38f0a740115feab5b183aafd1f91d80aefc"
_RANDOM_SPEC_DIGEST = \
    "9706b0102d4cba51b742d359fc52796aee0a415805b22c17bf4681e8b3c9e3a1"


def _digest(points) -> str:
    ids = "\n".join(config_id(config) for config in points)
    return hashlib.sha256(ids.encode()).hexdigest()


# ----------------------------------------------------------------------
# axes
# ----------------------------------------------------------------------

def test_axis_rejects_empty_and_unsorted():
    with pytest.raises(ConfigError):
        ParamAxis("rob_entries", ())
    with pytest.raises(ConfigError):
        ParamAxis("rob_entries", (64, 32))
    with pytest.raises(ConfigError):
        ParamAxis("rob_entries", (32, 32, 64))


def test_axis_nearest_index():
    axis = ParamAxis("rob_entries", (32, 64, 128))
    assert axis.nearest_index(64) == 1
    assert axis.nearest_index(70) == 1
    assert axis.nearest_index(5000) == 2
    assert axis.nearest_index(48) == 0  # tie goes to the lower rung


def test_duplicate_axis_rejected():
    with pytest.raises(ConfigError):
        DesignSpace(base=MEDIUM_BOOM,
                    axes=(ParamAxis("rob_entries", (32, 64)),
                          ParamAxis("rob_entries", (64, 128))))


# ----------------------------------------------------------------------
# legality: every sampled point passes validation + constraints
# ----------------------------------------------------------------------

def test_presets_are_legal_in_default_space():
    for preset in PRESET_CONFIGS:
        space = DesignSpace.around(preset)
        assert space.is_legal(preset), preset.name


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       count=st.integers(min_value=1, max_value=24),
       base=st.sampled_from([c.name for c in PRESET_CONFIGS]))
def test_random_points_always_legal(seed, count, base):
    space = DesignSpace.around(base)
    points = space.random(count, seed=seed)
    assert len(points) == count
    for config in points:
        # construction already re-ran __post_init__; check the
        # structural constraints explicitly too
        assert all(constraint(config)
                   for constraint in DEFAULT_CONSTRAINTS)


@settings(max_examples=10, deadline=None)
@given(radius=st.integers(min_value=1, max_value=3),
       max_changed=st.integers(min_value=1, max_value=2),
       base=st.sampled_from([c.name for c in PRESET_CONFIGS]))
def test_neighborhood_points_always_legal(radius, max_changed, base):
    space = DesignSpace.around(base)
    points = space.neighborhood(count=32, radius=radius,
                                max_changed=max_changed)
    assert points, "neighborhood must contain at least the base"
    assert config_id(points[0]) == config_id(space.base)
    ids = [config_id(config) for config in points]
    assert len(ids) == len(set(ids)), "points must be deduplicated"
    for config in points:
        assert space.is_legal(config)


# ----------------------------------------------------------------------
# determinism: byte-identical draws across processes (pinned goldens)
# ----------------------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1),
       count=st.integers(min_value=1, max_value=16))
def test_random_sampling_deterministic_for_seed(seed, count):
    space = DesignSpace.around(LARGE_BOOM)
    first = space.random(count, seed=seed)
    second = space.random(count, seed=seed)
    assert [config_id(c) for c in first] == \
        [config_id(c) for c in second]
    assert [c.name for c in first] == [c.name for c in second]


def test_default_spec_matches_pinned_golden():
    """The default 64-point lattice is byte-deterministic across process
    restarts: this digest was pinned in a different process."""
    points = generate_points(SpaceSpec())
    assert len(points) >= 64 + len(ALL_CONFIGS) - 1
    assert [c.name for c in points[:3]] == [c.name for c in ALL_CONFIGS]
    assert _digest(points) == _DEFAULT_SPEC_DIGEST


def test_random_spec_matches_pinned_golden():
    points = generate_points(SpaceSpec(mode="random", count=16, seed=5,
                                       include_presets=False))
    assert _digest(points) == _RANDOM_SPEC_DIGEST


# ----------------------------------------------------------------------
# preset snapping and lattice identity
# ----------------------------------------------------------------------

def test_apply_empty_overrides_snaps_to_preset():
    space = DesignSpace.around(LARGE_BOOM)
    assert space.apply({}) is LARGE_BOOM


def test_point_reaching_preset_content_is_that_preset():
    # Spell out every one of LargeBOOM's own lattice coordinates as
    # explicit overrides: the content hash matches the preset, so the
    # preset object itself comes back (same name, same cache keys).
    space = DesignSpace.around(LARGE_BOOM)
    overrides = {axis.path: _read(LARGE_BOOM, axis.path)
                 for axis in DEFAULT_AXES}
    assert space.apply(overrides) is LARGE_BOOM


def _read(config, path):
    node = config
    for part in path.split("."):
        node = getattr(node, part)
    return node


def test_generated_points_named_by_content_hash():
    space = DesignSpace.around(MEDIUM_BOOM)
    config = space.apply({"rob_entries": 48})
    assert config.name == f"dse-{config_id(config)[:12]}"


def test_unknown_axis_rejected():
    space = DesignSpace.around(MEDIUM_BOOM)
    with pytest.raises(ConfigError):
        space.apply({"nonexistent_field": 3})


def test_grid_on_custom_axes_enumerates_legal_points():
    axes = (ParamAxis("rob_entries", (64, 96)),
            ParamAxis("ldq_entries", (16, 24)))
    space = DesignSpace.around(LARGE_BOOM, axes=axes)
    points = space.grid()
    assert len(points) == 4
    assert len({config_id(c) for c in points}) == 4


# ----------------------------------------------------------------------
# config-ID stability (satellite 3)
# ----------------------------------------------------------------------

def test_config_id_ignores_name():
    import dataclasses

    renamed = dataclasses.replace(MEDIUM_BOOM, name="something-else")
    assert config_id(renamed) == config_id(MEDIUM_BOOM)


def test_config_id_stable_across_construction_path():
    # defaults materialized explicitly == defaults left implicit
    import dataclasses

    explicit = dataclasses.replace(
        MEDIUM_BOOM, rob_entries=MEDIUM_BOOM.rob_entries,
        dcache=dataclasses.replace(MEDIUM_BOOM.dcache))
    assert config_id(explicit) == config_id(MEDIUM_BOOM)


def test_config_id_changes_with_content():
    import dataclasses

    bigger = dataclasses.replace(MEDIUM_BOOM, rob_entries=96)
    assert config_id(bigger) != config_id(MEDIUM_BOOM)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------

def test_spec_roundtrip():
    spec = SpaceSpec(base="MediumBOOM", mode="random", count=9, seed=3)
    assert spec_from_dict(spec_to_dict(spec)) == spec


def test_spec_rejects_unknown_mode_and_empty_count():
    with pytest.raises(ConfigError):
        SpaceSpec(mode="latin-hypercube")
    with pytest.raises(ConfigError):
        SpaceSpec(count=0)


def test_points_document_roundtrip_preserves_ids():
    spec = SpaceSpec(base="LargeBOOM", count=12, seed=2)
    points = generate_points(spec)
    document = points_to_dict(spec, points)
    rebuilt_spec, rebuilt = points_from_dict(document)
    assert rebuilt_spec == spec
    assert [config_id(c) for c in rebuilt] == \
        [config_id(c) for c in points]
    assert [c.name for c in rebuilt] == [c.name for c in points]
    # presets rebuild as the preset objects themselves
    assert rebuilt[0] is config_by_name(points[0].name)


def test_points_document_drift_detected():
    spec = SpaceSpec(base="LargeBOOM", count=4, seed=2)
    points = generate_points(spec)
    document = points_to_dict(spec, points)
    tampered = next(record for record in document["points"]
                    if "params" in record)
    tampered["id"] = "0" * 16
    with pytest.raises(ConfigError):
        points_from_dict(document)


def test_points_document_format_gate():
    with pytest.raises(ConfigError):
        points_from_dict({"format": 999, "spec": {}, "points": []})
