"""Integration tests for the BoomCore pipeline."""

import pytest

from repro.isa.assembler import assemble
from repro.sim.executor import Executor
from repro.uarch.config import LARGE_BOOM, MEDIUM_BOOM, MEGA_BOOM
from repro.uarch.core import BoomCore

EXIT = "li a7, 93\n    ecall"


def run_core(source, config=MEDIUM_BOOM, budget=None):
    program = assemble(source)
    core = BoomCore(config, program)
    core.run(budget)
    return core


def test_retires_program_to_completion():
    core = run_core(f"""
    _start:
        li t0, 0
        li t1, 50
    loop:
        add t0, t0, t1
        addi t1, t1, -1
        bnez t1, loop
        li a0, 0
        {EXIT}
    """)
    reference = Executor(assemble(f"""
    _start:
        li t0, 0
        li t1, 50
    loop:
        add t0, t0, t1
        addi t1, t1, -1
        bnez t1, loop
        li a0, 0
        {EXIT}
    """))
    reference.run_to_completion()
    assert core.retired_total == reference.state.retired
    assert core.frontend.state.exited


def test_architectural_results_match_functional_sim():
    source = f"""
        .data
    out: .space 64
        .text
    _start:
        la  s0, out
        li  t0, 30
        li  t1, 1
    loop:
        mul t1, t1, t0
        remu t1, t1, t0
        addi t1, t1, 7
        sd  t1, 0(s0)
        ld  t2, 0(s0)
        add t3, t3, t2
        addi t0, t0, -1
        bnez t0, loop
        sd  t3, 8(s0)
        li a0, 0
        {EXIT}
    """
    core = run_core(source)
    reference = Executor(assemble(source))
    reference.run_to_completion()
    assert core.frontend.state.x == reference.state.x


def test_ipc_bounded_by_decode_width():
    high_ilp = "\n".join(
        f"    addi t{1 + i % 3}, t{1 + i % 3}, 1" for i in range(600))
    source = f"_start:\n{high_ilp}\n    li a0, 0\n    {EXIT}"
    for config in (MEDIUM_BOOM, LARGE_BOOM, MEGA_BOOM):
        core = run_core(source, config)
        assert core.stats.ipc <= config.decode_width + 1e-9


def test_independent_chains_scale_with_width():
    """Four independent chains: wider cores reach higher IPC.

    The chains live in a loop so the I-cache stays warm and the backend
    width is the only limiter (measured after a warm-up window).
    """
    body = ["_start:", "    li t0, 2000", "loop:"]
    for _ in range(4):
        body.append("    addi t1, t1, 1")
        body.append("    addi t2, t2, 1")
        body.append("    addi t3, t3, 1")
        body.append("    addi t4, t4, 1")
    body += ["    addi t0, t0, -1", "    bnez t0, loop",
             "    li a0, 0", f"    {EXIT}"]
    source = "\n".join(body)

    def measured_ipc(config):
        program = assemble(source)
        core = BoomCore(config, program)
        core.run(2000)
        stats = core.begin_measurement()
        core.run(10000)
        return stats.ipc

    medium = measured_ipc(MEDIUM_BOOM)
    mega = measured_ipc(MEGA_BOOM)
    assert mega > 1.5 * medium


def test_serial_dependency_chain_limits_ipc():
    chain = "\n".join("    addi t1, t1, 1" for _ in range(500))
    source = f"_start:\n{chain}\n    li a0, 0\n    {EXIT}"
    core = run_core(source, MEGA_BOOM)
    assert core.stats.ipc < 1.3  # one dependent add per cycle


def test_div_latency_slows_dependent_chain():
    divs = "\n".join("    divu t1, t1, t2" for _ in range(50))
    source = f"_start:\n    li t1, -1\n    li t2, 3\n{divs}\n    li a0, 0\n    {EXIT}"
    core = run_core(source, MEGA_BOOM)
    assert core.stats.ipc < 0.15  # ~16 cycles per dependent divide


def test_load_use_latency():
    source = f"""
        .data
    cell: .dword 5
        .text
    _start:
        la t0, cell
        li t2, 200
    loop:
        ld  t1, 0(t0)
        sd  t1, 0(t0)
        addi t2, t2, -1
        bnez t2, loop
        li a0, 0
        {EXIT}
    """
    core = run_core(source)
    # The in-flight store forwards to the same-address load almost always.
    assert core.stats.lsu.forwards > 150
    assert core.stats.lsu.cam_searches > 150
    assert core.stats.dcache.writes == 200  # stores still drain at commit


def test_mispredict_penalty_reduces_ipc():
    # Data-dependent branches on a pseudo-random sequence.
    source = f"""
    _start:
        li t0, 400
        li t1, 0x9E3779B9
    loop:
        slli t2, t1, 13
        xor  t1, t1, t2
        srli t2, t1, 7
        xor  t1, t1, t2
        andi t3, t1, 1
        beqz t3, skip
        addi t4, t4, 1
    skip:
        addi t0, t0, -1
        bnez t0, loop
        li a0, 0
        {EXIT}
    """
    core = run_core(source, MEGA_BOOM)
    assert core.stats.predictor.mispredicts > 50
    assert core.stats.ipc < 2.5


def test_budget_stops_run():
    source = f"""
    _start:
        li t0, 100000
    loop:
        addi t0, t0, -1
        bnez t0, loop
        {EXIT}
    """
    program = assemble(source)
    core = BoomCore(MEDIUM_BOOM, program)
    retired = core.run(500)
    assert 500 <= retired <= 500 + MEDIUM_BOOM.commit_width
    more = core.run(500)
    assert more >= 500


def test_begin_measurement_resets_counters_keeps_state():
    source = f"""
    _start:
        li t0, 4000
    loop:
        addi t0, t0, -1
        xor  t1, t1, t0
        bnez t0, loop
        li a0, 0
        {EXIT}
    """
    program = assemble(source)
    core = BoomCore(MEDIUM_BOOM, program)
    core.run(2000)
    warm_misses = core.stats.icache.misses
    stats = core.begin_measurement()
    core.run(2000)
    assert stats.retired >= 2000
    assert stats.cycles > 0
    # warm structures: the measured window re-misses almost nothing
    assert stats.icache.misses < max(4, warm_misses)
    assert core.stats is stats


def test_fp_program_exercises_fp_structures():
    source = f"""
        .data
    vals: .double 1.5, 2.5, 3.5, 4.5
        .text
    _start:
        la t0, vals
        li t1, 100
    loop:
        fld fa0, 0(t0)
        fld fa1, 8(t0)
        fmul.d fa2, fa0, fa1
        fadd.d fa3, fa3, fa2
        fsd fa3, 16(t0)
        addi t1, t1, -1
        bnez t1, loop
        li a0, 0
        {EXIT}
    """
    core = run_core(source)
    stats = core.stats
    assert stats.fp_iq.issues > 150
    assert stats.fp_regfile.writes > 150
    assert stats.execute.fp_mul_ops > 90
    assert stats.fp_rename.freelist_allocs > 150


def test_branches_snapshot_fp_rename_even_without_fp():
    """Key Takeaway #3 at the core level."""
    source = f"""
    _start:
        li t0, 200
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li a0, 0
        {EXIT}
    """
    core = run_core(source)
    assert core.stats.execute.fp_alu_ops == 0
    assert core.stats.fp_rename.snapshots > 150


def test_stores_write_dcache_at_commit():
    source = f"""
        .data
    buf: .space 512
        .text
    _start:
        la t0, buf
        li t1, 60
    loop:
        sd t1, 0(t0)
        addi t0, t0, 8
        addi t1, t1, -1
        bnez t1, loop
        li a0, 0
        {EXIT}
    """
    core = run_core(source)
    assert core.stats.dcache.writes == 60


def test_per_slot_occupancy_collected():
    source = f"""
        .data
    cell: .dword 1
        .text
    _start:
        la t0, cell
        li t1, 120
    loop:
        ld  t2, 0(t0)
        add t3, t3, t2
        add t4, t4, t3
        add t5, t5, t4
        addi t1, t1, -1
        bnez t1, loop
        li a0, 0
        {EXIT}
    """
    core = run_core(source)
    slots = core.stats.int_iq.slot_occupancy
    assert sum(slots) == core.stats.int_iq.occupancy
    # occupancy is front-loaded in a collapsing queue
    assert slots[0] >= slots[len(slots) // 2]
