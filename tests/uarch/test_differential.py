"""Differential testing: the detailed core vs. the functional simulator.

The BoomCore's oracle-driven frontend must retire exactly the same
architectural stream as the plain functional executor — for any program.
These tests generate random (but terminating) programs spanning ALU, M,
memory, FP, and forward-branch behaviour and assert end-state equality
on all three configurations.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa.assembler import assemble
from repro.sim.executor import Executor
from repro.uarch.config import ALL_CONFIGS, LARGE_BOOM, MEDIUM_BOOM, \
    MEGA_BOOM
from repro.uarch.core import BoomCore
from repro.workloads.data import Xorshift64Star

def fp_regs_equal(a: list, b: list) -> bool:
    """Bitwise FP register comparison (NaN == NaN when patterns match)."""
    import struct

    return [struct.pack("<d", v) for v in a] == \
        [struct.pack("<d", v) for v in b]


_INT_REGS = ["t0", "t1", "t2", "t3", "t4", "s2", "s3", "s4"]
_FP_REGS = ["ft0", "ft1", "ft2", "fa0", "fa1"]
_ALU_OPS = ["add", "sub", "and", "or", "xor", "sll", "srl", "sra",
            "slt", "sltu", "mul", "mulh", "addw", "subw"]
_DIV_OPS = ["div", "divu", "rem", "remu"]
_FP_OPS = ["fadd.d", "fsub.d", "fmul.d", "fmin.d", "fmax.d"]


def generate_program(seed: int, body_ops: int = 60,
                     iterations: int = 12) -> str:
    """A random, terminating program: init, loop with a mixed body, exit."""
    rng = Xorshift64Star(seed + 1)
    lines = ["    .data", "buf:", "    .space 512", "    .text", "_start:",
             "    la   s10, buf"]
    for index, reg in enumerate(_INT_REGS):
        lines.append(f"    li   {reg}, {rng.next_u64() % 100_000}")
    for index, reg in enumerate(_FP_REGS):
        lines.append(f"    li   s5, {rng.next_below(1000) + 1}")
        lines.append(f"    fcvt.d.l {reg}, s5")
    lines += [f"    li   s0, {iterations}", "loop:"]
    skip_label = 0
    pending_skip: int | None = None
    for position in range(body_ops):
        if pending_skip is not None:
            pending_skip -= 1
            if pending_skip == 0:
                lines.append(f"skip{skip_label}:")
                skip_label += 1
                pending_skip = None
        choice = rng.next_below(100)
        a, b, c = (_INT_REGS[rng.next_below(len(_INT_REGS))]
                   for _ in range(3))
        if choice < 55:
            op = _ALU_OPS[rng.next_below(len(_ALU_OPS))]
            lines.append(f"    {op}  {a}, {b}, {c}")
        elif choice < 62:
            op = _DIV_OPS[rng.next_below(len(_DIV_OPS))]
            lines.append(f"    {op}  {a}, {b}, {c}")
        elif choice < 72:
            offset = 8 * rng.next_below(64)
            lines.append(f"    sd   {b}, {offset}(s10)")
        elif choice < 82:
            offset = 8 * rng.next_below(64)
            lines.append(f"    ld   {a}, {offset}(s10)")
        elif choice < 92:
            f1, f2, f3 = (_FP_REGS[rng.next_below(len(_FP_REGS))]
                          for _ in range(3))
            op = _FP_OPS[rng.next_below(len(_FP_OPS))]
            lines.append(f"    {op} {f1}, {f2}, {f3}")
        elif pending_skip is None and position < body_ops - 4:
            # A data-dependent forward branch over the next few ops.
            distance = 1 + rng.next_below(3)
            lines.append(f"    bltu {a}, {b}, skip{skip_label}")
            pending_skip = distance
    if pending_skip is not None:
        lines.append(f"skip{skip_label}:")
    lines += [
        "    addi s0, s0, -1",
        "    bnez s0, loop",
        "    li   a0, 0",
        "    li   a7, 93",
        "    ecall",
    ]
    return "\n".join(lines)


def run_both(source: str, config):
    program = assemble(source)
    reference = Executor(program)
    reference.run_to_completion()
    core = BoomCore(config, assemble(source))
    core.run()
    return reference.state, core.frontend.state, core


@pytest.mark.parametrize("seed", [1, 2, 3, 17, 99])
@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_random_programs_agree(seed, config):
    source = generate_program(seed)
    reference, detailed, core = run_both(source, config)
    assert detailed.exited
    assert detailed.x == reference.x
    assert fp_regs_equal(detailed.f, reference.f)
    assert core.retired_total == reference.retired


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_memory_state_agrees(config):
    source = generate_program(7, body_ops=80, iterations=20)
    reference, detailed, _ = run_both(source, config)
    assert reference.memory.snapshot_pages() == \
        detailed.memory.snapshot_pages()


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_programs_agree_property(seed):
    source = generate_program(seed, body_ops=40, iterations=6)
    reference, detailed, core = run_both(source, MEDIUM_BOOM)
    assert detailed.x == reference.x
    assert fp_regs_equal(detailed.f, reference.f)
    assert core.retired_total == reference.retired


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_ipc_sane_on_random_programs(seed):
    source = generate_program(seed, body_ops=40, iterations=6)
    _, _, core = run_both(source, MEGA_BOOM)
    assert 0.05 < core.stats.ipc <= MEGA_BOOM.decode_width


def test_wider_configs_never_slower_on_random_programs():
    for seed in (11, 22, 33):
        source = generate_program(seed)
        cycles = {}
        for config in (MEDIUM_BOOM, LARGE_BOOM, MEGA_BOOM):
            _, _, core = run_both(source, config)
            cycles[config.name] = core.cycle
        assert cycles["MegaBOOM"] <= cycles["MediumBOOM"] * 1.05
