"""Property tests: the L1 cache model against a reference LRU simulator."""

from hypothesis import given, settings, strategies as st

from repro.uarch.cache import L1Cache
from repro.uarch.config import CacheParams
from repro.uarch.stats import CacheStats


class ReferenceLru:
    """A dict-based fully-explicit LRU cache for differential testing."""

    def __init__(self, sets: int, ways: int, line_bytes: int) -> None:
        self.sets = sets
        self.ways = ways
        self.line_shift = line_bytes.bit_length() - 1
        self.contents: dict[int, list[int]] = {i: [] for i in range(sets)}

    def access(self, address: int) -> bool:
        line = address >> self.line_shift
        index = line % self.sets
        ways = self.contents[index]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        if len(ways) >= self.ways:
            ways.pop(0)
        ways.append(line)
        return False


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 14),
                min_size=1, max_size=200),
       st.sampled_from([(1024, 2), (4096, 4), (2048, 1)]))
def test_hit_miss_sequence_matches_reference(addresses, geometry):
    """Hit/miss decisions match an independent LRU implementation.

    Accesses are spaced far apart in time so MSHR fills never interfere
    (every miss's fill lands before the next access).
    """
    size, ways = geometry
    params = CacheParams(size_bytes=size, ways=ways, mshrs=64)
    cache = L1Cache(params, CacheStats(), hit_latency=1, miss_penalty=5)
    reference = ReferenceLru(params.sets, ways, params.line_bytes)
    for step, address in enumerate(addresses):
        cycle = step * 100  # let all fills complete between accesses
        latency = cache.access(address, cycle)
        expected_hit = reference.access(address)
        assert latency is not None
        actual_hit = latency == cache.hit_latency
        assert actual_hit == expected_hit, \
            f"step {step}, address {address:#x}"


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                min_size=1, max_size=150))
def test_stats_balance(addresses):
    """reads == hits + misses; misses == mshr allocs for serial accesses."""
    params = CacheParams(size_bytes=2048, ways=2, mshrs=64)
    stats = CacheStats()
    cache = L1Cache(params, stats, hit_latency=1, miss_penalty=3)
    for step, address in enumerate(addresses):
        cache.access(address, step * 50)
    assert stats.reads == len(addresses)
    assert stats.misses <= stats.reads
    assert stats.mshr_allocs == stats.misses


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 20))
def test_repeat_access_always_hits(address):
    params = CacheParams(size_bytes=4096, ways=4, mshrs=4)
    cache = L1Cache(params, CacheStats(), miss_penalty=7)
    cache.access(address, 0)
    assert cache.access(address, 100) == cache.hit_latency


def test_working_set_within_capacity_never_thrashes():
    """Touching <= ways lines per set repeatedly is all hits after warmup."""
    params = CacheParams(size_bytes=4096, ways=4, mshrs=64)
    stats = CacheStats()
    cache = L1Cache(params, stats, miss_penalty=3)
    lines = [i * 64 for i in range(params.sets * params.ways)]
    for address in lines:
        cache.access(address, 0)
    warm_misses = stats.misses
    for round_index in range(3):
        for address in lines:
            cache.access(address, 10_000 + round_index)
    assert stats.misses == warm_misses
