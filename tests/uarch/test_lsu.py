"""Unit tests for the load/store unit."""

from repro.isa.instructions import Instruction
from repro.uarch.config import MEDIUM_BOOM
from repro.uarch.lsu import LoadStoreUnit
from repro.uarch.stats import LsuStats
from repro.uarch.uop import Uop


def make_load(seq, addr=0x1000):
    uop = Uop(seq, Instruction("ld", rd=5, rs1=2))
    uop.mem_addr = addr
    return uop


def make_store(seq, addr=0x1000, addr_ready=False):
    uop = Uop(seq, Instruction("sd", rs1=2, rs2=3))
    uop.mem_addr = addr
    uop.addr_ready = addr_ready
    return uop


def make_lsu():
    return LoadStoreUnit(MEDIUM_BOOM, LsuStats())


def test_dispatch_counts_queue_writes():
    lsu = make_lsu()
    lsu.dispatch(make_load(0))
    lsu.dispatch(make_store(1))
    assert lsu.stats.ldq_writes == 1
    assert lsu.stats.stq_writes == 1


def test_capacity_limits():
    lsu = make_lsu()
    for seq in range(MEDIUM_BOOM.ldq_entries):
        load = make_load(seq)
        assert lsu.can_dispatch(load)
        lsu.dispatch(load)
    assert not lsu.can_dispatch(make_load(99))
    assert lsu.can_dispatch(make_store(100))  # STQ independent


def test_load_blocked_by_unknown_store_address():
    lsu = make_lsu()
    store = make_store(0, addr_ready=False)
    load = make_load(1)
    lsu.dispatch(store)
    lsu.dispatch(load)
    assert not lsu.load_may_issue(load)
    store.addr_ready = True
    assert lsu.load_may_issue(load)


def test_load_not_blocked_by_younger_store():
    lsu = make_lsu()
    load = make_load(0)
    younger_store = make_store(1, addr_ready=False)
    lsu.dispatch(load)
    lsu.dispatch(younger_store)
    assert lsu.load_may_issue(load)


def test_forwarding_same_address():
    lsu = make_lsu()
    store = make_store(0, addr=0x2000, addr_ready=True)
    load = make_load(1, addr=0x2000)
    lsu.dispatch(store)
    lsu.dispatch(load)
    assert lsu.forwards_from_store(load)
    assert lsu.stats.forwards == 1
    assert lsu.stats.cam_searches == 1


def test_no_forwarding_different_address():
    lsu = make_lsu()
    lsu.dispatch(make_store(0, addr=0x2000, addr_ready=True))
    load = make_load(1, addr=0x3000)
    lsu.dispatch(load)
    assert not lsu.forwards_from_store(load)
    assert lsu.stats.forwards == 0


def test_no_forwarding_from_younger_store():
    lsu = make_lsu()
    load = make_load(0, addr=0x2000)
    lsu.dispatch(load)
    lsu.dispatch(make_store(1, addr=0x2000, addr_ready=True))
    assert not lsu.forwards_from_store(load)


def test_cam_search_counts_older_entries_only():
    lsu = make_lsu()
    for seq in range(3):
        lsu.dispatch(make_store(seq, addr=0x100 * seq, addr_ready=True))
    load = make_load(10, addr=0x9000)
    lsu.dispatch(load)
    lsu.forwards_from_store(load)
    assert lsu.stats.cam_searches == 3


def test_commit_removes_entries():
    lsu = make_lsu()
    load = make_load(0)
    store = make_store(1, addr_ready=True)
    lsu.dispatch(load)
    lsu.dispatch(store)
    lsu.commit(load)
    lsu.commit(store)
    lsu.sample()
    assert lsu.stats.ldq_occupancy == 0
    assert lsu.stats.stq_occupancy == 0


def test_sample_accumulates_occupancy():
    lsu = make_lsu()
    lsu.dispatch(make_load(0))
    lsu.dispatch(make_load(1))
    lsu.dispatch(make_store(2))
    lsu.sample()
    lsu.sample()
    assert lsu.stats.ldq_occupancy == 4
    assert lsu.stats.stq_occupancy == 2


def test_forwarding_uses_8_byte_granularity():
    lsu = make_lsu()
    lsu.dispatch(make_store(0, addr=0x2000, addr_ready=True))
    same_dword = make_load(1, addr=0x2004)
    lsu.dispatch(same_dword)
    assert lsu.forwards_from_store(same_dword)
    next_dword = make_load(2, addr=0x2008)
    lsu.dispatch(next_dword)
    assert not lsu.forwards_from_store(next_dword)
