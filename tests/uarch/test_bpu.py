"""Unit tests for branch prediction structures."""

from repro.uarch.bpu import (
    BranchPredictionUnit,
    BranchTargetBuffer,
    GsharePredictor,
    make_direction_predictor,
    ReturnAddressStack,
    TagePredictor,
)
from repro.uarch.config import PredictorParams
from repro.uarch.stats import PredictorStats


def make_stats():
    return PredictorStats()


class TestBtb:
    def test_miss_then_hit(self):
        stats = make_stats()
        btb = BranchTargetBuffer(64, stats)
        assert btb.lookup(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.lookup(0x1000) == 0x2000
        assert stats.btb_lookups == 2
        assert stats.btb_misses == 1
        assert stats.btb_updates == 1

    def test_aliasing_eviction(self):
        btb = BranchTargetBuffer(4, make_stats())
        btb.update(0x1000, 0xA)
        btb.update(0x1000 + 4 * 4, 0xB)  # same index, different tag
        assert btb.lookup(0x1000) is None
        assert btb.lookup(0x1000 + 16) == 0xB


class TestRas:
    def test_push_pop_lifo(self):
        ras = ReturnAddressStack(8, make_stats())
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2, make_stats())
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor(PredictorParams(kind="gshare"),
                                    make_stats())
        pc = 0x4000
        # Train past history saturation (all-taken history repeats).
        for _ in range(50):
            predictor.predict(pc)
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_learns_alternating_with_history(self):
        predictor = GsharePredictor(PredictorParams(kind="gshare"),
                                    make_stats())
        pc = 0x4000
        correct = 0
        outcomes = [bool(i % 2) for i in range(200)]
        for outcome in outcomes:
            if predictor.predict(pc) == outcome:
                correct += 1
            predictor.update(pc, outcome)
        # With history, the alternating pattern becomes predictable.
        assert correct > 150


class TestTage:
    def params(self):
        return PredictorParams(kind="tage")

    def test_learns_biased_branch(self):
        predictor = TagePredictor(self.params(), make_stats())
        pc = 0x8000
        for _ in range(16):
            predictor.predict(pc)
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_learns_history_pattern(self):
        """TAGE must capture a pattern gshare's base table cannot."""
        predictor = TagePredictor(self.params(), make_stats())
        pc = 0x8000
        pattern = [True, True, False, True, False, False]
        correct = 0
        trials = 600
        for i in range(trials):
            outcome = pattern[i % len(pattern)]
            if predictor.predict(pc) == outcome:
                correct += 1
            predictor.update(pc, outcome)
        assert correct / trials > 0.80

    def test_reads_all_tables_per_lookup(self):
        stats = make_stats()
        predictor = TagePredictor(self.params(), stats)
        predictor.predict(0x1234)
        # 4 tagged tables + base are read in parallel.
        assert stats.dir_table_reads == 5

    def test_allocates_on_mispredict(self):
        stats = make_stats()
        predictor = TagePredictor(self.params(), stats)
        pc = 0x8000
        for i in range(40):
            predicted = predictor.predict(pc)
            outcome = bool(i % 2)
            predictor.update(pc, outcome)
        assert stats.allocations > 0


def test_factory_dispatches_on_kind():
    stats = make_stats()
    assert isinstance(make_direction_predictor(
        PredictorParams(kind="tage"), stats), TagePredictor)
    assert isinstance(make_direction_predictor(
        PredictorParams(kind="gshare"), stats), GsharePredictor)


class TestUnit:
    def make(self, kind="tage"):
        stats = make_stats()
        return BranchPredictionUnit(PredictorParams(kind=kind), stats), stats

    def test_conditional_mispredict_counted(self):
        bpu, stats = self.make()
        # A fresh predictor weakly predicts not-taken; taken mispredicts.
        mispredicted = bpu.predict_conditional(0x1000, True, 0x2000)
        assert mispredicted
        assert stats.mispredicts == 1

    def test_trained_branch_predicts_correctly(self):
        bpu, stats = self.make()
        for _ in range(10):
            bpu.predict_conditional(0x1000, True, 0x2000)
        before = stats.mispredicts
        assert not bpu.predict_conditional(0x1000, True, 0x2000)
        assert stats.mispredicts == before

    def test_jump_btb_training(self):
        bpu, _ = self.make()
        assert bpu.predict_jump(0x3000, 0x4000) is True  # cold miss
        assert bpu.predict_jump(0x3000, 0x4000) is False

    def test_return_uses_ras(self):
        bpu, stats = self.make()
        # call pushes 0x1004; the later return pops it.
        bpu.predict_indirect(0x1000, 0x8000, is_return=False, is_call=True,
                             return_address=0x1004)
        mispredicted = bpu.predict_indirect(
            0x8010, 0x1004, is_return=True, is_call=False,
            return_address=0x8014)
        assert not mispredicted

    def test_indirect_btb_fallback(self):
        bpu, stats = self.make()
        assert bpu.predict_indirect(0x5000, 0x6000, is_return=False,
                                    is_call=False, return_address=0)
        assert not bpu.predict_indirect(0x5000, 0x6000, is_return=False,
                                        is_call=False, return_address=0)

    def test_rebind_stats(self):
        bpu, _ = self.make()
        fresh = make_stats()
        bpu.rebind_stats(fresh)
        bpu.predict_conditional(0x1000, False, 0x1004)
        assert fresh.dir_updates == 1
