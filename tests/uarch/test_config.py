"""Tests for the three BOOM configurations (Table I constraints)."""

import pytest

from repro.errors import ConfigError
from repro.uarch.config import (
    ALL_CONFIGS,
    BoomConfig,
    CacheParams,
    CLOCK_HZ,
    config_by_name,
    LARGE_BOOM,
    MEDIUM_BOOM,
    MEGA_BOOM,
    PredictorParams,
)


def test_decode_widths_are_2_3_4():
    assert MEDIUM_BOOM.decode_width == 2
    assert LARGE_BOOM.decode_width == 3
    assert MEGA_BOOM.decode_width == 4


def test_integer_rf_ports_match_paper():
    """§IV-B: 6R/3W, 8R/4W, 12R/6W."""
    assert (MEDIUM_BOOM.int_rf_read_ports,
            MEDIUM_BOOM.int_rf_write_ports) == (6, 3)
    assert (LARGE_BOOM.int_rf_read_ports,
            LARGE_BOOM.int_rf_write_ports) == (8, 4)
    assert (MEGA_BOOM.int_rf_read_ports,
            MEGA_BOOM.int_rf_write_ports) == (12, 6)


def test_fp_rf_ports_double_in_mega():
    """Key Takeaway #2: MegaBOOM has 2x the FP RF ports of LargeBOOM."""
    assert MEGA_BOOM.fp_rf_read_ports == 2 * LARGE_BOOM.fp_rf_read_ports
    assert MEGA_BOOM.fp_rf_write_ports == 2 * LARGE_BOOM.fp_rf_write_ports


def test_mega_integer_iq_has_40_slots():
    """Fig. 8 shows 40 integer issue slots in MegaBOOM."""
    assert MEGA_BOOM.int_iq_entries == 40


def test_medium_btb_is_half_sized():
    """§IV-B: MediumBOOM's BTB is half the size of the other two."""
    assert MEDIUM_BOOM.predictor.btb_entries * 2 == \
        LARGE_BOOM.predictor.btb_entries
    assert LARGE_BOOM.predictor.btb_entries == \
        MEGA_BOOM.predictor.btb_entries


def test_large_and_mega_dcache_same_geometry_mega_more_mshrs():
    """Key Takeaway #8: identical size/assoc, 2x MSHRs + 2 memory units."""
    assert LARGE_BOOM.dcache.size_bytes == MEGA_BOOM.dcache.size_bytes
    assert LARGE_BOOM.dcache.ways == MEGA_BOOM.dcache.ways
    assert MEGA_BOOM.dcache.mshrs == 2 * LARGE_BOOM.dcache.mshrs
    assert MEGA_BOOM.mem_units == 2
    assert LARGE_BOOM.mem_units == 1


def test_large_and_mega_share_icache():
    assert LARGE_BOOM.icache == MEGA_BOOM.icache


def test_sizes_grow_with_aggressiveness():
    for field in ("rob_entries", "int_phys_regs", "fp_phys_regs",
                  "int_iq_entries", "ldq_entries", "fetch_buffer_entries"):
        medium = getattr(MEDIUM_BOOM, field)
        large = getattr(LARGE_BOOM, field)
        mega = getattr(MEGA_BOOM, field)
        assert medium < large < mega or medium <= large <= mega, field


def test_clock_is_500mhz():
    assert CLOCK_HZ == 500_000_000


def test_config_by_name():
    assert config_by_name("megaboom") is MEGA_BOOM
    assert config_by_name("MediumBOOM") is MEDIUM_BOOM
    with pytest.raises(ConfigError):
        config_by_name("GigaBOOM")


def test_with_predictor_swaps_direction_predictor():
    gshare = MEGA_BOOM.with_predictor("gshare")
    assert gshare.predictor.kind == "gshare"
    assert gshare.predictor.btb_entries == MEGA_BOOM.predictor.btb_entries
    assert "gshare" in gshare.name
    assert MEGA_BOOM.predictor.kind == "tage"  # original untouched


def test_describe_contains_table_rows():
    row = MEGA_BOOM.describe()
    assert row["Decode width"] == 4
    assert row["Int RF ports (R/W)"] == "12R/6W"


def test_cache_params_validation():
    with pytest.raises(ConfigError):
        CacheParams(size_bytes=1000, ways=3, mshrs=2)


def test_cache_params_reject_degenerate_geometries():
    # size_bytes=0 used to slip through: sets == 0 divides evenly and
    # 0 & -1 == 0 passed the power-of-two check
    with pytest.raises(ConfigError):
        CacheParams(size_bytes=0, ways=4, mshrs=2)
    with pytest.raises(ConfigError):
        CacheParams(size_bytes=16 * 1024, ways=0, mshrs=2)
    with pytest.raises(ConfigError):
        CacheParams(size_bytes=16 * 1024, ways=4, mshrs=0)
    with pytest.raises(ConfigError):
        CacheParams(size_bytes=16 * 1024, ways=4, mshrs=2, line_bytes=0)


def test_predictor_params_validation():
    with pytest.raises(ConfigError):
        PredictorParams(kind="perceptron")
    with pytest.raises(ConfigError):
        PredictorParams(tage_tables=3, tage_history_lengths=(4, 8))


def test_invalid_config_rejected():
    import dataclasses

    with pytest.raises(ConfigError):
        dataclasses.replace(MEDIUM_BOOM, rob_entries=2)
    with pytest.raises(ConfigError):
        dataclasses.replace(MEDIUM_BOOM, int_phys_regs=32)
    with pytest.raises(ConfigError):
        dataclasses.replace(MEDIUM_BOOM, fetch_width=1)


def test_all_configs_tuple():
    assert [c.name for c in ALL_CONFIGS] == \
        ["MediumBOOM", "LargeBOOM", "MegaBOOM"]


def test_ablation_names_are_collision_free():
    """Two different configs ablated the same way must not share a name
    (sweep state and analysis maps are keyed by name)."""
    import dataclasses

    from repro.uarch.config import config_id

    variant = dataclasses.replace(MEGA_BOOM, rob_entries=96,
                                  name=MEGA_BOOM.name)
    a = MEGA_BOOM.with_predictor("gshare")
    b = variant.with_predictor("gshare")
    assert a.name != b.name
    assert a.name.endswith(config_id(a)[:10])


def test_ablation_helpers_are_idempotent():
    gshare = MEGA_BOOM.with_predictor("gshare")
    assert gshare.with_predictor("gshare") is gshare
    assert gshare.name.count("@") == 1
    # re-deriving a different ablation from an ablated config replaces
    # the hash suffix instead of stacking another one
    ring = gshare.with_issue_queues("ring")
    assert ring.name.count("@") == 1
    assert MEGA_BOOM.with_issue_queues("collapsing") is MEGA_BOOM
