"""Tests for the pipeline waterfall visualizer."""

import pytest

from repro.isa.assembler import assemble
from repro.uarch.config import MEDIUM_BOOM
from repro.uarch.pipeview import (
    render_waterfall,
    summarize_timings,
    trace_program,
)

SOURCE = """
    .data
cell: .dword 5
    .text
_start:
    la   t0, cell
    ld   t1, 0(t0)
    addi t2, t1, 1
    mul  t3, t2, t2
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture(scope="module")
def timings():
    return trace_program(assemble(SOURCE), MEDIUM_BOOM)


def test_all_uops_captured(timings):
    mnemonics = [t.mnemonic for t in timings]
    assert mnemonics[-1] == "ecall"
    assert "mul" in mnemonics


def test_stage_ordering_invariant(timings):
    for timing in timings:
        assert timing.dispatch <= timing.issue
        assert timing.issue < timing.complete
        assert timing.complete <= timing.commit


def test_program_order_commit(timings):
    commits = [t.commit for t in timings]
    assert commits == sorted(commits)
    seqs = [t.seq for t in timings]
    assert seqs == sorted(seqs)


def test_dependent_chain_visible(timings):
    load_index = next(i for i, t in enumerate(timings)
                      if t.mnemonic == "ld")
    load = timings[load_index]
    dependent = timings[load_index + 1]   # addi on the load result
    consumer = timings[load_index + 2]    # mul on the addi result
    assert dependent.mnemonic == "addi"
    assert consumer.mnemonic == "mul"
    # addi waits for the load's result; mul for addi's.
    assert dependent.issue >= load.complete
    assert consumer.issue >= dependent.complete
    # the multiply takes longer than the add
    assert consumer.latency > dependent.latency


def test_waterfall_rendering(timings):
    text = render_waterfall(timings)
    assert "ld" in text
    lines = text.splitlines()
    assert len(lines) == len(timings) + 1  # header
    for line in lines[1:]:
        assert "D" in line and "C" in line and "R" in line


def test_waterfall_empty():
    assert "no retired uops" in render_waterfall([])


def test_summary(timings):
    summary = summarize_timings(timings)
    assert summary["uops"] == len(timings)
    assert summary["avg_latency"] >= 1.0
    assert summary["span_cycles"] > 0
    assert summarize_timings([]) == {"uops": 0}


def test_skip_instructions():
    source = """
    _start:
        li t0, 50
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li a7, 93
        ecall
    """
    later = trace_program(assemble(source), MEDIUM_BOOM, max_uops=8,
                          skip_instructions=40)
    assert later[0].seq >= 40


def test_max_columns_caps_width():
    timings = trace_program(assemble(SOURCE), MEDIUM_BOOM)
    text = render_waterfall(timings, max_columns=10)
    for line in text.splitlines()[1:]:
        body = line.split("|")[1]
        assert len(body) <= 10
