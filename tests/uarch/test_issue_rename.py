"""Unit tests for the collapsing issue queue and rename stage."""

from repro.isa.instructions import Instruction
from repro.uarch.config import MEDIUM_BOOM
from repro.uarch.issue import IssueQueue
from repro.uarch.rename import RenameStage
from repro.uarch.stats import IssueQueueStats, RenameStats
from repro.uarch.uop import COMPLETED, Uop


def make_uop(seq, mnemonic="add", **kw):
    return Uop(seq, Instruction(mnemonic, **kw))


class TestIssueQueue:
    def make(self, entries=4):
        return IssueQueue("int", entries, IssueQueueStats())

    def test_insert_tracks_slot_writes(self):
        queue = self.make()
        queue.insert(make_uop(0))
        queue.insert(make_uop(1))
        assert queue.stats.slot_writes[0] == 1
        assert queue.stats.slot_writes[1] == 1
        assert queue.stats.writes == 2

    def test_space_accounting(self):
        queue = self.make(entries=2)
        assert queue.has_space()
        queue.insert(make_uop(0))
        queue.insert(make_uop(1))
        assert not queue.has_space()

    def test_oldest_first_selection(self):
        queue = self.make()
        for seq in range(3):
            queue.insert(make_uop(seq))
        issued = queue.select(0, 2, lambda u, c: True)
        assert [u.seq for u in issued] == [0, 1]
        assert len(queue) == 1

    def test_collapse_counts_shifts(self):
        queue = self.make()
        uops = [make_uop(seq) for seq in range(4)]
        for uop in uops:
            queue.insert(uop)
        # Only seq 1 is issueable: entries 2 and 3 shift forward.
        issued = queue.select(0, 4, lambda u, c: u.seq == 1)
        assert [u.seq for u in issued] == [1]
        assert queue.stats.shifts == 2
        # shifted entries write their new slots (1 and 2)
        assert queue.stats.slot_writes[1] >= 2
        assert queue.stats.slot_writes[2] >= 2

    def test_no_issue_no_shift(self):
        queue = self.make()
        queue.insert(make_uop(0))
        queue.insert(make_uop(1))
        issued = queue.select(0, 2, lambda u, c: False)
        assert issued == []
        assert queue.stats.shifts == 0

    def test_sample_per_slot_occupancy(self):
        queue = self.make()
        queue.insert(make_uop(0))
        queue.insert(make_uop(1))
        queue.sample()
        queue.sample()
        assert queue.stats.occupancy == 4
        assert queue.stats.slot_occupancy[0] == 2
        assert queue.stats.slot_occupancy[1] == 2
        assert queue.stats.slot_occupancy[2] == 0

    def test_max_issue_respected(self):
        queue = self.make()
        for seq in range(4):
            queue.insert(make_uop(seq))
        issued = queue.select(0, 1, lambda u, c: True)
        assert len(issued) == 1


class TestRename:
    def make(self):
        return RenameStage(MEDIUM_BOOM, RenameStats(), RenameStats())

    def test_source_dependency_tracked(self):
        stage = self.make()
        producer = make_uop(0, "add", rd=5, rs1=1, rs2=2)
        consumer = make_uop(1, "add", rd=6, rs1=5, rs2=5)
        stage.rename(producer)
        stage.rename(consumer)
        assert consumer.srcs == (producer, producer)

    def test_ready_after_producer_completes(self):
        stage = self.make()
        producer = make_uop(0, "add", rd=5)
        consumer = make_uop(1, "add", rd=6, rs1=5)
        stage.rename(producer)
        stage.rename(consumer)
        assert not consumer.ready(10)
        producer.state = COMPLETED
        producer.complete_cycle = 10
        assert consumer.ready(10)
        assert not consumer.ready(9)

    def test_free_list_accounting(self):
        stage = self.make()
        free0 = stage.int_unit.free
        uop = make_uop(0, "add", rd=5)
        stage.rename(uop)
        assert stage.int_unit.free == free0 - 1
        stage.commit(uop)
        assert stage.int_unit.free == free0

    def test_x0_destination_not_renamed(self):
        stage = self.make()
        free0 = stage.int_unit.free
        stage.rename(make_uop(0, "add", rd=0))
        assert stage.int_unit.free == free0

    def test_fp_and_int_separate(self):
        stage = self.make()
        fp = make_uop(0, "fadd.d", rd=3, rs1=1, rs2=2)
        free_fp0 = stage.fp_unit.free
        free_int0 = stage.int_unit.free
        stage.rename(fp)
        assert stage.fp_unit.free == free_fp0 - 1
        assert stage.int_unit.free == free_int0

    def test_branch_snapshots_both_units(self):
        """Key Takeaway #3: every branch snapshots the FP unit too."""
        stage = self.make()
        branch = make_uop(0, "beq", rs1=1, rs2=2)
        stage.rename(branch)
        assert stage.int_unit.stats.snapshots == 1
        assert stage.fp_unit.stats.snapshots == 1

    def test_can_rename_exhaustion(self):
        stage = self.make()
        uops = []
        while stage.int_unit.can_allocate():
            uop = make_uop(len(uops), "add", rd=5)
            stage.rename(uop)
            uops.append(uop)
        assert not stage.can_rename(make_uop(999, "add", rd=6))
        # stores have no destination: always renameable
        assert stage.can_rename(make_uop(1000, "sd", rs1=1, rs2=2))
        stage.commit(uops[0])
        assert stage.can_rename(make_uop(1001, "add", rd=6))

    def test_mixed_source_classes(self):
        stage = self.make()
        int_producer = make_uop(0, "add", rd=2)
        fp_producer = make_uop(1, "fadd.d", rd=9, rs1=1, rs2=1)
        stage.rename(int_producer)
        stage.rename(fp_producer)
        fsd = make_uop(2, "fsd", rs1=2, rs2=9)
        stage.rename(fsd)
        assert set(fsd.srcs) == {int_producer, fp_producer}
