"""Characterization sanity: predictor and cache behaviour per workload.

These integration tests pin the *microarchitectural* signatures the
workloads were designed to have (docs/workloads.md) — the causal layer
beneath the power results.
"""

import pytest

from repro.uarch.config import MEGA_BOOM, SMALL_BOOM
from repro.uarch.core import BoomCore
from repro.workloads.suite import build_program


def measured_stats(workload, config=MEGA_BOOM, skip=30_000, window=8_000):
    program = build_program(workload, scale=1.0)
    core = BoomCore(config, program)
    core.run(skip)
    stats = core.begin_measurement()
    core.run(window)
    return stats


def mispredict_rate(stats):
    branches = stats.retired_by_class.get("BRANCH", 0)
    if branches == 0:
        return 0.0
    return stats.predictor.mispredicts / branches


def test_tarfind_mispredicts_most():
    tarfind = mispredict_rate(measured_stats("tarfind", skip=100_000))
    sha = mispredict_rate(measured_stats("sha", skip=50_000))
    dijkstra = mispredict_rate(measured_stats("dijkstra", skip=50_000))
    assert tarfind > 0.2          # effectively random branch directions
    assert sha < 0.02             # perfectly predictable loop structure
    assert dijkstra < 0.05        # branchless kernels
    assert tarfind > 5 * max(sha, dijkstra)


def test_matmult_is_the_dcache_hot_workload():
    matmult = measured_stats("matmult", skip=60_000)
    sha = measured_stats("sha", skip=50_000)
    # Access density (the dominant D$ power term): 2 loads per 7-op iter.
    matmult_apki = matmult.dcache.reads / matmult.retired
    sha_apki = sha.dcache.reads / sha.retired
    assert matmult_apki > 5 * max(sha_apki, 0.01)
    # And it actually misses, unlike the compute-bound kernels.
    matmult_mpki = 1000 * matmult.dcache.misses / matmult.retired
    sha_mpki = 1000 * sha.dcache.misses / sha.retired
    assert matmult_mpki > sha_mpki


def test_patricia_is_load_latency_bound():
    stats = measured_stats("patricia", skip=80_000)
    loads = stats.retired_by_class.get("LOAD", 0)
    assert loads / stats.retired > 0.12   # pointer chasing is load-dense
    assert stats.ipc < 1.5


def test_fp_workloads_use_fp_queue():
    fft = measured_stats("fft", skip=30_000)
    assert fft.fp_iq.issues > 1000
    sha = measured_stats("sha", skip=50_000)
    assert sha.fp_iq.issues == 0


def test_dijkstra_fills_int_queue():
    dijkstra = measured_stats("dijkstra", skip=50_000)
    sha = measured_stats("sha", skip=50_000)
    occupancy_d = dijkstra.int_iq.occupancy / dijkstra.cycles
    occupancy_s = sha.int_iq.occupancy / sha.cycles
    assert occupancy_d > 30      # nearly all 40 MegaBOOM slots
    assert occupancy_d > occupancy_s


def test_icache_indifferent_to_workload():
    """§IV-B: the L1I access pattern is uniform across workloads."""
    rates = []
    for workload in ("sha", "dijkstra", "qsort"):
        stats = measured_stats(workload, skip=20_000, window=6_000)
        rates.append(stats.icache.reads / stats.cycles)
    assert max(rates) < 2.5 * min(rates)


def test_smallboom_runs_and_is_slowest():
    small = measured_stats("sha", config=SMALL_BOOM, skip=40_000)
    mega = measured_stats("sha", config=MEGA_BOOM, skip=40_000)
    assert small.ipc <= 1.0 + 1e-9    # 1-wide machine
    assert mega.ipc > 2.5 * small.ipc
