"""Unit tests for execution units, ROB, and the Uop class."""

import pytest

from repro.isa.instructions import Instruction, OpClass
from repro.uarch.execute import ExecutionUnits, LATENCY
from repro.uarch.config import MEGA_BOOM
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import ExecuteStats, RobStats
from repro.uarch.uop import COMPLETED, DISPATCHED, ISSUED, Uop


class TestExecutionUnits:
    def make(self):
        return ExecutionUnits(MEGA_BOOM, ExecuteStats())

    def test_latency_table_covers_non_load_classes(self):
        for opclass in OpClass:
            if opclass in (OpClass.LOAD, OpClass.FP_LOAD):
                continue  # loads get latency from the cache model
            assert opclass in LATENCY, opclass

    def test_pipelined_ops_always_accepted(self):
        units = self.make()
        assert units.can_accept(OpClass.ALU, 0)
        units.dispatch(OpClass.ALU, 0)
        assert units.can_accept(OpClass.ALU, 0)
        assert units.can_accept(OpClass.MUL, 0)

    def test_divider_is_unpipelined(self):
        units = self.make()
        latency = units.dispatch(OpClass.DIV, 0)
        assert not units.can_accept(OpClass.DIV, 1)
        assert units.can_accept(OpClass.DIV, latency)
        # FP divide uses a separate iterative unit.
        assert units.can_accept(OpClass.FP_DIV, 1)

    def test_fp_divider_independent(self):
        units = self.make()
        units.dispatch(OpClass.FP_DIV, 0)
        assert not units.can_accept(OpClass.FP_DIV, 5)
        assert units.can_accept(OpClass.DIV, 5)

    def test_op_counters(self):
        units = self.make()
        units.dispatch(OpClass.ALU, 0)
        units.dispatch(OpClass.MUL, 0)
        units.dispatch(OpClass.BRANCH, 0)
        units.dispatch(OpClass.FP_MUL, 0)
        units.dispatch(OpClass.STORE, 0)
        units.count_load_agu()
        stats = units.stats
        assert stats.alu_ops == 2       # ALU + branch resolve
        assert stats.mul_ops == 1
        assert stats.branch_ops == 1
        assert stats.fp_mul_ops == 1
        assert stats.agu_ops == 2       # store AGU + load AGU

    def test_latency_ordering(self):
        assert LATENCY[OpClass.ALU] < LATENCY[OpClass.MUL] \
            < LATENCY[OpClass.DIV]
        assert LATENCY[OpClass.FP_ALU] <= LATENCY[OpClass.FP_MUL] \
            < LATENCY[OpClass.FP_DIV]


class TestRob:
    def make(self, entries=4):
        return ReorderBuffer(entries, RobStats())

    def make_uop(self, seq):
        return Uop(seq, Instruction("add", rd=1, rs1=2, rs2=3))

    def test_capacity(self):
        rob = self.make(entries=2)
        rob.push(self.make_uop(0))
        assert rob.has_space()
        rob.push(self.make_uop(1))
        assert not rob.has_space()

    def test_in_order_commit_gate(self):
        rob = self.make()
        first = self.make_uop(0)
        second = self.make_uop(1)
        rob.push(first)
        rob.push(second)
        # Completing the second does not unblock the head.
        second.state = COMPLETED
        second.complete_cycle = 5
        assert not rob.head_completed(10)
        first.state = COMPLETED
        first.complete_cycle = 8
        assert rob.head_completed(8)
        assert not rob.head_completed(7)  # result not ready yet
        assert rob.pop() is first

    def test_stats(self):
        rob = self.make()
        rob.push(self.make_uop(0))
        rob.sample()
        rob.sample()
        assert rob.stats.dispatch_writes == 1
        assert rob.stats.occupancy == 2
        head = rob.head()
        head.state = COMPLETED
        head.complete_cycle = 0
        rob.pop()
        assert rob.stats.commit_reads == 1
        assert rob.is_empty


class TestUop:
    def test_state_machine_constants(self):
        assert DISPATCHED < ISSUED < COMPLETED

    def test_operand_counts(self):
        assert Uop(0, Instruction("add", rd=1, rs1=2, rs2=3)).x_reads == 2
        assert Uop(0, Instruction("add", rd=1, rs1=0, rs2=3)).x_reads == 1
        assert Uop(0, Instruction("addi", rd=1, rs1=2)).x_reads == 1
        fmadd = Uop(0, Instruction("fmadd.d", rd=1, rs1=2, rs2=3, rs3=4))
        assert fmadd.f_reads == 3
        assert fmadd.x_reads == 0
        fsd = Uop(0, Instruction("fsd", rs1=2, rs2=9))
        assert fsd.x_reads == 1
        assert fsd.f_reads == 1

    def test_queue_routing(self):
        assert Uop(0, Instruction("add")).queue == "int"
        assert Uop(0, Instruction("ld", rd=1, rs1=2)).queue == "mem"
        assert Uop(0, Instruction("fadd.d", rd=1)).queue == "fp"

    def test_ready_without_sources(self):
        uop = Uop(0, Instruction("addi", rd=1, rs1=0))
        assert uop.ready(0)

    def test_ready_tracks_producers(self):
        producer = Uop(0, Instruction("add", rd=5))
        consumer = Uop(1, Instruction("add", rd=6, rs1=5))
        consumer.srcs = (producer,)
        assert not consumer.ready(100)
        producer.state = COMPLETED
        producer.complete_cycle = 50
        assert consumer.ready(50)
        assert not consumer.ready(49)

    def test_store_addr_ready_default(self):
        assert not Uop(0, Instruction("sd", rs1=1, rs2=2)).addr_ready
        assert Uop(0, Instruction("ld", rd=1, rs1=2)).addr_ready

    def test_repr(self):
        text = repr(Uop(7, Instruction("beq", rs1=1, rs2=2, pc=0x1000)))
        assert "beq" in text and "#7" in text
