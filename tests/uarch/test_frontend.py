"""Unit tests for the fetch unit (oracle-driven frontend)."""

from repro.isa.assembler import assemble
from repro.sim.state import ArchState
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.cache import L1Cache
from repro.uarch.config import MEDIUM_BOOM
from repro.uarch.frontend import BTB_BUBBLE, FetchUnit, REDIRECT_PENALTY
from repro.uarch.stats import CacheStats, FrontendStats, PredictorStats
from repro.uarch.uop import COMPLETED


def make_frontend(source, config=MEDIUM_BOOM):
    program = assemble(source)
    state = ArchState.for_program(program)
    predictor_stats = PredictorStats()
    bpu = BranchPredictionUnit(config.predictor, predictor_stats)
    icache = L1Cache(config.icache, CacheStats(), hit_latency=1)
    frontend = FetchUnit(config, program, state, bpu, icache,
                         FrontendStats())
    return frontend


def drain(frontend, cycles=300):
    """Drive the frontend with a trivial backend that resolves branches."""
    fetched = []
    for cycle in range(cycles):
        frontend.cycle(cycle)
        blocker = frontend.blocked_by
        if blocker is not None and blocker.state != COMPLETED:
            blocker.state = COMPLETED
            blocker.complete_cycle = cycle
        while frontend.buffer:
            fetched.append(frontend.buffer.popleft())
        if frontend.exited:
            break
    return fetched


def test_fetches_program_in_order():
    frontend = make_frontend("""
    _start:
        addi a0, a0, 1
        addi a1, a1, 2
        li a7, 93
        ecall
    """)
    fetched = drain(frontend)
    assert [u.instr.mnemonic for u in fetched] == \
        ["addi", "addi", "addi", "ecall"]
    assert [u.seq for u in fetched] == [0, 1, 2, 3]


def test_oracle_annotations_on_memory_ops():
    frontend = make_frontend("""
        .data
    cell: .dword 7
        .text
    _start:
        la t0, cell
        ld t1, 0(t0)
        sd t1, 8(t0)
        li a7, 93
        ecall
    """)
    fetched = drain(frontend)
    load = next(u for u in fetched if u.is_load)
    store = next(u for u in fetched if u.is_store)
    assert load.mem_addr == store.mem_addr - 8
    assert load.mem_addr >= 0x100000  # DATA_BASE region


def test_first_fetch_misses_icache():
    frontend = make_frontend("_start: j _start")
    frontend.cycle(0)
    assert frontend.stats.icache_misses == 1
    assert frontend.stats.fetch_stall_cycles == 1
    assert not frontend.buffer


def test_taken_branch_ends_fetch_group():
    frontend = make_frontend("""
    _start:
        li t0, 8
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li a7, 93
        ecall
    """)
    # Warm the icache and predictor first.
    drain(frontend)


def test_mispredict_blocks_fetch_until_resolution():
    frontend = make_frontend("""
    _start:
        li t0, 1
        beq t0, t0, target     # taken; cold predictor says not-taken
        addi a1, a1, 1
    target:
        li a7, 93
        ecall
    """)
    cycle = 0
    # run until the branch is fetched and blocks the frontend
    while frontend.blocked_by is None and cycle < 100:
        frontend.cycle(cycle)
        cycle += 1
    blocker = frontend.blocked_by
    assert blocker is not None
    assert blocker.mispredicted
    # Frontend stays stalled while the branch is unresolved.
    before = len(frontend.buffer)
    frontend.cycle(cycle)
    assert len(frontend.buffer) == before
    # Resolve the branch; fetch resumes after the redirect penalty.
    blocker.state = COMPLETED
    blocker.complete_cycle = cycle
    resume = cycle + REDIRECT_PENALTY
    frontend.cycle(resume - 1)
    stalled = len(frontend.buffer)
    frontend.cycle(resume + 1)
    assert len(frontend.buffer) > stalled


def test_fetch_buffer_backpressure():
    body = "\n".join("    addi t0, t0, 1" for _ in range(100))
    frontend = make_frontend(f"_start:\n{body}\n    li a7, 93\n    ecall")
    for cycle in range(100):
        frontend.cycle(cycle)
    assert len(frontend.buffer) <= MEDIUM_BOOM.fetch_buffer_entries


def test_fetch_width_respected_per_cycle():
    body = "\n".join("    addi t0, t0, 1" for _ in range(64))
    frontend = make_frontend(f"_start:\n{body}\n    li a7, 93\n    ecall")
    sizes = []
    previous = 0
    for cycle in range(30):
        frontend.cycle(cycle)
        sizes.append(len(frontend.buffer) - previous)
        previous = len(frontend.buffer)
        if len(frontend.buffer) >= MEDIUM_BOOM.fetch_buffer_entries:
            break
    assert max(sizes) <= MEDIUM_BOOM.fetch_width


def test_exit_stops_fetch():
    frontend = make_frontend("_start: li a7, 93\n    ecall")
    drain(frontend)
    assert frontend.exited
    assert frontend.out_of_instructions
    before = frontend.stats.fetch_buffer_writes
    frontend.cycle(999)
    assert frontend.stats.fetch_buffer_writes == before


def test_predictor_looked_up_every_active_cycle():
    frontend = make_frontend("""
    _start:
        li t0, 40
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li a7, 93
        ecall
    """)
    drain(frontend)
    assert frontend.bpu.stats.lookups > 10


def test_redirect_penalty_constant_sane():
    assert 1 <= BTB_BUBBLE <= REDIRECT_PENALTY <= 10
