"""Unit tests for the L1 cache timing model."""

from repro.uarch.cache import DEFAULT_MISS_PENALTY, L1Cache
from repro.uarch.config import CacheParams
from repro.uarch.stats import CacheStats


def make_cache(size=4096, ways=2, mshrs=2, hit_latency=3):
    stats = CacheStats()
    cache = L1Cache(CacheParams(size_bytes=size, ways=ways, mshrs=mshrs),
                    stats, hit_latency=hit_latency)
    return cache, stats


def test_cold_miss_then_hit():
    cache, stats = make_cache()
    assert cache.access(0x1000, cycle=0) == DEFAULT_MISS_PENALTY
    assert cache.access(0x1000, cycle=100) == cache.hit_latency
    assert stats.reads == 2
    assert stats.misses == 1


def test_same_line_hits():
    cache, stats = make_cache()
    cache.access(0x1000, cycle=0)
    assert cache.access(0x103F, cycle=100) == cache.hit_latency  # same line
    assert cache.access(0x1040, cycle=200) != cache.hit_latency  # next line


def test_lru_replacement():
    cache, stats = make_cache(size=256, ways=2)  # 2 sets, 2 ways
    sets = cache.params.sets
    line = 64
    base = 0x0
    way_stride = sets * line
    cache.access(base, 0)                    # A
    cache.access(base + way_stride, 100)     # B (same set)
    cache.access(base, 200)                  # touch A -> B becomes LRU
    cache.access(base + 2 * way_stride, 300)  # C evicts B
    assert cache.access(base, 400) == cache.hit_latency           # A kept
    assert cache.access(base + way_stride, 500) != cache.hit_latency  # B gone


def test_dirty_eviction_counts_writeback():
    cache, stats = make_cache(size=256, ways=1)  # direct-mapped, 4 sets
    way_stride = cache.params.sets * 64
    cache.access(0x0, 0, is_write=True)
    cache.access(way_stride, 100)  # evicts dirty line
    assert stats.writebacks == 1


def test_mshr_merge_secondary_miss():
    cache, stats = make_cache()
    first = cache.access(0x1000, cycle=0)
    # Another miss to the same line merges and waits the residual time.
    second = cache.access(0x1010, cycle=5)
    assert second == first - 5
    assert stats.mshr_allocs == 1
    assert stats.misses == 2
    # Once the fill lands, the line hits at normal latency.
    assert cache.access(0x1010, cycle=first + 1) == cache.hit_latency


def test_mshr_exhaustion_returns_none():
    cache, stats = make_cache(mshrs=2)
    assert cache.access(0x10000, cycle=0) is not None
    assert cache.access(0x20000, cycle=0) is not None
    assert cache.access(0x30000, cycle=0) is None
    assert stats.mshr_full_stalls == 1
    # Stats must not double-count the refused access.
    assert stats.reads == 2


def test_mshrs_free_after_fill():
    cache, stats = make_cache(mshrs=1)
    cache.access(0x10000, cycle=0)
    later = DEFAULT_MISS_PENALTY + 1
    assert cache.access(0x20000, cycle=later) is not None
    assert stats.mshr_allocs == 2


def test_mshr_occupancy_tracks_time():
    cache, _ = make_cache(mshrs=4)
    cache.access(0x10000, cycle=0)
    cache.access(0x20000, cycle=0)
    assert cache.mshr_occupancy(1) == 2
    assert cache.mshr_occupancy(DEFAULT_MISS_PENALTY + 1) == 0


def test_write_allocates_dirty():
    cache, stats = make_cache()
    cache.access(0x5000, 0, is_write=True)
    assert stats.writes == 1
    assert stats.reads == 0
