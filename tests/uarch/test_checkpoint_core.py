"""End-to-end property: checkpoints + the detailed core compose correctly.

Random programs are checkpointed mid-flight; resuming the *detailed* core
from the checkpoint must produce the same final architectural state as
the functional simulator running straight through — the exact composition
the experimental flow relies on.
"""

from hypothesis import given, settings, strategies as st

from repro.checkpoint.checkpoint import Checkpoint
from repro.isa.assembler import assemble
from repro.sim.executor import Executor
from repro.uarch.config import LARGE_BOOM, MEDIUM_BOOM
from repro.uarch.core import BoomCore
from tests.uarch.test_differential import fp_regs_equal, generate_program


def checkpoint_at(source: str, instructions: int) -> Checkpoint:
    executor = Executor(assemble(source))
    executor.run(max_instructions=instructions)
    return Checkpoint.capture(executor.state, workload="fuzz",
                              interval_index=0, weight=1.0,
                              warmup_instructions=0)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=5_000),
       st.integers(min_value=50, max_value=400))
def test_core_resumes_checkpoints_exactly(seed, boundary):
    source = generate_program(seed, body_ops=50, iterations=10)
    reference = Executor(assemble(source))
    reference.run_to_completion()
    boundary = min(boundary, reference.state.retired - 1)

    checkpoint = checkpoint_at(source, boundary)
    core = BoomCore(MEDIUM_BOOM, assemble(source),
                    state=checkpoint.restore())
    core.run()
    assert core.frontend.state.exited
    assert core.frontend.state.x == reference.state.x
    assert fp_regs_equal(core.frontend.state.f, reference.state.f)
    # instructions retired by the core = remainder of the program
    assert core.retired_total == reference.state.retired - boundary


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=0, max_value=5_000))
def test_serialized_checkpoint_resumes_in_core(seed):
    source = generate_program(seed, body_ops=40, iterations=8)
    checkpoint = checkpoint_at(source, 200)
    reloaded = Checkpoint.from_bytes(checkpoint.to_bytes())
    direct = BoomCore(LARGE_BOOM, assemble(source),
                      state=checkpoint.restore())
    direct.run()
    roundtripped = BoomCore(LARGE_BOOM, assemble(source),
                            state=reloaded.restore())
    roundtripped.run()
    assert direct.frontend.state.x == roundtripped.frontend.state.x
    assert direct.cycle == roundtripped.cycle


def test_core_on_already_exited_checkpoint():
    source = "_start: li a0, 0\n    li a7, 93\n    ecall"
    executor = Executor(assemble(source))
    executor.run_to_completion()
    # A core given a terminal state retires nothing and stops cleanly.
    checkpoint = Checkpoint.capture(executor.state, workload="done",
                                    interval_index=0, weight=1.0,
                                    warmup_instructions=0)
    core = BoomCore(MEDIUM_BOOM, assemble(source),
                    state=checkpoint.restore())
    state = core.frontend.state
    state.exited = True  # restore() carries registers; flag re-derived
    assert core.run(100) == 0
