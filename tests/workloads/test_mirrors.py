"""Unit tests for the workload mirror functions themselves.

The mirrors are the reference semantics of each benchmark; these tests
pin them against independent implementations (Python builtins, brute
force) so a generator bug cannot hide behind a matching-but-wrong mirror.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.workloads.generators import (
    basicmath,
    dijkstra,
    fft,
    matmult,
    qsort,
    sha,
    stringsearch,
    tarfind,
)


class TestBasicmathMirror:
    @given(st.integers(min_value=1, max_value=1 << 40))
    @settings(max_examples=50)
    def test_isqrt_close_to_true_sqrt(self, value):
        """3 Newton iterations from value/2: a coarse but monotone-ish
        overestimate of the true root (the benchmark's arithmetic is the
        point, not convergence)."""
        estimate = basicmath._isqrt(value)
        true = math.isqrt(value)
        assert estimate >= true  # Newton from above stays above
        assert estimate >= 1

    def test_poly_mix_deterministic_and_mixing(self):
        a = basicmath._poly_mix(12345)
        assert a == basicmath._poly_mix(12345)
        assert a != basicmath._poly_mix(12346)
        assert 0 <= a < (1 << 64)


class TestStringsearchMirror:
    @given(st.binary(min_size=0, max_size=300),
           st.binary(min_size=1, max_size=6))
    @settings(max_examples=60)
    def test_horspool_counts_at_least_nonoverlapping(self, text, pattern):
        """Horspool finds every occurrence a naive scan finds when it
        shifts past matches (the implementations agree on counts for
        non-self-overlapping patterns; here we just bound it)."""
        matches = stringsearch._horspool(text, pattern)
        naive = sum(1 for i in range(len(text) - len(pattern) + 1)
                    if text[i:i + len(pattern)] == pattern)
        assert 0 <= matches <= naive

    def test_horspool_exact_on_simple_case(self):
        assert stringsearch._horspool(b"abcabcabc", b"abc") == 3
        assert stringsearch._horspool(b"aaaa", b"ab") == 0


class TestQsortMirror:
    def test_checksum_is_order_independent_input(self):
        a = qsort._mirror(0.1, 7)
        b = qsort._mirror(0.1, 7)
        assert a == b

    def test_values_distinct_enough_to_sort(self):
        values = qsort._values(7, 100)
        assert len(set(values)) == 100


class TestShaMirror:
    def test_digest_changes_with_any_input(self):
        assert sha._mirror(0.05, 1) != sha._mirror(0.05, 2)
        assert sha._mirror(0.05, 1) != sha._mirror(0.06, 1)

    def test_state_initialization_odd(self):
        # lanes start from odd values (| 1), never zero
        assert all(v & 1 for v in sha._initial_state(123))


class TestDijkstraMirror:
    def test_distances_match_networkx(self):
        """The mirror's checksum equals one recomputed with networkx."""
        import networkx as nx

        n = dijkstra._vertex_count(0.05)
        matrix = dijkstra._graph(7, n)
        graph = nx.DiGraph()
        graph.add_nodes_from(range(n))
        for i in range(n):
            for j in range(n):
                if matrix[i * n + j]:
                    graph.add_edge(i, j, weight=matrix[i * n + j])
        checksum = 0
        for source in range(dijkstra._SOURCES):
            start = (source * 7) % n
            lengths = nx.single_source_dijkstra_path_length(
                graph, start, weight="weight")
            total = sum(lengths.get(i, dijkstra._INF) for i in range(n))
            checksum = (checksum + total) & ((1 << 64) - 1)
        assert checksum == dijkstra._mirror(0.05, 7)


class TestFftMirror:
    def test_transform_matches_numpy(self):
        """One forward pass equals numpy.fft.fft bit-for-nearly."""
        import numpy as np

        n = 64
        re, im = fft._signal(7, n)
        wre, wim = fft._twiddles(n, inverse=False)
        rev = [fft._bit_reverse(i, 6) for i in range(n)]
        work_re, work_im = list(re), list(im)
        fft._transform(work_re, work_im, wre, wim, rev, False, 1.0 / n)
        reference = np.fft.fft(np.asarray(re) + 1j * np.asarray(im))
        measured = np.asarray(work_re) + 1j * np.asarray(work_im)
        assert np.allclose(measured, reference, rtol=1e-9, atol=1e-9)

    def test_ifft_inverts_fft(self):
        n = 64
        re, im = fft._signal(3, n)
        wre_f, wim_f = fft._twiddles(n, inverse=False)
        wre_i, wim_i = fft._twiddles(n, inverse=True)
        rev = [fft._bit_reverse(i, 6) for i in range(n)]
        work_re, work_im = list(re), list(im)
        fft._transform(work_re, work_im, wre_f, wim_f, rev, False, 1.0 / n)
        fft._transform(work_re, work_im, wre_i, wim_i, rev, True, 1.0 / n)
        for original, roundtrip in zip(re, work_re):
            assert abs(original - roundtrip) < 1e-9


class TestMatmultMirror:
    def test_checksum_matches_numpy(self):
        import numpy as np

        n = matmult._dimension(0.05)
        a, b = matmult._matrices(7, n)
        product = np.asarray(a, dtype=object).reshape(n, n) @ \
            np.asarray(b, dtype=object).reshape(n, n)
        checksum = int(product.sum()) & ((1 << 64) - 1)
        assert checksum == matmult._mirror(0.05, 7)


class TestTarfindMirror:
    def test_archive_structure(self):
        archive, sizes = tarfind._build_archive(7, 8)
        offset = 0
        for index, size in enumerate(sizes):
            name = archive[offset:offset + 16]
            assert name.startswith(f"file{index:04d}".encode())
            octal = archive[offset + 124:offset + 135]
            assert int(octal, 8) == size
            offset += 512 + ((size + 511) // 512) * 512
        assert offset == len(archive)

    def test_checksum_data_against_direct_loop(self):
        data = bytes(range(256))
        acc = tarfind._checksum_data(data, 0)
        expected = 0
        mask = (1 << 64) - 1
        for byte in data:
            if byte & 1:
                if byte & 2:
                    expected = (expected + (byte << 1)) & mask
                else:
                    expected = (expected + byte) & mask
            else:
                expected ^= byte
        assert acc == expected
