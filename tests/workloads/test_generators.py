"""Functional correctness of the eleven workload generators.

Every workload embeds a self-check computed by a bit-exact Python mirror;
exit code 0 means the architectural results match the mirror.  These tests
run miniature scales to keep the suite fast; the benchmark harness runs
the Table II scale.
"""

import pytest

from repro.sim.executor import Executor
from repro.workloads import build_program, get_workload, workload_names

SMALL = 0.03


@pytest.mark.parametrize("name", workload_names())
def test_self_check_passes(name):
    program = build_program(name, scale=SMALL)
    executor = Executor(program)
    executor.run_to_completion()
    assert executor.state.exit_code == 0, \
        f"{name} self-check failed (exit {executor.state.exit_code})"


@pytest.mark.parametrize("name", workload_names())
def test_deterministic_across_builds(name):
    from repro.workloads.suite import get_workload as gw

    spec = gw(name)
    assert spec.builder(SMALL, 7) == spec.builder(SMALL, 7)


@pytest.mark.parametrize("name", workload_names())
def test_different_seed_changes_program(name):
    spec = get_workload(name)
    assert spec.builder(SMALL, 1) != spec.builder(SMALL, 2)


@pytest.mark.parametrize("name", workload_names())
def test_scale_monotonicity(name):
    """A larger scale must execute at least as many instructions."""
    small = Executor(build_program(name, scale=SMALL))
    small.run_to_completion()
    larger = Executor(build_program(name, scale=4 * SMALL))
    larger.run_to_completion()
    assert larger.state.retired > small.state.retired


@pytest.mark.parametrize("name", ["fft", "ifft", "qsort"])
def test_fp_benchmarks_use_fp_instructions(name):
    program = build_program(name, scale=SMALL)
    fp_ops = [i for i in program.instructions
              if i.opclass.is_floating_point or i.mnemonic in ("fld", "fsd")]
    assert fp_ops, f"{name} must exercise the FP pipeline"


@pytest.mark.parametrize(
    "name", ["basicmath", "stringsearch", "bitcount", "dijkstra",
             "patricia", "matmult", "sha", "tarfind"])
def test_integer_benchmarks_avoid_fp(name):
    """Only fft/ifft/qsort touch FP registers (paper §IV-B)."""
    program = build_program(name, scale=SMALL)
    fp_ops = [i for i in program.instructions
              if i.opclass.is_floating_point or i.mnemonic in ("fld", "fsd")]
    assert fp_ops == [], f"{name} must not use FP registers"


@pytest.mark.slow
@pytest.mark.parametrize("name", workload_names())
def test_full_scale_instruction_counts_match_table_ii(name):
    """At scale 1.0 dynamic counts track Table II / 1000 within 25%."""
    spec = get_workload(name)
    executor = Executor(build_program(name, scale=1.0))
    executor.run_to_completion()
    assert executor.state.exit_code == 0
    target = spec.target_instructions(1.0)
    assert abs(executor.state.retired - target) / target < 0.25


def test_sha_has_three_code_phases():
    """sha's three phases appear as distinct text regions (Table II: 3 SPs)."""
    source = get_workload("sha").builder(SMALL, 7)
    for label in ("sched_loop", "block_a", "block_b"):
        assert label in source


def test_bitcount_has_three_code_phases():
    source = get_workload("bitcount").builder(SMALL, 7)
    for label in ("kern_loop", "swar_loop", "table_loop"):
        assert label in source
