"""Property tests over the workload generators: any seed, several scales."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.executor import Executor
from repro.workloads.suite import get_workload, workload_names

#: the cheapest-to-run subset for the per-seed property sweep
FAST_WORKLOADS = ("qsort", "sha", "patricia", "stringsearch")


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=1, max_value=10_000),
       st.sampled_from(FAST_WORKLOADS))
def test_any_seed_self_checks(seed, name):
    """The mirror-computed expected value matches for arbitrary seeds."""
    from repro.isa.assembler import assemble

    spec = get_workload(name)
    program = assemble(spec.builder(0.03, seed), name=name)
    executor = Executor(program)
    executor.run_to_completion()
    assert executor.state.exit_code == 0


@pytest.mark.parametrize("scale", [0.02, 0.06, 0.2])
@pytest.mark.parametrize("name", ["qsort", "sha", "dijkstra"])
def test_multiple_scales_self_check(scale, name):
    from repro.workloads.suite import build_program

    executor = Executor(build_program(name, scale=scale))
    executor.run_to_completion()
    assert executor.state.exit_code == 0


@pytest.mark.parametrize("name", workload_names())
def test_instruction_counts_monotone_in_scale(name):
    """More scale never means fewer instructions (three-point check)."""
    from repro.workloads.suite import build_program

    counts = []
    for scale in (0.03, 0.1, 0.3):
        executor = Executor(build_program(name, scale=scale))
        executor.run_to_completion()
        counts.append(executor.state.retired)
    # Quantized sizing (fft round counts, matmult dimensions) can make
    # neighbouring scales tie, but never shrink.
    assert counts[0] <= counts[1] <= counts[2]
    assert counts[0] < counts[2]


@pytest.mark.parametrize("name", workload_names())
def test_programs_touch_bounded_memory(name):
    """Workloads stay within a few MiB of sparse memory (sane images)."""
    from repro.workloads.suite import build_program

    executor = Executor(build_program(name, scale=0.05))
    executor.run_to_completion()
    pages = executor.state.memory.touched_page_count()
    assert pages < 1024  # < 4 MiB touched
