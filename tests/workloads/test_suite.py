"""Tests for the workload registry and Table II metadata."""

import pytest

from repro.errors import ReproError
from repro.workloads import (
    build_program,
    get_workload,
    REPRODUCTION_SCALE,
    workload_names,
)

TABLE_II = {
    # name: (suite, interval, paper simpoints, paper instructions)
    "basicmath": ("MiBench", 1000, 2, 364_758_047),
    "stringsearch": ("MiBench", 1000, 2, 136_360_766),
    "fft": ("MiBench", 1000, 1, 266_217_322),
    "ifft": ("MiBench", 1000, 1, 266_643_273),
    "bitcount": ("MiBench", 1000, 3, 495_204_057),
    "qsort": ("MiBench", 1000, 1, 22_868_929),
    "dijkstra": ("MiBench", 1000, 1, 227_879_044),
    "patricia": ("MiBench", 2000, 2, 154_589_629),
    "matmult": ("Embench", 1000, 1, 516_885_284),
    "sha": ("MiBench", 1000, 3, 111_029_722),
    "tarfind": ("Embench", 2000, 1, 1_220_430_895),
}


def test_all_eleven_workloads_registered():
    assert set(workload_names()) == set(TABLE_II)


@pytest.mark.parametrize("name", sorted(TABLE_II))
def test_table_ii_metadata(name):
    suite, interval, simpoints, instructions = TABLE_II[name]
    spec = get_workload(name)
    assert spec.suite == suite
    assert spec.interval_size == interval
    assert spec.paper_simpoints == simpoints
    assert spec.paper_instructions == instructions


def test_reproduction_scale_is_documented_1_to_1000():
    assert REPRODUCTION_SCALE == 1000


def test_target_instructions_scales_linearly():
    spec = get_workload("sha")
    assert spec.target_instructions(1.0) == spec.paper_instructions // 1000
    assert spec.target_instructions(0.5) == pytest.approx(
        spec.paper_instructions / 2000, rel=0.01)


def test_interval_for_scale_has_floor():
    spec = get_workload("sha")
    assert spec.interval_for_scale(1.0) == 1000
    assert spec.interval_for_scale(0.001) == 200


def test_unknown_workload_raises():
    with pytest.raises(ReproError):
        get_workload("doom")


def test_build_program_caches():
    a = build_program("qsort", scale=0.02)
    b = build_program("qsort", scale=0.02)
    assert a is b
    c = build_program("qsort", scale=0.03)
    assert c is not a


def test_different_seeds_differ():
    a = build_program("qsort", scale=0.02, seed=1)
    b = build_program("qsort", scale=0.02, seed=2)
    assert a.data != b.data
