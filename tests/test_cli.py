"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "MegaBOOM" in out
    assert "Decode width" in out


def test_table2_small_scale(capsys, tmp_path):
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path), "table2")
    assert code == 0
    assert "sha" in out
    assert "tarfind" in out


def test_run_experiment(capsys, tmp_path):
    code, out = run_cli(capsys, "--scale", "0.08",
                        "--cache-dir", str(tmp_path),
                        "run", "qsort", "MediumBOOM")
    assert code == 0
    assert "IPC:" in out
    assert "Tile power:" in out


def test_fig10(capsys, tmp_path):
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path), "fig", "10")
    assert code == 0
    assert "Fig. 10" in out
    assert "sha" in out


def test_fig9(capsys, tmp_path):
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path), "fig", "9")
    assert code == 0
    assert "MediumBOOM" in out


def test_speedup(capsys, tmp_path):
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path), "speedup")
    assert code == 0
    assert "TOTAL" in out


def test_sweep_summary(capsys, tmp_path):
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path), "sweep")
    assert code == 0
    assert "perf-per-watt" in out


def test_sweep_verbose_prints_manifest(capsys, tmp_path):
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path), "sweep", "--verbose")
    assert code == 0
    assert "perf-per-watt" in out
    assert "bbv_profile" in out
    assert "cache hit rate" in out


def test_cache_stats_and_clear(capsys, tmp_path):
    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "cache", "stats")
    assert code == 0
    assert "empty" in out

    run_cli(capsys, "--scale", "0.05", "--cache-dir", str(tmp_path),
            "run", "qsort", "MediumBOOM")
    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "cache", "stats")
    assert code == 0
    assert "experiment_result" in out

    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "cache", "clear")
    assert code == 0
    assert "removed" in out
    assert not (tmp_path / "experiment_result").exists()


def test_cache_invalidate_cascades_downstream(capsys, tmp_path):
    run_cli(capsys, "--scale", "0.05", "--cache-dir", str(tmp_path),
            "run", "qsort", "MediumBOOM")
    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "cache", "invalidate", "--stage", "detailed_sim")
    assert code == 0
    assert not (tmp_path / "detailed_sim").exists()
    assert not (tmp_path / "experiment_result").exists()
    assert (tmp_path / "bbv_profile").exists()


def test_cache_invalidate_rejects_unknown_stage(capsys, tmp_path):
    code = main(["--cache-dir", str(tmp_path),
                 "cache", "invalidate", "--stage", "nonsense"])
    assert code == 2
    code = main(["--cache-dir", str(tmp_path), "cache", "invalidate"])
    assert code == 2


def test_checkpoints_command(capsys, tmp_path):
    target = tmp_path / "store"
    code, out = run_cli(capsys, "--scale", "0.05", "checkpoints", "qsort",
                        str(target))
    assert code == 0
    assert "checkpoints" in out
    assert (target / "manifest.json").exists()


def test_pipeline_command(capsys):
    code, out = run_cli(capsys, "--scale", "0.05", "pipeline", "sha",
                        "MegaBOOM", "--uops", "8", "--skip", "500")
    assert code == 0
    assert "cycles" in out
    assert "avg_queue_wait" in out


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "doom", "MegaBOOM"])


def test_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_sweep_degraded_exit_code_and_fault_table(capsys, tmp_path):
    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "sweep", "--faults", "stage.detailed_sim:fail:n=1"])
    captured = capsys.readouterr()
    assert code == 3
    assert "failures" in captured.out          # fault table printed
    assert "sweep degraded:" in captured.err
    assert "1 failed" in captured.err


def test_sweep_resume_carries_failure_and_reports(capsys, tmp_path):
    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "sweep", "--faults", "stage.detailed_sim:fail:n=1"])
    capsys.readouterr()
    assert code == 3

    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "sweep", "--resume"])
    captured = capsys.readouterr()
    assert code == 3  # the carried permanent failure still degrades
    assert "resumed:" in captured.out
    assert "carried from interrupted run" in captured.out

    # a plain re-run (no --resume) re-attempts the failed experiment and,
    # with injection gone, completes clean
    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path), "sweep"])
    captured = capsys.readouterr()
    assert code == 0
    assert "perf-per-watt" in captured.out


def test_dse_generate_sweep_and_report(capsys, tmp_path):
    import json

    space_file = tmp_path / "space.json"
    code, out = run_cli(capsys, "dse", "generate", "--points", "6",
                        "--base", "MediumBOOM",
                        "--space", str(space_file))
    assert code == 0
    document = json.loads(space_file.read_text())
    assert len(document["points"]) >= 6

    frontier_file = tmp_path / "frontier.json"
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path / "cache"),
                        "dse", "sweep", "--space", str(space_file),
                        "--workloads", "sha",
                        "-o", str(frontier_file))
    assert code == 0
    assert "Pareto frontier" in out
    assert "points/s" in out
    frontier = json.loads(frontier_file.read_text())
    assert frontier["frontier"]
    assert not frontier["skipped"]

    # report reuses the warm cache and prints the sensitivity table
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path / "cache"),
                        "dse", "report", "--space", str(space_file),
                        "--workloads", "sha")
    assert code == 0
    assert "Sensitivity around MediumBOOM" in out


def test_dse_missing_space_document_errors(capsys, tmp_path):
    code = main(["--cache-dir", str(tmp_path), "dse", "sweep",
                 "--space", str(tmp_path / "absent.json")])
    captured = capsys.readouterr()
    assert code == 2
    assert "not found" in captured.err


def test_sweep_retries_transient_faults(capsys, tmp_path):
    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "--jobs", "2", "sweep", "--retries", "2",
                 "--faults", "worker.experiment:io:n=1", "--verbose"])
    captured = capsys.readouterr()
    assert code == 0  # transient fault retried to success
    assert "retries" in captured.out


def test_recover_on_clean_cache(capsys, tmp_path):
    code, out = run_cli(capsys, "--cache-dir", str(tmp_path), "recover")
    assert code == 0
    assert "clean" in out


def test_recover_repairs_and_verifies(capsys, tmp_path):
    import json
    import multiprocessing

    from repro.pipeline.locking import boot_id

    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join()
    artifact = tmp_path / "power_report" / "torn.json"
    artifact.parent.mkdir(parents=True)
    artifact.write_text("{half a write")
    journal_dir = tmp_path / "journal"
    journal_dir.mkdir()
    (journal_dir / f"intents-{boot_id()[:8]}-{proc.pid}.jsonl").write_text(
        json.dumps({"op": "claim", "stage": "power_report",
                    "fingerprint": "torn",
                    "path": str(artifact)}) + "\n")

    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "recover", "--verify")
    assert code == 0
    assert "quarantined 1" in out
    assert "OK" in out
    assert not artifact.exists()


def test_recover_check_only_audits_without_repair(capsys, tmp_path):
    obs = tmp_path / "obs"
    obs.mkdir()
    (obs / "latest").write_text("gone\n")
    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "recover", "--check")
    assert code == 1  # problems found
    assert "PROBLEM" in out
    assert (obs / "latest").exists()  # audit-only: nothing repaired


def test_sweep_deadline_degrades_with_exit_3(capsys, tmp_path):
    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "sweep", "--deadline", "0"])
    captured = capsys.readouterr()
    assert code == 3
    assert "degraded" in captured.err


def test_sweep_disk_floor_degrades_with_exit_3(capsys, tmp_path):
    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "sweep", "--min-free-mb", "1e12"])
    captured = capsys.readouterr()
    assert code == 3
    assert "degraded" in captured.err


# ----------------------------------------------------------------------
# observability: flight recording, accuracy envelopes, exports
# ----------------------------------------------------------------------

def test_flight_sweep_records_and_renders(capsys, tmp_path):
    import os

    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "--flight", "sweep"])
    os.environ.pop("REPRO_FLIGHT", None)  # --flight exports it for workers
    capsys.readouterr()
    assert code == 0
    assert (tmp_path / "obs").is_dir()

    code, out = run_cli(capsys, "--cache-dir", str(tmp_path), "flight")
    assert code == 0
    assert "checkpoint" in out
    assert "ipc" in out

    chrome = tmp_path / "flight_chrome.json"
    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "flight", "-f", "chrome", "-o", str(chrome))
    assert code == 0
    import json as _json
    doc = _json.loads(chrome.read_text())
    assert any(event["ph"] == "C" for event in doc["traceEvents"])


def test_flight_without_run_errors(capsys, tmp_path):
    code = main(["--cache-dir", str(tmp_path), "flight"])
    captured = capsys.readouterr()
    assert code == 2
    assert "no obs run" in captured.err


def test_trace_prom_export(capsys, tmp_path):
    code = main(["--scale", "0.05", "--cache-dir", str(tmp_path),
                 "--trace", "sweep"])
    capsys.readouterr()
    assert code == 0
    prom = tmp_path / "metrics.prom"
    code, out = run_cli(capsys, "--cache-dir", str(tmp_path),
                        "trace", "--prom", str(prom))
    assert code == 0
    text = prom.read_text()
    assert "# TYPE " in text
    assert "repro_" in text


def test_accuracy_update_then_evaluate(capsys, tmp_path):
    envelopes = tmp_path / "envelopes"
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path / "cache"),
                        "accuracy", "--update",
                        "--envelopes", str(envelopes),
                        "--workloads", "sha")
    assert code == 0
    assert (envelopes / "sha.json").exists()
    assert "review the diff" in out

    # the deterministic model re-evaluates to zero error against the
    # envelopes it just wrote — even from a cold cache
    code, out = run_cli(capsys, "--scale", "0.05",
                        "--cache-dir", str(tmp_path / "cache2"),
                        "accuracy", "--envelopes", str(envelopes))
    assert code == 0
    assert "verdict: PASS" in out
    assert "MAPE: ipc 0.000%" in out


def test_accuracy_without_envelopes_errors(capsys, tmp_path):
    code = main(["--cache-dir", str(tmp_path),
                 "accuracy", "--envelopes", str(tmp_path / "none")])
    captured = capsys.readouterr()
    assert code == 2
    assert "no accuracy envelopes" in captured.err


def test_bench_trend_via_cli(capsys, tmp_path):
    import json as _json

    for date, cycles in (("2026-01-01", 1e5), ("2026-02-02", 2e5)):
        (tmp_path / f"BENCH_{date}.json").write_text(_json.dumps({
            "date": date,
            "metrics": {"calibration.ops_per_s": 1e6,
                        "core.batched.cycles_per_s": cycles}}))
    code, out = run_cli(capsys, "bench", "--trend",
                        "--trend-dir", str(tmp_path))
    assert code == 0
    assert "core.batched.cycles_per_s" in out
    assert "2.00" in out


# ----------------------------------------------------------------------
# top-level failure handler: taxonomy-coded one-liners, distinct codes
# ----------------------------------------------------------------------

def test_unexpected_error_is_one_line_not_a_traceback(capsys, tmp_path):
    code = main(["--cache-dir", str(tmp_path),
                 "run", "sha", "NoSuchBOOM"])
    captured = capsys.readouterr()
    from repro.errors import EXIT_PERMANENT
    assert code == EXIT_PERMANENT
    assert "repro-cli: error[permanent/" in captured.err
    assert "Traceback" not in captured.err
    assert "--verbose" in captured.err  # points at the escape hatch


def test_verbose_restores_the_traceback(capsys, tmp_path):
    code = main(["--verbose", "--cache-dir", str(tmp_path),
                 "run", "sha", "NoSuchBOOM"])
    captured = capsys.readouterr()
    from repro.errors import EXIT_PERMANENT
    assert code == EXIT_PERMANENT
    assert "Traceback" in captured.err


def test_transient_failure_gets_its_own_exit_code(capsys):
    from repro.cli import _report_failure
    from repro.errors import EXIT_TRANSIENT, TransientError

    code = _report_failure(TransientError("flaky io"), verbose=False)
    captured = capsys.readouterr()
    assert code == EXIT_TRANSIENT
    assert "error[transient/TransientError]: flaky io" in captured.err


def test_interrupt_report_names_signal_and_resume(capsys):
    from repro.cli import _report_failure
    from repro.errors import EXIT_INTERRUPTED, SweepInterrupted

    code = _report_failure(SweepInterrupted("SIGTERM"), verbose=False)
    captured = capsys.readouterr()
    assert code == EXIT_INTERRUPTED
    assert "interrupted by SIGTERM" in captured.err
    assert "--resume" in captured.err


def test_keyboard_interrupt_maps_to_interrupted(capsys):
    from repro.cli import _report_failure
    from repro.errors import EXIT_INTERRUPTED

    assert _report_failure(KeyboardInterrupt(), verbose=False) == \
        EXIT_INTERRUPTED
    capsys.readouterr()


def test_usage_errors_still_exit_two():
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "--no-such-flag"])
    assert excinfo.value.code == 2


def test_sweep_rejects_unknown_workload(capsys, tmp_path):
    code = main(["--cache-dir", str(tmp_path),
                 "sweep", "--workloads", "sha", "nonesuch"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown workload(s): nonesuch" in captured.err
