"""Unit and property tests for sparse paged memory."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryFault
from repro.sim.memory import Memory, PAGE_SIZE


def test_uninitialized_memory_reads_zero():
    memory = Memory()
    assert memory.load(0x1234, 8) == 0
    assert memory.read_bytes(0x999999, 16) == bytes(16)


def test_scalar_roundtrip_all_widths():
    memory = Memory()
    for width in (1, 2, 4, 8):
        value = (0x1122334455667788 >> (8 * (8 - width)))
        memory.store(0x2000, value, width)
        assert memory.load(0x2000, width) == value & ((1 << (8 * width)) - 1)


def test_little_endian_layout():
    memory = Memory()
    memory.store(0x100, 0x0A0B0C0D, 4)
    assert memory.load(0x100, 1) == 0x0D
    assert memory.load(0x103, 1) == 0x0A


def test_cross_page_access():
    memory = Memory()
    address = PAGE_SIZE - 3
    memory.store(address, 0x1122334455667788, 8)
    assert memory.load(address, 8) == 0x1122334455667788
    assert memory.load(PAGE_SIZE, 1) == 0x55


def test_bulk_write_read_across_pages():
    memory = Memory()
    data = bytes(range(256)) * 40  # > 2 pages
    memory.write_bytes(PAGE_SIZE - 100, data)
    assert memory.read_bytes(PAGE_SIZE - 100, len(data)) == data


def test_store_masks_value():
    memory = Memory()
    memory.store(0, 0x1FF, 1)
    assert memory.load(0, 1) == 0xFF


def test_negative_address_faults():
    memory = Memory()
    with pytest.raises(MemoryFault):
        memory.write_bytes(-4, b"abcd")
    with pytest.raises(MemoryFault):
        memory.read_bytes(-4, 4)


def test_snapshot_restore_roundtrip():
    memory = Memory()
    memory.store(0x5000, 0xAB, 1)
    memory.store(3 * PAGE_SIZE + 7, 0xCDEF, 2)
    snapshot = memory.snapshot_pages()
    memory.store(0x5000, 0x00, 1)
    memory.restore_pages(snapshot)
    assert memory.load(0x5000, 1) == 0xAB
    assert memory.load(3 * PAGE_SIZE + 7, 2) == 0xCDEF


def test_snapshot_is_immutable_copy():
    memory = Memory()
    memory.store(0, 1, 1)
    snapshot = memory.snapshot_pages()
    memory.store(0, 2, 1)
    restored = Memory()
    restored.restore_pages(snapshot)
    assert restored.load(0, 1) == 1


def test_clone_is_independent():
    memory = Memory()
    memory.store(64, 42, 1)
    clone = memory.clone()
    clone.store(64, 7, 1)
    assert memory.load(64, 1) == 42
    assert clone.load(64, 1) == 7


def test_touched_page_count():
    memory = Memory()
    assert memory.touched_page_count() == 0
    memory.store(0, 1, 1)
    memory.store(PAGE_SIZE * 5, 1, 1)
    assert memory.touched_page_count() == 2


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 20),
                          st.integers(min_value=0, max_value=(1 << 64) - 1),
                          st.sampled_from([1, 2, 4, 8])),
                max_size=40))
def test_store_load_property(operations):
    """The last store to an address window wins; reads observe it exactly."""
    memory = Memory()
    shadow = {}
    for address, value, width in operations:
        memory.store(address, value, width)
        for offset in range(width):
            shadow[address + offset] = (value >> (8 * offset)) & 0xFF
    for address, expected in shadow.items():
        assert memory.load(address, 1) == expected


@given(st.integers(min_value=0, max_value=1 << 30),
       st.binary(min_size=0, max_size=3 * PAGE_SIZE))
def test_bulk_roundtrip_property(address, data):
    memory = Memory()
    memory.write_bytes(address, data)
    assert memory.read_bytes(address, len(data)) == data
