"""Unit tests for the bare-metal syscall layer."""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.sim.executor import Executor


def test_exit_sets_code_and_flag():
    executor = Executor(assemble("""
    _start:
        li a0, 7
        li a7, 93
        ecall
    """))
    executor.run_to_completion()
    assert executor.state.exited
    assert executor.state.exit_code == 7


def test_write_appends_to_output():
    executor = Executor(assemble("""
        .data
    msg: .asciz "hello"
        .text
    _start:
        li a0, 1
        la a1, msg
        li a2, 5
        li a7, 64
        ecall
        li a0, 0
        li a7, 93
        ecall
    """))
    executor.run_to_completion()
    assert executor.state.output == b"hello"


def test_print_int_renders_signed_decimal():
    executor = Executor(assemble("""
    _start:
        li a0, -42
        li a7, 1
        ecall
        li a0, 0
        li a7, 93
        ecall
    """))
    executor.run_to_completion()
    assert executor.state.output == b"-42\n"


def test_unknown_syscall_raises():
    executor = Executor(assemble("""
    _start:
        li a7, 999
        ecall
    """))
    with pytest.raises(SimulationError):
        executor.run()


def test_oversized_write_refused():
    executor = Executor(assemble("""
    _start:
        li a0, 1
        li a1, 0
        li a2, 0x200000
        li a7, 64
        ecall
    """))
    with pytest.raises(SimulationError):
        executor.run()
