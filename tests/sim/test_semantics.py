"""Semantic unit tests: arithmetic edge cases of the ISA subset."""

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.isa.instructions import Instruction, SPECS
from repro.sim.semantics import missing_semantics, SEMANTICS
from repro.sim.state import ArchState, MASK64

U64 = st.integers(min_value=0, max_value=MASK64)


def run_op(mnemonic, rs1=0, rs2=0, imm=0, rs3=0.0, fp1=0.0, fp2=0.0,
           fp3=0.0):
    """Execute one instruction on a fresh state and return rd's value."""
    state = ArchState()
    state.x[1] = rs1 & MASK64
    state.x[2] = rs2 & MASK64
    state.f[1] = fp1
    state.f[2] = fp2
    state.f[3] = fp3
    instr = Instruction(mnemonic, rd=3, rs1=1, rs2=2, rs3=3, imm=imm)
    if instr.spec.dst == "f":
        instr = Instruction(mnemonic, rd=4, rs1=1, rs2=2, rs3=3, imm=imm)
        SEMANTICS[mnemonic](state, instr)
        return state.f[4]
    SEMANTICS[mnemonic](state, instr)
    return state.x[3]


def test_every_mnemonic_has_semantics():
    assert missing_semantics() == []
    assert set(SEMANTICS) == set(SPECS)


def test_add_wraps_64_bits():
    assert run_op("add", MASK64, 1) == 0
    assert run_op("add", 1 << 63, 1 << 63) == 0


def test_sub_wraps():
    assert run_op("sub", 0, 1) == MASK64


def test_addw_sign_extends():
    assert run_op("addw", 0x7FFFFFFF, 1) == 0xFFFFFFFF80000000
    assert run_op("addw", 0xFFFFFFFF, 1) == 0


def test_shifts():
    assert run_op("sll", 1, 63) == 1 << 63
    assert run_op("sll", 1, 64) == 1  # shamt masked to 6 bits
    assert run_op("srl", 1 << 63, 63) == 1
    assert run_op("sra", 1 << 63, 63) == MASK64
    assert run_op("sllw", 1, 31) == 0xFFFFFFFF80000000
    assert run_op("srlw", 0xFFFFFFFF00000000 | 0x80000000, 31) == 1
    assert run_op("sraw", 0x80000000, 31) == MASK64


def test_compare_ops():
    assert run_op("slt", MASK64, 0) == 1  # -1 < 0 signed
    assert run_op("sltu", MASK64, 0) == 0
    assert run_op("slti", 5, imm=6) == 1
    assert run_op("sltiu", 5, imm=-1) == 1  # imm sign-extends then unsigned


def test_mul_family():
    assert run_op("mul", 7, 6) == 42
    assert run_op("mulh", MASK64, MASK64) == 0  # (-1)*(-1)=1, high=0
    assert run_op("mulhu", MASK64, MASK64) == MASK64 - 1
    assert run_op("mulw", 0x100000000 | 3, 5) == 15


def test_div_family_edge_cases():
    minus_one = MASK64
    int_min = 1 << 63
    assert run_op("div", 7, 2) == 3
    assert run_op("div", -7 & MASK64, 2) == -3 & MASK64  # truncate to zero
    assert run_op("div", 7, 0) == minus_one  # divide by zero
    assert run_op("div", int_min, minus_one) == int_min  # overflow wraps
    assert run_op("rem", -7 & MASK64, 2) == -1 & MASK64
    assert run_op("rem", 7, 0) == 7
    assert run_op("divu", 7, 0) == MASK64
    assert run_op("remu", 7, 0) == 7
    assert run_op("divw", -8 & MASK64, 2) == -4 & MASK64
    assert run_op("divuw", 8, 0) == MASK64
    assert run_op("remuw", 9, 0) == 9


def test_immediates():
    assert run_op("addi", 1, imm=-1) == 0
    assert run_op("andi", 0xFF, imm=0x0F) == 0x0F
    assert run_op("xori", 0, imm=-1) == MASK64  # pseudo "not"
    assert run_op("srai", 1 << 63, imm=60) == 0xFFFFFFFFFFFFFFF8
    assert run_op("sraiw", 0x80000000, imm=4) == 0xFFFFFFFFF8000000


def test_lui_sign_extension():
    state = ArchState()
    SEMANTICS["lui"](state, Instruction("lui", rd=3, imm=0x80000))
    assert state.x[3] == 0xFFFFFFFF80000000


def test_auipc_uses_instruction_pc():
    state = ArchState()
    instr = Instruction("auipc", rd=3, imm=1, pc=0x1000)
    SEMANTICS["auipc"](state, instr)
    assert state.x[3] == 0x2000


def test_writes_to_x0_discarded():
    state = ArchState()
    state.x[1] = 5
    SEMANTICS["add"](state, Instruction("add", rd=0, rs1=1, rs2=1))
    assert state.x[0] == 0


def test_branches_return_target_only_when_taken():
    state = ArchState()
    state.x[1] = 4
    state.x[2] = 4
    beq = Instruction("beq", rs1=1, rs2=2, imm=16, pc=0x100)
    assert SEMANTICS["beq"](state, beq) == 0x110
    state.x[2] = 5
    assert SEMANTICS["beq"](state, beq) is None
    assert SEMANTICS["bne"](state, beq_like("bne")) is not None


def beq_like(mnemonic):
    return Instruction(mnemonic, rs1=1, rs2=2, imm=16, pc=0x100)


def test_signed_vs_unsigned_branches():
    state = ArchState()
    state.x[1] = MASK64  # -1 signed, huge unsigned
    state.x[2] = 0
    blt = Instruction("blt", rs1=1, rs2=2, imm=8, pc=0)
    bltu = Instruction("bltu", rs1=1, rs2=2, imm=8, pc=0)
    assert SEMANTICS["blt"](state, blt) == 8
    assert SEMANTICS["bltu"](state, bltu) is None


def test_jal_links_and_jumps():
    state = ArchState()
    instr = Instruction("jal", rd=1, imm=0x20, pc=0x1000)
    assert SEMANTICS["jal"](state, instr) == 0x1020
    assert state.x[1] == 0x1004


def test_jalr_clears_low_bit():
    state = ArchState()
    state.x[5] = 0x2001
    instr = Instruction("jalr", rd=1, rs1=5, imm=0, pc=0x1000)
    assert SEMANTICS["jalr"](state, instr) == 0x2000


def test_jalr_rd_equals_rs1():
    """The link write must not corrupt the target computation."""
    state = ArchState()
    state.x[5] = 0x4000
    instr = Instruction("jalr", rd=5, rs1=5, imm=8, pc=0x1000)
    assert SEMANTICS["jalr"](state, instr) == 0x4008
    assert state.x[5] == 0x1004


def test_fp_basic_arithmetic():
    assert run_op("fadd.d", fp1=1.5, fp2=2.25) == 3.75
    assert run_op("fsub.d", fp1=1.0, fp2=0.5) == 0.5
    assert run_op("fmul.d", fp1=3.0, fp2=4.0) == 12.0
    assert run_op("fdiv.d", fp1=1.0, fp2=4.0) == 0.25
    assert run_op("fsqrt.d", fp1=9.0) == 3.0


def test_fp_division_special_cases():
    assert run_op("fdiv.d", fp1=1.0, fp2=0.0) == math.inf
    assert run_op("fdiv.d", fp1=-1.0, fp2=0.0) == -math.inf
    assert math.isnan(run_op("fdiv.d", fp1=0.0, fp2=0.0))
    assert math.isnan(run_op("fsqrt.d", fp1=-1.0))


def test_fp_sign_injection():
    assert run_op("fsgnj.d", fp1=-3.0, fp2=1.0) == 3.0
    assert run_op("fsgnjn.d", fp1=3.0, fp2=1.0) == -3.0
    assert run_op("fsgnjx.d", fp1=-3.0, fp2=-1.0) == 3.0


def test_fp_min_max_with_nan():
    assert run_op("fmin.d", fp1=math.nan, fp2=2.0) == 2.0
    assert run_op("fmax.d", fp1=2.0, fp2=math.nan) == 2.0
    assert run_op("fmin.d", fp1=1.0, fp2=2.0) == 1.0


def test_fp_compares_write_int_register():
    assert run_op("feq.d", fp1=2.0, fp2=2.0) == 1
    assert run_op("flt.d", fp1=1.0, fp2=2.0) == 1
    assert run_op("fle.d", fp1=3.0, fp2=2.0) == 0
    assert run_op("feq.d", fp1=math.nan, fp2=math.nan) == 0


def test_fp_conversions():
    assert run_op("fcvt.d.l", rs1=-5 & MASK64) == -5.0
    assert run_op("fcvt.d.w", rs1=0xFFFFFFFF) == -1.0
    assert run_op("fcvt.l.d", fp1=-3.7) == -3 & MASK64  # truncate to zero
    assert run_op("fcvt.w.d", fp1=2.9) == 2
    # saturation
    assert run_op("fcvt.w.d", fp1=1e20) == (1 << 31) - 1
    assert run_op("fcvt.l.d", fp1=math.nan) == (1 << 63) - 1


def test_fp_bit_moves():
    bits = int.from_bytes(struct.pack("<d", -2.5), "little")
    assert run_op("fmv.d.x", rs1=bits) == -2.5
    assert run_op("fmv.x.d", fp1=-2.5) == bits


def test_fma_family():
    assert run_op("fmadd.d", fp1=2.0, fp2=3.0, fp3=1.0) == 7.0
    assert run_op("fmsub.d", fp1=2.0, fp2=3.0, fp3=1.0) == 5.0
    assert run_op("fnmadd.d", fp1=2.0, fp2=3.0, fp3=1.0) == -7.0
    assert run_op("fnmsub.d", fp1=2.0, fp2=3.0, fp3=1.0) == -5.0


@given(U64, U64)
def test_add_sub_inverse_property(a, b):
    total = run_op("add", a, b)
    state = ArchState()
    state.x[1] = total
    state.x[2] = b
    SEMANTICS["sub"](state, Instruction("sub", rd=3, rs1=1, rs2=2))
    assert state.x[3] == a


@given(U64, st.integers(min_value=1, max_value=MASK64))
def test_divu_remu_identity(dividend, divisor):
    quotient = run_op("divu", dividend, divisor)
    remainder = run_op("remu", dividend, divisor)
    assert (quotient * divisor + remainder) & MASK64 == dividend
    assert remainder < divisor


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
       st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_div_rem_identity(a, b):
    if b == 0:
        return
    quotient = run_op("div", a & MASK64, b & MASK64)
    remainder = run_op("rem", a & MASK64, b & MASK64)
    assert (quotient * b + remainder) & MASK64 == a & MASK64
