"""Unit tests for retire-stream tracing."""

import pytest

from repro.isa.instructions import Instruction
from repro.sim.tracing import diff_traces, RetireTrace


def make_trace(mnemonics, capacity=16):
    trace = RetireTrace(capacity=capacity)
    for index, mnemonic in enumerate(mnemonics):
        trace.record(Instruction(mnemonic, pc=0x1000 + 4 * index))
    return trace


def test_records_in_order():
    trace = make_trace(["addi", "add", "beq"])
    entries = trace.entries()
    assert [e.mnemonic for e in entries] == ["addi", "add", "beq"]
    assert [e.sequence for e in entries] == [0, 1, 2]
    assert trace.last().mnemonic == "beq"


def test_capacity_bounds_window():
    trace = make_trace(["addi"] * 10, capacity=4)
    assert len(trace.entries()) == 4
    assert trace.total_recorded == 10
    assert trace.entries()[0].sequence == 6


def test_empty_trace():
    trace = RetireTrace()
    assert trace.entries() == []
    assert trace.last() is None


def test_invalid_capacity():
    with pytest.raises(ValueError):
        RetireTrace(capacity=0)


def test_diff_traces_finds_first_divergence():
    a = make_trace(["addi", "add", "beq"]).entries()
    b = make_trace(["addi", "sub", "beq"]).entries()
    assert diff_traces(a, b) == 1


def test_diff_traces_equal():
    a = make_trace(["addi", "add"]).entries()
    b = make_trace(["addi", "add"]).entries()
    assert diff_traces(a, b) is None


def test_diff_traces_length_mismatch():
    a = make_trace(["addi", "add", "beq"]).entries()
    b = make_trace(["addi", "add"]).entries()
    assert diff_traces(a, b) == 2


def test_format_contains_pcs():
    trace = make_trace(["addi"])
    assert "0x00001000" in trace.format()
