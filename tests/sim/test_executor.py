"""Integration tests for the functional executor."""

import pytest

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE, STACK_TOP
from repro.sim.executor import Executor

EXIT = """
    li a7, 93
    ecall
"""


def run(source):
    executor = Executor(assemble(source))
    executor.run_to_completion()
    return executor.state


def test_simple_loop_sum():
    state = run(f"""
    _start:
        li t0, 0
        li t1, 100
    loop:
        add t0, t0, t1
        addi t1, t1, -1
        bnez t1, loop
        mv a0, t0
        {EXIT}
    """)
    assert state.x[10] & 0xFF == 5050 & 0xFF
    assert state.exited


def test_exit_code():
    state = run(f"_start: li a0, 42\n{EXIT}")
    assert state.exit_code == 42


def test_stack_pointer_initialized():
    state = run(f"""
    _start:
        mv a1, sp
        {EXIT}
    """)
    assert state.x[11] == STACK_TOP


def test_function_call_and_return():
    state = run(f"""
    _start:
        li a0, 5
        call square
        mv s0, a0
        li a0, 0
        {EXIT}
    square:
        mul a0, a0, a0
        ret
    """)
    assert state.x[8] == 25


def test_recursive_function():
    state = run(f"""
    _start:
        li a0, 10
        call fib
        mv s0, a0
        li a0, 0
        {EXIT}
    fib:
        li t0, 2
        blt a0, t0, base
        addi sp, sp, -24
        sd ra, 0(sp)
        sd s1, 8(sp)
        mv s1, a0
        addi a0, a0, -1
        call fib
        sd a0, 16(sp)
        addi a0, s1, -2
        call fib
        ld t1, 16(sp)
        add a0, a0, t1
        ld ra, 0(sp)
        ld s1, 8(sp)
        addi sp, sp, 24
        ret
    base:
        ret
    """)
    assert state.x[8] == 55  # fib(10)


def test_memory_store_load_roundtrip():
    state = run(f"""
        .data
    buf: .space 64
        .text
    _start:
        la t0, buf
        li t1, -123
        sd t1, 8(t0)
        ld a0, 8(t0)
        lw a1, 8(t0)
        lb a2, 8(t0)
        lbu a3, 8(t0)
        {EXIT}
    """)
    mask = (1 << 64) - 1
    assert state.x[10] == -123 & mask
    assert state.x[11] == -123 & mask  # lw sign-extends
    assert state.x[12] == -123 & mask  # lb sign-extends (0x85 -> -123)
    assert state.x[13] == 0x85


def test_max_instructions_stops_exactly():
    executor = Executor(assemble("""
    _start:
        li t0, 0
    loop:
        addi t0, t0, 1
        j loop
    """))
    retired = executor.run(max_instructions=1000)
    assert retired == 1000
    assert executor.state.retired == 1000
    assert not executor.state.exited
    # continue running: state is resumable
    retired = executor.run(max_instructions=500)
    assert retired == 500
    assert executor.state.retired == 1500


def test_run_after_exit_raises():
    executor = Executor(assemble(f"_start: li a0, 0\n{EXIT}"))
    executor.run_to_completion()
    with pytest.raises(SimulationError):
        executor.run()


def test_runaway_pc_raises():
    executor = Executor(assemble("_start: jr zero"))
    with pytest.raises(SimulationError):
        executor.run(max_instructions=10)


def test_run_to_completion_limit():
    executor = Executor(assemble("_start: j _start"))
    with pytest.raises(SimulationError):
        executor.run_to_completion(limit=100)


def test_control_hook_sees_dynamic_blocks():
    blocks = []
    executor = Executor(assemble(f"""
    _start:
        li t0, 3
    loop:
        addi t0, t0, -1
        bnez t0, loop
        li a0, 0
        {EXIT}
    """))
    executor.run(control_hook=lambda start, end: blocks.append((start, end)))
    # loop body executes 3 times: blocks ending at the bnez
    loop_blocks = [b for b in blocks if b[1] == 0x1008]
    assert len(loop_blocks) == 3
    # first block spans _start..bnez, later ones span loop..bnez
    assert loop_blocks[0][0] == 0x1000
    assert loop_blocks[1][0] == 0x1004
    # trailing block (li a0 / li a7 / ecall) is closed on exit
    assert blocks[-1][0] == 0x100C


def test_control_hook_block_instruction_counts():
    """Sum of block lengths equals retired instructions."""
    total = []
    executor = Executor(assemble(f"""
    _start:
        li t0, 50
    loop:
        addi t0, t0, -1
        addi t1, t1, 2
        bnez t0, loop
        {EXIT}
    """))
    executor.run(control_hook=lambda s, e: total.append((e - s) // 4 + 1))
    assert sum(total) == executor.state.retired


def test_profiled_and_plain_execution_agree():
    source = f"""
    _start:
        li t0, 0
        li t1, 20
    loop:
        add t0, t0, t1
        addi t1, t1, -1
        bnez t1, loop
        mv a0, t0
        {EXIT}
    """
    plain = Executor(assemble(source))
    plain.run_to_completion()
    profiled = Executor(assemble(source))
    profiled.run(control_hook=lambda s, e: None)
    assert plain.state.x == profiled.state.x
    assert plain.state.retired == profiled.state.retired
