"""Optimized-vs-reference equivalence, pinned by committed goldens.

The fixtures under ``benchmarks/golden/`` were generated from the
pre-optimization tree (reference dispatch, unbatched stats), so these
tests assert that the superblock executor, the page-array memory fast
path, the decode-cached frontend, and the batched-stats core are all
*bit-identical* to the original semantics:

* retire traces — ``diff_traces`` over both dispatch modes' full streams;
* final architectural state, output, and the dynamic block stream (the
  ``control_hook`` BBV contract);
* BBV profiles;
* final ``uarch.stats`` counters and power reports per config;
* batched multi-config replay (one shared fetch trace feeding every
  config) vs serial per-config simulation — bit-identical cycle counts
  and stat dictionaries, including the ring-queue fallback shape and a
  DSE-sampled off-preset point.
"""

from __future__ import annotations

import json

import pytest

from repro.checkpoint.checkpoint import Checkpoint
from repro.goldens import (
    GOLDEN_SCALE,
    GOLDEN_SEED,
    bbv_fixture,
    core_fixture,
    functional_fixture,
    load_golden,
    retire_pcs_from_blocks,
)
from repro.sim.executor import Executor
from repro.sim.tracing import RetireTrace, diff_traces
from repro.uarch.config import ALL_CONFIGS
from repro.uarch.core import BoomCore
from repro.uarch.ftrace import FetchTrace
from repro.uarch.space import SpaceSpec, generate_points
from repro.workloads.suite import build_program, workload_names

WORKLOADS = workload_names()


def _program(workload: str):
    return build_program(workload, scale=GOLDEN_SCALE, seed=GOLDEN_SEED)


def _trace(program, pcs: list[int]) -> RetireTrace:
    instr_at = {instr.pc: instr for instr in program.instructions}
    trace = RetireTrace(capacity=max(1, len(pcs)))
    for pc in pcs:
        trace.record(instr_at[pc])
    return trace


@pytest.mark.parametrize("workload", WORKLOADS)
def test_functional_superblock_matches_reference(workload):
    program = _program(workload)
    ref_blocks: list[tuple[int, int]] = []
    sup_blocks: list[tuple[int, int]] = []
    reference = functional_fixture(program, dispatch="reference",
                                   blocks_out=ref_blocks)
    superblock = functional_fixture(program, dispatch="superblock",
                                    blocks_out=sup_blocks)
    assert superblock == reference
    # The retire streams (expanded from the dynamic block streams) must
    # agree instruction for instruction.
    ref_trace = _trace(program, retire_pcs_from_blocks(ref_blocks))
    sup_trace = _trace(program, retire_pcs_from_blocks(sup_blocks))
    divergence = diff_traces(ref_trace.entries(), sup_trace.entries())
    assert divergence is None
    assert ref_trace.total_recorded == reference["retired"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_functional_matches_golden(workload):
    golden = load_golden(workload)
    assert functional_fixture(_program(workload)) == golden["functional"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_bbv_profile_matches_golden(workload):
    golden = load_golden(workload)
    fixture = bbv_fixture(workload, _program(workload), GOLDEN_SCALE)
    assert fixture == golden["bbv"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_core_stats_and_power_match_golden(workload):
    golden = load_golden(workload)
    fixture = core_fixture(workload, _program(workload))
    assert fixture == golden["core"]


# ----------------------------------------------------------------------
# batched multi-config replay vs serial per-config simulation
# ----------------------------------------------------------------------

_BATCH_WARMUP = 500
_BATCH_WINDOW = 2_000


def _batch_checkpoint():
    """One mid-execution checkpoint of the golden sha program."""
    program = build_program("sha", scale=GOLDEN_SCALE, seed=GOLDEN_SEED)
    executor = Executor(program)
    executor.run(max_instructions=1_500)
    checkpoint = Checkpoint.capture(
        executor.state, workload="sha", interval_index=0, weight=1.0,
        warmup_instructions=_BATCH_WARMUP)
    return program, checkpoint


def _measure(core) -> tuple[int, str]:
    core.run(_BATCH_WARMUP)
    stats = core.begin_measurement()
    core.run(_BATCH_WINDOW)
    return core.cycle, json.dumps(stats.to_dict(), sort_keys=True)


def _serial_runs(program, checkpoint, configs):
    return {config.name:
            _measure(BoomCore(config, program,
                              state=checkpoint.restore()))
            for config in configs}


def _batched_runs(program, checkpoint, configs):
    trace = FetchTrace(program, checkpoint.restore())
    return {config.name: _measure(BoomCore(config, program, trace=trace))
            for config in configs}


def test_batched_presets_bit_identical():
    """All three paper presets in ONE batch vs serial, full stat dicts."""
    program, checkpoint = _batch_checkpoint()
    serial = _serial_runs(program, checkpoint, ALL_CONFIGS)
    batched = _batched_runs(program, checkpoint, ALL_CONFIGS)
    for config in ALL_CONFIGS:
        assert batched[config.name] == serial[config.name], config.name
    # The presets genuinely diverge from each other (the batch did not
    # collapse them onto one back-end).
    cycles = {serial[config.name][0] for config in ALL_CONFIGS}
    assert len(cycles) == len(ALL_CONFIGS)


def test_batched_ring_queue_shape_bit_identical():
    """The non-collapsing issue-queue fallback replays identically."""
    program, checkpoint = _batch_checkpoint()
    ring = tuple(config.with_issue_queues("ring")
                 for config in ALL_CONFIGS[:2])
    serial = _serial_runs(program, checkpoint, ring)
    batched = _batched_runs(program, checkpoint, ring)
    assert batched == serial


def test_flight_recorder_is_observation_only():
    """A recorded run retires bit-identical state on every preset.

    The flight recorder rides the heartbeat slot; this pins that
    sampling (which flushes IQ occupancy histograms mid-run and reads
    the stats tree) never perturbs the simulation: cycle counts and the
    full stat dictionaries match an unobserved run exactly.
    """
    from repro.obs.flight import FlightRecorder

    program, checkpoint = _batch_checkpoint()
    for config in ALL_CONFIGS:
        plain = _measure(BoomCore(config, program,
                                  state=checkpoint.restore()))
        core = BoomCore(config, program, state=checkpoint.restore())
        recorder = FlightRecorder(core, workload="sha", sink=[])
        core.run(_BATCH_WARMUP, heartbeat=recorder)
        recorder.set_phase("measure")
        stats = core.begin_measurement()
        core.run(_BATCH_WINDOW, heartbeat=recorder)
        recorder.finish()
        observed = (core.cycle, json.dumps(stats.to_dict(),
                                           sort_keys=True))
        assert observed == plain, config.name


def test_batched_dse_sampled_point_bit_identical():
    """A generated off-preset design point joins the presets' batch."""
    sampled = generate_points(SpaceSpec(base="LargeBOOM", mode="random",
                                        count=1, seed=23,
                                        include_presets=False))
    assert len(sampled) == 1
    configs = ALL_CONFIGS + (sampled[0],)
    names = [config.name for config in configs]
    assert len(set(names)) == len(names)
    program, checkpoint = _batch_checkpoint()
    serial = _serial_runs(program, checkpoint, configs)
    batched = _batched_runs(program, checkpoint, configs)
    assert batched == serial
