"""Optimized-vs-reference equivalence, pinned by committed goldens.

The fixtures under ``benchmarks/golden/`` were generated from the
pre-optimization tree (reference dispatch, unbatched stats), so these
tests assert that the superblock executor, the page-array memory fast
path, the decode-cached frontend, and the batched-stats core are all
*bit-identical* to the original semantics:

* retire traces — ``diff_traces`` over both dispatch modes' full streams;
* final architectural state, output, and the dynamic block stream (the
  ``control_hook`` BBV contract);
* BBV profiles;
* final ``uarch.stats`` counters and power reports per config.
"""

from __future__ import annotations

import pytest

from repro.goldens import (
    GOLDEN_SCALE,
    GOLDEN_SEED,
    bbv_fixture,
    core_fixture,
    functional_fixture,
    load_golden,
    retire_pcs_from_blocks,
)
from repro.sim.tracing import RetireTrace, diff_traces
from repro.workloads.suite import build_program, workload_names

WORKLOADS = workload_names()


def _program(workload: str):
    return build_program(workload, scale=GOLDEN_SCALE, seed=GOLDEN_SEED)


def _trace(program, pcs: list[int]) -> RetireTrace:
    instr_at = {instr.pc: instr for instr in program.instructions}
    trace = RetireTrace(capacity=max(1, len(pcs)))
    for pc in pcs:
        trace.record(instr_at[pc])
    return trace


@pytest.mark.parametrize("workload", WORKLOADS)
def test_functional_superblock_matches_reference(workload):
    program = _program(workload)
    ref_blocks: list[tuple[int, int]] = []
    sup_blocks: list[tuple[int, int]] = []
    reference = functional_fixture(program, dispatch="reference",
                                   blocks_out=ref_blocks)
    superblock = functional_fixture(program, dispatch="superblock",
                                    blocks_out=sup_blocks)
    assert superblock == reference
    # The retire streams (expanded from the dynamic block streams) must
    # agree instruction for instruction.
    ref_trace = _trace(program, retire_pcs_from_blocks(ref_blocks))
    sup_trace = _trace(program, retire_pcs_from_blocks(sup_blocks))
    divergence = diff_traces(ref_trace.entries(), sup_trace.entries())
    assert divergence is None
    assert ref_trace.total_recorded == reference["retired"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_functional_matches_golden(workload):
    golden = load_golden(workload)
    assert functional_fixture(_program(workload)) == golden["functional"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_bbv_profile_matches_golden(workload):
    golden = load_golden(workload)
    fixture = bbv_fixture(workload, _program(workload), GOLDEN_SCALE)
    assert fixture == golden["bbv"]


@pytest.mark.parametrize("workload", WORKLOADS)
def test_core_stats_and_power_match_golden(workload):
    golden = load_golden(workload)
    fixture = core_fixture(workload, _program(workload))
    assert fixture == golden["core"]
