"""Tests for the CPI stack and the SimPoint accuracy validator."""

import pytest

from repro.analysis.cpi_stack import (
    cpi_stack,
    dominant_bottleneck,
    format_cpi_stack,
    STACK_COMPONENTS,
)
from repro.analysis.validation import (
    full_detailed_ipc,
    validate_simpoint_accuracy,
)
from repro.flow.experiment import FlowSettings
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM
from repro.uarch.core import BoomCore
from repro.workloads.suite import build_program

SETTINGS = FlowSettings(scale=0.15)


def stats_for(workload, config=MEGA_BOOM, skip=4000, window=4000,
              scale=1.0):
    program = build_program(workload, scale=scale)
    core = BoomCore(config, program)
    core.run(skip)
    stats = core.begin_measurement()
    core.run(window)
    return stats


class TestCpiStack:
    def test_components_sum_to_cpi(self):
        stats = stats_for("dijkstra")
        stack = cpi_stack(stats, MEGA_BOOM)
        total = sum(stack[name] for name in STACK_COMPONENTS)
        assert total == pytest.approx(stack["cpi"], rel=1e-9)

    def test_base_term_is_width_bound(self):
        stats = stats_for("sha", skip=50_000)
        stack = cpi_stack(stats, MEGA_BOOM)
        assert stack["base"] == pytest.approx(0.25)
        # sha in steady state is almost pure base CPI.
        assert stack["cpi"] == pytest.approx(0.25, rel=0.15)
        assert dominant_bottleneck(stack) == "none"

    def test_tarfind_is_mispredict_bound(self):
        stats = stats_for("tarfind", skip=100_000)
        stack = cpi_stack(stats, MEGA_BOOM)
        assert dominant_bottleneck(stack) == "mispredict"
        assert stack["mispredict"] > stack["dcache_miss"]

    def test_basicmath_is_divider_bound(self):
        stats = stats_for("basicmath", skip=20_000)
        stack = cpi_stack(stats, MEGA_BOOM)
        assert stack["divider"] > 0.2

    def test_empty_window_rejected(self):
        from repro.uarch.stats import CoreStats

        with pytest.raises(ValueError):
            cpi_stack(CoreStats(), MEGA_BOOM)

    def test_format(self):
        stats = stats_for("qsort", skip=2000, window=3000)
        text = format_cpi_stack(cpi_stack(stats, MEGA_BOOM), "qsort")
        assert "qsort" in text
        for name in STACK_COMPONENTS:
            assert name in text


class TestValidation:
    def test_accuracy_report_fields(self):
        report = validate_simpoint_accuracy("qsort", MEDIUM_BOOM, SETTINGS)
        assert report.workload == "qsort"
        assert report.estimated_ipc > 0
        assert report.true_ipc > 0
        assert report.coverage >= 0.9
        assert 0 <= report.relative_error < 1.0
        assert report.speedup > 1.0
        assert "qsort" in report.format()

    def test_ground_truth_matches_direct_run(self):
        truth = full_detailed_ipc("qsort", MEDIUM_BOOM, SETTINGS)
        program = build_program("qsort", scale=SETTINGS.scale,
                                seed=SETTINGS.seed)
        core = BoomCore(MEDIUM_BOOM, program)
        core.run()
        assert truth == pytest.approx(core.stats.ipc)

    def test_estimate_in_range_of_truth(self):
        report = validate_simpoint_accuracy("bitcount", MEDIUM_BOOM,
                                            FlowSettings(scale=0.3))
        assert report.relative_error < 0.30
