"""Tests for tables, figure emitters, takeaway checks, and efficiency.

Runs a miniature sweep (small scale) once per module; these tests verify
structure and internal consistency of the emitters — the full-scale shape
claims live in the benchmark harness.
"""

import pytest

from repro.analysis.efficiency import summarize
from repro.analysis.figures import (
    component_power_series,
    fig10_ipc,
    fig11_perf_per_watt,
    fig8_issue_slots,
    fig9_component_share,
    format_component_power,
    format_fig8,
    format_per_benchmark,
)
from repro.analysis.tables import format_table_ii, table_i, table_ii
from repro.analysis.takeaways import check_all, format_checks
from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SweepRunner
from repro.power.area import ANALYZED_COMPONENTS
from repro.uarch.config import ALL_CONFIGS, MEGA_BOOM
from repro.workloads.suite import workload_names

SETTINGS = FlowSettings(scale=0.08)


@pytest.fixture(scope="module")
def results():
    runner = SweepRunner(SETTINGS, cache_dir=None)
    return runner.run_all()


class TestTables:
    def test_table_i_lists_all_configs(self):
        text = table_i()
        for config in ALL_CONFIGS:
            assert config.name in text
        assert "12R/6W" in text

    def test_table_ii_rows(self):
        rows = table_ii(SETTINGS)
        assert [row.benchmark for row in rows] == workload_names()
        for row in rows:
            assert row.coverage >= 0.9
            assert row.num_simpoints >= 1
            assert row.instructions > 0

    def test_format_table_ii(self):
        rows = table_ii(SETTINGS)
        text = format_table_ii(rows)
        assert "Benchmark" in text
        assert "sha" in text


class TestFigures:
    def test_component_series_complete(self, results):
        series = component_power_series(results, "MegaBOOM")
        assert set(series) == set(workload_names())
        for workload, components in series.items():
            assert set(components) == set(ANALYZED_COMPONENTS)
            assert all(v >= 0 for v in components.values())

    def test_fig8_slots(self, results):
        slots = fig8_issue_slots(results)
        assert set(slots) == {"dijkstra", "sha"}
        assert len(slots["dijkstra"]) == MEGA_BOOM.int_iq_entries

    def test_fig9_shares(self, results):
        shares = fig9_component_share(results)
        assert set(shares) == {c.name for c in ALL_CONFIGS}
        assert all(0.3 < share < 1.0 for share in shares.values())

    def test_fig10_and_11_series(self, results):
        ipc = fig10_ipc(results)
        ppw = fig11_perf_per_watt(results)
        for config in ipc:
            assert set(ipc[config]) == set(workload_names())
            for workload in ipc[config]:
                assert ipc[config][workload] > 0
                assert ppw[config][workload] > 0

    def test_formatters_render(self, results):
        series = component_power_series(results, "MediumBOOM")
        assert "Branch Predictor" in format_component_power(series, "t")
        assert "slot" in format_fig8(fig8_issue_slots(results))
        assert "sha" in format_per_benchmark(fig10_ipc(results), "t", "IPC")


class TestTakeaways:
    def test_checks_return_eight(self, results):
        checks = check_all(results)
        assert [c.number for c in checks] == list(range(1, 9))
        for check in checks:
            assert check.evidence

    def test_format_checks(self, results):
        text = format_checks(check_all(results))
        assert "Takeaway #1" in text
        assert "PASS" in text or "FAIL" in text


class TestEfficiency:
    def test_summary_fields(self, results):
        summary = summarize(results)
        assert summary.ipc_ratio_mega_over_medium > 1.0
        assert summary.perf_per_watt_ratio_medium_over_mega > 1.0
        assert set(summary.winners) == set(workload_names())
        assert 0 <= summary.medium_wins <= 11
        assert summary.average_perf_per_watt["MediumBOOM"] > 0

    def test_summary_format(self, results):
        text = summarize(results).format()
        assert "IPC ratio" in text
        assert "perf-per-watt" in text
