"""Golden accuracy envelopes: build, IO, evaluation, and rendering.

A tiny real sweep (sha at the gate's pinned scale) anchors the tests:
the simulator is deterministic, so a clean evaluation must be exactly
zero-error, a perturbed envelope must turn into attributed violations,
and coverage gaps in either direction must be recorded rather than
silently shrinking the check.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.analysis.accuracy import (
    DEFAULT_TOLERANCES,
    ENVELOPE_FORMAT,
    build_envelope,
    envelope_path,
    evaluate_accuracy,
    format_accuracy,
    load_envelopes,
    write_envelope,
)
from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SweepRunner

SCALE = 0.05
SEED = 17


@pytest.fixture(scope="module")
def sha_sweep(tmp_path_factory):
    cache = tmp_path_factory.mktemp("accuracy")
    runner = SweepRunner(FlowSettings(scale=SCALE, seed=SEED),
                         cache_dir=cache)
    return runner.run_all(workloads=["sha"])


@pytest.fixture(scope="module")
def sha_envelope(sha_sweep):
    by_config = {config: result
                 for (_workload, config), result in sha_sweep.items()}
    return build_envelope("sha", by_config, scale=SCALE, seed=SEED)


def test_envelope_document_shape(sha_envelope):
    assert sha_envelope["format"] == ENVELOPE_FORMAT
    assert sha_envelope["scale"] == SCALE
    assert sha_envelope["seed"] == SEED
    assert sha_envelope["tolerances"] == DEFAULT_TOLERANCES
    assert set(sha_envelope["presets"]) == {"MediumBOOM", "LargeBOOM",
                                            "MegaBOOM"}
    for entry in sha_envelope["presets"].values():
        assert entry["ipc"] > 0
        assert entry["cpi"] == 1.0 / entry["ipc"]
        assert entry["tile_mw"] > 0
        assert abs(sum(entry["component_share"].values()) - 1.0) < 1e-9
        intervals = [interval for interval, _ipc in entry["interval_ipc"]]
        assert intervals == sorted(intervals)


def test_write_and_load_round_trip(tmp_path, sha_envelope):
    path = write_envelope(tmp_path, sha_envelope)
    assert path == envelope_path(tmp_path, "sha")
    assert path.read_text().endswith("\n")
    loaded = load_envelopes(tmp_path)
    assert loaded == {"sha": json.loads(json.dumps(sha_envelope))}


def test_load_rejects_format_mismatch(tmp_path, sha_envelope):
    stale = dict(sha_envelope, format=ENVELOPE_FORMAT + 1)
    write_envelope(tmp_path, stale)
    with pytest.raises(ValueError, match="envelope format"):
        load_envelopes(tmp_path)


def test_clean_tree_evaluates_to_zero_error(sha_sweep, sha_envelope):
    evaluation = evaluate_accuracy(sha_sweep, {"sha": sha_envelope})
    assert evaluation.ok
    assert not evaluation.missing
    assert evaluation.checks
    assert all(check.error == 0.0 for check in evaluation.checks)
    assert evaluation.mape("ipc") == 0.0
    report = format_accuracy(evaluation)
    assert "verdict: PASS" in report
    assert "DRIFT" not in report


def test_perturbed_envelope_yields_attributed_violations(sha_sweep,
                                                         sha_envelope):
    bent = copy.deepcopy(sha_envelope)
    for entry in bent["presets"].values():
        entry["ipc"] *= 1.10  # 10% off a 2% band
    evaluation = evaluate_accuracy(sha_sweep, {"sha": bent})
    assert not evaluation.ok
    violated = {check.metric for check in evaluation.violations}
    assert violated == {"ipc"}
    assert len(evaluation.violations) == 3  # one per preset
    assert evaluation.mape("ipc") == pytest.approx(100 * (1 - 1 / 1.1),
                                                   rel=1e-6)
    # worst offenders rank by error over band: ipc tops the list
    assert evaluation.worst(1)[0].metric == "ipc"
    report = format_accuracy(evaluation)
    assert "verdict: FAIL" in report
    assert "DRIFT" in report
    assert "worst offenders:" in report


def test_share_checks_are_absolute(sha_sweep, sha_envelope):
    bent = copy.deepcopy(sha_envelope)
    for entry in bent["presets"].values():
        name = sorted(entry["component_share"])[0]
        entry["component_share"][name] += 0.05  # 5pp vs a 2pp band
    evaluation = evaluate_accuracy(sha_sweep, {"sha": bent})
    shares = [check for check in evaluation.violations
              if check.metric.startswith("share:")]
    assert len(shares) == 3
    assert all(not check.relative for check in shares)
    assert all(check.error == pytest.approx(0.05) for check in shares)


def test_envelope_tolerances_override_defaults(sha_sweep, sha_envelope):
    loose = copy.deepcopy(sha_envelope)
    for entry in loose["presets"].values():
        entry["ipc"] *= 1.01  # inside a widened 5% band
    loose["tolerances"] = dict(DEFAULT_TOLERANCES, ipc=0.05)
    evaluation = evaluate_accuracy(sha_sweep, {"sha": loose})
    assert not [check for check in evaluation.violations
                if check.metric == "ipc"]


def test_missing_pairings_recorded_both_ways(sha_sweep, sha_envelope):
    # a result with no envelope...
    evaluation = evaluate_accuracy(sha_sweep, {})
    assert not evaluation.ok
    assert all("no envelope for workload" in gap
               for gap in evaluation.missing)
    # ...and an envelope with no result
    one_pair = {key: result for key, result in sha_sweep.items()
                if key[1] == "MediumBOOM"}
    evaluation = evaluate_accuracy(one_pair, {"sha": sha_envelope})
    assert not evaluation.ok
    gaps = "\n".join(evaluation.missing)
    assert "sha/LargeBOOM has no sweep result" in gaps
    assert "sha/MegaBOOM has no sweep result" in gaps
    report = format_accuracy(evaluation)
    assert "coverage gaps:" in report
    assert "verdict: FAIL" in report


def test_interval_profile_is_checked(sha_sweep, sha_envelope):
    bent = copy.deepcopy(sha_envelope)
    entry = bent["presets"]["MediumBOOM"]
    entry["interval_ipc"][0][1] *= 1.5
    evaluation = evaluate_accuracy(sha_sweep, {"sha": bent})
    violated = evaluation.violations
    assert len(violated) == 1
    assert violated[0].metric.startswith("interval:")
    assert violated[0].config == "MediumBOOM"
