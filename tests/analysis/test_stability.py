"""Seed-stability tests: conclusions must not hinge on the seed."""

import pytest

from repro.analysis.stability import seed_stability
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM

SEEDS = (11, 17, 23)


@pytest.mark.parametrize("workload", ["sha", "dijkstra"])
def test_ipc_stable_across_seeds(workload):
    report = seed_stability(workload, MEGA_BOOM, seeds=SEEDS, scale=0.3)
    print(report.format())
    assert report.ipc_cv < 0.15
    assert report.tile_cv < 0.15


def test_config_ordering_survives_seed_change():
    """Mega faster than Medium for every seed (the Fig. 10 ordering)."""
    for seed in SEEDS:
        medium = seed_stability("sha", MEDIUM_BOOM, seeds=(seed,),
                                scale=0.3)
        mega = seed_stability("sha", MEGA_BOOM, seeds=(seed,), scale=0.3)
        assert mega.ipc_mean > medium.ipc_mean


def test_simpoint_counts_bounded_across_seeds():
    report = seed_stability("qsort", MEDIUM_BOOM, seeds=SEEDS, scale=0.3)
    assert all(1 <= count <= 8 for count in report.simpoint_counts)


def test_report_format():
    report = seed_stability("qsort", MEDIUM_BOOM, seeds=(17,), scale=0.2)
    text = report.format()
    assert "qsort" in text
    assert "cv" in text
