"""Tests for the Pareto-frontier DSE analysis (repro.analysis.dse)."""

import json

from repro.analysis.dse import (
    DesignPoint,
    dominates,
    format_frontier,
    format_sensitivity,
    frontier_document,
    frontier_hotspots,
    pareto_frontier,
    sensitivity_table,
    summarize_space,
)
from repro.power.area import ANALYZED_COMPONENTS, area_proxy
from repro.uarch.config import config_id, MEDIUM_BOOM
from repro.uarch.space import DesignSpace, ParamAxis


def _point(name, ipc, mw, area, components=None, **extra):
    return DesignPoint(name=name, config_id=name, ipc=ipc, tile_mw=mw,
                       perf_per_watt=ipc / (mw * 1e-3), epi_pj=1.0,
                       area=area, components_mw=components or {}, **extra)


# ----------------------------------------------------------------------
# dominance and the frontier
# ----------------------------------------------------------------------

def test_dominates_requires_strict_improvement():
    a = _point("a", ipc=1.0, mw=10.0, area=100.0)
    same = _point("same", ipc=1.0, mw=10.0, area=100.0)
    better = _point("better", ipc=1.1, mw=10.0, area=100.0)
    assert not dominates(a, same)      # equal on everything
    assert dominates(better, a)
    assert not dominates(a, better)


def test_pareto_frontier_prunes_dominated_points():
    fast_hot = _point("fast_hot", ipc=1.4, mw=25.0, area=300.0)
    balanced = _point("balanced", ipc=1.1, mw=12.0, area=180.0)
    slow_cool = _point("slow_cool", ipc=0.8, mw=6.0, area=90.0)
    loser = _point("loser", ipc=0.7, mw=13.0, area=200.0)  # dominated
    frontier, dominated = pareto_frontier(
        [loser, slow_cool, fast_hot, balanced])
    assert [p.name for p in frontier] == \
        ["fast_hot", "balanced", "slow_cool"]  # sorted by IPC desc
    assert [p.name for p in dominated] == ["loser"]


def test_equal_metric_points_all_stay_on_frontier():
    a = _point("a", ipc=1.0, mw=10.0, area=100.0)
    b = _point("b", ipc=1.0, mw=10.0, area=100.0)
    frontier, dominated = pareto_frontier([a, b])
    assert len(frontier) == 2 and not dominated


def test_hotspots_rank_components_with_shares():
    point = _point("p", ipc=1.0, mw=10.0, area=100.0,
                   components={"branch_predictor": 3.0,
                               "int_regfile": 1.0, "rob": 0.5})
    hotspots = frontier_hotspots([point], top=2)
    assert [name for name, _, _ in hotspots["p"]] == \
        ["branch_predictor", "int_regfile"]
    _, mw, share = hotspots["p"][0]
    assert mw == 3.0
    assert abs(share - 3.0 / 4.5) < 1e-12


# ----------------------------------------------------------------------
# summarize_space over a (possibly degraded) result map
# ----------------------------------------------------------------------

class _FakeResult:
    def __init__(self, ipc, tile_mw):
        self.ipc = ipc
        self.tile_mw = tile_mw
        self.perf_per_watt = ipc / (tile_mw * 1e-3) if tile_mw else 0.0

    def component_mw(self, name):
        return self.tile_mw / len(ANALYZED_COMPONENTS)


def test_summarize_space_skips_incomplete_configs():
    import dataclasses

    other = dataclasses.replace(MEDIUM_BOOM, rob_entries=96,
                                name="dse-xxxx")
    results = {
        ("sha", MEDIUM_BOOM.name): _FakeResult(0.8, 10.0),
        ("dijkstra", MEDIUM_BOOM.name): _FakeResult(0.6, 9.0),
        ("sha", other.name): _FakeResult(0.9, 12.0),
        # dijkstra missing for `other`: a degraded sweep
    }
    points, skipped = summarize_space(results, [MEDIUM_BOOM, other],
                                      workloads=["sha", "dijkstra"])
    assert [p.name for p in points] == [MEDIUM_BOOM.name]
    assert skipped == [other.name]
    point = points[0]
    assert point.preset
    assert abs(point.ipc - 0.7) < 1e-12
    assert abs(point.tile_mw - 9.5) < 1e-12
    assert abs(point.area - area_proxy(MEDIUM_BOOM)) < 1e-9
    assert point.config_id == config_id(MEDIUM_BOOM)


def test_summarize_space_records_lattice_overrides():
    space = DesignSpace.around(MEDIUM_BOOM)
    other = space.apply({"rob_entries": 96})
    results = {("sha", other.name): _FakeResult(0.9, 12.0)}
    points, _ = summarize_space(results, [other], workloads=["sha"],
                                space=space)
    assert points[0].params == {"rob_entries": 96}
    assert not points[0].preset


# ----------------------------------------------------------------------
# sensitivity
# ----------------------------------------------------------------------

def test_sensitivity_table_single_axis_neighbors():
    axes = (ParamAxis("rob_entries", (32, 64, 96)),
            ParamAxis("ldq_entries", (16, 24)))
    space = DesignSpace.around(MEDIUM_BOOM, axes=axes)
    center = DesignPoint(name=MEDIUM_BOOM.name,
                         config_id=config_id(MEDIUM_BOOM),
                         ipc=1.0, tile_mw=10.0, perf_per_watt=100.0,
                         epi_pj=1.0, area=100.0, params={})
    up = DesignPoint(name="up", config_id="up", ipc=1.2, tile_mw=12.0,
                     perf_per_watt=100.0, epi_pj=1.0, area=130.0,
                     params={"rob_entries": 96})  # +1 step from 64
    multi = DesignPoint(name="multi", config_id="multi", ipc=2.0,
                        tile_mw=20.0, perf_per_watt=100.0, epi_pj=1.0,
                        area=200.0,
                        params={"rob_entries": 96, "ldq_entries": 24})
    rows = sensitivity_table(space, [center, up, multi])
    assert len(rows) == 1  # multi-axis neighbor excluded
    row = rows[0]
    assert row["axis"] == "rob_entries"
    assert row["neighbors"] == 1
    assert abs(row["dipc_per_step"] - 0.2) < 1e-12
    assert abs(row["dmw_per_step"] - 2.0) < 1e-12


def test_sensitivity_table_without_center_is_empty():
    space = DesignSpace.around(MEDIUM_BOOM)
    assert sensitivity_table(space, []) == []


# ----------------------------------------------------------------------
# artifact document and text reports
# ----------------------------------------------------------------------

def test_frontier_document_is_strict_json():
    points = [_point("a", 1.0, 10.0, 100.0,
                     components={"rob": 1.0}, preset=True),
              _point("b", 0.5, 20.0, 300.0)]
    frontier, dominated = pareto_frontier(points)
    document = frontier_document(points, frontier, dominated,
                                 skipped=["c"],
                                 sensitivity=[{"axis": "rob_entries"}],
                                 spec={"base": "LargeBOOM"})
    text = json.dumps(document, sort_keys=True, allow_nan=False)
    rebuilt = json.loads(text)
    assert rebuilt["frontier"] == ["a"]
    assert rebuilt["dominated"] == ["b"]
    assert rebuilt["skipped"] == ["c"]
    assert rebuilt["spec"]["base"] == "LargeBOOM"
    assert rebuilt["points"][0]["name"] == "a"


def test_format_frontier_marks_presets_and_skips():
    points = [_point("a", 1.0, 10.0, 100.0, preset=True),
              _point("b", 0.5, 20.0, 300.0)]
    frontier, _ = pareto_frontier(points)
    text = format_frontier(points, frontier, skipped=["broken"])
    assert "*a" in text
    assert "broken" in text
    assert "paper preset" in text


def test_format_sensitivity_handles_empty():
    assert "no single-axis neighbors" in format_sensitivity(
        [], "LargeBOOM")
