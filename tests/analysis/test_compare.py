"""Tests for the sweep comparison tool."""

import pytest

from repro.analysis.compare import (
    compare_sweeps,
    format_comparison,
    SweepComparison,
)
from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SweepRunner
from repro.uarch.config import MEGA_BOOM

SETTINGS = FlowSettings(scale=0.1)
WORKLOADS = ["qsort", "sha", "dijkstra"]


@pytest.fixture(scope="module")
def sweeps():
    runner = SweepRunner(SETTINGS, cache_dir=None)
    baseline = runner.run_all(configs=(MEGA_BOOM,), workloads=WORKLOADS)
    ring = MEGA_BOOM.with_issue_queues("ring")
    variant = runner.run_all(configs=(ring,), workloads=WORKLOADS)
    return baseline, variant, ring.name


def test_identity_comparison(sweeps):
    baseline, _, _ = sweeps
    comparison = compare_sweeps(baseline, baseline,
                                "MegaBOOM", "MegaBOOM")
    assert comparison.average("ipc_ratio") == pytest.approx(1.0)
    assert comparison.average("tile_ratio") == pytest.approx(1.0)
    for name, ratio in comparison.biggest_component_changes():
        assert ratio == pytest.approx(1.0)


def test_ring_comparison_shows_issue_power_drop(sweeps):
    baseline, variant, variant_name = sweeps
    comparison = compare_sweeps(baseline, variant,
                                "MegaBOOM", variant_name)
    assert len(comparison.deltas) == len(WORKLOADS)
    # IPC essentially unchanged, issue power down.
    assert comparison.average("ipc_ratio") == pytest.approx(1.0, abs=0.05)
    assert comparison.average_component("int_issue") < 1.0
    moved = dict(comparison.biggest_component_changes(13))
    assert moved["int_issue"] < 1.0


def test_format_comparison(sweeps):
    baseline, variant, variant_name = sweeps
    text = format_comparison(compare_sweeps(baseline, variant,
                                            "MegaBOOM", variant_name))
    assert "AVERAGE" in text
    assert "qsort" in text
    assert "largest component moves" in text


def test_zero_baseline_handling():
    comparison = SweepComparison("a", "b")
    from repro.analysis.compare import _ratio

    assert _ratio(0.0, 0.0) == 1.0
    assert _ratio(1.0, 0.0) == float("inf")
    assert _ratio(2.0, 1.0) == 2.0


def test_explicit_workload_subset(sweeps):
    baseline, variant, variant_name = sweeps
    comparison = compare_sweeps(baseline, variant, "MegaBOOM",
                                variant_name, workloads=["sha"])
    assert [d.workload for d in comparison.deltas] == ["sha"]
