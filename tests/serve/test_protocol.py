"""Request normalization + hash semantics."""

import pytest

from repro.errors import ServeError
from repro.serve.protocol import JobRequest, request_hash


class TestValidation:
    def test_defaults_are_a_valid_sweep(self):
        request = JobRequest()
        assert request.kind == "sweep"
        assert request_hash(request)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            JobRequest(kind="mine-bitcoin")

    @pytest.mark.parametrize("scale", [0.0, -1.0, 5.0])
    def test_scale_bounds(self, scale):
        with pytest.raises(ServeError, match="scale"):
            JobRequest(scale=scale)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ServeError, match="unknown workload"):
            JobRequest(workloads=("sha", "no-such-workload"))

    def test_unknown_config_rejected(self):
        with pytest.raises(ServeError, match="unknown config"):
            JobRequest(configs=("NoSuchBOOM",))

    def test_configs_rejected_for_dse(self):
        with pytest.raises(ServeError, match="sweep field"):
            JobRequest(kind="dse", configs=("MediumBOOM",))

    def test_dse_mode_and_points_validated(self):
        with pytest.raises(ServeError, match="dse mode"):
            JobRequest(kind="dse", mode="exhaustive")
        with pytest.raises(ServeError, match="points"):
            JobRequest(kind="dse", points=0)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ServeError, match="unknown request field"):
            JobRequest.from_dict({"kind": "sweep", "color": "red"})

    def test_from_dict_rejects_non_string_lists(self):
        with pytest.raises(ServeError, match="list of names"):
            JobRequest.from_dict({"workloads": [1, 2]})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ServeError):
            JobRequest.from_dict(["not", "an", "object"])


class TestNormalization:
    def test_workload_order_does_not_matter(self):
        a = JobRequest.from_dict({"workloads": ["sha", "dijkstra"]})
        b = JobRequest.from_dict({"workloads": ["dijkstra", "sha"]})
        assert a == b
        assert request_hash(a) == request_hash(b)

    def test_duplicates_collapse(self):
        a = JobRequest.from_dict({"workloads": ["sha", "sha"]})
        b = JobRequest.from_dict({"workloads": ["sha"]})
        assert request_hash(a) == request_hash(b)

    def test_round_trip(self):
        request = JobRequest.from_dict(
            {"kind": "dse", "points": 4, "workloads": ["sha"],
             "scale": 0.25})
        again = JobRequest.from_dict(request.to_dict())
        assert again == request
        assert request_hash(again) == request_hash(request)


class TestHash:
    def test_execution_strategy_excluded(self):
        base = JobRequest.from_dict({"scale": 0.5})
        batched = JobRequest.from_dict({"scale": 0.5, "batch": True})
        fanout = JobRequest.from_dict({"scale": 0.5, "jobs": 8})
        assert request_hash(base) == request_hash(batched)
        assert request_hash(base) == request_hash(fanout)

    def test_result_relevant_fields_included(self):
        base = JobRequest.from_dict({"scale": 0.5})
        assert request_hash(base) != request_hash(
            JobRequest.from_dict({"scale": 0.25}))
        assert request_hash(base) != request_hash(
            JobRequest.from_dict({"scale": 0.5, "seed": 18}))
        assert request_hash(base) != request_hash(
            JobRequest.from_dict({"scale": 0.5, "workloads": ["sha"]}))

    def test_dse_recipe_participates(self):
        a = JobRequest.from_dict({"kind": "dse", "points": 4})
        b = JobRequest.from_dict({"kind": "dse", "points": 8})
        assert request_hash(a) != request_hash(b)

    def test_kinds_never_collide(self):
        sweep = JobRequest.from_dict({"scale": 0.5})
        dse = JobRequest.from_dict({"kind": "dse", "scale": 0.5})
        assert request_hash(sweep) != request_hash(dse)

    def test_hash_is_artifact_shaped(self):
        digest = request_hash(JobRequest())
        assert len(digest) == 24
        int(digest, 16)  # hex
