"""JobTable lifecycle: attach, settle, cancel, rollback."""

from repro.serve.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobTable,
)
from repro.serve.protocol import JobRequest, request_hash

REQUEST = JobRequest.from_dict({"scale": 0.5, "workloads": ["sha"]})
OTHER = JobRequest.from_dict({"scale": 0.25, "workloads": ["sha"]})


class TestSubmit:
    def test_first_submission_creates(self):
        table = JobTable()
        job, created, settled = table.submit(REQUEST, "a")
        assert created and not settled
        assert job.id == request_hash(REQUEST)
        assert job.state == QUEUED
        assert table.counts()["created"] == 1

    def test_identical_submission_attaches(self):
        table = JobTable()
        first, _, _ = table.submit(REQUEST, "a")
        second, created, _ = table.submit(REQUEST, "b")
        assert second is first and not created
        assert first.clients == ["a", "b"]
        counts = table.counts()
        assert counts["jobs"] == 1
        assert counts["created"] == 1
        assert counts["deduped"] == 1

    def test_distinct_requests_do_not_collide(self):
        table = JobTable()
        a, _, _ = table.submit(REQUEST, "a")
        b, _, _ = table.submit(OTHER, "a")
        assert a is not b
        assert table.counts()["created"] == 2

    def test_attach_to_done_job_reports_settled(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.mark_running(job)
        table.mark_done(job, "{}")
        same, created, settled = table.submit(REQUEST, "b")
        assert same is job and not created and settled

    def test_failed_job_is_replaced(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.mark_running(job)
        table.mark_failed(job, "boom", "permanent")
        fresh, created, settled = table.submit(REQUEST, "b")
        assert created and not settled
        assert fresh is not job
        assert fresh.state == QUEUED


class TestLifecycle:
    def test_mark_running_flips_queued_only(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        assert table.mark_running(job)
        assert job.state == RUNNING
        assert not table.mark_running(job)

    def test_mark_done_returns_settlement_snapshot(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.submit(REQUEST, "b")
        table.mark_running(job)
        settled = table.mark_done(job, '{"ok": true}')
        assert sorted(settled) == ["a", "b"]
        assert job.state == DONE
        assert job.done_event.is_set()
        assert job.result_text == '{"ok": true}'

    def test_mark_failed_carries_taxonomy(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.mark_running(job)
        table.mark_failed(job, "ValueError: nope", "permanent")
        assert job.state == FAILED
        status = job.status_dict()
        assert status["error_kind"] == "permanent"


class TestCancel:
    def test_unknown_job(self):
        table = JobTable()
        assert table.cancel("deadbeef", "a") == (None, False)

    def test_last_subscriber_cancels_queued_job(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        _, removed = table.cancel(job.id, "a")
        assert removed
        assert job.state == CANCELLED
        assert job.done_event.is_set()

    def test_remaining_subscribers_keep_job_alive(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.submit(REQUEST, "b")
        _, removed = table.cancel(job.id, "a")
        assert removed
        assert job.state == QUEUED
        assert job.clients == ["b"]

    def test_running_job_gets_flag_not_cancel(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.mark_running(job)
        _, removed = table.cancel(job.id, "a")
        assert removed
        assert job.state == RUNNING
        assert job.cancel_requested

    def test_non_subscriber_cancel_is_noop(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        _, removed = table.cancel(job.id, "stranger")
        assert not removed
        assert job.state == QUEUED

    def test_cancel_after_done_releases_nothing(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.mark_running(job)
        table.mark_done(job, "{}")
        _, removed = table.cancel(job.id, "a")
        assert not removed  # settlement already returned the slot
        assert job.state == DONE


class TestDrainHelpers:
    def test_cancel_queued_settles_subscribers(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.submit(REQUEST, "b")
        assert sorted(table.cancel_queued(job)) == ["a", "b"]
        assert job.state == CANCELLED

    def test_cancel_queued_ignores_running(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        table.mark_running(job)
        assert table.cancel_queued(job) == []
        assert job.state == RUNNING

    def test_discard_rolls_back_created_accounting(self):
        table = JobTable()
        job, _, _ = table.submit(REQUEST, "a")
        assert table.discard(job) == ["a"]
        assert table.counts()["created"] == 0
        assert table.get(job.id) is None
        # a later identical submission starts clean
        again, created, _ = table.submit(REQUEST, "a")
        assert created and again is not job
