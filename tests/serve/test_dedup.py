"""Exactly-once dedup under concurrency — the acceptance criterion.

Eight concurrent clients submit the identical sweep request; the server
must run exactly one underlying compute (one created job, one task set
in the manifest) and hand every client a byte-identical result body.
A second wave checks the quota ledger: per-client 429 accounting must
be exact.
"""

import json
import threading

import pytest

from repro.serve import ClientQuotas, ServeClient, ServerThread, run_load

REQUEST = {"kind": "sweep", "scale": 0.05, "workloads": ["sha"],
           "configs": ["SmallBOOM"]}
CLIENTS = 8


@pytest.fixture(scope="module")
def host(tmp_path_factory):
    cache = tmp_path_factory.mktemp("dedup-cache")
    quotas = ClientQuotas(rate=1000.0, burst=1000.0, max_client_jobs=4)
    with ServerThread(cache, workers=2, max_queue=32,
                      quotas=quotas) as server_host:
        yield server_host


@pytest.fixture(scope="module")
def report(host):
    return run_load(host.port, REQUEST, clients=CLIENTS,
                    mode="duplicate", timeout=120.0)


class TestExactlyOnce:
    def test_every_client_completed(self, report):
        assert report.failed == 0, report.errors
        assert report.completed == CLIENTS

    def test_one_compute_many_attachments(self, host, report):
        counts = host.server.table.counts()
        assert counts["created"] == 1
        assert counts["deduped"] == CLIENTS - 1

    def test_results_are_byte_identical(self, report):
        assert len(report.bodies) == 1  # one request hash
        (texts,) = report.bodies.values()
        assert len(texts) == 1  # every client read the same bytes

    def test_manifest_shows_one_task_set(self, report):
        (texts,) = report.bodies.values()
        document = json.loads(next(iter(texts)))
        manifest = document["manifest"]
        assert manifest["experiments"] == 1  # sha x SmallBOOM, once
        assert document["ok"] is True

    def test_quota_slots_all_released(self, host, report):
        snapshot = host.server.quotas.snapshot()
        assert snapshot["inflight"] == {}

    def test_late_subscriber_attaches_to_done_job(self, host, report):
        client = ServeClient(port=host.port, client_id="latecomer")
        status, payload = client.submit(REQUEST)
        assert status == 202
        assert payload["deduped"]
        status, text = client.result_text(payload["job_id"])
        assert status == 200
        (texts,) = report.bodies.values()
        assert text == next(iter(texts))
        # instant settlement: no slot left charged
        assert host.server.quotas.inflight("latecomer") == 0


class TestQuotaAccounting:
    def test_per_client_429_accounting_is_exact(self, tmp_path):
        quotas = ClientQuotas(rate=1000.0, burst=1000.0,
                              max_client_jobs=1)
        with ServerThread(tmp_path, workers=1, max_queue=32,
                          quotas=quotas) as host:
            outcomes: dict[str, list[int]] = {}
            lock = threading.Lock()

            def hammer(name: str) -> None:
                client = ServeClient(port=host.port, client_id=name)
                codes = []
                # first submission occupies the 1-job quota; the next
                # two must be refused deterministically
                codes.append(client.submit(
                    dict(REQUEST, seed=hash(name) % 1000))[0])
                for extra in range(2):
                    codes.append(client.submit(
                        dict(REQUEST, seed=2000 + extra))[0])
                with lock:
                    outcomes[name] = codes

            threads = [threading.Thread(target=hammer, args=(f"q{i}",))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            snapshot = host.server.quotas.snapshot()
            for name, codes in outcomes.items():
                assert codes[0] == 202, (name, codes)
                assert codes[1:] == [429, 429], (name, codes)
                assert snapshot["rejections"][name][
                    "quota-exceeded"] == 2
