"""HTTP endpoint behavior against a live in-process server.

One module-scoped server instance keeps this suite fast; each test
uses its own client id so quota ledgers do not interfere.
"""

import json

import pytest

from repro.errors import ServeError
from repro.serve import ClientQuotas, ServeClient, ServerThread

TINY = {"kind": "sweep", "scale": 0.05, "workloads": ["sha"],
        "configs": ["SmallBOOM"]}


@pytest.fixture(scope="module")
def host(tmp_path_factory):
    cache = tmp_path_factory.mktemp("serve-cache")
    with ServerThread(cache, workers=2, max_queue=4) as server_host:
        yield server_host


def client_for(host, name):
    return ServeClient(port=host.port, client_id=name, timeout=30.0)


class TestEndpoints:
    def test_healthz(self, host):
        status, payload = client_for(host, "hz").healthz()
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["queue_capacity"] == 4
        assert "table" in payload and "quotas" in payload

    def test_submit_then_result(self, host):
        client = client_for(host, "happy")
        status, payload = client.submit(TINY)
        assert status == 202
        assert payload["created"] or payload["deduped"]
        job_id = payload["job_id"]
        final = client.wait(job_id, timeout=120.0)
        assert final["state"] == "done"
        status, document = client.result(job_id)
        assert status == 200
        assert document["kind"] == "sweep"
        assert "sha/SmallBOOM" in document["results"]
        assert document["ok"] is True

    def test_result_before_done_conflicts(self, host):
        client = client_for(host, "eager")
        slow = dict(TINY, seed=4242)
        status, payload = client.submit(slow)
        assert status == 202
        status, body = client.result(payload["job_id"])
        # 409 while queued/running; 200 if the tiny job already won the
        # race — both are legitimate
        assert status in (200, 409)
        client.wait(payload["job_id"], timeout=120.0)

    def test_unknown_job_is_404(self, host):
        client = client_for(host, "lost")
        assert client.status("0" * 24)[0] == 404
        assert client.result("0" * 24)[0] == 404
        assert client.cancel("0" * 24)[0] == 404

    def test_malformed_submission_is_400(self, host):
        client = client_for(host, "typo")
        status, payload = client.submit({"kind": "nope"})
        assert status == 400
        assert "unknown job kind" in payload["error"]
        status, payload = client.submit({"scale": -1})
        assert status == 400

    def test_unknown_endpoint_is_404(self, host):
        status, payload = client_for(host, "explorer")._call(
            "GET", "/teapot")
        assert status == 404

    def test_jobs_listing(self, host):
        client = client_for(host, "lister")
        client.submit(TINY)
        status, payload = client.jobs()
        assert status == 200
        assert any(job["kind"] == "sweep" for job in payload["jobs"])

    def test_client_rejects_port_zero(self):
        with pytest.raises(ServeError):
            ServeClient(port=0)


class TestQuotaEnforcement:
    def test_rate_limited_client_sees_429(self, tmp_path):
        quotas = ClientQuotas(rate=0.001, burst=1.0, max_client_jobs=99)
        with ServerThread(tmp_path, workers=1, quotas=quotas) as host:
            client = client_for(host, "greedy")
            assert client.submit(TINY)[0] == 202
            status, payload = client.submit(dict(TINY, seed=99))
            assert status == 429
            assert payload["error"] == "rate-limited"
            _, health = client.healthz()
            assert health["quotas"]["rejections"]["greedy"][
                "rate-limited"] == 1

    def test_quota_exceeded_and_release_on_completion(self, tmp_path):
        quotas = ClientQuotas(rate=1000.0, burst=1000.0,
                              max_client_jobs=1)
        with ServerThread(tmp_path, workers=1, quotas=quotas) as host:
            client = client_for(host, "busy")
            status, payload = client.submit(TINY)
            assert status == 202
            status, refusal = client.submit(dict(TINY, seed=77))
            assert status == 429
            assert refusal["error"] == "quota-exceeded"
            client.wait(payload["job_id"], timeout=120.0)
            # slot released at completion: a new submission is admitted
            assert client.submit(dict(TINY, seed=78))[0] == 202

    def test_cancel_releases_the_slot(self, tmp_path):
        quotas = ClientQuotas(rate=1000.0, burst=1000.0,
                              max_client_jobs=1)
        with ServerThread(tmp_path, workers=1, max_queue=8,
                          quotas=quotas) as host:
            client = client_for(host, "fickle")
            # occupy the single worker with a decoy so ours stays queued
            decoy = client_for(host, "decoy")
            decoy.submit(dict(TINY, seed=1))
            status, payload = client.submit(dict(TINY, seed=2))
            assert status == 202
            status, cancel = client.cancel(payload["job_id"])
            assert status == 200
            assert client.submit(dict(TINY, seed=3))[0] == 202


class TestBackpressure:
    def test_queue_full_rejects_and_rolls_back(self, tmp_path):
        quotas = ClientQuotas(rate=1000.0, burst=1000.0,
                              max_client_jobs=99)
        with ServerThread(tmp_path, workers=1, max_queue=1,
                          quotas=quotas) as host:
            client = client_for(host, "flood")
            codes = [client.submit(dict(TINY, seed=1000 + i))[0]
                     for i in range(6)]
            assert 429 in codes  # the bounded queue pushed back
            rejected = [code for code in codes if code == 429]
            table = host.server.table.counts()
            # rollback: every 429 left no orphan job behind
            assert table["created"] == len(codes) - len(rejected)
