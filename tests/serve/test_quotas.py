"""Token-bucket rates and per-client concurrency quotas."""

import pytest

from repro.serve.quotas import ClientQuotas, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTokenBucket:
    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == \
            [True, True, True, False]

    def test_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.5)  # 1 token back
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(60.0)
        assert bucket.available == pytest.approx(2.0)

    def test_burst_below_one_rejected(self):
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate=1.0, burst=0.5)


class TestClientQuotas:
    def make(self, **kwargs):
        clock = FakeClock()
        defaults = dict(rate=100.0, burst=100.0, max_client_jobs=2,
                        clock=clock)
        defaults.update(kwargs)
        return ClientQuotas(**defaults), clock

    def test_admit_charges_a_slot(self):
        quotas, _ = self.make()
        assert quotas.admit("a") is None
        assert quotas.inflight("a") == 1

    def test_concurrency_cap(self):
        quotas, _ = self.make(max_client_jobs=2)
        assert quotas.admit("a") is None
        assert quotas.admit("a") is None
        assert quotas.admit("a") == "quota-exceeded"
        quotas.release("a")
        assert quotas.admit("a") is None

    def test_rate_limit_reason(self):
        quotas, _ = self.make(rate=1.0, burst=1.0, max_client_jobs=99)
        assert quotas.admit("a") is None
        assert quotas.admit("a") == "rate-limited"

    def test_clients_are_independent(self):
        quotas, _ = self.make(max_client_jobs=1)
        assert quotas.admit("a") is None
        assert quotas.admit("b") is None
        assert quotas.admit("a") == "quota-exceeded"

    def test_rejection_accounting(self):
        quotas, _ = self.make(max_client_jobs=1)
        quotas.admit("a")
        quotas.admit("a")
        quotas.admit("a")
        snapshot = quotas.snapshot()
        assert snapshot["rejections"]["a"]["quota-exceeded"] == 2
        assert snapshot["inflight"]["a"] == 1

    def test_release_floors_at_zero(self):
        quotas, _ = self.make()
        quotas.release("ghost")
        assert quotas.inflight("ghost") == 0

    def test_rate_rejection_does_not_consume_a_slot(self):
        quotas, _ = self.make(rate=1.0, burst=1.0, max_client_jobs=1)
        assert quotas.admit("a") is None
        assert quotas.admit("a") == "rate-limited"
        assert quotas.inflight("a") == 1
