"""Tests for the sweep-as-a-service job server."""
