"""Tests for cross-process file locks and lease-based work claims."""

import json
import multiprocessing
import os
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LeaseTimeoutError, LockTimeoutError
from repro.pipeline.locking import (
    DecorrelatedJitter,
    FileLock,
    WorkClaims,
    _InProcessLease,
    boot_id,
    owner_token,
    process_alive,
    wait_for,
)


def _dead_pid():
    """A real pid that is provably dead (a just-exited child)."""
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join()
    return proc.pid


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------

def test_own_process_is_alive():
    assert process_alive(os.getpid(), boot_id())
    assert process_alive(os.getpid(), None)  # pid-only degradation


def test_boot_mismatch_means_dead_regardless_of_pid():
    assert not process_alive(os.getpid(), "some-other-boot")


def test_dead_child_is_dead():
    assert not process_alive(_dead_pid(), boot_id())


def test_nonsense_pids_are_dead():
    assert not process_alive(0, boot_id())
    assert not process_alive(-1, boot_id())


def test_owner_token_names_this_process():
    token = owner_token()
    assert token["pid"] == os.getpid()
    assert token["boot_id"] == boot_id()


# ----------------------------------------------------------------------
# FileLock
# ----------------------------------------------------------------------

def test_lock_is_exclusive_between_descriptors(tmp_path):
    path = tmp_path / "state.lock"
    with FileLock(path):
        contender = FileLock(path, timeout=0.1, poll=0.01)
        with pytest.raises(LockTimeoutError):
            contender.acquire()


def test_lock_released_can_be_reacquired(tmp_path):
    path = tmp_path / "state.lock"
    lock = FileLock(path)
    lock.acquire()
    assert lock.held
    lock.release()
    assert not lock.held
    with FileLock(path, timeout=0.5):
        pass  # immediate reacquire: the release actually released


def test_lock_double_acquire_rejected(tmp_path):
    lock = FileLock(tmp_path / "x.lock")
    with lock:
        with pytest.raises(RuntimeError):
            lock.acquire()
    lock.release()  # idempotent after context exit


def test_lock_records_owner_diagnostics(tmp_path):
    path = tmp_path / "x.lock"
    with FileLock(path):
        owner = json.loads(path.read_text())
        assert owner["pid"] == os.getpid()


# ----------------------------------------------------------------------
# WorkClaims / leases
# ----------------------------------------------------------------------

def test_first_claim_wins_second_loses(tmp_path):
    claims = WorkClaims(tmp_path)
    lease = claims.claim("stage", "fp1")
    assert lease is not None
    assert claims.claim("stage", "fp1") is None  # live holder: refused
    assert claims.holder_alive("stage", "fp1")
    lease.release()
    assert not claims.holder_alive("stage", "fp1")
    assert claims.claim("stage", "fp1") is not None  # reclaimable


def test_memory_only_claims_always_win():
    claims = WorkClaims(None)
    assert isinstance(claims.claim("stage", "fp"), _InProcessLease)
    assert not claims.holder_alive("stage", "fp")


def test_stale_lease_of_dead_owner_is_stolen(tmp_path):
    claims = WorkClaims(tmp_path)
    path = claims.lease_path("stage", "fp")
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"pid": _dead_pid(), "boot_id": boot_id(),
                                "acquired": 0.0}))
    lease = claims.claim("stage", "fp")
    assert lease is not None  # reclaimed on the spot
    assert json.loads(path.read_text())["pid"] == os.getpid()


def test_garbage_lease_is_stolen(tmp_path):
    claims = WorkClaims(tmp_path)
    path = claims.lease_path("stage", "fp")
    path.parent.mkdir(parents=True)
    path.write_text("{torn")
    assert claims.claim("stage", "fp") is not None


def test_release_respects_ownership(tmp_path):
    claims = WorkClaims(tmp_path)
    lease = claims.claim("stage", "fp")
    # another process steals the file out from under us (simulated)
    lease.path.write_text(json.dumps({"pid": 1, "boot_id": "other"}))
    lease.release()
    assert lease.path.exists()  # not ours any more: left alone


def test_release_dead_sweeps_only_dead_leases(tmp_path):
    claims = WorkClaims(tmp_path)
    live = claims.claim("stage", "live")
    dead_path = claims.lease_path("stage", "dead")
    dead_path.write_text(json.dumps({"pid": _dead_pid(),
                                     "boot_id": boot_id()}))
    assert claims.release_dead() == 1
    assert not dead_path.exists()
    assert live.path.exists()
    live.release()


def test_iter_leases_reports_owners(tmp_path):
    claims = WorkClaims(tmp_path)
    claims.claim("stage", "fp")
    ((path, owner),) = list(claims.iter_leases())
    assert path.name == "fp.lease"
    assert owner["pid"] == os.getpid()


# ----------------------------------------------------------------------
# wait_for
# ----------------------------------------------------------------------

def test_wait_for_returns_when_predicate_turns_true():
    calls = []

    def predicate():
        calls.append(1)
        return len(calls) >= 3

    wait_for(predicate, timeout=5.0, poll=0.0, sleep=lambda _s: None)
    assert len(calls) == 3


def test_wait_for_times_out_transiently():
    with pytest.raises(LeaseTimeoutError) as excinfo:
        wait_for(lambda: False, timeout=0.05, poll=0.01,
                 what="peer artifact")
    assert "peer artifact" in str(excinfo.value)


# ----------------------------------------------------------------------
# decorrelated jitter (anti-stampede polling)
# ----------------------------------------------------------------------

def test_jitter_rejects_negative_base():
    with pytest.raises(ValueError):
        DecorrelatedJitter(-0.1)


def test_jitter_zero_base_degenerates_to_zero_delays():
    jitter = DecorrelatedJitter(0.0)
    assert [jitter.next_delay() for _ in range(5)] == [0.0] * 5


@given(base=st.floats(min_value=1e-4, max_value=2.0),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_jitter_delays_stay_in_band(base, seed):
    """Every delay lands in [base, cap] — bounded above and below."""
    jitter = DecorrelatedJitter(base, rng=random.Random(seed))
    for _ in range(50):
        delay = jitter.next_delay()
        assert base <= delay <= jitter.cap + 1e-12


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_jitter_spreads_waiters_apart(seed):
    """Two waiters with different rng streams decorrelate: their delay
    sequences must not stay in lock-step (the stampede the fixed
    interval produced)."""
    rng = random.Random(seed)
    a = DecorrelatedJitter(0.05, rng=random.Random(rng.random()))
    b = DecorrelatedJitter(0.05, rng=random.Random(rng.random()))
    delays_a = [a.next_delay() for _ in range(20)]
    delays_b = [b.next_delay() for _ in range(20)]
    assert delays_a != delays_b


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_wait_for_total_sleep_never_overshoots_deadline(seed):
    """The jittered waiter caps each sleep at the remaining budget, so
    total sleep drift past the timeout is bounded (here: zero, with an
    injected clock)."""
    now = [0.0]
    slept = [0.0]

    def clock():
        return now[0]

    def sleep(seconds):
        assert seconds >= 0.0
        slept[0] += seconds
        now[0] += seconds

    timeout = 1.0
    with pytest.raises(LeaseTimeoutError):
        wait_for(lambda: False, timeout=timeout, poll=0.05,
                 clock=clock, sleep=sleep,
                 rng=random.Random(seed))
    assert slept[0] <= timeout + 1e-9


def test_wait_for_uses_injected_rng_deterministically():
    def run_once():
        sleeps = []
        now = [0.0]

        def sleep(seconds):
            sleeps.append(seconds)
            now[0] += seconds

        with pytest.raises(LeaseTimeoutError):
            wait_for(lambda: False, timeout=0.5, poll=0.05,
                     clock=lambda: now[0], sleep=sleep,
                     rng=random.Random(1234))
        return sleeps

    assert run_once() == run_once()
