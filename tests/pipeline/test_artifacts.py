"""Unit tests for the content-addressed artifact store."""

import json
from pathlib import Path

import pytest

from repro.pipeline import ArtifactStore, STAGE_ORDER


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------

def test_fingerprint_is_stable_across_stores_and_runs():
    params = {"workload": "sha", "scale": 0.1, "seed": 17}
    a = ArtifactStore(None).fingerprint("bbv_profile", params)
    b = ArtifactStore(None).fingerprint("bbv_profile", dict(params))
    assert a == b
    # pinned: a change here means every existing cache silently expires,
    # which must be a deliberate ARTIFACT_FORMAT bump, not an accident
    assert a == "4e989354e32bffe3903051f8"


def test_fingerprint_independent_of_key_order():
    store = ArtifactStore(None)
    forward = store.fingerprint("s", {"a": 1, "b": 2, "c": [3, 4]})
    reverse = store.fingerprint("s", {"c": [3, 4], "b": 2, "a": 1})
    assert forward == reverse


def test_fingerprint_changes_with_any_parameter():
    store = ArtifactStore(None)
    base = store.fingerprint("s", {"a": 1, "b": 2})
    assert store.fingerprint("s", {"a": 1, "b": 3}) != base
    assert store.fingerprint("s", {"a": 1}) != base
    assert store.fingerprint("other", {"a": 1, "b": 2}) != base


def test_fingerprint_normalizes_containers():
    store = ArtifactStore(None)
    assert store.fingerprint("s", {"v": (1, 2)}) == \
        store.fingerprint("s", {"v": [1, 2]})
    assert store.fingerprint("s", {"v": {2, 1}}) == \
        store.fingerprint("s", {"v": [1, 2]})
    assert store.fingerprint("s", {"p": Path("/tmp/x")}) == \
        store.fingerprint("s", {"p": "/tmp/x"})


def test_fingerprint_rejects_unserializable_parameters():
    with pytest.raises(TypeError, match="not.*fingerprintable"):
        ArtifactStore(None).fingerprint("s", {"f": lambda: None})


# ----------------------------------------------------------------------
# hit/miss accounting
# ----------------------------------------------------------------------

def test_fetch_json_counts_miss_then_hits(tmp_path):
    store = ArtifactStore(tmp_path)
    calls = []
    for _ in range(3):
        value = store.fetch_json("stage", "fp1",
                                 compute=lambda: calls.append(1) or {"x": 1})
    assert value == {"x": 1}
    assert len(calls) == 1
    stats = store.stats()["stage"]
    assert (stats.misses, stats.executions, stats.hits) == (1, 1, 2)


def test_fetch_json_disk_hit_in_fresh_process(tmp_path):
    producer = ArtifactStore(tmp_path)
    producer.fetch_json("stage", "fp1", compute=lambda: {"x": 1})
    consumer = ArtifactStore(tmp_path)
    value = consumer.fetch_json(
        "stage", "fp1",
        compute=lambda: pytest.fail("must not recompute"))
    assert value == {"x": 1}
    stats = consumer.stats()["stage"]
    assert (stats.hits, stats.misses) == (1, 0)


def test_memory_only_store_recomputes_across_instances():
    first = ArtifactStore(None)
    first.fetch_json("stage", "fp1", compute=lambda: {"x": 1})
    second = ArtifactStore(None)
    assert second.fetch_json("stage", "fp1",
                             compute=lambda: {"x": 2}) == {"x": 2}


def test_peek_counts_hit_but_never_miss(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.peek_json("stage", "absent") is None
    assert "stage" not in store.stats() or \
        store.stats()["stage"].lookups == 0
    store.put_json("stage", "fp1", {"x": 1})
    assert store.peek_json("stage", "fp1") == {"x": 1}
    assert store.stats()["stage"].hits == 1


def test_import_legacy_counts_and_persists(tmp_path):
    store = ArtifactStore(tmp_path)
    store.import_legacy("stage", "fp1", {"x": 1})
    stats = store.stats()["stage"]
    assert stats.legacy_hits == 1
    assert json.loads(
        (tmp_path / "stage" / "fp1.json").read_text()) == {"x": 1}


def test_stats_merge_from_worker_dict(tmp_path):
    parent = ArtifactStore(tmp_path)
    worker = ArtifactStore(tmp_path)
    worker.fetch_json("stage", "fp1", compute=lambda: {"x": 1})
    parent.merge_stats(worker.stats_dict())
    assert parent.stats()["stage"].executions == 1


# ----------------------------------------------------------------------
# corruption handling
# ----------------------------------------------------------------------

def test_truncated_json_recomputes_without_crashing(tmp_path):
    store = ArtifactStore(tmp_path)
    store.fetch_json("stage", "fp1", compute=lambda: {"x": 1})
    path = tmp_path / "stage" / "fp1.json"
    path.write_text(path.read_text()[:4])

    fresh = ArtifactStore(tmp_path)
    value = fresh.fetch_json("stage", "fp1", compute=lambda: {"x": 2})
    assert value == {"x": 2}
    stats = fresh.stats()["stage"]
    assert (stats.corrupt, stats.executions) == (1, 1)
    # the recomputed artifact replaced the corrupt one on disk
    assert json.loads(path.read_text()) == {"x": 2}


def test_garbage_json_recomputes_without_crashing(tmp_path):
    store = ArtifactStore(tmp_path)
    (tmp_path / "stage").mkdir()
    (tmp_path / "stage" / "fp1.json").write_text("not json at all {{{")
    value = store.fetch_json("stage", "fp1", compute=lambda: {"x": 3})
    assert value == {"x": 3}
    assert store.stats()["stage"].corrupt == 1


def test_decode_error_counts_as_corrupt(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put_json("stage", "fp1", {"x": 1})
    fresh = ArtifactStore(tmp_path)
    value = fresh.fetch_json("stage", "fp1",
                             compute=lambda: "recomputed",
                             decode=lambda payload: payload["missing"])
    assert value == "recomputed"
    assert fresh.stats()["stage"].corrupt == 1


def test_corrupt_dir_artifact_recomputes(tmp_path):
    def save(path, value):
        path.mkdir()
        (path / "data.txt").write_text(value)

    def load(path):
        return (path / "data.txt").read_text()

    store = ArtifactStore(tmp_path)
    store.fetch_dir("ckpt", "fp1", compute=lambda: "payload",
                    save=save, load=load)
    (tmp_path / "ckpt" / "fp1" / "data.txt").unlink()

    fresh = ArtifactStore(tmp_path)
    value = fresh.fetch_dir("ckpt", "fp1", compute=lambda: "recomputed",
                            save=save, load=load)
    assert value == "recomputed"
    stats = fresh.stats()["ckpt"]
    assert (stats.corrupt, stats.executions) == (1, 1)
    assert load(tmp_path / "ckpt" / "fp1") == "recomputed"


# ----------------------------------------------------------------------
# maintenance
# ----------------------------------------------------------------------

def test_artifact_counts_and_invalidate(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put_json("a", "fp1", {"x": 1})
    store.put_json("a", "fp2", {"x": 2})
    store.put_json("b", "fp1", {"x": 3})
    counts = store.artifact_counts()
    assert counts["a"][0] == 2
    assert counts["b"][0] == 1

    assert store.invalidate_stage("a") == 2
    assert store.peek_json("a", "fp1") is None  # memory dropped too
    assert store.peek_json("b", "fp1") == {"x": 3}


def test_clear_removes_everything_including_legacy(tmp_path):
    store = ArtifactStore(tmp_path)
    store.put_json("a", "fp1", {"x": 1})
    (tmp_path / "v11_qsort_MediumBOOM_tage_s1_r17_w1000.json").write_text(
        "{}")
    assert store.clear() == 2
    assert store.artifact_counts() == {}
    assert store.legacy_files() == []


def test_stage_order_covers_known_stages():
    assert STAGE_ORDER == ("bbv_profile", "simpoint_selection",
                          "checkpoints", "detailed_sim", "power_report",
                          "experiment_result")
