"""Stress: N mutually-unaware processes hammering one artifact cache.

The exactly-once guarantee under test: when many processes race to
fetch the same missing fingerprints, each fingerprint's ``compute``
runs in exactly one process (the lease winner); everyone else blocks
and adopts the winner's bytes.  Workers prove their executions with
create-exclusive marker files — a duplicate compute would collide on
the marker (or leave two markers), either of which fails the test.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SweepRunner
from repro.pipeline.artifacts import ArtifactStore
from repro.uarch.config import MEDIUM_BOOM

PROCESSES = 8
FINGERPRINTS = [f"shared-{index:02d}" for index in range(20)]
STAGE = "stress_stage"


def _fetch_worker(args):
    """One process's share of the race: fetch every shared fingerprint."""
    root, exec_log, barrier = args
    store = ArtifactStore(root, lease_poll=0.005)
    barrier.wait()  # maximal contention: everyone starts together
    values = {}
    for fingerprint in FINGERPRINTS:
        def compute(fingerprint=fingerprint):
            # prove this execution happened, exactly once per fp: the
            # create-exclusive open makes a second compute unmissable
            marker = os.path.join(
                exec_log, f"{fingerprint}.by-{os.getpid()}")
            with open(marker, "x") as handle:
                handle.write(str(os.getpid()))
            time.sleep(0.01)  # widen the race window
            return {"fingerprint": fingerprint, "payload": "x" * 64}

        values[fingerprint] = store.fetch_json(STAGE, fingerprint, compute)
    return values


def test_eight_processes_compute_each_artifact_exactly_once(tmp_path):
    cache = tmp_path / "cache"
    exec_log = tmp_path / "exec_log"
    exec_log.mkdir()
    context = multiprocessing.get_context("fork")
    barrier = context.Manager().Barrier(PROCESSES)
    with context.Pool(PROCESSES) as pool:
        all_values = pool.map(
            _fetch_worker,
            [(str(cache), str(exec_log), barrier)] * PROCESSES)

    # exactly one compute per fingerprint across all 8 processes
    markers = sorted(path.name for path in exec_log.iterdir())
    executed = [name.split(".by-")[0] for name in markers]
    assert sorted(executed) == sorted(FINGERPRINTS), \
        f"duplicate or missing computes: {markers}"

    # every process saw every artifact, byte-identical to the winner's
    for fingerprint in FINGERPRINTS:
        on_disk = json.loads(
            (cache / STAGE / f"{fingerprint}.json").read_text())
        for values in all_values:
            assert values[fingerprint] == on_disk

    # no claims left behind (steal-lock and scratch bookkeeping files
    # may linger; only *.lease files are live claims)
    lease_dir = cache / "leases" / STAGE
    leftover = sorted(lease_dir.glob("*.lease")) \
        if lease_dir.exists() else []
    assert leftover == [], f"claims left behind: {leftover}"


def _sweep_worker(args):
    root, out_path = args
    runner = SweepRunner(FlowSettings(scale=0.05), cache_dir=root)
    results = runner.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"])
    ((_, result),) = results.items()
    with open(out_path, "w") as handle:
        json.dump(result.to_dict(), handle, sort_keys=True)
    executions = sum(stats.executions
                     for stats in runner.store.stats().values())
    return executions


@pytest.mark.slow
def test_concurrent_sweeps_share_one_cache(tmp_path):
    """Two unaware sweep processes: work dedupes, results agree."""
    cache = tmp_path / "cache"
    outputs = [tmp_path / "a.json", tmp_path / "b.json"]
    context = multiprocessing.get_context("fork")
    with context.Pool(2) as pool:
        executions = pool.map(
            _sweep_worker,
            [(str(cache), str(path)) for path in outputs])
    first, second = (json.loads(path.read_text()) for path in outputs)
    assert first == second
    # the experiment pipeline has 6 stages: one full sweep executes all
    # of them; dedupe means the pair together executed each at most once
    assert sum(executions) <= 6
