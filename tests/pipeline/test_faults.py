"""Tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.errors import PERMANENT, TRANSIENT, classify_failure
from repro.pipeline.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFailure,
    parse_fault_spec,
)


# ----------------------------------------------------------------------
# spec parsing
# ----------------------------------------------------------------------

def test_parse_minimal_spec():
    (spec,) = parse_fault_spec("worker.experiment:crash")
    assert spec.site == "worker.experiment"
    assert spec.kind == "crash"
    assert spec.probability == 1.0
    assert spec.max_fires == 1
    assert spec.key_filter is None


def test_parse_full_spec():
    specs = parse_fault_spec(
        "artifact.read:io:p=0.5:n=3,worker.experiment:hang:s=2:k=qsort")
    assert specs[0] == FaultSpec("artifact.read", "io", probability=0.5,
                                 max_fires=3)
    assert specs[1].seconds == 2.0
    assert specs[1].key_filter == "qsort"


@pytest.mark.parametrize("bad", [
    "justasite",                  # no kind
    "site:explode",               # unknown kind
    "site:io:x=1",                # unknown option
    "site:io:p=",                 # empty value
    "site:io:p=1.5",              # probability out of range
])
def test_parse_rejects_malformed_specs(bad):
    with pytest.raises(ValueError):
        parse_fault_spec(bad)


def test_env_spec(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "artifact.read:io")
    monkeypatch.setenv("REPRO_FAULT_SEED", "7")
    spec, seed = FaultInjector.env_spec()
    assert spec == "artifact.read:io"
    assert seed == 7
    monkeypatch.delenv("REPRO_FAULTS")
    spec, seed = FaultInjector.env_spec()
    assert spec is None


def test_env_spec_rejects_malformed(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "nonsense")
    with pytest.raises(ValueError):
        FaultInjector.env_spec()


# ----------------------------------------------------------------------
# deterministic decisions
# ----------------------------------------------------------------------

def test_probability_draw_is_deterministic():
    spec = FaultSpec("artifact.read", "io", probability=0.5, max_fires=0)
    a = FaultInjector([spec], seed=1)
    b = FaultInjector([spec], seed=1)
    keys = [f"stage/fp{i}" for i in range(64)]
    decisions_a = [a.decide("artifact.read", key) is not None
                   for key in keys]
    decisions_b = [b.decide("artifact.read", key) is not None
                   for key in keys]
    assert decisions_a == decisions_b
    # p=0.5 over 64 keys fires for some but not all
    assert any(decisions_a) and not all(decisions_a)


def test_different_seed_changes_decisions():
    spec = FaultSpec("artifact.read", "io", probability=0.5, max_fires=0)
    keys = [f"stage/fp{i}" for i in range(64)]
    one = [FaultInjector([spec], seed=1).decide("artifact.read", k)
           is not None for k in keys]
    two = [FaultInjector([spec], seed=2).decide("artifact.read", k)
           is not None for k in keys]
    assert one != two


def test_zero_probability_never_fires():
    spec = FaultSpec("artifact.read", "io", probability=0.0, max_fires=0)
    injector = FaultInjector([spec], seed=0)
    assert all(injector.decide("artifact.read", f"k{i}") is None
               for i in range(32))


def test_site_and_kind_filtering():
    spec = FaultSpec("artifact.read", "io")
    injector = FaultInjector([spec], seed=0)
    assert injector.decide("artifact.write", "k") is None
    assert injector.decide("artifact.read", "k", kinds=("corrupt",)) is None


def test_key_filter_restricts_fires():
    spec = FaultSpec("worker.experiment", "io", key_filter="qsort",
                     max_fires=0)
    injector = FaultInjector([spec], seed=0)
    assert injector.decide("worker.experiment", "sha/MediumBOOM") is None
    assert injector.decide("worker.experiment",
                           "qsort/MediumBOOM") is not None


# ----------------------------------------------------------------------
# fire caps (in-memory and cross-process marker files)
# ----------------------------------------------------------------------

def test_max_fires_in_memory():
    spec = FaultSpec("artifact.read", "io", max_fires=2)
    injector = FaultInjector([spec], seed=0)
    fired = [injector.decide("artifact.read", f"k{i}") is not None
             for i in range(5)]
    assert fired.count(True) == 2
    assert fired == [True, True, False, False, False]


def test_max_fires_shared_across_instances_via_state_dir(tmp_path):
    """Two injector instances (= two worker processes) share the cap."""
    spec = FaultSpec("worker.experiment", "crash", max_fires=1)
    first = FaultInjector([spec], seed=0, state_dir=tmp_path)
    second = FaultInjector([spec], seed=0, state_dir=tmp_path)
    assert first.decide("worker.experiment", "a") is not None
    assert second.decide("worker.experiment", "a") is None
    assert second.decide("worker.experiment", "b") is None


def test_unlimited_fires():
    spec = FaultSpec("artifact.read", "io", max_fires=0)
    injector = FaultInjector([spec], seed=0)
    assert all(injector.decide("artifact.read", f"k{i}") is not None
               for i in range(10))


# ----------------------------------------------------------------------
# actions
# ----------------------------------------------------------------------

def test_inject_io_raises_transient_oserror():
    injector = FaultInjector([FaultSpec("site", "io")], seed=0)
    with pytest.raises(OSError) as excinfo:
        injector.inject("site", "key")
    assert classify_failure(excinfo.value) == TRANSIENT


def test_inject_fail_raises_permanent():
    injector = FaultInjector([FaultSpec("site", "fail")], seed=0)
    with pytest.raises(InjectedFailure) as excinfo:
        injector.inject("site", "key")
    assert classify_failure(excinfo.value) == PERMANENT


def test_inject_hang_sleeps():
    injector = FaultInjector([FaultSpec("site", "hang", seconds=0.05)],
                             seed=0)
    started = time.monotonic()
    injector.inject("site", "key")
    assert time.monotonic() - started >= 0.04


def test_inject_noop_when_nothing_configured():
    injector = FaultInjector([], seed=0)
    injector.inject("site", "key")  # must not raise


def test_corrupt_file_garbles_payload(tmp_path):
    path = tmp_path / "artifact.json"
    path.write_text('{"good": true}')
    injector = FaultInjector([FaultSpec("artifact.write", "corrupt")],
                             seed=0)
    assert injector.corrupt_file("artifact.write", "key", path)
    import json

    with pytest.raises(ValueError):
        json.loads(path.read_text())


def test_corrupt_is_not_fired_by_inject(tmp_path):
    """corrupt is a write post-condition, never an exception."""
    injector = FaultInjector([FaultSpec("artifact.write", "corrupt")],
                             seed=0)
    injector.inject("artifact.write", "key")  # must not raise or claim
    path = tmp_path / "artifact.json"
    path.write_text("{}")
    assert injector.corrupt_file("artifact.write", "key", path)


def test_from_settings_none_without_spec():
    class Settings:
        faults = None
        fault_seed = 0

    assert FaultInjector.from_settings(Settings(), None) is None


def test_from_settings_builds_state_dir(tmp_path):
    class Settings:
        faults = "artifact.read:io"
        fault_seed = 3

    injector = FaultInjector.from_settings(Settings(), tmp_path)
    assert injector.seed == 3
    assert injector.state_dir == tmp_path / "fault_state"


# ----------------------------------------------------------------------
# concurrency fault kinds (lock-steal, torn-commit, disk-full)
# ----------------------------------------------------------------------

def test_plant_stale_lease_forges_dead_owner(tmp_path):
    from repro.pipeline.locking import WorkClaims

    injector = FaultInjector(parse_fault_spec("lease.claim:lock-steal:n=1"))
    path = tmp_path / "leases" / "stage" / "fp.lease"
    assert injector.plant_stale_lease("lease.claim", "stage/fp", path)
    holder = WorkClaims.holder(path)
    assert holder["boot_id"] == "injected-dead-boot"
    # one-shot by default
    assert not injector.plant_stale_lease("lease.claim", "stage/fp", path)


def test_lock_steal_fault_exercises_reclamation(tmp_path):
    """A store facing a planted dead lease steals it and still computes."""
    from repro.pipeline.artifacts import ArtifactStore

    injector = FaultInjector(parse_fault_spec("lease.claim:lock-steal:n=1"),
                             state_dir=tmp_path / "fault_state")
    store = ArtifactStore(tmp_path, faults=injector)
    value = store.fetch_json("stage", "fp", lambda: {"answer": 42})
    assert value == {"answer": 42}
    assert not store.claims.lease_path("stage", "fp").exists()


def test_torn_commit_leaves_recoverable_state(tmp_path):
    """torn-commit = garbage at final path + open journal claim + OSError."""
    from repro.pipeline.artifacts import ArtifactStore
    from repro.pipeline.journal import (
        journal_files,
        open_intents,
        read_journal,
    )

    injector = FaultInjector(
        parse_fault_spec("artifact.write:torn-commit:n=1"),
        state_dir=tmp_path / "fault_state")
    store = ArtifactStore(tmp_path, faults=injector)
    with pytest.raises(OSError) as excinfo:
        store.put_json("stage", "fp", {"clean": True})
    assert classify_failure(excinfo.value) == TRANSIENT
    path = store.json_path("stage", "fp")
    with pytest.raises(ValueError):
        __import__("json").loads(path.read_text())  # garbage on disk
    (journal,) = journal_files(tmp_path)
    (pending,) = open_intents(read_journal(journal))
    assert pending.fingerprint == "fp"


def test_disk_full_fault_fires_once():
    injector = FaultInjector(parse_fault_spec("guard.disk:disk-full:n=1"))
    assert injector.disk_full("guard.disk", "any")
    assert not injector.disk_full("guard.disk", "any")


def test_disk_full_fault_drives_guard():
    from repro.errors import DiskSpaceError
    from repro.flow.guardrails import ResourceGuard

    injector = FaultInjector(parse_fault_spec("guard.disk:disk-full:n=1"))
    guard = ResourceGuard("/tmp", faults=injector)
    assert guard.active  # an injector alone arms the guard
    with pytest.raises(DiskSpaceError):
        guard.preflight_disk("k")
    guard.preflight_disk("k")  # fault exhausted, disk genuinely fine
