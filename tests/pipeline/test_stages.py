"""Tests for the staged experiment pipeline: sharing, fingerprint
chaining, serializer round-trips and warm-run behavior."""

import numpy as np
import pytest

from repro.flow.experiment import FlowSettings
from repro.pipeline import (
    ArtifactStore,
    ExperimentPipeline,
    PAPER_COUNTERPART,
    STAGE_ORDER,
    WORKLOAD_STAGES,
)
from repro.pipeline.stages import (
    profile_from_dict,
    profile_to_dict,
    selection_from_dict,
    selection_to_dict,
)
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM

SETTINGS = FlowSettings(scale=0.1)


def _pipeline(root=None):
    return ExperimentPipeline(ArtifactStore(root), SETTINGS)


# ----------------------------------------------------------------------
# fingerprint chaining
# ----------------------------------------------------------------------

def test_workload_stage_fingerprints_ignore_config():
    pipeline = _pipeline()
    assert pipeline.profile_fingerprint("sha") == \
        _pipeline().profile_fingerprint("sha")
    assert pipeline.checkpoint_fingerprint("sha") == \
        _pipeline().checkpoint_fingerprint("sha")


def test_result_fingerprint_differs_by_config_and_predictor():
    pipeline = _pipeline()
    base = pipeline.result_fingerprint("sha", MEDIUM_BOOM)
    assert pipeline.result_fingerprint("sha", MEGA_BOOM) != base
    assert pipeline.result_fingerprint(
        "sha", MEDIUM_BOOM.with_predictor("gshare")) != base


def test_settings_change_propagates_to_every_stage():
    """Fingerprints chain: a selection-only knob reaches the result."""
    tweaked = ExperimentPipeline(ArtifactStore(None),
                                 FlowSettings(scale=0.1, bic_threshold=0.7))
    base = _pipeline()
    assert tweaked.selection_fingerprint("sha") != \
        base.selection_fingerprint("sha")
    assert tweaked.checkpoint_fingerprint("sha") != \
        base.checkpoint_fingerprint("sha")
    assert tweaked.result_fingerprint("sha", MEDIUM_BOOM) != \
        base.result_fingerprint("sha", MEDIUM_BOOM)


def test_fingerprints_computed_without_running_stages():
    pipeline = _pipeline()
    pipeline.result_fingerprint("sha", MEDIUM_BOOM)
    assert all(stats.executions == 0
               for stats in pipeline.store.stats().values())


# ----------------------------------------------------------------------
# serializer round-trips
# ----------------------------------------------------------------------

def test_profile_roundtrip_through_json():
    import json

    original = _pipeline().profile("qsort")
    data = json.loads(json.dumps(profile_to_dict(original)))
    restored = profile_from_dict(data)
    assert restored.total_instructions == original.total_instructions
    assert restored.interval_size == original.interval_size
    assert len(restored.vectors) == len(original.vectors)
    assert restored.vectors[0] == original.vectors[0]


def test_selection_roundtrip_through_json():
    import json

    pipeline = _pipeline()
    original = pipeline.selection("qsort")
    data = json.loads(json.dumps(selection_to_dict(original)))
    restored = selection_from_dict(data)
    assert restored.chosen_k == original.chosen_k
    assert [p.interval_index for p in restored.points] == \
        [p.interval_index for p in original.points]
    assert np.array_equal(restored.labels, original.labels)
    assert restored.bic_scores == original.bic_scores


# ----------------------------------------------------------------------
# sharing and warm runs
# ----------------------------------------------------------------------

def test_workload_stages_shared_across_configs(tmp_path):
    pipeline = _pipeline(tmp_path)
    for config in (MEDIUM_BOOM, MEGA_BOOM,
                   MEDIUM_BOOM.with_predictor("gshare")):
        pipeline.result("qsort", config)
    stats = pipeline.store.stats()
    for stage in WORKLOAD_STAGES:
        assert stats[stage].executions == 1, stage
    assert stats["detailed_sim"].executions == 3


def test_warm_pipeline_only_touches_result_stage(tmp_path):
    _pipeline(tmp_path).result("qsort", MEDIUM_BOOM)
    warm = _pipeline(tmp_path)
    warm.result("qsort", MEDIUM_BOOM)
    stats = warm.store.stats()
    assert stats["experiment_result"].hits == 1
    assert sum(s.executions for s in stats.values()) == 0
    # upstream stages were never even consulted
    for stage in WORKLOAD_STAGES:
        assert stage not in stats or stats[stage].lookups == 0


def test_prepare_then_result_adds_no_extra_executions(tmp_path):
    pipeline = _pipeline(tmp_path)
    assert not pipeline.workload_prepared("qsort")
    pipeline.prepare_workload("qsort")
    assert pipeline.workload_prepared("qsort")
    prepared = {stage: stats.executions
                for stage, stats in pipeline.store.stats().items()}
    pipeline.result("qsort", MEDIUM_BOOM)
    stats = pipeline.store.stats()
    for stage in WORKLOAD_STAGES:
        assert stats[stage].executions == prepared[stage]


def test_adopted_workload_artifacts_are_reused():
    source = _pipeline()
    source.prepare_workload("qsort")
    target = _pipeline()
    target.adopt_workload("qsort",
                          selection=source.selection("qsort"),
                          checkpoints=source.checkpoints("qsort"))
    result = target.result("qsort", MEDIUM_BOOM)
    stats = target.store.stats()
    assert stats["simpoint_selection"].executions == 0
    assert stats["checkpoints"].executions == 0
    assert result.to_json() == source.result("qsort", MEDIUM_BOOM).to_json()


def test_peek_result_does_not_compute(tmp_path):
    pipeline = _pipeline(tmp_path)
    assert pipeline.peek_result("qsort", MEDIUM_BOOM) is None
    pipeline.result("qsort", MEDIUM_BOOM)
    fresh = _pipeline(tmp_path)
    peeked = fresh.peek_result("qsort", MEDIUM_BOOM)
    assert peeked is not None
    assert fresh.store.stats()["experiment_result"].executions == 0


def test_result_fallback_is_migrated_once(tmp_path):
    produced = _pipeline().result("qsort", MEDIUM_BOOM)
    calls = []

    def fallback():
        calls.append(1)
        return produced

    pipeline = _pipeline(tmp_path)
    first = pipeline.result("qsort", MEDIUM_BOOM, fallback=fallback)
    assert first.to_json() == produced.to_json()
    assert len(calls) == 1
    assert pipeline.store.stats()["experiment_result"].legacy_hits == 1

    again = _pipeline(tmp_path).result(
        "qsort", MEDIUM_BOOM,
        fallback=lambda: pytest.fail("cached: fallback must not run"))
    assert again.to_json() == produced.to_json()


# ----------------------------------------------------------------------
# stage metadata
# ----------------------------------------------------------------------

def test_every_stage_has_a_paper_counterpart():
    assert set(PAPER_COUNTERPART) == set(STAGE_ORDER)
    assert "gem5" in PAPER_COUNTERPART["bbv_profile"]
    assert "Spike" in PAPER_COUNTERPART["checkpoints"]
