"""Tests for the write-ahead intent journal and crash recovery."""

import json
import multiprocessing
import os

from repro.pipeline.journal import (
    IntentJournal,
    QUARANTINE_DIR_NAME,
    RecoveryReport,
    open_intents,
    read_journal,
    recover_cache,
)
from repro.pipeline.locking import WorkClaims, boot_id


def _dead_pid():
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join()
    return proc.pid


def _dead_journal(cache, records, pid=None):
    """Write a journal file owned by a provably dead process."""
    pid = pid if pid is not None else _dead_pid()
    directory = cache / "journal"
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"intents-{boot_id()[:8]}-{pid}.jsonl"
    path.write_text("".join(json.dumps(record) + "\n"
                            for record in records))
    return path


# ----------------------------------------------------------------------
# journal append / read
# ----------------------------------------------------------------------

def test_claim_commit_round_trip(tmp_path):
    journal = IntentJournal(tmp_path)
    journal.claim("stage", "fp", tmp_path / "stage" / "fp.json")
    journal.commit("stage", "fp")
    journal.close()
    (path,) = list((tmp_path / "journal").glob("intents-*.jsonl"))
    records = read_journal(path)
    assert [record.op for record in records] == ["claim", "commit"]
    assert records[0].pid == os.getpid()
    assert records[0].path.endswith("fp.json")
    assert open_intents(records) == []


def test_aborted_claim_is_settled(tmp_path):
    journal = IntentJournal(tmp_path)
    journal.claim("stage", "fp", tmp_path / "x")
    journal.abort("stage", "fp")
    journal.close()
    (path,) = list((tmp_path / "journal").glob("intents-*.jsonl"))
    assert open_intents(read_journal(path)) == []


def test_memory_only_journal_is_inert(tmp_path):
    journal = IntentJournal(None)
    journal.claim("stage", "fp", tmp_path / "x")  # must not raise
    journal.close()


def test_torn_trailing_line_is_ignored(tmp_path):
    path = _dead_journal(tmp_path, [
        {"op": "claim", "stage": "s", "fingerprint": "f", "path": "p"}])
    with open(path, "a") as handle:
        handle.write('{"op": "commit", "stage"')  # the kill landed here
    records = read_journal(path)
    assert [record.op for record in records] == ["claim"]


def test_open_intents_finds_unsettled_claims(tmp_path):
    path = _dead_journal(tmp_path, [
        {"op": "claim", "stage": "s", "fingerprint": "done", "path": "a"},
        {"op": "commit", "stage": "s", "fingerprint": "done"},
        {"op": "claim", "stage": "s", "fingerprint": "torn", "path": "b"},
    ])
    (pending,) = open_intents(read_journal(path))
    assert pending.fingerprint == "torn"


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------

def test_recover_clean_cache_reports_clean(tmp_path):
    report = recover_cache(tmp_path)
    assert isinstance(report, RecoveryReport)
    assert report.clean
    assert "clean" in report.format()


def test_recover_quarantines_torn_artifact_of_dead_owner(tmp_path):
    artifact = tmp_path / "power_report" / "abc123.json"
    artifact.parent.mkdir(parents=True)
    artifact.write_text('{"torn": tru')  # the garbage the kill left
    _dead_journal(tmp_path, [
        {"op": "claim", "stage": "power_report", "fingerprint": "abc123",
         "path": str(artifact)}])
    report = recover_cache(tmp_path)
    assert not artifact.exists()
    assert report.quarantined == ["power_report/abc123.json"]
    assert report.journals_removed == 1
    quarantined = list((tmp_path / QUARANTINE_DIR_NAME).rglob("*"))
    assert any(entry.is_file() for entry in quarantined)
    # idempotent: a second pass finds nothing left to do
    assert recover_cache(tmp_path).clean


def test_recover_keeps_committed_artifacts(tmp_path):
    artifact = tmp_path / "power_report" / "good.json"
    artifact.parent.mkdir(parents=True)
    artifact.write_text("{}")
    _dead_journal(tmp_path, [
        {"op": "claim", "stage": "power_report", "fingerprint": "good",
         "path": str(artifact)},
        {"op": "commit", "stage": "power_report", "fingerprint": "good"}])
    report = recover_cache(tmp_path)
    assert artifact.exists()
    assert report.quarantined == []
    assert report.journals_removed == 1  # dead journal still retired


def test_recover_spares_live_processes(tmp_path):
    journal = IntentJournal(tmp_path)
    artifact = tmp_path / "stage" / "inflight.json"
    artifact.parent.mkdir(parents=True)
    artifact.write_text("{}")
    journal.claim("stage", "inflight", artifact)  # we are alive
    claims = WorkClaims(tmp_path)
    lease = claims.claim("stage", "inflight")
    report = recover_cache(tmp_path)
    assert artifact.exists()
    assert report.quarantined == []
    assert report.leases_released == 0
    assert lease.path.exists()
    journal.close()
    lease.release()


def test_recover_releases_dead_leases(tmp_path):
    claims = WorkClaims(tmp_path)
    path = claims.lease_path("stage", "fp")
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"pid": _dead_pid(),
                                "boot_id": boot_id()}))
    report = recover_cache(tmp_path)
    assert report.leases_released == 1
    assert not path.exists()


def test_recover_removes_dead_tmp_strays(tmp_path):
    pid = _dead_pid()
    stage = tmp_path / "checkpoints"
    stage.mkdir()
    stray_dir = stage / f"abc.tmp{pid}"
    stray_dir.mkdir()
    (stray_dir / "blob.ckpt").write_text("half")
    stray_file = tmp_path / f"sweep_state.json.tmp{pid}"
    stray_file.write_text("{")
    live = stage / f"def.tmp{os.getpid()}"
    live.mkdir()
    report = recover_cache(tmp_path)
    assert report.tmp_removed == 2
    assert not stray_dir.exists() and not stray_file.exists()
    assert live.exists()  # our own in-flight build is not a fault


def test_recover_marks_dead_running_sweep_interrupted(tmp_path):
    state = tmp_path / "sweep_state.json"
    state.write_text(json.dumps({
        "sweep_id": "x", "status": "running",
        "owner": {"pid": _dead_pid(), "boot_id": boot_id()}}))
    report = recover_cache(tmp_path)
    assert report.state_repaired
    assert json.loads(state.read_text())["status"] == "interrupted"


def test_recover_leaves_live_running_sweep_alone(tmp_path):
    state = tmp_path / "sweep_state.json"
    state.write_text(json.dumps({
        "sweep_id": "x", "status": "running",
        "owner": {"pid": os.getpid(), "boot_id": boot_id()}}))
    report = recover_cache(tmp_path)
    assert not report.state_repaired
    assert json.loads(state.read_text())["status"] == "running"


def test_recover_quarantines_unparseable_sweep_state(tmp_path):
    state = tmp_path / "sweep_state.json"
    state.write_text("{half a json")
    report = recover_cache(tmp_path)
    assert report.state_repaired
    assert not state.exists()


def test_recover_repairs_dangling_latest_pointer(tmp_path):
    obs = tmp_path / "obs"
    obs.mkdir()
    (obs / "latest").write_text("20250101-000000-sweep-1\n")
    report = recover_cache(tmp_path)
    assert report.pointer_repaired
    assert not (obs / "latest").exists()


def test_recover_keeps_valid_latest_pointer(tmp_path):
    obs = tmp_path / "obs"
    (obs / "run-1").mkdir(parents=True)
    (obs / "latest").write_text("run-1\n")
    report = recover_cache(tmp_path)
    assert not report.pointer_repaired
    assert (obs / "latest").exists()
