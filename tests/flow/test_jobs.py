"""Job-shaped entry points: JobRequest -> result document."""

import json

import pytest

from repro.flow.jobs import JobLimits, run_job
from repro.flow.sweep import SweepRunner
from repro.serve.protocol import JobRequest


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return tmp_path_factory.mktemp("jobs-cache")


class TestJobLimits:
    def test_defaults(self):
        limits = JobLimits()
        assert limits.jobs_cap == 1
        assert limits.policy() is None

    def test_retries_become_a_policy(self):
        limits = JobLimits(retries=2)
        assert limits.policy().max_attempts == 3

    def test_jobs_cap_floors_at_one(self):
        assert JobLimits(jobs_cap=0).jobs_cap == 1


class TestSweepJob:
    def test_document_shape(self, cache):
        request = JobRequest.from_dict(
            {"kind": "sweep", "scale": 0.05, "workloads": ["sha"],
             "configs": ["SmallBOOM"]})
        document = run_job(request, cache)
        assert document["kind"] == "sweep"
        assert document["ok"] is True
        assert list(document["results"]) == ["sha/SmallBOOM"]
        assert document["manifest"]["experiments"] == 1
        assert "summary" in document
        json.dumps(document)  # strictly JSON-able

    def test_request_round_trips_in_document(self, cache):
        request = JobRequest.from_dict(
            {"kind": "sweep", "scale": 0.05, "workloads": ["sha"],
             "configs": ["SmallBOOM"]})
        document = run_job(request, cache)
        assert JobRequest.from_dict(document["request"]) == request

    def test_runner_hook_sees_the_runner(self, cache):
        request = JobRequest.from_dict(
            {"kind": "sweep", "scale": 0.05, "workloads": ["sha"],
             "configs": ["SmallBOOM"]})
        seen = {}
        run_job(request, cache,
                runner_hook=lambda runner: seen.update(runner=runner))
        assert isinstance(seen["runner"], SweepRunner)
        assert seen["runner"].progress()["status"] == "complete"

    def test_jobs_clamped_by_limits(self, cache):
        request = JobRequest.from_dict(
            {"kind": "sweep", "scale": 0.05, "workloads": ["sha"],
             "configs": ["SmallBOOM"], "jobs": 64})
        # would try to spawn 64 workers without the cap; with cap 1 it
        # runs serially and still succeeds
        document = run_job(request, cache, limits=JobLimits(jobs_cap=1))
        assert document["ok"] is True


class TestDseJob:
    def test_document_shape(self, cache):
        request = JobRequest.from_dict(
            {"kind": "dse", "scale": 0.05, "workloads": ["sha"],
             "points": 2, "base": "SmallBOOM"})
        document = run_job(request, cache)
        assert document["kind"] == "dse"
        assert document["ok"] is True
        frontier = document["frontier"]
        assert frontier["points"]
        json.dumps(document)

    def test_same_request_same_document(self, cache):
        request = JobRequest.from_dict(
            {"kind": "dse", "scale": 0.05, "workloads": ["sha"],
             "points": 2, "base": "SmallBOOM"})
        first = run_job(request, cache)
        second = run_job(request, cache)
        # timing fields differ run to run; the scientific payload must
        # be byte-identical
        assert json.dumps(first["frontier"]["points"], sort_keys=True) \
            == json.dumps(second["frontier"]["points"], sort_keys=True)
        assert first["request"] == second["request"]
