"""Interrupted-sweep lifecycle: signal handling and clean settlement.

The headline regression test kills a real ``repro-cli sweep`` child
mid-run and asserts the contract the bugfix introduced: distinct exit
code, ``sweep_state.json`` marked ``interrupted`` (never left at
``running``), no held leases and no open journal intents — i.e.
nothing for ``repro-cli recover`` to do.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import (
    EXIT_INTERRUPTED,
    SweepInterrupted,
    exit_code_for,
)
from repro.flow.interrupt import InterruptGuard
from repro.pipeline.journal import (
    IntentJournal,
    journal_files,
    open_intents,
    read_journal,
)
from repro.pipeline.locking import (
    WorkClaims,
    held_leases,
    release_held,
)


class TestInterruptGuard:
    def test_handler_raises_sweep_interrupted(self):
        with pytest.raises(SweepInterrupted) as excinfo:
            with InterruptGuard() as guard:
                assert guard.installed
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5.0)  # the signal interrupts this
        assert excinfo.value.signal_name == "SIGTERM"

    def test_previous_dispositions_restored(self):
        before = [signal.getsignal(s) for s in InterruptGuard.SIGNALS]
        with InterruptGuard():
            pass
        after = [signal.getsignal(s) for s in InterruptGuard.SIGNALS]
        assert after == before

    def test_noop_off_the_main_thread(self):
        seen = {}

        def worker():
            with InterruptGuard() as guard:
                seen["installed"] = guard.installed

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["installed"] is False

    def test_triggered_records_the_signal(self):
        guard = InterruptGuard()
        with pytest.raises(SweepInterrupted):
            with guard:
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(5.0)
        assert guard.triggered == "SIGINT"

    def test_forked_child_dies_quietly(self):
        # Pool workers fork while the parent's guard is live; the
        # inherited handler must not raise SweepInterrupted there but
        # restore the default disposition and die by the signal.
        with pytest.raises(SweepInterrupted):
            with InterruptGuard():
                ready_r, ready_w = os.pipe()
                pid = os.fork()
                if pid == 0:  # child: announce readiness, wait to be killed
                    os.close(ready_r)
                    os.write(ready_w, b"x")
                    time.sleep(30.0)
                    os._exit(1)  # pragma: no cover - should never run
                os.close(ready_w)
                # A SIGTERM racing fork() is swallowed by CPython's
                # after-fork signal reset; wait for the child's byte.
                os.read(ready_r, 1)
                os.close(ready_r)
                os.kill(pid, signal.SIGTERM)
                _, status = os.waitpid(pid, 0)
                assert os.WIFSIGNALED(status)
                assert os.WTERMSIG(status) == signal.SIGTERM
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5.0)


class TestExitCodes:
    def test_interrupt_maps_to_its_own_code(self):
        assert exit_code_for(SweepInterrupted("SIGTERM")) == \
            EXIT_INTERRUPTED
        assert exit_code_for(KeyboardInterrupt()) == EXIT_INTERRUPTED


class TestHeldLeaseRegistry:
    def test_acquired_lease_is_tracked_and_released(self, tmp_path):
        claims = WorkClaims(tmp_path)
        lease = claims.claim("sim", "deadbeef")
        assert lease is not None
        assert lease in held_leases()
        lease.release()
        assert lease not in held_leases()

    def test_release_held_sweeps_everything(self, tmp_path):
        claims = WorkClaims(tmp_path)
        leases = [claims.claim("sim", f"fp{i}") for i in range(3)]
        assert all(leases)
        assert release_held() >= 3
        assert held_leases() == []
        # lease files are gone too: a fresh claim succeeds
        assert claims.claim("sim", "fp0") is not None
        release_held()


class TestJournalAbortOpen:
    def test_abort_open_settles_unfinished_intents(self, tmp_path):
        journal = IntentJournal(tmp_path)
        journal.claim("sim", "aaaa", tmp_path / "aaaa.json")
        journal.claim("sim", "bbbb", tmp_path / "bbbb.json")
        journal.commit("sim", "aaaa")
        assert journal.open_count() == 1
        assert journal.abort_open() == 1
        assert journal.open_count() == 0

    def test_abort_open_idempotent(self, tmp_path):
        journal = IntentJournal(tmp_path)
        assert journal.abort_open() == 0


class TestKilledSweepRegression:
    """SIGTERM a real sweep child; the settled-state contract holds."""

    @pytest.mark.parametrize("sig", [signal.SIGTERM, signal.SIGINT])
    def test_killed_child_settles_cleanly(self, tmp_path, sig):
        cache = tmp_path / "cache"
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "--scale", "0.4",
             "--cache-dir", str(cache), "sweep"],
            env=env, cwd=Path(__file__).resolve().parents[2],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        state_path = cache / "sweep_state.json"
        deadline = time.monotonic() + 60.0
        while not state_path.exists():
            assert time.monotonic() < deadline, "sweep never started"
            assert proc.poll() is None, proc.communicate()[1]
            time.sleep(0.02)
        proc.send_signal(sig)
        stdout, stderr = proc.communicate(timeout=60.0)

        assert proc.returncode == EXIT_INTERRUPTED, (stdout, stderr)
        state = json.loads(state_path.read_text())
        assert state["status"] == "interrupted"
        # no held leases survive the child
        assert list(cache.glob("leases/*.lease")) == []
        # no open journal intents: every claim was committed or aborted
        remaining = [record for path in journal_files(cache)
                     for record in open_intents(read_journal(path))]
        assert remaining == []
        # the operator message names the signal and the exit code
        assert "interrupted by" in stderr
        # the cache is usable immediately, no recover step: resume runs
        resume = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--scale", "0.4",
             "--cache-dir", str(cache), "sweep", "--resume",
             "--workloads", "sha"],
            env=env, cwd=Path(__file__).resolve().parents[2],
            capture_output=True, text=True, timeout=120.0)
        assert resume.returncode == 0, resume.stderr
