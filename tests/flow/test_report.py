"""Tests for the markdown report generator and energy metrics."""

import pytest

from repro.analysis.efficiency import (
    energy_delay_product,
    energy_delay_squared,
    energy_per_instruction_pj,
)
from repro.flow.experiment import FlowSettings
from repro.flow.report import generate_report
from repro.flow.sweep import SweepRunner


@pytest.fixture(scope="module")
def report_text(tmp_path_factory):
    cache = tmp_path_factory.mktemp("cache")
    runner = SweepRunner(FlowSettings(scale=0.06), cache_dir=cache)
    return generate_report(runner)


def test_report_contains_every_section(report_text):
    for heading in ("Table I", "Table II", "Figs. 5-7", "Fig. 8",
                    "Fig. 9", "Fig. 10", "Fig. 11", "Energy metrics",
                    "SimPoint speedup", "Key takeaways",
                    "Efficiency summary"):
        assert heading in report_text, heading


def test_report_mentions_all_workloads_and_configs(report_text):
    from repro.workloads.suite import workload_names

    for workload in workload_names():
        assert workload in report_text
    for config in ("MediumBOOM", "LargeBOOM", "MegaBOOM"):
        assert config in report_text


def test_report_is_markdown(report_text):
    assert report_text.startswith("# Study report")
    assert "| Benchmark |" in report_text
    assert "```" in report_text


class TestEnergyMetrics:
    def make_result(self, ipc=2.0, tile_mw=40.0):
        from repro.flow.results import ExperimentResult, SimPointRun
        from repro.power.report import ComponentPower, PowerReport

        result = ExperimentResult(
            workload="w", config_name="MegaBOOM", scale=1.0,
            total_instructions=1000, interval_size=100, num_intervals=10,
            chosen_k=1, coverage=1.0)
        report = PowerReport(config_name="MegaBOOM", workload="w",
                             cycles=100)
        report.components["x"] = ComponentPower(0.0, 0.0, tile_mw)
        result.runs = [SimPointRun(
            interval_index=0, weight=1.0, warmup_instructions=0,
            measured_instructions=200, cycles=100, ipc=ipc, report=report)]
        return result

    def test_energy_per_instruction(self):
        result = self.make_result(ipc=2.0, tile_mw=40.0)
        # 40 mW / (2 * 500 MHz) = 40 pJ per instruction.
        assert energy_per_instruction_pj(result) == pytest.approx(40.0)

    def test_edp_and_ed2p_ordering(self):
        fast = self.make_result(ipc=4.0, tile_mw=40.0)
        slow = self.make_result(ipc=1.0, tile_mw=40.0)
        assert energy_delay_product(fast) < energy_delay_product(slow)
        # ED^2P penalizes the slow design even harder.
        ratio_edp = energy_delay_product(slow) / energy_delay_product(fast)
        ratio_ed2p = energy_delay_squared(slow) / \
            energy_delay_squared(fast)
        assert ratio_ed2p > ratio_edp

    def test_zero_ipc_is_undefined(self):
        # None (not inf): the sentinel survives strict-JSON round trips.
        dead = self.make_result(ipc=0.0)
        dead.runs[0].ipc = 0.0
        assert energy_per_instruction_pj(dead) is None
        assert energy_delay_product(dead) is None
        assert energy_delay_squared(dead) is None
