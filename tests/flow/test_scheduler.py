"""Tests for the supervised sweep scheduler."""

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import PERMANENT, TRANSIENT, ReproError
from repro.flow.scheduler import (
    RetryPolicy,
    ScheduleOutcome,
    SupervisedScheduler,
    Task,
)


def _threaded(max_workers=2, **kwargs):
    """A scheduler driving threads: closures work, no pickling needed."""
    kwargs.setdefault("sleep", lambda _delay: None)
    return SupervisedScheduler(
        max_workers,
        executor_factory=lambda workers: ThreadPoolExecutor(workers),
        **kwargs)


# ----------------------------------------------------------------------
# process-pool workers (module level: must be picklable)
# ----------------------------------------------------------------------

def _double(value):
    return value * 2


def _crash_once(payload):
    """Die like an OOM kill on the first attempt, succeed afterwards."""
    marker, value = payload
    try:
        with open(marker, "x"):
            pass
    except FileExistsError:
        return value * 2
    os._exit(23)


def _sleep_for(payload):
    time.sleep(payload)
    return payload


def _always_crash(_payload):
    os._exit(23)


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------

def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(max_attempts=6, backoff_base=0.1, backoff_cap=0.5)
    assert policy.backoff(1) == pytest.approx(0.1)
    assert policy.backoff(2) == pytest.approx(0.2)
    assert policy.backoff(3) == pytest.approx(0.4)
    assert policy.backoff(4) == pytest.approx(0.5)  # capped
    assert policy.backoff(5) == pytest.approx(0.5)


def test_outcome_absorb_merges_waves():
    first = ScheduleOutcome(results={"a": 1}, retries={"a": 1}, respawns=1)
    second = ScheduleOutcome(results={"b": 2}, retries={"a": 2, "b": 1})
    first.absorb(second)
    assert first.results == {"a": 1, "b": 2}
    assert first.retries == {"a": 3, "b": 1}
    assert first.respawns == 1
    assert first.ok


# ----------------------------------------------------------------------
# happy path and failure classification (thread-backed)
# ----------------------------------------------------------------------

def test_all_tasks_succeed():
    tasks = [Task(f"t{i}", lambda v: v * 10, i) for i in range(5)]
    seen = []
    outcome = _threaded().run(
        tasks, on_result=lambda task, result: seen.append((task.key,
                                                           result)))
    assert outcome.ok
    assert outcome.results == {f"t{i}": i * 10 for i in range(5)}
    assert sorted(seen) == sorted((f"t{i}", i * 10) for i in range(5))
    assert outcome.retries == {}


def test_empty_task_list():
    outcome = _threaded().run([])
    assert outcome.ok and outcome.results == {}


def test_transient_failure_retried_then_succeeds(tmp_path):
    marker = tmp_path / "fired"

    def flaky(value):
        if not marker.exists():
            marker.write_text("x")
            raise OSError("transient blip")
        return value + 1

    outcome = _threaded(max_workers=1).run([Task("flaky", flaky, 41)])
    assert outcome.ok
    assert outcome.results == {"flaky": 42}
    assert outcome.retries == {"flaky": 1}


def test_permanent_failure_recorded_and_rest_completes():
    def worker(value):
        if value == 2:
            raise ReproError("deterministic model error")
        return value

    tasks = [Task(f"t{i}", worker, i) for i in range(4)]
    outcome = _threaded().run(tasks)
    assert not outcome.ok
    assert outcome.results == {"t0": 0, "t1": 1, "t3": 3}
    (record,) = outcome.failures
    assert record.key == "t2"
    assert record.kind == PERMANENT
    assert record.attempts == 1
    assert "deterministic model error" in record.error
    assert outcome.retries == {}  # permanent failures are never retried


def test_transient_retries_exhausted():
    def always_flaky(_value):
        raise OSError("never recovers")

    policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
    outcome = _threaded(policy=policy).run([Task("t", always_flaky, 0)])
    (record,) = outcome.failures
    assert record.kind == TRANSIENT
    assert record.attempts == 3
    assert outcome.retries == {"t": 2}


def test_backoff_sleep_applied_on_retry(tmp_path):
    marker = tmp_path / "fired"
    slept = []

    def flaky(value):
        if not marker.exists():
            marker.write_text("x")
            raise OSError("blip")
        return value

    scheduler = SupervisedScheduler(
        1, policy=RetryPolicy(backoff_base=0.25),
        executor_factory=lambda workers: ThreadPoolExecutor(workers),
        sleep=slept.append)
    assert scheduler.run([Task("t", flaky, 1)]).ok
    assert slept == [pytest.approx(0.25)]


def test_fail_fast_skips_remaining_tasks():
    def worker(value):
        if value == 0:
            raise ReproError("bad model")
        time.sleep(0.02)
        return value

    tasks = [Task(f"t{i}", worker, i) for i in range(6)]
    outcome = _threaded(max_workers=1, fail_fast=True).run(tasks)
    assert outcome.aborted
    kinds = {record.key: record.kind for record in outcome.failures}
    assert kinds["t0"] == PERMANENT
    skipped = [key for key, kind in kinds.items() if kind == "skipped"]
    assert skipped  # the queued tail was recorded, not silently dropped
    assert len(outcome.results) + len(outcome.failures) == 6


# ----------------------------------------------------------------------
# real process pools: crash recovery and timeouts
# ----------------------------------------------------------------------

def test_worker_crash_respawns_pool_and_retries(tmp_path):
    tasks = [Task("crasher", _crash_once, (str(tmp_path / "fired"), 21))]
    tasks += [Task(f"t{i}", _double, i) for i in range(3)]
    scheduler = SupervisedScheduler(2, policy=RetryPolicy(max_attempts=3))
    outcome = scheduler.run(tasks)
    assert outcome.ok
    assert outcome.results["crasher"] == 42
    assert outcome.results["t2"] == 4
    assert outcome.respawns >= 1
    assert outcome.retries.get("crasher", 0) >= 1


def test_crash_exhausting_attempts_is_recorded():
    scheduler = SupervisedScheduler(
        1, policy=RetryPolicy(max_attempts=2, backoff_base=0.0))
    outcome = scheduler.run([Task("crasher", _always_crash, None)])
    assert not outcome.ok
    (record,) = outcome.failures
    assert record.key == "crasher"
    assert record.kind == TRANSIENT
    assert record.attempts == 2
    assert outcome.respawns >= 2


def test_timeout_abandons_hung_task_but_finishes_others():
    tasks = [Task("hung", _sleep_for, 10.0),
             Task("quick", _sleep_for, 0.01)]
    scheduler = SupervisedScheduler(2, timeout=1.0)
    started = time.monotonic()
    outcome = scheduler.run(tasks)
    elapsed = time.monotonic() - started
    assert elapsed < 8.0  # did not wait out the 10 s sleep
    assert "quick" in outcome.results
    (record,) = outcome.timeouts
    assert record.key == "hung"
    assert record.kind == "timeout"
    assert not outcome.ok
