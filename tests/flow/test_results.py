"""Tests for result records: aggregation and serialization."""

import pytest

from repro.flow.results import ExperimentResult, SimPointRun
from repro.power.area import ANALYZED_COMPONENTS, REST_OF_TILE
from repro.power.report import ComponentPower, PowerReport


def make_report(scale=1.0):
    report = PowerReport(config_name="MegaBOOM", workload="w", cycles=100)
    for index, name in enumerate((*ANALYZED_COMPONENTS, REST_OF_TILE)):
        report.components[name] = ComponentPower(
            0.1 * scale, 0.2 * scale, 0.3 * scale)
    report.int_issue_slot_mw = [0.5 * scale, 0.25 * scale]
    return report


def make_result():
    result = ExperimentResult(
        workload="w", config_name="MegaBOOM", scale=1.0,
        total_instructions=100_000, interval_size=1000,
        num_intervals=100, chosen_k=3, coverage=0.93)
    result.runs = [
        SimPointRun(interval_index=5, weight=0.6, warmup_instructions=2000,
                    measured_instructions=1000, cycles=500, ipc=2.0,
                    report=make_report(1.0)),
        SimPointRun(interval_index=50, weight=0.3, warmup_instructions=2000,
                    measured_instructions=1000, cycles=1000, ipc=1.0,
                    report=make_report(2.0)),
    ]
    return result


def test_weighted_ipc():
    result = make_result()
    expected = (0.6 * 2.0 + 0.3 * 1.0) / 0.9
    assert result.ipc == pytest.approx(expected)


def test_weighted_component_power():
    result = make_result()
    # component total = 0.6 each in run 1, 1.2 in run 2
    expected = (0.6 * 0.6 + 0.3 * 1.2) / 0.9
    assert result.component_mw("rob") == pytest.approx(expected)


def test_tile_and_share():
    result = make_result()
    per_component = result.component_mw("rob")
    assert result.tile_mw == pytest.approx(14 * per_component)
    assert result.analyzed_share == pytest.approx(13 / 14)


def test_perf_per_watt():
    result = make_result()
    assert result.perf_per_watt == pytest.approx(
        result.ipc / (result.tile_mw * 1e-3))


def test_slot_aggregation():
    result = make_result()
    slots = result.int_issue_slot_mw()
    assert slots[0] == pytest.approx((0.6 * 0.5 + 0.3 * 1.0) / 0.9)
    assert len(slots) == 2


def test_detailed_instructions():
    assert make_result().detailed_instructions == 2 * 3000


def test_empty_result_is_safe():
    empty = ExperimentResult(workload="w", config_name="c", scale=1.0,
                             total_instructions=0, interval_size=100,
                             num_intervals=0, chosen_k=0, coverage=0.0)
    assert empty.ipc == 0.0
    assert empty.tile_mw == 0.0
    assert empty.perf_per_watt == 0.0
    assert empty.int_issue_slot_mw() == []


def test_serialization_roundtrip():
    result = make_result()
    loaded = ExperimentResult.from_dict(result.to_dict())
    assert loaded.workload == result.workload
    assert loaded.ipc == pytest.approx(result.ipc)
    assert loaded.tile_mw == pytest.approx(result.tile_mw)
    assert loaded.component_mw("dcache") == \
        pytest.approx(result.component_mw("dcache"))
    assert loaded.int_issue_slot_mw() == \
        pytest.approx(result.int_issue_slot_mw())
    assert loaded.chosen_k == 3


def test_serialization_is_json_compatible():
    import json

    blob = json.dumps(make_result().to_dict())
    loaded = ExperimentResult.from_dict(json.loads(blob))
    assert loaded.num_intervals == 100
