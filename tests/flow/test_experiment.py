"""Integration tests for the end-to-end experiment flow (small scale)."""

import pytest

from repro.flow.experiment import (
    FlowSettings,
    profile_and_select,
    run_experiment,
)
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM

SCALE = 0.12
SETTINGS = FlowSettings(scale=SCALE)


@pytest.fixture(scope="module")
def qsort_result():
    return run_experiment("qsort", MEDIUM_BOOM, settings=SETTINGS)


def test_result_metadata(qsort_result):
    assert qsort_result.workload == "qsort"
    assert qsort_result.config_name == "MediumBOOM"
    assert qsort_result.scale == SCALE
    assert qsort_result.num_intervals > 1
    assert qsort_result.chosen_k >= 1
    assert qsort_result.coverage >= 0.9


def test_runs_match_top_points(qsort_result):
    assert len(qsort_result.runs) >= 1
    weights = [run.weight for run in qsort_result.runs]
    assert sum(weights) >= 0.9 - 1e-9
    for run in qsort_result.runs:
        assert run.cycles > 0
        assert run.measured_instructions > 0
        assert run.ipc == pytest.approx(
            run.measured_instructions / run.cycles, rel=0.01)


def test_weighted_ipc_between_extremes(qsort_result):
    ipcs = [run.ipc for run in qsort_result.runs]
    assert min(ipcs) - 1e-9 <= qsort_result.ipc <= max(ipcs) + 1e-9


def test_power_positive(qsort_result):
    assert qsort_result.tile_mw > 0
    assert 0 < qsort_result.analyzed_share < 1
    assert qsort_result.perf_per_watt > 0


def test_detailed_instruction_accounting(qsort_result):
    detailed = qsort_result.detailed_instructions
    assert detailed == sum(run.warmup_instructions
                           + run.measured_instructions
                           for run in qsort_result.runs)
    # SimPoint methodology simulates far less than the whole program.
    assert detailed < qsort_result.total_instructions


def test_profile_and_select_consistent():
    profile, selection = profile_and_select("qsort", SETTINGS)
    assert selection.num_intervals == profile.num_intervals
    assert selection.total_instructions == profile.total_instructions
    for point in selection.points:
        assert point.length == profile.interval_lengths[point.interval_index]
        assert point.start_instruction == \
            profile.interval_starts()[point.interval_index]


def test_experiment_deterministic():
    a = run_experiment("qsort", MEDIUM_BOOM, settings=SETTINGS)
    b = run_experiment("qsort", MEDIUM_BOOM, settings=SETTINGS)
    assert a.ipc == b.ipc
    assert a.tile_mw == b.tile_mw
    assert [r.interval_index for r in a.runs] == \
        [r.interval_index for r in b.runs]


def test_different_configs_differ():
    medium = run_experiment("qsort", MEDIUM_BOOM, settings=SETTINGS)
    mega = run_experiment("qsort", MEGA_BOOM, settings=SETTINGS)
    assert mega.tile_mw > medium.tile_mw


def test_scaled_warmup_floor():
    assert FlowSettings(scale=0.01).scaled_warmup() == 200
    assert FlowSettings(scale=1.0).scaled_warmup() == 2000
