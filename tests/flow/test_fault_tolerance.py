"""End-to-end fault-tolerance tests for the supervised sweep.

Each test runs a tiny sweep (two workloads, one configuration, reduced
scale) with a deterministic injected fault and checks the recovery path:
results bit-identical to a fault-free serial run, degradation recorded
in the manifest, and interrupted sweeps resumable without recomputation.
"""

import pytest

from repro.errors import PERMANENT
from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SWEEP_STATE_NAME, SweepRunner
from repro.pipeline.stages import RESULT_STAGE
from repro.uarch.config import MEDIUM_BOOM

SCALE = 0.05
WORKLOADS = ["qsort", "sha"]


def _settings(faults=None):
    return FlowSettings(scale=SCALE, faults=faults)


def _sweep(tmp_path, faults=None, jobs=2, **kwargs):
    runner = SweepRunner(_settings(faults), cache_dir=tmp_path)
    results = runner.run_all(configs=(MEDIUM_BOOM,), workloads=WORKLOADS,
                             jobs=jobs, **kwargs)
    return runner, {key: result.to_dict() for key, result in results.items()}


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Fault-free serial sweep: the bit-exactness baseline."""
    cache = tmp_path_factory.mktemp("reference")
    runner = SweepRunner(_settings(), cache_dir=cache)
    results = runner.run_all(configs=(MEDIUM_BOOM,), workloads=WORKLOADS)
    assert runner.last_manifest.ok
    return {key: result.to_dict() for key, result in results.items()}


# ----------------------------------------------------------------------
# crash, corruption, transient-I/O recovery: sweep completes, results
# bit-identical to the fault-free serial run
# ----------------------------------------------------------------------

def test_worker_crash_recovers_bit_identical(tmp_path, reference):
    runner, results = _sweep(tmp_path,
                             faults="worker.experiment:crash:n=1")
    manifest = runner.last_manifest
    assert manifest.ok, manifest.format()
    assert manifest.total_retries >= 1  # the lost task was re-run
    assert results == reference


def test_corrupt_artifact_recovers_bit_identical(tmp_path, reference):
    runner, results = _sweep(
        tmp_path,
        faults=f"artifact.write:corrupt:n=1:k={RESULT_STAGE}")
    manifest = runner.last_manifest
    assert manifest.ok, manifest.format()
    assert results == reference
    # the corrupt file was discarded and recomputed, so a fresh runner
    # reading the same cache must parse every artifact cleanly
    fresh = SweepRunner(_settings(), cache_dir=tmp_path)
    reread = fresh.run_all(configs=(MEDIUM_BOOM,), workloads=WORKLOADS)
    assert {key: result.to_dict()
            for key, result in reread.items()} == reference


def test_transient_io_retry_then_succeed(tmp_path, reference):
    runner, results = _sweep(tmp_path, faults="worker.experiment:io:n=1")
    manifest = runner.last_manifest
    assert manifest.ok, manifest.format()
    assert manifest.total_retries == 1
    assert results == reference


# ----------------------------------------------------------------------
# timeout and permanent failure: graceful degradation
# ----------------------------------------------------------------------

def test_timeout_abandons_hung_task(tmp_path, reference):
    runner, results = _sweep(
        tmp_path, faults="worker.experiment:hang:s=3:n=1:k=qsort",
        timeout=0.7)
    manifest = runner.last_manifest
    assert not manifest.ok
    (record,) = manifest.timeouts
    assert record.key == f"qsort/{MEDIUM_BOOM.name}"
    assert results[("sha", MEDIUM_BOOM.name)] == \
        reference[("sha", MEDIUM_BOOM.name)]


def test_permanent_failure_degrades_gracefully(tmp_path, reference):
    runner, results = _sweep(tmp_path,
                             faults="worker.experiment:fail:n=1:k=qsort")
    manifest = runner.last_manifest
    assert not manifest.ok
    (record,) = manifest.failures
    assert record.key == f"qsort/{MEDIUM_BOOM.name}"
    assert record.kind == PERMANENT
    assert "injected permanent failure" in record.error
    # the healthy experiment still completed, bit-identical
    assert results[("sha", MEDIUM_BOOM.name)] == \
        reference[("sha", MEDIUM_BOOM.name)]


def test_prepare_failure_poisons_only_that_workload(tmp_path, reference):
    runner, results = _sweep(tmp_path,
                             faults="worker.prepare:fail:n=1:k=qsort")
    manifest = runner.last_manifest
    kinds = {record.key: record.kind for record in manifest.failures}
    assert kinds["prepare:qsort"] == PERMANENT
    assert kinds[f"qsort/{MEDIUM_BOOM.name}"] == "skipped"
    assert results[("sha", MEDIUM_BOOM.name)] == \
        reference[("sha", MEDIUM_BOOM.name)]


def test_serial_fail_fast_skips_the_tail(tmp_path):
    runner, results = _sweep(tmp_path, jobs=1,
                             faults="stage.detailed_sim:fail:n=1",
                             fail_fast=True)
    manifest = runner.last_manifest
    assert not manifest.ok
    kinds = [record.kind for record in manifest.failures]
    assert kinds[0] == PERMANENT
    assert "skipped" in kinds[1:]
    assert len(results) + len(manifest.failures) == len(WORKLOADS)


# ----------------------------------------------------------------------
# incremental persistence and resume
# ----------------------------------------------------------------------

def test_completed_sweep_resumes_without_recomputation(tmp_path, reference):
    _sweep(tmp_path)  # warm, fault-free
    runner = SweepRunner(_settings(), cache_dir=tmp_path)
    results = runner.run_all(configs=(MEDIUM_BOOM,), workloads=WORKLOADS,
                             resume=True)
    assert runner.resumed_completed == len(WORKLOADS)
    assert all(stats.executions == 0
               for stats in runner.store.stats().values())
    assert {key: result.to_dict()
            for key, result in results.items()} == reference


def test_resume_carries_permanent_failures_forward(tmp_path, reference):
    degraded, _ = _sweep(tmp_path,
                         faults="worker.experiment:fail:n=1:k=qsort")
    assert not degraded.last_manifest.ok
    assert (tmp_path / SWEEP_STATE_NAME).exists()

    # resume with faults cleared: the known-permanent failure is carried
    # forward, the completed experiment is a cache hit, nothing re-runs
    resumed = SweepRunner(_settings(), cache_dir=tmp_path)
    results = resumed.run_all(configs=(MEDIUM_BOOM,), workloads=WORKLOADS,
                              resume=True)
    assert resumed.resumed_completed == 1
    assert all(stats.executions == 0
               for stats in resumed.store.stats().values())
    (record,) = resumed.last_manifest.failures
    assert record.kind == PERMANENT
    assert record.error.startswith("(carried from interrupted run)")
    assert list(results) == [("sha", MEDIUM_BOOM.name)]

    # a fresh (non-resume) run re-attempts and, faults gone, succeeds
    fresh = SweepRunner(_settings(), cache_dir=tmp_path)
    full = fresh.run_all(configs=(MEDIUM_BOOM,), workloads=WORKLOADS)
    assert fresh.last_manifest.ok
    assert {key: result.to_dict()
            for key, result in full.items()} == reference


def test_state_file_tracks_progress_and_status(tmp_path):
    import json

    runner, _ = _sweep(tmp_path)
    state = json.loads((tmp_path / SWEEP_STATE_NAME).read_text())
    assert state["status"] == "complete"
    assert sorted(state["completed"]) == \
        sorted(f"{workload}/{MEDIUM_BOOM.name}" for workload in WORKLOADS)
    assert state["total"] == len(WORKLOADS)
    assert state["failures"] == []
