"""Tests for the sweep runner and its cache."""

import json

import pytest

from repro.flow.experiment import FlowSettings
from repro.flow.sweep import MODEL_VERSION, SweepRunner
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM

SETTINGS = FlowSettings(scale=0.1)


def test_memory_cache_returns_same_object(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    a = runner.run("qsort", MEDIUM_BOOM)
    b = runner.run("qsort", MEDIUM_BOOM)
    assert a is b


def test_disk_cache_roundtrip(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    original = runner.run("qsort", MEDIUM_BOOM)
    files = list(tmp_path.glob("*.json"))
    assert len(files) == 1
    assert f"v{MODEL_VERSION}" in files[0].name

    fresh = SweepRunner(SETTINGS, cache_dir=tmp_path)
    loaded = fresh.run("qsort", MEDIUM_BOOM)
    assert loaded.ipc == pytest.approx(original.ipc)
    assert loaded.tile_mw == pytest.approx(original.tile_mw)


def test_cache_key_distinguishes_configs(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    runner.run("qsort", MEGA_BOOM)
    assert len(list(tmp_path.glob("*.json"))) == 2


def test_cache_key_distinguishes_predictors(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    runner.run("qsort", MEDIUM_BOOM.with_predictor("gshare"))
    names = [p.name for p in tmp_path.glob("*.json")]
    assert len(names) == 2
    assert any("gshare" in name for name in names)


def test_no_cache_dir(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=None)
    result = runner.run("qsort", MEDIUM_BOOM)
    assert result.ipc > 0


def test_run_all_subset(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    results = runner.run_all(configs=(MEDIUM_BOOM,),
                             workloads=["qsort", "sha"])
    assert set(results) == {("qsort", "MediumBOOM"), ("sha", "MediumBOOM")}


def test_parallel_run_all_matches_serial(tmp_path):
    serial = SweepRunner(SETTINGS, cache_dir=None)
    expected = serial.run_all(configs=(MEDIUM_BOOM,),
                              workloads=["qsort", "sha"])
    parallel = SweepRunner(SETTINGS, cache_dir=tmp_path)
    actual = parallel.run_all(configs=(MEDIUM_BOOM,),
                              workloads=["qsort", "sha"], jobs=2)
    assert set(actual) == set(expected)
    for key in expected:
        assert actual[key].ipc == pytest.approx(expected[key].ipc)
        assert actual[key].tile_mw == pytest.approx(expected[key].tile_mw)
    # the parallel path populated the disk cache too
    assert len(list(tmp_path.glob("*.json"))) == 2


def test_parallel_uses_cache(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    results = runner.run_all(configs=(MEDIUM_BOOM,),
                             workloads=["qsort"], jobs=2)
    assert ("qsort", "MediumBOOM") in results


def test_cached_json_is_valid(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    path = next(tmp_path.glob("*.json"))
    data = json.loads(path.read_text())
    assert data["workload"] == "qsort"
    assert data["runs"]
