"""Tests for the sweep runner and its stage-granular artifact cache."""

import json

import pytest

from repro.flow.experiment import FlowSettings
from repro.flow.sweep import MODEL_VERSION, SweepRunner
from repro.pipeline.stages import RESULT_STAGE
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM

SETTINGS = FlowSettings(scale=0.1)


def _result_files(tmp_path):
    stage_dir = tmp_path / RESULT_STAGE
    if not stage_dir.exists():
        return []
    return sorted(stage_dir.glob("*.json"))


def test_memory_cache_returns_same_object(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    a = runner.run("qsort", MEDIUM_BOOM)
    b = runner.run("qsort", MEDIUM_BOOM)
    assert a is b


def test_disk_cache_roundtrip(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    original = runner.run("qsort", MEDIUM_BOOM)
    assert len(_result_files(tmp_path)) == 1

    fresh = SweepRunner(SETTINGS, cache_dir=tmp_path)
    loaded = fresh.run("qsort", MEDIUM_BOOM)
    assert loaded.ipc == pytest.approx(original.ipc)
    assert loaded.tile_mw == pytest.approx(original.tile_mw)
    # served from the result artifact: no stage re-executed anything
    assert all(stats.executions == 0
               for stats in fresh.store.stats().values())


def test_cache_key_distinguishes_configs(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    runner.run("qsort", MEGA_BOOM)
    assert len(_result_files(tmp_path)) == 2


def test_cache_key_distinguishes_predictors(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    runner.run("qsort", MEDIUM_BOOM.with_predictor("gshare"))
    assert len(_result_files(tmp_path)) == 2


@pytest.mark.parametrize("changed", [
    {"bic_threshold": 0.7},
    {"max_k": 4},
    {"coverage": 0.5},
])
def test_changed_selection_settings_miss_the_cache(tmp_path, changed):
    """Regression: the legacy cache key omitted ``bic_threshold``,
    ``max_k`` and ``coverage``, silently serving stale results when any
    of them changed.  Every stage fingerprint now covers them."""
    warm = SweepRunner(SETTINGS, cache_dir=tmp_path)
    warm.run("qsort", MEDIUM_BOOM)

    tweaked = FlowSettings(scale=SETTINGS.scale, **changed)
    fresh = SweepRunner(tweaked, cache_dir=tmp_path)
    fresh.run("qsort", MEDIUM_BOOM)
    result_stats = fresh.store.stats()[RESULT_STAGE]
    assert result_stats.misses == 1
    assert result_stats.executions == 1
    assert len(_result_files(tmp_path)) == 2


def test_stale_legacy_layout_not_trusted(tmp_path):
    """A legacy flat-layout file must not satisfy a run whose selection
    settings differ from the defaults it was produced under."""
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    key = runner._legacy_key("qsort", MEDIUM_BOOM)
    (tmp_path / f"{key}.json").write_text(json.dumps({
        "workload": "qsort", "config_name": "MediumBOOM",
        "scale": SETTINGS.scale, "total_instructions": 1,
        "interval_size": 1, "num_intervals": 1, "chosen_k": 1,
        "coverage": 1.0, "runs": []}))
    tweaked = FlowSettings(scale=SETTINGS.scale, bic_threshold=0.7)
    fresh = SweepRunner(tweaked, cache_dir=tmp_path)
    result = fresh.run("qsort", MEDIUM_BOOM)
    assert result.runs  # recomputed, not the empty stale record
    assert fresh.store.stats()[RESULT_STAGE].legacy_hits == 0


def test_no_cache_dir(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=None)
    result = runner.run("qsort", MEDIUM_BOOM)
    assert result.ipc > 0


def test_run_all_subset(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    results = runner.run_all(configs=(MEDIUM_BOOM,),
                             workloads=["qsort", "sha"])
    assert set(results) == {("qsort", "MediumBOOM"), ("sha", "MediumBOOM")}


def test_run_all_accepts_any_config_iterable(tmp_path):
    """A generated design-space axis is just an iterable of configs."""
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    results = runner.run_all(
        configs=(config for config in (MEDIUM_BOOM,)),
        workloads=["qsort"])
    assert set(results) == {("qsort", "MediumBOOM")}


def test_run_all_sweeps_generated_lattice_points(tmp_path):
    from repro.uarch.space import DesignSpace

    space = DesignSpace.around(MEDIUM_BOOM)
    point = space.apply({"rob_entries": 48})
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    results = runner.run_all(configs=[MEDIUM_BOOM, point],
                             workloads=["qsort"])
    assert set(results) == {("qsort", "MediumBOOM"),
                            ("qsort", point.name)}
    assert point.name.startswith("dse-")


def test_run_all_rejects_duplicate_names(tmp_path):
    import dataclasses

    clone = dataclasses.replace(MEDIUM_BOOM, rob_entries=48,
                                name=MEDIUM_BOOM.name)
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    with pytest.raises(ValueError, match="unique names"):
        runner.run_all(configs=(MEDIUM_BOOM, clone),
                       workloads=["qsort"])


def test_shared_stages_run_once_per_workload(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run_all(configs=(MEDIUM_BOOM, MEGA_BOOM),
                   workloads=["qsort", "sha"])
    manifest = runner.last_manifest
    assert manifest.executions("bbv_profile") == 2
    assert manifest.executions("simpoint_selection") == 2
    assert manifest.executions("checkpoints") == 2
    assert manifest.executions("detailed_sim") == 4


def test_parallel_run_all_is_bit_identical_to_serial(tmp_path):
    """The satellite determinism guarantee: ``jobs=2`` must produce
    byte-identical canonical JSON to the serial run, on a 2-workload x
    2-config sweep."""
    serial = SweepRunner(SETTINGS, cache_dir=None)
    expected = serial.run_all(configs=(MEDIUM_BOOM, MEGA_BOOM),
                              workloads=["qsort", "sha"])
    parallel = SweepRunner(SETTINGS, cache_dir=tmp_path)
    actual = parallel.run_all(configs=(MEDIUM_BOOM, MEGA_BOOM),
                              workloads=["qsort", "sha"], jobs=2)
    assert set(actual) == set(expected)
    for key in expected:
        assert actual[key].to_json() == expected[key].to_json()
    # the parallel path populated the disk cache too
    assert len(_result_files(tmp_path)) == 4


def test_parallel_without_disk_matches_serial():
    serial = SweepRunner(SETTINGS, cache_dir=None)
    expected = serial.run_all(configs=(MEDIUM_BOOM,),
                              workloads=["qsort", "sha"])
    parallel = SweepRunner(SETTINGS, cache_dir=None)
    actual = parallel.run_all(configs=(MEDIUM_BOOM,),
                              workloads=["qsort", "sha"], jobs=2)
    for key in expected:
        assert actual[key].to_json() == expected[key].to_json()


def test_parallel_uses_cache(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    results = runner.run_all(configs=(MEDIUM_BOOM,),
                             workloads=["qsort"], jobs=2)
    assert ("qsort", "MediumBOOM") in results
    assert runner.last_manifest.total_executions == 0


def test_run_all_writes_manifest(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"])
    manifest = json.loads((tmp_path / "run_manifest.json").read_text())
    assert manifest["experiments"] == 1
    assert manifest["stages"][RESULT_STAGE]["executions"] == 1


def test_legacy_flat_layout_is_migrated(tmp_path):
    producer = SweepRunner(SETTINGS, cache_dir=None)
    result = producer.run("qsort", MEDIUM_BOOM)
    consumer = SweepRunner(SETTINGS, cache_dir=tmp_path)
    key = consumer._legacy_key("qsort", MEDIUM_BOOM)
    (tmp_path / f"{key}.json").write_text(json.dumps(result.to_dict()))

    migrated = consumer.run("qsort", MEDIUM_BOOM)
    assert migrated.to_json() == result.to_json()
    stats = consumer.store.stats()[RESULT_STAGE]
    assert stats.legacy_hits == 1
    assert stats.executions == 0
    # the result now also lives at its content address
    assert len(_result_files(tmp_path)) == 1


def test_cached_json_is_valid(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run("qsort", MEDIUM_BOOM)
    path = _result_files(tmp_path)[0]
    data = json.loads(path.read_text())
    assert data["workload"] == "qsort"
    assert data["runs"]


def test_model_version_still_exported():
    assert isinstance(MODEL_VERSION, int)
