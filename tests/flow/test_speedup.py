"""Tests for SimPoint simulation-time accounting."""

import pytest

from repro.flow.results import ExperimentResult, SimPointRun
from repro.flow.speedup import speedup_report, SpeedupRow
from repro.power.report import PowerReport


def make_result(workload, total, detailed_chunks):
    result = ExperimentResult(workload=workload, config_name="MegaBOOM",
                              scale=1.0, total_instructions=total,
                              interval_size=1000, num_intervals=total // 1000,
                              chosen_k=len(detailed_chunks), coverage=0.95)
    for index, (warmup, measured) in enumerate(detailed_chunks):
        result.runs.append(SimPointRun(
            interval_index=index, weight=1.0 / len(detailed_chunks),
            warmup_instructions=warmup, measured_instructions=measured,
            cycles=measured, ipc=1.0,
            report=PowerReport(config_name="MegaBOOM", workload=workload,
                               cycles=measured)))
    return result


def test_row_speedup():
    row = SpeedupRow(workload="w", full_instructions=90_000,
                     detailed_instructions=3_000)
    assert row.speedup == pytest.approx(30.0)


def test_report_totals():
    results = [make_result("a", 100_000, [(2000, 1000)]),
               make_result("b", 200_000, [(2000, 1000), (2000, 1000)])]
    report = speedup_report(results)
    assert report.total_full == 300_000
    assert report.total_detailed == 9_000
    assert report.overall_speedup == pytest.approx(300_000 / 9_000)


def test_zero_detailed_is_infinite():
    row = SpeedupRow(workload="w", full_instructions=10,
                     detailed_instructions=0)
    assert row.speedup == float("inf")


def test_format_table():
    report = speedup_report([make_result("alpha", 50_000, [(1000, 1000)])])
    text = report.format_table()
    assert "alpha" in text
    assert "TOTAL" in text
    assert "25.0x" in text
