"""The batched multi-config simulation path of the sweep.

``FlowSettings(batch=True)`` primes each workload's ``detailed_sim``
artifacts through the batched engine (:mod:`repro.sim.batch`) — one
shared fetch trace per checkpoint, every config replaying it — and the
ordinary per-config pipeline consumes them as cache hits.  These tests
pin the contract that makes the strategy safe to enable anywhere:

* batched and serial sweeps produce byte-identical artifacts and
  results;
* any batch fault (permanent failure, transient I/O, mid-batch artifact
  corruption) degrades that workload back to per-config simulation
  without failing the sweep or poisoning sibling configs;
* the parallel path runs the batch wave before the experiment wave and
  inherits the same degradation rules.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SweepRunner
from repro.pipeline.stages import DETAILED_STAGE
from repro.uarch.config import ALL_CONFIGS

SCALE = 0.05
WORKLOADS = ["sha"]
CONFIGS = ALL_CONFIGS


def _sweep(cache, *, batch=True, faults=None, jobs=1):
    runner = SweepRunner(FlowSettings(scale=SCALE, batch=batch,
                                      faults=faults),
                         cache_dir=cache)
    results = runner.run_all(configs=CONFIGS, workloads=WORKLOADS,
                             jobs=jobs)
    return runner, {key: result.to_dict()
                    for key, result in results.items()}


def _artifact_digests(cache) -> dict[str, str]:
    """sha256 of every stage artifact (infrastructure files excluded)."""
    out = {}
    for path in sorted(Path(cache).rglob("*.json")):
        if path.name in ("run_manifest.json", "sweep_state.json"):
            continue
        relative = str(path.relative_to(cache))
        out[relative] = hashlib.sha256(path.read_bytes()).hexdigest()
    return out


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """Fault-free serial per-config sweep: the bit-exactness baseline."""
    cache = tmp_path_factory.mktemp("reference")
    runner, results = _sweep(cache, batch=False)
    assert runner.last_manifest.ok
    return results, _artifact_digests(cache)


def test_batch_off_by_default():
    assert FlowSettings().batch is False


def test_serial_batched_sweep_bit_identical(tmp_path, reference):
    runner, results = _sweep(tmp_path, batch=True)
    assert runner.last_manifest.ok
    assert not runner.batch_degraded
    assert results == reference[0]
    assert _artifact_digests(tmp_path) == reference[1]


def test_parallel_batch_wave_bit_identical(tmp_path, reference):
    runner, results = _sweep(tmp_path, batch=True, jobs=2)
    assert runner.last_manifest.ok
    assert not runner.batch_degraded
    assert results == reference[0]
    assert _artifact_digests(tmp_path) == reference[1]


def test_second_priming_is_a_no_op(tmp_path):
    runner, _ = _sweep(tmp_path, batch=True)
    assert runner.pipeline.prepare_detailed_batch(
        WORKLOADS[0], list(CONFIGS)) == 0


# ----------------------------------------------------------------------
# degradation: a batch fault falls back to per-config simulation
# ----------------------------------------------------------------------

def test_serial_batch_failure_degrades_not_fails(tmp_path, reference):
    runner, results = _sweep(tmp_path, batch=True,
                             faults="worker.batch:fail:n=1")
    manifest = runner.last_manifest
    assert manifest.ok, manifest.format()
    assert runner.batch_degraded.keys() == {"sha"}
    assert results == reference[0]
    assert _artifact_digests(tmp_path) == reference[1]


def test_parallel_batch_failure_degrades_not_fails(tmp_path, reference):
    runner, results = _sweep(tmp_path, batch=True, jobs=2,
                             faults="worker.batch:fail:n=1")
    manifest = runner.last_manifest
    assert manifest.ok, manifest.format()
    assert runner.batch_degraded.keys() == {"sha"}
    assert results == reference[0]
    assert _artifact_digests(tmp_path) == reference[1]


def test_mid_batch_write_fault_degrades_cleanly(tmp_path, reference):
    """A transient I/O fault inside the batch's artifact writes."""
    runner, results = _sweep(
        tmp_path, batch=True,
        faults=f"artifact.write:io:n=1:k={DETAILED_STAGE}")
    assert runner.last_manifest.ok
    assert runner.batch_degraded.keys() == {"sha"}
    assert results == reference[0]
    # The fault-hit artifact may live only in the store's memory cache
    # (the write failed once and the value was memoized — store
    # behavior, independent of batching); every artifact that did land
    # on disk must be byte-identical to the serial run's.
    digests = _artifact_digests(tmp_path)
    assert digests
    assert all(reference[1].get(name) == digest
               for name, digest in digests.items())


def test_mid_batch_corruption_no_sibling_poisoning(tmp_path, reference):
    """One batch-written detailed artifact is corrupted post-write.

    ``corrupt`` does not raise, so the batch finishes priming the
    remaining configs and the faulted sweep still completes (the store
    memoized the valid in-memory value).  A *fresh* consumer of the
    same cache then hits the corrupt artifact on read, discards it, and
    recomputes that one config alone — siblings keep their batch-primed
    artifacts, and every final byte matches the serial run.
    """
    runner, results = _sweep(
        tmp_path, batch=True,
        faults=f"artifact.write:corrupt:n=1:k={DETAILED_STAGE}")
    assert runner.last_manifest.ok
    assert not runner.batch_degraded  # the batch itself completed
    assert results == reference[0]
    digests = _artifact_digests(tmp_path)
    corrupted = [name for name, digest in digests.items()
                 if reference[1].get(name) != digest]
    assert len(corrupted) == 1 and corrupted[0].startswith(DETAILED_STAGE)
    # Fresh store over the same cache, forced through the detailed
    # stage (a full rerun would short-circuit at the cached result):
    # the corrupt artifact is discarded and recomputed, siblings are
    # served as cache hits, and the cache converges byte-for-byte.
    rerun = SweepRunner(FlowSettings(scale=SCALE), cache_dir=tmp_path)
    for config in CONFIGS:
        rerun.pipeline.detailed(WORKLOADS[0], config)
    assert _artifact_digests(tmp_path) == reference[1]
