"""Tests for resource guardrails and their scheduler integration."""

import os
from collections import namedtuple
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import DiskSpaceError
from repro.flow.guardrails import ResourceGuard, read_rss_mb
from repro.flow.scheduler import RetryPolicy, SupervisedScheduler, Task

_Usage = namedtuple("Usage", "total used free")


def _guard(free_mb=None, **kwargs):
    if free_mb is not None:
        kwargs["disk_usage"] = \
            lambda _path: _Usage(0, 0, int(free_mb * 1e6))
    return ResourceGuard("/tmp/cache", **kwargs)


def _threaded(guard, **kwargs):
    kwargs.setdefault("sleep", lambda _delay: None)
    return SupervisedScheduler(
        2, guard=guard,
        executor_factory=lambda workers: ThreadPoolExecutor(workers),
        **kwargs)


# ----------------------------------------------------------------------
# the guard itself
# ----------------------------------------------------------------------

def test_unarmed_guard_is_inert():
    guard = ResourceGuard()
    assert not guard.active
    guard.preflight_disk("any")  # all checks pass for free
    assert not guard.expired()
    assert guard.rss_overages([os.getpid()]) == []
    assert guard.poll_interval() is None


def test_disk_preflight_raises_below_floor():
    guard = _guard(free_mb=10.0, min_free_mb=100.0)
    with pytest.raises(DiskSpaceError) as excinfo:
        guard.preflight_disk("qsort/MediumBOOM")
    assert excinfo.value.free_mb == pytest.approx(10.0)
    assert excinfo.value.floor_mb == pytest.approx(100.0)


def test_disk_preflight_passes_above_floor():
    _guard(free_mb=500.0, min_free_mb=100.0).preflight_disk("k")


def test_real_disk_probe_reports_something(tmp_path):
    guard = ResourceGuard(tmp_path, min_free_mb=0.001)
    assert guard.free_mb() > 0
    guard.preflight_disk("k")  # a test tmpdir has more than a kilobyte


def test_deadline_expires_on_fake_clock():
    now = [0.0]
    guard = ResourceGuard(deadline=10.0, clock=lambda: now[0]).start()
    assert guard.remaining() == pytest.approx(10.0)
    assert not guard.expired()
    now[0] = 10.5
    assert guard.expired()
    assert guard.remaining() == pytest.approx(-0.5)


def test_start_is_idempotent():
    now = [5.0]
    guard = ResourceGuard(deadline=1.0, clock=lambda: now[0]).start()
    now[0] = 100.0
    guard.start()  # must not re-arm the clock
    assert guard.expired()


def test_rss_overages_flags_only_offenders():
    sizes = {11: 50.0, 22: 900.0, 33: None}
    guard = ResourceGuard(max_rss_mb=256.0,
                          rss_probe=lambda pid: sizes[pid])
    assert guard.rss_overages([11, 22, 33]) == [(22, 900.0)]


def test_read_rss_of_this_process():
    rss = read_rss_mb(os.getpid())
    assert rss is None or rss > 1.0  # /proc present on CI Linux


def test_read_rss_of_missing_process():
    assert read_rss_mb(2 ** 22 + 12345) is None


def test_poll_interval_tracks_tightest_constraint():
    now = [0.0]
    guard = ResourceGuard(max_rss_mb=100.0, deadline=60.0,
                          clock=lambda: now[0]).start()
    assert guard.poll_interval() == pytest.approx(0.25)  # watchdog wins
    guard_slow = ResourceGuard(deadline=0.1, clock=lambda: now[0]).start()
    assert guard_slow.poll_interval() == pytest.approx(0.1)


# ----------------------------------------------------------------------
# scheduler integration
# ----------------------------------------------------------------------

def test_full_disk_refuses_tasks_and_degrades():
    guard = _guard(free_mb=1.0, min_free_mb=100.0)
    tasks = [Task(f"t{i}", lambda v: v, i) for i in range(3)]
    outcome = _threaded(guard).run(tasks)
    assert not outcome.ok
    assert outcome.results == {}
    assert {record.kind for record in outcome.failures} == {"disk-full"}
    assert len(outcome.failures) == 3


def test_deadline_zero_abandons_everything():
    guard = ResourceGuard(deadline=0.0).start()
    tasks = [Task(f"t{i}", lambda v: v, i) for i in range(4)]
    outcome = _threaded(guard).run(tasks)
    assert not outcome.ok
    assert outcome.results == {}
    assert len(outcome.timeouts) == 4
    assert all(record.kind == "deadline" for record in outcome.timeouts)
    assert "deadline exceeded" in outcome.timeouts[0].error


def test_generous_guard_changes_nothing():
    guard = _guard(free_mb=10_000.0, min_free_mb=1.0, deadline=3600.0)
    guard.start()
    tasks = [Task(f"t{i}", lambda v: v * 2, i) for i in range(4)]
    outcome = _threaded(guard).run(tasks)
    assert outcome.ok
    assert outcome.results == {f"t{i}": i * 2 for i in range(4)}


def test_inert_guard_not_retained_by_scheduler():
    scheduler = SupervisedScheduler(1, guard=ResourceGuard())
    assert scheduler.guard is None


def test_rss_kill_retries_within_budget():
    """An RSS kill is a crash: pool respawns and the task retries."""
    policy = RetryPolicy(max_attempts=3, backoff_base=0.0)
    over = {"fired": False}

    def probe(_pid):
        if over["fired"]:
            return 10.0
        over["fired"] = True
        return 9999.0  # first probe: every worker looks like a leak

    guard = ResourceGuard(max_rss_mb=256.0, rss_probe=probe)
    scheduler = SupervisedScheduler(1, policy=policy, guard=guard)
    outcome = scheduler.run([Task("t", _identity, 7)])
    assert outcome.results == {"t": 7}


def _identity(value):
    return value
