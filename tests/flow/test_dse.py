"""Tests for the DSE flow orchestration (repro.flow.dse)."""

import json

import pytest

from repro.flow.dse import run_dse
from repro.flow.experiment import FlowSettings
from repro.uarch.config import ALL_CONFIGS, config_id
from repro.uarch.space import generate_points, SpaceSpec

SETTINGS = FlowSettings(scale=0.05)
SPEC = SpaceSpec(base="MediumBOOM", count=6, seed=11)


@pytest.fixture(scope="module")
def outcome(tmp_path_factory):
    cache = tmp_path_factory.mktemp("dse_cache")
    return run_dse(SPEC, settings=SETTINGS, cache_dir=cache,
                   workloads=["sha"])


def test_outcome_covers_every_point(outcome):
    assert len(outcome.points) == len(outcome.configs)
    assert not outcome.skipped
    assert len(outcome.results) == len(outcome.configs)  # 1 workload
    assert {point.name for point in outcome.points} == \
        {config.name for config in outcome.configs}


def test_presets_lead_the_point_set(outcome):
    assert [config.name for config in outcome.configs[:3]] == \
        [config.name for config in ALL_CONFIGS]


def test_frontier_partitions_the_points(outcome):
    names = {point.name for point in outcome.points}
    frontier = {point.name for point in outcome.frontier}
    dominated = {point.name for point in outcome.dominated}
    assert frontier | dominated == names
    assert not frontier & dominated
    assert outcome.frontier, "frontier cannot be empty"


def test_document_is_strict_json(outcome):
    document = outcome.document()
    text = json.dumps(document, sort_keys=True, allow_nan=False)
    rebuilt = json.loads(text)
    assert rebuilt["spec"] == {
        "base": "MediumBOOM", "mode": "neighborhood", "count": 6,
        "radius": 2, "max_changed": 2, "seed": 11,
        "include_presets": True}
    assert set(rebuilt["frontier"]) <= \
        {point["name"] for point in rebuilt["points"]}
    assert rebuilt["settings"]["points_per_s"] > 0


def test_format_report_mentions_frontier_and_sensitivity(outcome):
    text = outcome.format()
    assert "Pareto frontier" in text
    assert "Sensitivity around MediumBOOM" in text


def test_points_per_s_positive(outcome):
    assert outcome.points_per_s > 0
    assert outcome.wall_seconds > 0


def test_rerun_from_cache_is_identical(outcome, tmp_path):
    """A warm re-run over the same spec reproduces the same points and
    the same frontier membership."""
    # note: different cache dir -> cold; same spec -> same configs
    again = run_dse(SPEC, settings=SETTINGS,
                    cache_dir=None, workloads=["sha"])
    assert [config_id(c) for c in again.configs] == \
        [config_id(c) for c in outcome.configs]
    assert [p.name for p in again.frontier] == \
        [p.name for p in outcome.frontier]


def test_explicit_configs_bypass_generation(tmp_path):
    configs = generate_points(SpaceSpec(base="MediumBOOM", count=2,
                                        include_presets=False))
    out = run_dse(SPEC, settings=SETTINGS, cache_dir=tmp_path,
                  configs=configs, workloads=["sha"])
    assert [c.name for c in out.configs] == [c.name for c in configs]


def test_dse_metrics_gauge_updated(outcome):
    from repro.obs.metrics import get_metrics

    entry = get_metrics().snapshot().get("dse.points_per_s")
    assert entry is not None and entry["kind"] == "gauge"
    assert entry["value"] > 0
