"""Unit tests for the two-pass assembler."""

import struct

import pytest

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.program import DATA_BASE, TEXT_BASE


def mnemonics(program):
    return [instr.mnemonic for instr in program.instructions]


def test_basic_program_layout():
    program = assemble("""
        .text
    _start:
        addi a0, zero, 1
        add  a1, a0, a0
    """)
    assert len(program) == 2
    assert program.entry == TEXT_BASE
    assert program.instructions[0].pc == TEXT_BASE
    assert program.instructions[1].pc == TEXT_BASE + 4


def test_labels_resolve_to_addresses():
    program = assemble("""
        .data
    table: .dword 1, 2, 3
    after: .word 9
        .text
    _start:
        nop
    here:
        j here
    """)
    assert program.symbols["table"] == DATA_BASE
    assert program.symbols["after"] == DATA_BASE + 24
    assert program.symbols["here"] == TEXT_BASE + 4
    jal = program.instructions[1]
    assert jal.mnemonic == "jal"
    assert jal.imm == 0  # self-loop


def test_branch_offsets_are_pc_relative():
    program = assemble("""
    _start:
        nop
        nop
    target:
        beq a0, a1, target
    """)
    assert program.instructions[2].imm == -0  # branch to itself? no:
    # target is the branch's own address, so offset is 0
    assert program.instructions[2].imm == 0
    program = assemble("""
    _start:
        beq a0, a1, skip
        nop
    skip:
        nop
    """)
    assert program.instructions[0].imm == 8


def test_pseudo_expansions():
    program = assemble("""
    _start:
        mv   a0, a1
        not  a2, a3
        neg  a4, a5
        seqz a6, a7
        snez t0, t1
        j    _start
        ret
    """)
    names = mnemonics(program)
    assert names == ["addi", "xori", "sub", "sltiu", "sltu", "jal", "jalr"]
    not_instr = program.instructions[1]
    assert not_instr.imm == -1
    neg = program.instructions[2]
    assert neg.rs1 == 0 and neg.rs2 == 15


def test_branch_pseudos():
    program = assemble("""
    _start:
        beqz a0, _start
        bnez a1, _start
        blez a2, _start
        bgez a3, _start
        bgt  a4, a5, _start
        bleu a6, a7, _start
    """)
    names = mnemonics(program)
    assert names == ["beq", "bne", "bge", "bge", "blt", "bgeu"]
    blez = program.instructions[2]
    assert blez.rs1 == 0 and blez.rs2 == 12  # bge zero, a2
    bgt = program.instructions[4]
    assert bgt.rs1 == 15 and bgt.rs2 == 14  # blt a5, a4


def test_li_small_constant():
    program = assemble("_start: li a0, -7")
    assert mnemonics(program) == ["addi"]
    assert program.instructions[0].imm == -7


def test_li_32bit_constant():
    program = assemble("_start: li a0, 0x12345678")
    assert mnemonics(program) == ["lui", "addiw"]


def test_li_64bit_constant_executes_correctly():
    from repro.sim.executor import Executor

    for value in (0xDEADBEEFCAFEBABE, -1, 1 << 62, -(1 << 40) + 12345,
                  0x7FFFFFFFFFFFFFFF):
        program = assemble(f"""
        _start:
            li a0, {value}
            li a7, 93
            ecall
        """)
        executor = Executor(program)
        executor.run_to_completion()
        assert executor.state.x[10] == value & ((1 << 64) - 1)


def test_la_loads_symbol_address():
    from repro.sim.executor import Executor

    program = assemble("""
        .data
        .space 40
    blob: .dword 77
        .text
    _start:
        la a0, blob
        ld a1, 0(a0)
        li a7, 93
        ecall
    """)
    executor = Executor(program)
    executor.run_to_completion()
    assert executor.state.x[10] == DATA_BASE + 40
    assert executor.state.x[11] == 77


def test_memory_operand_forms():
    program = assemble("""
    _start:
        lw a0, 8(sp)
        lw a1, (sp)
        sw a0, -4(sp)
    """)
    assert program.instructions[0].imm == 8
    assert program.instructions[1].imm == 0
    assert program.instructions[2].imm == -4


def test_data_directives():
    program = assemble("""
        .data
    a: .byte 1, 2
    b: .half 0x3344
       .align 3
    c: .dword 0x1122334455667788
    s: .asciz "hi"
    d: .double 1.5
    """)
    data = program.data
    assert data[0:2] == bytes([1, 2])
    assert data[2:4] == (0x3344).to_bytes(2, "little")
    assert program.symbols["c"] == DATA_BASE + 8  # aligned to 8
    offset = program.symbols["c"] - DATA_BASE
    assert data[offset:offset + 8] == (0x1122334455667788).to_bytes(8, "little")
    s_off = program.symbols["s"] - DATA_BASE
    assert data[s_off:s_off + 3] == b"hi\x00"
    d_off = program.symbols["d"] - DATA_BASE
    assert struct.unpack("<d", data[d_off:d_off + 8])[0] == 1.5


def test_comments_and_separators():
    program = assemble("""
    _start:
        nop; nop  # two in one line
        nop       // c++-style comment
    """)
    assert len(program) == 3


def test_fp_pseudo_instructions():
    program = assemble("""
    _start:
        fmv.d  fa0, fa1
        fneg.d fa2, fa3
        fabs.d fa4, fa5
    """)
    assert mnemonics(program) == ["fsgnj.d", "fsgnjn.d", "fsgnjx.d"]
    fmv = program.instructions[0]
    assert fmv.rs1 == fmv.rs2 == 11


def test_call_uses_ra():
    program = assemble("""
    _start:
        call f
    f:  ret
    """)
    assert program.instructions[0].rd == 1


def test_errors():
    with pytest.raises(AssemblerError):
        assemble("_start: frobnicate a0, a1")
    with pytest.raises(AssemblerError):
        assemble("_start: beq a0, a1, nowhere")
    with pytest.raises(AssemblerError):
        assemble("_start: addi a0, a1")  # missing operand
    with pytest.raises(AssemblerError):
        assemble("x: nop\nx: nop")  # duplicate label
    with pytest.raises(AssemblerError):
        assemble(".data\nv: .word 1\n.text\n_start: lw a0, v")  # not imm(reg)
    with pytest.raises(AssemblerError):
        assemble("_start: addi a0, fa1, 0")  # FP reg in int slot
    with pytest.raises(AssemblerError):
        assemble(".word 5")  # data directive in .text


def test_error_reports_line_number():
    try:
        assemble("nop\nnop\nbogus a0")
    except AssemblerError as error:
        assert error.line_number == 3
    else:
        pytest.fail("expected AssemblerError")


def test_entry_defaults_to_text_base_without_start():
    program = assemble("main: nop")
    assert program.entry == TEXT_BASE
