"""Unit tests for register naming and ABI aliases."""

import pytest

from repro.errors import IsaError
from repro.isa.registers import (
    freg_index,
    freg_name,
    is_freg_name,
    is_xreg_name,
    NUM_FREGS,
    NUM_XREGS,
    xreg_index,
    xreg_name,
)


def test_numeric_names_map_to_indices():
    for index in range(NUM_XREGS):
        assert xreg_index(f"x{index}") == index
    for index in range(NUM_FREGS):
        assert freg_index(f"f{index}") == index


def test_abi_aliases():
    assert xreg_index("zero") == 0
    assert xreg_index("ra") == 1
    assert xreg_index("sp") == 2
    assert xreg_index("a0") == 10
    assert xreg_index("a7") == 17
    assert xreg_index("t6") == 31
    assert xreg_index("fp") == xreg_index("s0") == 8


def test_fp_abi_aliases():
    assert freg_index("ft0") == 0
    assert freg_index("fa0") == 10
    assert freg_index("fs0") == 8
    assert freg_index("ft11") == 31


def test_round_trip_canonical_names():
    for index in range(NUM_XREGS):
        assert xreg_index(xreg_name(index)) == index
    for index in range(NUM_FREGS):
        assert freg_index(freg_name(index)) == index


def test_predicates():
    assert is_xreg_name("a5")
    assert not is_xreg_name("fa5")
    assert is_freg_name("fa5")
    assert not is_freg_name("a5")
    assert not is_xreg_name("x32")


def test_unknown_names_raise():
    with pytest.raises(IsaError):
        xreg_index("r7")
    with pytest.raises(IsaError):
        freg_index("f32")
    with pytest.raises(IsaError):
        xreg_name(32)
    with pytest.raises(IsaError):
        freg_name(-1)
