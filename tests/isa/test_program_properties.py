"""Property tests at the program level: images, symbols, linking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.isa.assembler import assemble
from repro.isa.encoding import decode
from repro.isa.program import DATA_BASE, Program, TEXT_BASE
from repro.workloads.suite import get_workload, workload_names


def test_text_image_roundtrips_through_decoder():
    """encode_text() must decode back to the same instruction stream."""
    program = assemble("""
        .data
    v: .dword 1
        .text
    _start:
        la  t0, v
        ld  t1, 0(t0)
        li  t2, 0x12345678
        beq t1, t2, out
        jal ra, out
    out:
        fcvt.d.l fa0, t1
        fmadd.d fa1, fa0, fa0, fa0
        li a7, 93
        ecall
    """)
    image = program.encode_text()
    assert len(image) == program.text_size
    for index, instr in enumerate(program.instructions):
        word = int.from_bytes(image[4 * index:4 * index + 4], "little")
        redecoded = decode(word, pc=TEXT_BASE + 4 * index)
        assert redecoded.mnemonic == instr.mnemonic
        assert redecoded.rd == instr.rd
        assert redecoded.imm == instr.imm


@pytest.mark.parametrize("name", workload_names())
def test_workload_text_images_roundtrip(name):
    """Every generated workload is real, decodable machine code."""
    from repro.workloads.suite import build_program

    program = build_program(name, scale=0.03)
    image = program.encode_text()
    for index in range(0, min(len(program), 400)):
        word = int.from_bytes(image[4 * index:4 * index + 4], "little")
        assert decode(word).mnemonic == \
            program.instructions[index].mnemonic


def test_instruction_pcs_are_sequential():
    program = assemble("_start: nop\n nop\n nop")
    assert [i.pc for i in program.instructions] == \
        [TEXT_BASE, TEXT_BASE + 4, TEXT_BASE + 8]


def test_instruction_at_bounds():
    program = assemble("_start: nop")
    assert program.instruction_at(TEXT_BASE).mnemonic == "addi"
    with pytest.raises(SimulationError):
        program.instruction_at(TEXT_BASE + 4)
    with pytest.raises(SimulationError):
        program.instruction_at(TEXT_BASE + 2)  # unaligned
    with pytest.raises(SimulationError):
        program.symbol("missing")


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1),
                min_size=1, max_size=8))
def test_data_dwords_load_back(values):
    """Arbitrary .dword data appears in memory byte-exactly."""
    from repro.sim.state import ArchState

    rendered = ", ".join(str(v & ((1 << 64) - 1)) for v in values)
    program = assemble(f"""
        .data
    table: .dword {rendered}
        .text
    _start:
        nop
    """)
    state = ArchState.for_program(program)
    for index, value in enumerate(values):
        loaded = state.memory.load(DATA_BASE + 8 * index, 8)
        assert loaded == value & ((1 << 64) - 1)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=1, max_value=1_000_000))
def test_li_materializes_any_value(value):
    from repro.sim.executor import Executor

    program = assemble(f"""
    _start:
        li a0, {value}
        li a7, 93
        ecall
    """)
    executor = Executor(program)
    executor.run_to_completion()
    assert executor.state.x[10] == value
