"""Fuzz tests: the assembler fails cleanly on arbitrary garbage.

Whatever the input, the assembler must either produce a valid Program or
raise AssemblerError with a line number — never crash with an unrelated
exception or hang.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import AssemblerError
from repro.isa.assembler import assemble
from repro.isa.program import Program

_TOKENS = st.sampled_from([
    "add", "bogus", "a0", "x99", "t0,", "123", "-5", "0x", "(", ")",
    "(sp)", "label:", ".word", ".data", ".text", ".asciz", '"str"', ",",
    ";", "#c", "li", "la", "beq", "nowhere", ".space", ".align", "::",
])


@settings(max_examples=120, deadline=None)
@given(st.lists(st.lists(_TOKENS, min_size=0, max_size=6), max_size=12))
def test_garbage_never_crashes(token_lines):
    source = "\n".join(" ".join(tokens) for tokens in token_lines)
    try:
        program = assemble(source)
    except AssemblerError:
        return
    assert isinstance(program, Program)


@settings(max_examples=60, deadline=None)
@given(st.text(max_size=200))
def test_arbitrary_text_never_crashes(source):
    try:
        program = assemble(source)
    except AssemblerError:
        return
    assert isinstance(program, Program)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=-(1 << 70), max_value=1 << 70))
def test_li_extreme_values(value):
    """li always assembles (wrapping into 64 bits) or errors cleanly."""
    try:
        program = assemble(f"_start: li a0, {value}")
    except AssemblerError:
        return
    from repro.sim.executor import Executor

    # Wrapped materialization matches Python's 64-bit wrap.
    program = assemble(f"""
    _start:
        li a0, {value}
        li a7, 93
        ecall
    """)
    executor = Executor(program)
    executor.run_to_completion()
    assert executor.state.x[10] == value & ((1 << 64) - 1)
