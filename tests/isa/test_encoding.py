"""Unit and property tests for binary encode/decode."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IllegalInstruction, IsaError
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Fmt, Instruction, SPECS


def roundtrip(instr: Instruction) -> Instruction:
    return decode(encode(instr), pc=instr.pc)


def assert_same(a: Instruction, b: Instruction) -> None:
    assert (a.mnemonic, a.rd, a.rs1, a.rs2, a.rs3, a.imm) == \
        (b.mnemonic, b.rd, b.rs1, b.rs2, b.rs3, b.imm)


def test_known_encodings_match_spec_examples():
    # addi x0, x0, 0 is the canonical NOP: 0x00000013
    assert encode(Instruction("addi")) == 0x00000013
    # ecall
    assert encode(Instruction("ecall")) == 0x00000073
    # add x3, x1, x2 -> 0x002081B3
    assert encode(Instruction("add", rd=3, rs1=1, rs2=2)) == 0x002081B3
    # lui a0, 0x12345 -> 0x12345537
    assert encode(Instruction("lui", rd=10, imm=0x12345)) == 0x12345537


def test_branch_offset_encoding():
    instr = Instruction("beq", rs1=1, rs2=2, imm=-8, pc=0x100)
    assert_same(instr, roundtrip(instr))
    instr = Instruction("bne", rs1=3, rs2=4, imm=4094)
    assert_same(instr, roundtrip(instr))


def test_jal_offset_encoding():
    for offset in (-1048576, -4, 0, 4, 2048, 1048574):
        instr = Instruction("jal", rd=1, imm=offset)
        assert_same(instr, roundtrip(instr))


def test_odd_branch_offset_rejected():
    with pytest.raises(IsaError):
        encode(Instruction("beq", rs1=1, rs2=2, imm=3))
    with pytest.raises(IsaError):
        encode(Instruction("jal", rd=1, imm=5))


def test_out_of_range_immediates_rejected():
    with pytest.raises(IsaError):
        encode(Instruction("addi", rd=1, rs1=1, imm=2048))
    with pytest.raises(IsaError):
        encode(Instruction("sd", rs1=1, rs2=2, imm=-2049))
    with pytest.raises(IsaError):
        encode(Instruction("slli", rd=1, rs1=1, imm=64))
    with pytest.raises(IsaError):
        encode(Instruction("slliw", rd=1, rs1=1, imm=32))
    with pytest.raises(IsaError):
        encode(Instruction("lui", rd=1, imm=1 << 20))


def test_illegal_word_raises():
    with pytest.raises(IllegalInstruction):
        decode(0xFFFFFFFF)
    with pytest.raises(IllegalInstruction):
        decode(0x00000000)


def test_rv64_shift_with_high_shamt():
    for mnemonic in ("slli", "srli", "srai"):
        instr = Instruction(mnemonic, rd=7, rs1=8, imm=45)
        assert_same(instr, roundtrip(instr))
    for mnemonic in ("slliw", "srliw", "sraiw"):
        instr = Instruction(mnemonic, rd=7, rs1=8, imm=17)
        assert_same(instr, roundtrip(instr))


def _arbitrary_instruction(draw) -> Instruction:
    mnemonic = draw(st.sampled_from(sorted(SPECS)))
    spec = SPECS[mnemonic]
    reg = st.integers(min_value=0, max_value=31)
    rd = draw(reg)
    rs1 = draw(reg)
    rs2 = draw(reg)
    rs3 = draw(reg) if spec.fmt is Fmt.R4 else 0
    if spec.fmt in (Fmt.I, Fmt.I_MEM, Fmt.I_JALR, Fmt.S):
        imm = draw(st.integers(min_value=-2048, max_value=2047))
    elif spec.fmt is Fmt.I_SHIFT:
        limit = 63 if spec.opcode == 0x13 else 31
        imm = draw(st.integers(min_value=0, max_value=limit))
    elif spec.fmt is Fmt.B:
        imm = draw(st.integers(min_value=-2048, max_value=2047)) * 2
    elif spec.fmt is Fmt.U:
        imm = draw(st.integers(min_value=0, max_value=(1 << 20) - 1))
    elif spec.fmt is Fmt.J:
        imm = draw(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1)) * 2
    else:
        imm = 0
    if spec.fmt is Fmt.NONE:
        rd = rs1 = rs2 = 0
    if spec.fmt is Fmt.R2:
        rs2 = 0
    if spec.fmt in (Fmt.U, Fmt.J):
        rs1 = rs2 = 0
    if spec.fmt in (Fmt.S, Fmt.B):
        rd = 0
    if spec.fmt in (Fmt.I, Fmt.I_SHIFT, Fmt.I_MEM, Fmt.I_JALR):
        rs2 = 0
    return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, rs3=rs3, imm=imm)


@given(st.data())
def test_roundtrip_property(data):
    instr = _arbitrary_instruction(data.draw)
    assert_same(instr, roundtrip(instr))


@given(st.data())
def test_encodings_are_32_bit(data):
    instr = _arbitrary_instruction(data.draw)
    word = encode(instr)
    assert 0 <= word < (1 << 32)
