"""Unit tests for the instruction table and classification logic."""

import pytest

from repro.errors import IsaError
from repro.isa.instructions import (
    Instruction,
    OpClass,
    SPECS,
    spec_for,
)


def test_every_spec_has_consistent_mnemonic_key():
    for mnemonic, spec in SPECS.items():
        assert spec.mnemonic == mnemonic


def test_unknown_mnemonic_raises():
    with pytest.raises(IsaError):
        spec_for("bogus")
    with pytest.raises(IsaError):
        Instruction("vadd.vv")


def test_issue_queue_routing():
    assert Instruction("add").opclass.issue_queue == "int"
    assert Instruction("mul").opclass.issue_queue == "int"
    assert Instruction("beq").opclass.issue_queue == "int"
    assert Instruction("ld").opclass.issue_queue == "mem"
    assert Instruction("sd").opclass.issue_queue == "mem"
    assert Instruction("fld").opclass.issue_queue == "mem"
    assert Instruction("fsd").opclass.issue_queue == "mem"
    assert Instruction("fadd.d").opclass.issue_queue == "fp"
    assert Instruction("fmadd.d").opclass.issue_queue == "fp"
    assert Instruction("fcvt.d.l").opclass.issue_queue == "fp"


def test_memory_classification():
    assert Instruction("lw").is_load
    assert Instruction("fld").is_load
    assert Instruction("sw").is_store
    assert Instruction("fsd").is_store
    assert Instruction("lw").is_memory
    assert not Instruction("add").is_memory


def test_control_classification():
    assert Instruction("beq").is_branch
    assert Instruction("beq").is_control
    assert Instruction("jal").is_control
    assert not Instruction("jal").is_branch
    assert Instruction("jalr").is_control
    assert not Instruction("add").is_control


def test_destination_register_classes():
    assert Instruction("add", rd=5).writes_x
    assert not Instruction("add", rd=0).writes_x  # x0 is not renamed
    assert Instruction("fadd.d", rd=0).writes_f   # f0 is a real register
    assert not Instruction("sd").writes_x
    # FP compare writes an integer register.
    assert Instruction("feq.d", rd=3).writes_x
    assert not Instruction("feq.d", rd=3).writes_f


def test_source_registers_drop_x0():
    instr = Instruction("add", rd=1, rs1=0, rs2=7)
    assert instr.source_regs() == (("x", 7),)
    instr = Instruction("add", rd=1, rs1=3, rs2=4)
    assert instr.source_regs() == (("x", 3), ("x", 4))


def test_source_registers_fp_and_mixed():
    fsd = Instruction("fsd", rs1=2, rs2=9)
    assert fsd.source_regs() == (("x", 2), ("f", 9))
    fmadd = Instruction("fmadd.d", rd=1, rs1=2, rs2=3, rs3=4)
    assert fmadd.source_regs() == (("f", 2), ("f", 3), ("f", 4))
    # fcvt.d.l reads an integer register and writes FP.
    cvt = Instruction("fcvt.d.l", rd=1, rs1=5)
    assert cvt.source_regs() == (("x", 5),)
    assert cvt.writes_f


def test_fp_opclass_flags():
    assert OpClass.FP_MUL.is_floating_point
    assert not OpClass.FP_LOAD.is_floating_point  # it is a memory op
    assert OpClass.FP_LOAD.is_memory
    assert not OpClass.ALU.is_memory


def test_repr_is_informative():
    text = repr(Instruction("addi", rd=1, rs1=2, imm=-5))
    assert "addi" in text
    assert "rd=1" in text
