"""Differential validation: checkpointed lockstep re-execution."""

import pytest

from repro.check.differential import (
    diff_core_against_reference,
    run_differential,
)
from repro.checkpoint import Checkpoint
from repro.errors import DifferentialMismatch
from repro.isa.assembler import assemble
from repro.sim.executor import Executor
from repro.uarch.config import ALL_CONFIGS, MEDIUM_BOOM
from repro.uarch.core import BoomCore

from tests.uarch.test_differential import generate_program


def make_checkpoint(program, at_instruction: int) -> Checkpoint:
    executor = Executor(program)
    executor.run(max_instructions=at_instruction)
    return Checkpoint.capture(executor.state, workload="test",
                              interval_index=0, weight=1.0,
                              warmup_instructions=0)


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_clean_run_matches_reference(config):
    program = assemble(generate_program(9))
    checkpoint = make_checkpoint(program, at_instruction=200)
    report = run_differential(config, program, checkpoint,
                              max_instructions=500)
    assert report.ok
    assert report.instructions >= 500
    assert report.commit_pcs_checked >= 500
    assert "OK" in report.format()


def test_run_to_completion_matches_reference():
    program = assemble(generate_program(13, body_ops=40, iterations=6))
    checkpoint = make_checkpoint(program, at_instruction=100)
    # No budget: the core runs until the program exits.
    report = run_differential(MEDIUM_BOOM, program, checkpoint,
                              max_instructions=None)
    assert report.ok


def test_tampered_register_is_caught():
    program = assemble(generate_program(9))
    checkpoint = make_checkpoint(program, at_instruction=200)
    core = BoomCore(MEDIUM_BOOM, program, state=checkpoint.restore())
    core.retire_log = []
    core.run(500)
    core.frontend.state.x[7] ^= 0xDEAD
    report = diff_core_against_reference(core, program,
                                         checkpoint.restore(),
                                         raise_on_mismatch=False)
    assert not report.ok
    assert "x7" in report.divergence


def test_tampered_memory_is_caught():
    program = assemble(generate_program(9))
    checkpoint = make_checkpoint(program, at_instruction=200)
    core = BoomCore(MEDIUM_BOOM, program, state=checkpoint.restore())
    core.retire_log = []
    core.run(500)
    state = core.frontend.state
    pages = state.memory.snapshot_pages()
    number = next(iter(pages))
    state.memory.restore_pages({number: b"\xff" * len(pages[number])})
    report = diff_core_against_reference(core, program,
                                         checkpoint.restore(),
                                         raise_on_mismatch=False)
    assert not report.ok
    assert "memory page" in report.divergence


def test_tampered_commit_log_is_caught():
    program = assemble(generate_program(9))
    checkpoint = make_checkpoint(program, at_instruction=200)
    core = BoomCore(MEDIUM_BOOM, program, state=checkpoint.restore())
    core.retire_log = []
    core.run(500)
    uop, cycle = core.retire_log[10]
    other = core.retire_log[11][0]
    core.retire_log[10] = (other, cycle)
    report = diff_core_against_reference(core, program,
                                         checkpoint.restore(),
                                         raise_on_mismatch=False)
    assert not report.ok
    assert "commit #" in report.divergence


def test_mismatch_raises_by_default():
    program = assemble(generate_program(9))
    checkpoint = make_checkpoint(program, at_instruction=200)
    core = BoomCore(MEDIUM_BOOM, program, state=checkpoint.restore())
    core.retire_log = []
    core.run(500)
    core.frontend.state.x[7] ^= 0xDEAD
    with pytest.raises(DifferentialMismatch):
        diff_core_against_reference(core, program, checkpoint.restore())
