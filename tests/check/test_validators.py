"""Power-report and experiment-result validators, plus the skew fault."""

import json
import math
from pathlib import Path

import pytest

from repro.check.validators import (
    require_valid_result,
    validate_report,
    validate_result,
)
from repro.errors import (
    CheckError,
    CorruptArtifactError,
    ResultValidationError,
)
from repro.flow.results import ExperimentResult, SimPointRun
from repro.pipeline.faults import FaultInjector, parse_fault_spec
from repro.power.area import ANALYZED_COMPONENTS, REST_OF_TILE
from repro.power.report import ComponentPower, PowerReport


def make_report(cycles: int = 1000) -> PowerReport:
    report = PowerReport(config_name="MediumBOOM", workload="test",
                         cycles=cycles)
    for name in ANALYZED_COMPONENTS:
        report.components[name] = ComponentPower(0.1, 0.2, 0.3)
    report.components[REST_OF_TILE] = ComponentPower(5.0, 5.0, 5.0)
    report.int_issue_slot_mw = [0.01] * 16
    return report


def make_result(weight: float = 1.0, coverage: float = 1.0,
                ipc: float = 2.0) -> ExperimentResult:
    cycles = 1000
    result = ExperimentResult(
        workload="test", config_name="MediumBOOM", scale=1.0,
        total_instructions=10_000, interval_size=1000, num_intervals=10,
        chosen_k=1, coverage=coverage)
    result.runs = [SimPointRun(
        interval_index=0, weight=weight, warmup_instructions=100,
        measured_instructions=int(ipc * cycles), cycles=cycles, ipc=ipc,
        report=make_report(cycles))]
    return result


class TestValidateReport:

    def test_clean_report_passes(self):
        assert validate_report(make_report()) == []

    def test_negative_power_flagged(self):
        report = make_report()
        report.components["rob"] = ComponentPower(-0.1, 0.2, 0.3)
        assert any("rob.leakage_mw" in p and "negative" in p
                   for p in validate_report(report))

    def test_non_finite_power_flagged(self):
        report = make_report()
        report.components["lsu"] = ComponentPower(math.nan, 0.2, 0.3)
        assert any("lsu" in p and "not finite" in p
                   for p in validate_report(report))

    def test_missing_component_flagged(self):
        report = make_report()
        del report.components["dcache"]
        assert any("components missing: dcache" in p
                   for p in validate_report(report))

    def test_zero_cycles_flagged(self):
        assert any("cycles" in p
                   for p in validate_report(make_report(cycles=0)))

    def test_slot_sum_band(self):
        report = make_report()
        report.int_issue_slot_mw = [100.0] * 16
        assert any("per-slot" in p for p in validate_report(report))


class TestValidateResult:

    def test_clean_result_passes(self):
        assert validate_result(make_result()) == []

    def test_weight_above_one_flagged(self):
        assert any("weight" in p
                   for p in validate_result(make_result(weight=1.5)))

    def test_weights_below_coverage_flagged(self):
        result = make_result(weight=0.4, coverage=0.9)
        assert any("coverage" in p for p in validate_result(result))

    def test_ipc_cycles_identity_flagged(self):
        result = make_result()
        result.runs[0].ipc = result.runs[0].ipc * 2
        assert any("disagrees" in p for p in validate_result(result))

    def test_non_finite_coverage_flagged(self):
        result = make_result()
        result.coverage = math.inf
        assert any("coverage" in p for p in validate_result(result))

    def test_nested_report_problem_surfaces(self):
        result = make_result()
        result.runs[0].report.components["rob"] = \
            ComponentPower(-1.0, 0.0, 0.0)
        assert any("runs[0].report" in p
                   for p in validate_result(result))


class TestRequireValidResult:

    def test_clean_result_is_silent(self):
        require_valid_result(make_result())
        require_valid_result(make_result(), boundary="load")

    def test_save_boundary_is_permanent(self):
        with pytest.raises(CheckError):
            require_valid_result(make_result(weight=2.0))

    def test_load_boundary_is_transient(self):
        # ResultValidationError subclasses CorruptArtifactError, so the
        # artifact store treats a skewed artifact like a torn one:
        # discard and recompute.
        with pytest.raises(ResultValidationError):
            require_valid_result(make_result(weight=2.0),
                                 boundary="load")
        assert issubclass(ResultValidationError, CorruptArtifactError)


class TestSkewFault:

    def test_skew_kind_parses(self):
        (spec,) = parse_fault_spec("artifact.write:skew:n=1")
        assert spec.kind == "skew"

    def test_skew_keeps_valid_json_but_fails_validation(self, tmp_path):
        path = tmp_path / "result.json"
        path.write_text(make_result().to_json(), encoding="utf-8")
        injector = FaultInjector(
            parse_fault_spec("artifact.write:skew:n=1"))
        assert injector.corrupt_file("artifact.write", "x/result", path)
        payload = json.loads(path.read_text())  # still strict JSON
        skewed = ExperimentResult.from_dict(payload)
        assert validate_result(skewed)  # ...but semantically impossible

    def test_corrupt_kind_still_garbles(self, tmp_path):
        path = tmp_path / "result.json"
        path.write_text(make_result().to_json(), encoding="utf-8")
        injector = FaultInjector(
            parse_fault_spec("artifact.write:corrupt:n=1"))
        assert injector.corrupt_file("artifact.write", "x/result", path)
        with pytest.raises(json.JSONDecodeError):
            json.loads(path.read_text())


class TestStrictJson:

    def test_to_json_rejects_non_finite(self):
        result = make_result()
        result.runs[0].ipc = math.inf
        with pytest.raises(ValueError, match="non-finite"):
            result.to_json()

    def test_to_json_round_trips(self):
        result = make_result()
        clone = ExperimentResult.from_dict(json.loads(result.to_json()))
        assert clone.to_json() == result.to_json()
