"""Runtime invariants: clean on real runs, loud on corrupted state.

Property-style tests push randomized programs through the detailed core
with a :class:`CoreInvariantChecker` attached; corruption tests then
damage one structure at a time and assert the checker names the broken
law — proving the checks are not vacuous.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.check.invariants import CoreInvariantChecker
from repro.errors import CheckError, InvariantViolation
from repro.isa.assembler import assemble
from repro.uarch.config import ALL_CONFIGS, MEDIUM_BOOM
from repro.uarch.core import BoomCore

from tests.uarch.test_differential import generate_program


def run_checked(source: str, config, budget: int | None = None):
    core = BoomCore(config, assemble(source))
    checker = CoreInvariantChecker(core)
    core.run(budget, heartbeat=checker)
    checker.check()
    return core, checker


@pytest.mark.parametrize("seed", [3, 17, 99])
@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_random_programs_hold_invariants(seed, config):
    core, checker = run_checked(generate_program(seed), config)
    assert core.frontend.state.exited
    assert checker.checks_run >= 1


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_random_programs_hold_invariants_property(seed):
    source = generate_program(seed, body_ops=40, iterations=6)
    run_checked(source, MEDIUM_BOOM)


@pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
def test_lazy_fp_config_holds_invariants(config):
    run_checked(generate_program(5), config.with_lazy_fp_snapshots())


def test_mid_flight_state_holds_invariants():
    # Stop with uops still in flight (retire budget < program length):
    # the settled-but-partial state must satisfy every law too.
    core = BoomCore(MEDIUM_BOOM, assemble(generate_program(11)))
    checker = CoreInvariantChecker(core)
    core.run(300, heartbeat=checker)
    checker.check()
    assert not core.frontend.state.exited


def test_checked_run_is_behavior_identical():
    source = generate_program(23)
    plain = BoomCore(MEDIUM_BOOM, assemble(source))
    plain.run()
    checked, _ = run_checked(source, MEDIUM_BOOM)
    assert checked.cycle == plain.cycle
    assert checked.retired_total == plain.retired_total
    assert checked.stats.ipc == plain.stats.ipc


def test_wrapped_heartbeat_still_called():
    calls = []
    core = BoomCore(MEDIUM_BOOM, assemble(generate_program(2)))
    checker = CoreInvariantChecker(
        core, wrapped=lambda retired, cycles: calls.append((retired,
                                                            cycles)))
    core.run(heartbeat=checker)
    assert len(calls) == checker.checks_run


def _partial_core(budget: int = 300):
    """A core stopped mid-program, with uops and state in flight."""
    core = BoomCore(MEDIUM_BOOM, assemble(generate_program(31)))
    core.run(budget)
    return core, CoreInvariantChecker(core)


def _violation(checker) -> InvariantViolation:
    with pytest.raises(InvariantViolation) as excinfo:
        checker.check()
    return excinfo.value


class TestCorruptionIsCaught:
    """Each injected corruption must trip exactly the matching law."""

    def test_free_list_leak(self):
        core, checker = _partial_core()
        core.rename.int_unit.free -= 1
        assert "rename.x" in str(_violation(checker))

    def test_free_list_overflow(self):
        core, checker = _partial_core()
        unit = core.rename.int_unit
        unit.free = unit.phys_regs  # > phys - 32
        assert "rename.x.free_bound" in str(_violation(checker))

    def test_alloc_counter_drift(self):
        core, checker = _partial_core()
        core.rename.fp_unit.total_allocs += 3
        assert "rename.f.alloc_balance" in str(_violation(checker))

    def test_phantom_snapshot_restore(self):
        # The lazy-FP recover bug this PR fixes produced exactly this
        # signature: more restores than snapshots ever taken.
        core, checker = _partial_core()
        unit = core.rename.fp_unit
        unit.total_restores = unit.total_snapshots + 1
        assert "snapshot_balance" in str(_violation(checker))

    def test_branch_counter_drift(self):
        core, checker = _partial_core()
        core.branches_in_flight += 1
        assert "branches.accounting" in str(_violation(checker))

    def test_rob_over_capacity(self):
        core, checker = _partial_core()
        assert len(core.rob) > 0
        core.rob.entries = len(core.rob) - 1
        assert "rob.capacity" in str(_violation(checker))

    def test_lsu_ledger_drift(self):
        core, checker = _partial_core()
        core.lsu._ldq.append(object())
        message = str(_violation(checker))
        assert "lsu.ldq" in message

    def test_heartbeat_catches_corruption_mid_run(self):
        # Corrupt from *inside* the run via a wrapped observer: the next
        # heartbeat check (or the final one) must fail the run.
        core = BoomCore(MEDIUM_BOOM, assemble(
            generate_program(41, body_ops=80, iterations=60)))

        def corruptor(retired: int, cycles: int) -> None:
            core.rename.int_unit.free -= 1

        checker = CoreInvariantChecker(core, wrapped=corruptor)
        with pytest.raises(InvariantViolation):
            core.run(heartbeat=checker)
            checker.check()

    def test_violation_is_check_error(self):
        core, checker = _partial_core()
        core.branches_in_flight += 1
        with pytest.raises(CheckError):
            checker.check()

    def test_violation_reports_cycle(self):
        core, checker = _partial_core()
        core.rename.int_unit.free -= 1
        assert f"cycle {core.cycle}" in str(_violation(checker))
