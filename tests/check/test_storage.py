"""Tests for the cache concurrency-metadata audit."""

import json
import multiprocessing
import os

from repro.check.storage import validate_storage
from repro.pipeline.journal import IntentJournal, recover_cache
from repro.pipeline.locking import WorkClaims, boot_id


def _dead_pid():
    proc = multiprocessing.Process(target=lambda: None)
    proc.start()
    proc.join()
    return proc.pid


def _journal_path(cache, pid):
    directory = cache / "journal"
    directory.mkdir(parents=True, exist_ok=True)
    return directory / f"intents-{boot_id()[:8]}-{pid}.jsonl"


def test_missing_cache_is_ok(tmp_path):
    assert validate_storage(tmp_path / "nope").ok


def test_clean_cache_is_ok(tmp_path):
    (tmp_path / "power_report").mkdir()
    report = validate_storage(tmp_path)
    assert report.ok
    assert "OK" in report.format()


def test_live_inflight_claim_is_a_note_not_a_problem(tmp_path):
    journal = IntentJournal(tmp_path)
    journal.claim("stage", "fp", tmp_path / "stage" / "fp.json")
    journal.close()
    report = validate_storage(tmp_path)
    assert report.ok
    assert any("in flight" in note for note in report.notes)


def test_dead_owner_open_claim_is_a_problem(tmp_path):
    _journal_path(tmp_path, _dead_pid()).write_text(json.dumps(
        {"op": "claim", "stage": "s", "fingerprint": "f",
         "path": "x"}) + "\n")
    report = validate_storage(tmp_path)
    assert not report.ok
    assert any("open claim" in problem for problem in report.problems)
    assert "recover" in report.format()


def test_commit_without_claim_is_a_problem(tmp_path):
    _journal_path(tmp_path, os.getpid()).write_text(json.dumps(
        {"op": "commit", "stage": "s", "fingerprint": "f"}) + "\n")
    report = validate_storage(tmp_path)
    assert any("commit without claim" in problem
               for problem in report.problems)


def test_mid_file_garbage_is_a_problem(tmp_path):
    _journal_path(tmp_path, os.getpid()).write_text(
        "{garbage\n" + json.dumps(
            {"op": "claim", "stage": "s", "fingerprint": "f",
             "path": "x"}) + "\n")
    report = validate_storage(tmp_path)
    assert any("corrupt record" in problem for problem in report.problems)


def test_dead_lease_is_a_problem(tmp_path):
    claims = WorkClaims(tmp_path)
    path = claims.lease_path("stage", "fp")
    path.parent.mkdir(parents=True)
    path.write_text(json.dumps({"pid": _dead_pid(),
                                "boot_id": boot_id()}))
    report = validate_storage(tmp_path)
    assert report.leases_scanned == 1
    assert any("dead" in problem for problem in report.problems)


def test_live_lease_is_fine(tmp_path):
    lease = WorkClaims(tmp_path).claim("stage", "fp")
    assert validate_storage(tmp_path).ok
    lease.release()


def test_dead_tmp_stray_is_a_problem(tmp_path):
    stage = tmp_path / "checkpoints"
    stage.mkdir()
    (stage / f"abc.tmp{_dead_pid()}").mkdir()
    report = validate_storage(tmp_path)
    assert any("stray scratch" in problem for problem in report.problems)


def test_dead_running_sweep_state_is_a_problem(tmp_path):
    (tmp_path / "sweep_state.json").write_text(json.dumps(
        {"sweep_id": "x", "status": "running",
         "owner": {"pid": _dead_pid(), "boot_id": boot_id()}}))
    report = validate_storage(tmp_path)
    assert any("interrupted sweep" in problem
               for problem in report.problems)


def test_dangling_pointer_is_a_problem(tmp_path):
    obs = tmp_path / "obs"
    obs.mkdir()
    (obs / "latest").write_text("gone-run\n")
    report = validate_storage(tmp_path)
    assert any("obs/latest" in problem for problem in report.problems)


def test_recover_then_validate_round_trip(tmp_path):
    """Every auditable fault recover_cache repairs must audit clean."""
    artifact = tmp_path / "power_report" / "torn.json"
    artifact.parent.mkdir(parents=True)
    artifact.write_text("{half")
    pid = _dead_pid()
    _journal_path(tmp_path, pid).write_text(json.dumps(
        {"op": "claim", "stage": "power_report", "fingerprint": "torn",
         "path": str(artifact)}) + "\n")
    claims = WorkClaims(tmp_path)
    lease_path = claims.lease_path("power_report", "torn")
    lease_path.parent.mkdir(parents=True)
    lease_path.write_text(json.dumps({"pid": pid, "boot_id": boot_id()}))
    (tmp_path / "sweep_state.json").write_text(json.dumps(
        {"sweep_id": "x", "status": "running",
         "owner": {"pid": pid, "boot_id": boot_id()}}))

    assert not validate_storage(tmp_path).ok
    assert not recover_cache(tmp_path).clean
    after = validate_storage(tmp_path)
    assert after.ok, after.problems
    assert any("quarantine" in note for note in after.notes)
