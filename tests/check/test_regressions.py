"""Regression tests for the two bugs this PR fixes.

1. Lazy-FP rename recovery: mispredict resolution used to restore an FP
   allocation-list snapshot that was never taken (under
   ``fp_rename_lazy_snapshots``), charging the power model for phantom
   copies.  The signature was ``restores > snapshots`` — now a checked
   invariant.
2. ``analysis.efficiency.summarize`` used to raise ``KeyError`` on the
   partial result maps a degraded sweep produces.
"""

from dataclasses import dataclass

from repro.analysis.efficiency import summarize
from repro.check.invariants import CoreInvariantChecker
from repro.isa.assembler import assemble
from repro.uarch.config import MEDIUM_BOOM
from repro.uarch.core import BoomCore
from repro.workloads.suite import workload_names

_INT_BRANCHY = """
    .text
_start:
    li   t0, 0
    li   t1, 400
    li   t3, 0
loop:
    andi t2, t0, 3
    beqz t2, skip
    addi t3, t3, 1
skip:
    addi t0, t0, 1
    bltu t0, t1, loop
    li   a0, 0
    li   a7, 93
    ecall
"""


class TestLazyFpRecovery:

    def test_int_only_code_never_restores_fp(self):
        config = MEDIUM_BOOM.with_lazy_fp_snapshots()
        core = BoomCore(config, assemble(_INT_BRANCHY))
        core.run()
        fp = core.rename.fp_unit
        assert fp.total_snapshots == 0
        # Before the fix every mispredict recovery "restored" an FP
        # snapshot that was never taken.
        assert fp.total_restores == 0
        assert core.stats.rob.flushes > 0

    def test_lazy_config_passes_snapshot_invariant(self):
        config = MEDIUM_BOOM.with_lazy_fp_snapshots()
        core = BoomCore(config, assemble(_INT_BRANCHY))
        checker = CoreInvariantChecker(core)
        core.run(heartbeat=checker)
        checker.check()

    def test_eager_default_still_restores(self):
        core = BoomCore(MEDIUM_BOOM, assemble(_INT_BRANCHY))
        core.run()
        fp = core.rename.fp_unit
        assert fp.total_snapshots > 0
        assert fp.total_restores == core.stats.rob.flushes
        assert fp.total_restores <= fp.total_snapshots


@dataclass
class _FakeResult:
    ipc: float = 2.0
    perf_per_watt: float = 50.0


def _full_map(configs=("MediumBOOM", "LargeBOOM", "MegaBOOM")):
    return {(w, c): _FakeResult() for w in workload_names()
            for c in configs}


class TestSummarizeDegradedSweeps:

    def test_complete_map_has_no_skips(self):
        summary = summarize(_full_map())
        assert summary.skipped == ()
        assert len(summary.winners) == len(workload_names())

    def test_missing_config_skips_workload(self):
        results = _full_map()
        victim = workload_names()[0]
        del results[(victim, "MegaBOOM")]
        summary = summarize(results)  # formerly KeyError
        assert victim in summary.skipped
        assert victim not in summary.winners
        assert len(summary.winners) == len(workload_names()) - 1
        assert victim in summary.format()

    def test_zero_ipc_workload_is_skipped_not_divided(self):
        results = _full_map()
        victim = workload_names()[1]
        results[(victim, "MediumBOOM")] = _FakeResult(ipc=0.0,
                                                      perf_per_watt=0.0)
        summary = summarize(results)  # formerly ZeroDivisionError
        assert victim in summary.skipped

    def test_empty_map_summarizes_to_all_skipped(self):
        summary = summarize({})  # formerly StatisticsError
        assert set(summary.skipped) == set(workload_names())
        assert summary.winners == {}
        summary.format()
