"""Tests for the metrics registry: snapshot round-trip and merging."""

import json

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)


def test_counter_gauge_histogram_basics():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5

    gauge = Gauge()
    gauge.set(7.0)
    gauge.set(3.0)
    assert gauge.value == 3.0
    assert gauge.high == 7.0

    hist = Histogram(bounds=(1.0, 10.0))
    for sample in (0.5, 5.0, 50.0):
        hist.observe(sample)
    assert hist.count == 3
    assert hist.buckets == [1, 1, 1]
    assert hist.min == 0.5 and hist.max == 50.0
    assert hist.mean == (0.5 + 5.0 + 50.0) / 3


def test_snapshot_is_json_safe_and_sorted():
    registry = MetricsRegistry()
    registry.counter("z.count").inc()
    registry.gauge("a.gauge").set(1.5)
    registry.histogram("m.hist").observe(0.01)
    snap = registry.snapshot()
    assert list(snap) == sorted(snap)
    round_tripped = json.loads(json.dumps(snap))
    assert round_tripped == snap
    assert round_tripped["z.count"]["kind"] == "counter"


def test_merge_snapshot_round_trip():
    worker = MetricsRegistry()
    worker.counter("retries").inc(2)
    worker.gauge("depth").set(4.0)
    worker.histogram("lat").observe(0.3)
    shipped = json.loads(json.dumps(worker.snapshot()))

    parent = MetricsRegistry()
    parent.counter("retries").inc(1)
    parent.gauge("depth").set(9.0)
    parent.histogram("lat").observe(1.1)
    parent.merge_snapshot(shipped)

    snap = parent.snapshot()
    assert snap["retries"]["value"] == 3
    assert snap["depth"]["value"] == 4.0  # latest write wins
    assert snap["depth"]["high"] == 9.0
    assert snap["lat"]["count"] == 2
    assert snap["lat"]["min"] == 0.3 and snap["lat"]["max"] == 1.1


def test_merge_snapshot_creates_missing_instruments():
    parent = MetricsRegistry()
    parent.merge_snapshot({"fresh": {"kind": "counter", "value": 5.0},
                           "junk": "not-a-dict",
                           "odd": {"kind": "mystery", "value": 1}})
    assert parent.snapshot() == {"fresh": {"kind": "counter", "value": 5.0}}


def test_global_registry_reset():
    reset_metrics()
    get_metrics().counter("x").inc()
    assert len(get_metrics()) == 1
    reset_metrics()
    assert len(get_metrics()) == 0


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def test_prometheus_export_counter_gauge_histogram():
    from repro.obs.metrics import snapshot_to_prometheus

    registry = MetricsRegistry()
    registry.counter("sweep.retries").inc(3)
    registry.gauge("pool.depth").set(2.0)
    registry.gauge("pool.depth").set(1.0)
    registry.histogram("stage.seconds").observe(0.05)   # ≤ 0.1 bucket
    registry.histogram("stage.seconds").observe(0.4)    # ≤ 0.5 bucket
    text = registry.to_prometheus()
    assert text.endswith("\n")
    lines = text.splitlines()
    assert "# TYPE repro_sweep_retries counter" in lines
    assert "repro_sweep_retries 3.0" in lines or "repro_sweep_retries 3" in lines
    assert "# TYPE repro_pool_depth gauge" in lines
    assert "repro_pool_depth 1.0" in lines
    assert "repro_pool_depth_high 2.0" in lines
    # cumulative buckets over DEFAULT_BUCKETS: 1 sample ≤ 0.1, 2 ≤ 0.5
    assert 'repro_stage_seconds_bucket{le="0.1"} 1' in lines
    assert 'repro_stage_seconds_bucket{le="0.5"} 2' in lines
    assert 'repro_stage_seconds_bucket{le="+Inf"} 2' in lines
    assert "repro_stage_seconds_count 2" in lines
    # module-level function renders a shipped snapshot identically
    assert snapshot_to_prometheus(
        json.loads(json.dumps(registry.snapshot()))) == text


def test_prometheus_name_sanitization_and_empty_registry():
    from repro.obs.metrics import snapshot_to_prometheus

    registry = MetricsRegistry()
    registry.counter("core.batched.cycles/s").inc()
    text = registry.to_prometheus(prefix="")
    assert "core_batched_cycles_s" in text
    assert snapshot_to_prometheus({}) == ""
    assert snapshot_to_prometheus({"junk": "not-a-dict"}) == ""
    # a leading digit is not a legal Prometheus name start
    assert snapshot_to_prometheus(
        {"9lives": {"kind": "counter", "value": 1}},
        prefix="").splitlines()[0] == "# TYPE _9lives counter"
