"""Tests for the metrics registry: snapshot round-trip and merging."""

import json

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    reset_metrics,
)


def test_counter_gauge_histogram_basics():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5

    gauge = Gauge()
    gauge.set(7.0)
    gauge.set(3.0)
    assert gauge.value == 3.0
    assert gauge.high == 7.0

    hist = Histogram(bounds=(1.0, 10.0))
    for sample in (0.5, 5.0, 50.0):
        hist.observe(sample)
    assert hist.count == 3
    assert hist.buckets == [1, 1, 1]
    assert hist.min == 0.5 and hist.max == 50.0
    assert hist.mean == (0.5 + 5.0 + 50.0) / 3


def test_snapshot_is_json_safe_and_sorted():
    registry = MetricsRegistry()
    registry.counter("z.count").inc()
    registry.gauge("a.gauge").set(1.5)
    registry.histogram("m.hist").observe(0.01)
    snap = registry.snapshot()
    assert list(snap) == sorted(snap)
    round_tripped = json.loads(json.dumps(snap))
    assert round_tripped == snap
    assert round_tripped["z.count"]["kind"] == "counter"


def test_merge_snapshot_round_trip():
    worker = MetricsRegistry()
    worker.counter("retries").inc(2)
    worker.gauge("depth").set(4.0)
    worker.histogram("lat").observe(0.3)
    shipped = json.loads(json.dumps(worker.snapshot()))

    parent = MetricsRegistry()
    parent.counter("retries").inc(1)
    parent.gauge("depth").set(9.0)
    parent.histogram("lat").observe(1.1)
    parent.merge_snapshot(shipped)

    snap = parent.snapshot()
    assert snap["retries"]["value"] == 3
    assert snap["depth"]["value"] == 4.0  # latest write wins
    assert snap["depth"]["high"] == 9.0
    assert snap["lat"]["count"] == 2
    assert snap["lat"]["min"] == 0.3 and snap["lat"]["max"] == 1.1


def test_merge_snapshot_creates_missing_instruments():
    parent = MetricsRegistry()
    parent.merge_snapshot({"fresh": {"kind": "counter", "value": 5.0},
                           "junk": "not-a-dict",
                           "odd": {"kind": "mystery", "value": 1}})
    assert parent.snapshot() == {"fresh": {"kind": "counter", "value": 5.0}}


def test_global_registry_reset():
    reset_metrics()
    get_metrics().counter("x").inc()
    assert len(get_metrics()) == 1
    reset_metrics()
    assert len(get_metrics()) == 0
