"""Tests for the tracer: span nesting, event ordering, the null path."""

import json
import threading

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    configure_tracer,
    get_tracer,
    heartbeat_interval,
    reset_tracer,
    tracing_requested,
)


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    reset_tracer()
    yield
    reset_tracer()


def _sink_tracer():
    sink = []
    return Tracer(sink=sink), sink


def test_span_nesting_parents():
    tracer, sink = _sink_tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("sibling"):
            pass
    begins = {r["name"]: r for r in sink if r["type"] == "B"}
    assert begins["outer"]["parent"] is None
    assert begins["inner"]["parent"] == begins["outer"]["sid"]
    assert begins["sibling"]["parent"] == begins["outer"]["sid"]


def test_span_event_ordering():
    tracer, sink = _sink_tracer()
    with tracer.span("a"):
        tracer.event("mark", key="v")
    types = [r["type"] for r in sink]
    assert types == ["meta", "B", "I", "E"]
    timestamps = [r["ts"] for r in sink if "ts" in r]
    assert timestamps == sorted(timestamps)


def test_span_attrs_recorded_at_begin_and_late_set():
    tracer, sink = _sink_tracer()
    with tracer.span("stage", fingerprint="abc") as span:
        span.set(outcome="ok")
    begin = next(r for r in sink if r["type"] == "B")
    end = next(r for r in sink if r["type"] == "E")
    assert begin["attrs"]["fingerprint"] == "abc"
    assert end["attrs"]["outcome"] == "ok"


def test_mis_nested_exit_recovers():
    tracer, sink = _sink_tracer()
    outer = tracer.span("outer").__enter__()
    inner = tracer.span("inner").__enter__()
    outer.__exit__(None, None, None)  # wrong order: leak inner
    with tracer.span("next"):
        pass
    begins = {r["name"]: r for r in sink if r["type"] == "B"}
    # the stack recovered: "next" is a root, not a child of the leak
    assert begins["next"]["parent"] is None
    assert inner.sid != outer.sid


def test_per_thread_span_stacks():
    tracer, sink = _sink_tracer()
    ready = threading.Barrier(2)

    def work(name):
        ready.wait()
        with tracer.span(name):
            pass

    threads = [threading.Thread(target=work, args=(f"t{i}",))
               for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    begins = [r for r in sink if r["type"] == "B"]
    assert all(r["parent"] is None for r in begins)


def test_file_tracer_writes_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    tracer = Tracer(path)
    with tracer.span("s"):
        tracer.heartbeat("hb", value=1)
    tracer.close()
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert lines[0]["type"] == "meta"
    assert [r["type"] for r in lines[1:]] == ["B", "hb", "E"]


def test_null_tracer_is_reentrant_noop():
    span = NULL_TRACER.span("x", a=1)
    with span:
        with span:
            span.set(b=2)
    NULL_TRACER.event("e")
    NULL_TRACER.heartbeat("h")
    assert NULL_TRACER.enabled is False


def test_get_tracer_defaults_to_null():
    assert isinstance(get_tracer(), NullTracer)


def test_configure_and_reset_global(tmp_path):
    tracer = configure_tracer(tmp_path / "events.jsonl")
    assert get_tracer() is tracer
    assert get_tracer().enabled
    reset_tracer()
    assert isinstance(get_tracer(), NullTracer)


def test_tracing_requested_env_values():
    assert tracing_requested({"REPRO_TRACE": "1"})
    assert tracing_requested({"REPRO_TRACE": "true"})
    assert not tracing_requested({"REPRO_TRACE": "0"})
    assert not tracing_requested({})


def test_heartbeat_interval_env():
    assert heartbeat_interval({"REPRO_TRACE_HEARTBEAT": "2.5"}) == 2.5
    assert heartbeat_interval({"REPRO_TRACE_HEARTBEAT": "bogus"}) == 0.5
    assert heartbeat_interval({"REPRO_TRACE_HEARTBEAT": "-1"}) == 0.5
