"""The flight recorder: sampling semantics and the zero-impact pledge.

Two contracts are pinned here.  First, the recorder's own semantics:
samples partition the run (window cycle counts sum to the core's total),
the warmup→measure stats swap resets the delta baseline via object
identity, phase boundaries are closed under the *old* phase tag,
``finish`` emits its terminal sample exactly once, and merged timelines
have a canonical order independent of worker scheduling.  Second — the
reason the recorder may exist at all — observation-only: a sweep run
with flight recording armed produces byte-identical stage artifacts to
one run without it, on the serial, parallel, and batched paths alike.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.checkpoint.checkpoint import Checkpoint
from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SweepRunner
from repro.goldens import GOLDEN_SCALE, GOLDEN_SEED
from repro.obs.flight import (
    FLIGHT_ENV,
    FlightRecorder,
    _numeric_delta,
    flight_requested,
    read_flight_file,
    write_merged_flight,
)
from repro.obs.session import latest_run_dir
from repro.sim.executor import Executor
from repro.uarch.config import MEDIUM_BOOM
from repro.uarch.core import BoomCore
from repro.workloads.suite import build_program

# The window must span several 4096-cycle heartbeat strides so the
# recorder takes genuine periodic samples, not just boundary ones.
WARMUP = 500
WINDOW = 12_000


@pytest.fixture(scope="module")
def sha_checkpoint():
    program = build_program("sha", scale=0.3, seed=GOLDEN_SEED)
    executor = Executor(program)
    executor.run(max_instructions=1_500)
    checkpoint = Checkpoint.capture(
        executor.state, workload="sha", interval_index=0, weight=1.0,
        warmup_instructions=WARMUP)
    return program, checkpoint


def _recorded_run(program, checkpoint, *, sink, wrapped=None):
    core = BoomCore(MEDIUM_BOOM, program, state=checkpoint.restore())
    recorder = FlightRecorder(core, workload="sha", checkpoint=0,
                              sink=sink, wrapped=wrapped)
    core.run(WARMUP, heartbeat=recorder)
    recorder.set_phase("measure")
    stats = core.begin_measurement()
    core.run(WINDOW, heartbeat=recorder)
    recorder.finish()
    return core, recorder, stats


# ----------------------------------------------------------------------
# environment switch and delta arithmetic
# ----------------------------------------------------------------------

def test_flight_requested_parses_truthy_values():
    assert not flight_requested({})
    assert not flight_requested({FLIGHT_ENV: "0"})
    assert not flight_requested({FLIGHT_ENV: "off"})
    for value in ("1", "true", "YES", " on "):
        assert flight_requested({FLIGHT_ENV: value})


def test_numeric_delta_recurses_and_passes_through():
    current = {"cycles": 10, "nested": {"a": 5, "new": 2},
               "hist": [3, 4], "name": "x", "flag": True}
    baseline = {"cycles": 4, "nested": {"a": 2}, "hist": [1, 1],
                "name": "x", "flag": True}
    delta = _numeric_delta(current, baseline)
    assert delta == {"cycles": 6, "nested": {"a": 3, "new": 2},
                     "hist": [2, 3], "name": "x", "flag": True}
    # shape-mismatched lists fall back to the current values
    assert _numeric_delta([1, 2, 3], [1, 2]) == [1, 2, 3]


# ----------------------------------------------------------------------
# recorder semantics on a real core
# ----------------------------------------------------------------------

def test_samples_partition_the_run(sha_checkpoint):
    program, checkpoint = sha_checkpoint
    sink: list[dict] = []
    core, recorder, _ = _recorded_run(program, checkpoint, sink=sink)
    assert sink, "a multi-thousand-cycle run must produce samples"
    assert sum(sample["cycles"] for sample in sink) == core.cycle
    for sample in sink:
        expected = (sample["retired"] / sample["cycles"]
                    if sample["cycles"] else 0.0)
        assert sample["ipc"] == expected
    assert [sample["seq"] for sample in sink] == list(range(len(sink)))


def test_phase_boundary_and_measurement_swap(sha_checkpoint):
    program, checkpoint = sha_checkpoint
    sink: list[dict] = []
    core, _, stats = _recorded_run(program, checkpoint, sink=sink)
    phases = [sample["phase"] for sample in sink]
    assert "warmup" in phases and "measure" in phases
    # phases are contiguous: all warmup samples precede all measure ones
    assert phases == sorted(phases, key=["warmup", "measure"].index)
    # the measure-phase windows must cover exactly the fresh stats
    # object's counters: begin_measurement() swapped the baseline
    measure = [s for s in sink if s["phase"] == "measure"]
    assert sum(s["cycles"] for s in measure) == stats.to_dict()["cycles"]
    assert sum(s["retired"] for s in measure) == stats.to_dict()["retired"]


def test_samples_carry_the_telemetry_sections(sha_checkpoint):
    program, checkpoint = sha_checkpoint
    sink: list[dict] = []
    _recorded_run(program, checkpoint, sink=sink)
    busy = [s for s in sink if s["cycles"] > 0 and s["retired"] > 0]
    assert busy
    for sample in busy:
        assert set(sample["occupancy"]) == {"rob", "iq", "ldq", "stq",
                                            "fetch_buffer"}
        assert set(sample["rates"]) == {"fetch_stall_frac", "branch_mpki",
                                        "icache_mpki", "dcache_mpki"}
        assert sample["power"]["tile_mw"] > 0
        shares = sample["power"]["shares"]
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert "base" in sample["cpi_stack"]
        # every record must be strict JSON (the emitter's contract)
        json.dumps(sample, allow_nan=False)


def test_finish_emits_terminal_sample_exactly_once(sha_checkpoint):
    program, checkpoint = sha_checkpoint
    sink: list[dict] = []
    _, recorder, _ = _recorded_run(program, checkpoint, sink=sink)
    finals = [sample for sample in sink if sample["final"]]
    assert len(finals) == 1 and sink[-1]["final"]
    count = len(sink)
    recorder.finish()
    recorder.finish()
    assert len(sink) == count


def test_wrapped_observer_still_sees_every_heartbeat(sha_checkpoint):
    program, checkpoint = sha_checkpoint
    beats: list[tuple[int, int]] = []
    _recorded_run(program, checkpoint, sink=[],
                  wrapped=lambda retired, cycles: beats.append(
                      (retired, cycles)))
    assert beats
    assert all(cycles > 0 for _retired, cycles in beats)


# ----------------------------------------------------------------------
# torn-tolerant reading and canonical merge
# ----------------------------------------------------------------------

def test_read_flight_file_skips_torn_tail(tmp_path):
    path = tmp_path / "flight-1.jsonl"
    good = {"type": "flight", "seq": 0}
    path.write_text(json.dumps(good) + "\n"
                    + '{"type": "other"}\n'
                    + '{"type": "flight", "seq": 1, "tor')
    samples, skipped = read_flight_file(path)
    assert samples == [good]
    assert skipped == 2
    assert read_flight_file(tmp_path / "absent.jsonl") == ([], 1)


def test_write_merged_flight_canonical_order(tmp_path):
    def sample(pid, seq, workload="sha", config="MediumBOOM"):
        return {"type": "flight", "pid": pid, "seq": seq,
                "workload": workload, "config": config, "checkpoint": 0}

    # two "workers" whose files interleave out of order
    (tmp_path / "flight-2.jsonl").write_text(
        "\n".join(json.dumps(sample(2, seq)) for seq in (0, 1)) + "\n")
    (tmp_path / "flight-1.jsonl").write_text(
        json.dumps(sample(1, 0, workload="qsort")) + "\n")
    merged = write_merged_flight(tmp_path)
    assert merged is not None
    doc = json.loads(merged.read_text())
    order = [(s["workload"], s["pid"], s["seq"]) for s in doc["samples"]]
    assert order == [("qsort", 1, 0), ("sha", 2, 0), ("sha", 2, 1)]
    assert doc["skipped_lines"] == 0


def test_write_merged_flight_empty_run_is_none(tmp_path):
    assert write_merged_flight(tmp_path) is None


# ----------------------------------------------------------------------
# the zero-impact pledge: byte-identical artifacts, recording on or off
# ----------------------------------------------------------------------

SCALE = 0.05
SWEEP_WORKLOADS = ["sha"]


def _sweep(cache, *, flight, jobs=1, batch=False, monkeypatch=None):
    if flight:
        monkeypatch.setenv(FLIGHT_ENV, "1")
    runner = SweepRunner(FlowSettings(scale=SCALE, batch=batch),
                         cache_dir=cache)
    results = runner.run_all(workloads=SWEEP_WORKLOADS, jobs=jobs,
                             trace=flight)
    if flight:
        monkeypatch.delenv(FLIGHT_ENV)
    return {key: result.to_dict() for key, result in results.items()}


def _artifact_digests(cache) -> dict[str, str]:
    """sha256 of every stage artifact (observability files excluded)."""
    out = {}
    for path in sorted(Path(cache).rglob("*.json")):
        relative = str(path.relative_to(cache))
        if relative.startswith("obs/") or path.name in (
                "run_manifest.json", "sweep_state.json"):
            continue
        out[relative] = hashlib.sha256(path.read_bytes()).hexdigest()
    return out


@pytest.fixture(scope="module")
def plain_reference(tmp_path_factory):
    cache = tmp_path_factory.mktemp("plain")
    results = _sweep(cache, flight=False)
    return results, _artifact_digests(cache)


@pytest.mark.parametrize("jobs,batch", [(1, False), (2, False), (1, True)],
                         ids=["serial", "parallel", "batched"])
def test_recording_is_byte_identical(tmp_path, monkeypatch,
                                     plain_reference, jobs, batch):
    results = _sweep(tmp_path, flight=True, jobs=jobs, batch=batch,
                     monkeypatch=monkeypatch)
    assert results == plain_reference[0]
    assert _artifact_digests(tmp_path) == plain_reference[1]
    # ...and the recording actually happened: the session merged a
    # timeline with samples for every pair, warmup and measure phases.
    run_dir = latest_run_dir(tmp_path)
    assert run_dir is not None
    flight = json.loads((run_dir / "flight.json").read_text())
    assert flight["skipped_lines"] == 0
    pairs = {(s["workload"], s["config"]) for s in flight["samples"]}
    assert len(pairs) == 3  # sha on all three presets
    assert {s["phase"] for s in flight["samples"]} >= {"warmup", "measure"}
    assert any(s["final"] for s in flight["samples"])


def test_recording_off_leaves_no_flight_files(tmp_path):
    _sweep(tmp_path, flight=False)
    assert not list(Path(tmp_path).rglob("flight*"))
