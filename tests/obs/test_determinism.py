"""Tracing must never perturb results: byte-identical artifacts on/off."""

import hashlib
import json

import pytest

from repro.flow.experiment import FlowSettings
from repro.flow.sweep import MANIFEST_NAME, SWEEP_STATE_NAME, SweepRunner
from repro.obs.metrics import reset_metrics
from repro.obs.session import OBS_DIR_NAME
from repro.obs.tracer import reset_tracer
from repro.pipeline.artifacts import INTERNAL_DIRS
from repro.uarch.config import MEDIUM_BOOM

SETTINGS = FlowSettings(scale=0.1)

#: run bookkeeping that is *expected* to differ (timings, trace paths,
#: pid/timestamp-bearing journals, leases and lock files)
_NON_ARTIFACTS = {MANIFEST_NAME, SWEEP_STATE_NAME}


@pytest.fixture(autouse=True)
def _clean_obs_state():
    reset_tracer()
    reset_metrics()
    yield
    reset_tracer()
    reset_metrics()


def _artifact_digests(cache_dir):
    digests = {}
    for path in sorted(cache_dir.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(cache_dir)
        if relative.parts[0] in INTERNAL_DIRS or \
                relative.name in _NON_ARTIFACTS or \
                relative.suffix == ".lock":
            continue
        digests[str(relative)] = hashlib.sha256(
            path.read_bytes()).hexdigest()
    return digests


def test_artifacts_byte_identical_tracing_on_vs_off(tmp_path):
    traced_dir = tmp_path / "traced"
    plain_dir = tmp_path / "plain"

    traced = SweepRunner(SETTINGS, cache_dir=traced_dir)
    traced.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"],
                   trace=True)
    plain = SweepRunner(SETTINGS, cache_dir=plain_dir)
    plain.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"])

    traced_digests = _artifact_digests(traced_dir)
    plain_digests = _artifact_digests(plain_dir)
    assert traced_digests  # the sweep actually produced artifacts
    assert traced_digests == plain_digests


def test_traced_results_equal_untraced_results(tmp_path):
    traced = SweepRunner(SETTINGS, cache_dir=tmp_path / "a")
    untraced = SweepRunner(SETTINGS, cache_dir=tmp_path / "b")
    got = traced.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"],
                         trace=True)
    want = untraced.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"])
    (a,) = got.values()
    (b,) = want.values()
    assert json.dumps(a.to_dict(), sort_keys=True) == \
        json.dumps(b.to_dict(), sort_keys=True)


def test_observability_excluded_from_cache_accounting(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"],
                   trace=True)
    counts = runner.store.artifact_counts()
    assert OBS_DIR_NAME not in counts
    removed = runner.store.clear()
    assert removed
    # clearing the cache must leave the recorded traces alone
    assert (tmp_path / OBS_DIR_NAME).exists()
