"""Tests for cross-process trace merging, including crashed workers."""

import json

from repro.obs.merge import (
    merge_event_files,
    read_event_file,
    write_merged_trace,
)
from repro.obs.tracer import Tracer


def _write_events(path, pid, wall, mono, records):
    lines = [json.dumps({"type": "meta", "pid": pid, "role": "worker",
                         "wall": wall, "mono": mono})]
    lines += [json.dumps(r) for r in records]
    path.write_text("\n".join(lines) + "\n")


def test_unified_timestamps_across_epochs(tmp_path):
    # two processes with wildly different monotonic epochs; events that
    # actually interleave in wall time must interleave after the merge
    a = tmp_path / "events-100.jsonl"
    b = tmp_path / "events-200.jsonl"
    _write_events(a, 100, wall=1000.0, mono=5.0, records=[
        {"type": "I", "name": "first", "ts": 5.0, "pid": 100, "attrs": {}},
        {"type": "I", "name": "third", "ts": 7.0, "pid": 100, "attrs": {}},
    ])
    _write_events(b, 200, wall=1000.0, mono=9000.0, records=[
        {"type": "I", "name": "second", "ts": 9001.0, "pid": 200,
         "attrs": {}},
    ])
    trace = merge_event_files([a, b])
    assert [e["name"] for e in trace["events"]] == \
        ["first", "second", "third"]
    assert trace["processes"] == [100, 200]
    assert trace["skipped_lines"] == 0
    uts = [e["uts"] for e in trace["events"]]
    assert uts == sorted(uts)


def test_crashed_worker_torn_tail_is_skipped(tmp_path):
    path = tmp_path / "events-300.jsonl"
    _write_events(path, 300, wall=1000.0, mono=0.0, records=[
        {"type": "I", "name": "ok", "ts": 1.0, "pid": 300, "attrs": {}},
    ])
    with open(path, "a") as handle:  # simulate a mid-write crash
        handle.write('{"type":"I","name":"torn","ts":2.0,"pi')
    events, skipped = read_event_file(path)
    assert [e["name"] for e in events] == ["ok"]
    assert skipped == 1


def test_missing_meta_anchor_skips_events(tmp_path):
    path = tmp_path / "events-400.jsonl"
    path.write_text(json.dumps(
        {"type": "I", "name": "orphan", "ts": 1.0, "pid": 400,
         "attrs": {}}) + "\n")
    events, skipped = read_event_file(path)
    assert events == []
    assert skipped == 1


def test_write_merged_trace_from_live_tracers(tmp_path):
    for fake_pid in (11, 12):
        tracer = Tracer(tmp_path / f"events-{fake_pid}.jsonl")
        with tracer.span("work", worker=fake_pid):
            tracer.event("tick")
        tracer.close()
    target = write_merged_trace(tmp_path)
    assert target == tmp_path / "trace.json"
    trace = json.loads(target.read_text())
    assert trace["schema"] == 1
    names = [e["name"] for e in trace["events"]]
    assert names.count("work") == 4  # B + E per process
    assert trace["skipped_lines"] == 0


def test_merge_tolerates_unreadable_file(tmp_path):
    trace = merge_event_files([tmp_path / "events-nope.jsonl"])
    assert trace["events"] == []
    assert trace["skipped_lines"] == 1
