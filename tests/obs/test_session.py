"""Tests for trace sessions and their integration with the sweep."""

import json
import os

import pytest

from repro.flow.experiment import FlowSettings
from repro.flow.sweep import SweepRunner
from repro.obs.metrics import reset_metrics
from repro.obs.session import (
    OBS_DIR_NAME,
    TraceSession,
    latest_run_dir,
    resolve_run_dir,
)
from repro.obs.tracer import (
    OBS_DIR_ENV,
    OBS_TRACE_ENV,
    NullTracer,
    get_tracer,
    reset_tracer,
)
from repro.uarch.config import MEDIUM_BOOM

SETTINGS = FlowSettings(scale=0.1)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    reset_tracer()
    reset_metrics()
    yield
    reset_tracer()
    reset_metrics()


def test_session_lifecycle_env_and_merge(tmp_path):
    assert OBS_DIR_ENV not in os.environ
    session = TraceSession(tmp_path, label="unit")
    with session:
        assert os.environ[OBS_DIR_ENV] == str(session.run_dir)
        assert os.environ[OBS_TRACE_ENV] == "1"
        tracer = get_tracer()
        assert tracer.enabled
        with tracer.span("work"):
            pass
    assert OBS_DIR_ENV not in os.environ
    assert isinstance(get_tracer(), NullTracer)
    assert session.trace_path is not None
    trace = json.loads(session.trace_path.read_text())
    assert [e["name"] for e in trace["events"]] == ["work", "work"]
    assert (session.run_dir / "metrics.json").exists()


def test_latest_pointer_and_resolution(tmp_path):
    with TraceSession(tmp_path, label="first") as first:
        pass
    with TraceSession(tmp_path, label="second") as second:
        pass
    assert latest_run_dir(tmp_path) == second.run_dir
    assert resolve_run_dir(tmp_path) == second.run_dir
    assert resolve_run_dir(tmp_path, "latest") == second.run_dir
    assert resolve_run_dir(tmp_path, first.run_id) == first.run_dir
    assert resolve_run_dir(tmp_path, str(first.run_dir)) == first.run_dir
    assert resolve_run_dir(tmp_path, "nonsense") is None


def test_traced_serial_sweep_manifest(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"],
                   trace=True)
    manifest = runner.last_manifest
    assert manifest.trace
    trace = json.loads((tmp_path / OBS_DIR_NAME).joinpath(
        sorted(p.name for p in (tmp_path / OBS_DIR_NAME).iterdir()
               if p.is_dir())[0], "trace.json").read_text())
    names = {e["name"] for e in trace["events"]}
    for stage in ("bbv_profile", "simpoint_selection", "checkpoints",
                  "detailed_sim", "power_report", "experiment_result"):
        assert f"stage.{stage}" in names, stage
    assert "cache.hit_rate" in manifest.metrics
    # the session is torn down: later runs are not traced
    assert isinstance(get_tracer(), NullTracer)


def test_traced_parallel_sweep_records_tasks(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"],
                   jobs=2, trace=True)
    manifest = runner.last_manifest
    tasks = manifest.tasks
    assert {t.key for t in tasks} == {"prepare:qsort", "qsort/MediumBOOM"}
    parent = os.getpid()
    for task in tasks:
        assert task.pid != parent
        assert task.ended >= task.started
        assert task.attempts == 1
    # worker event files merged into the run trace
    assert manifest.trace.endswith("trace.json")
    merged = json.loads(open(manifest.trace).read())
    worker_pids = {t.pid for t in tasks}
    assert worker_pids <= set(merged["processes"])
    # scheduler lifecycle events made it into the merged trace
    names = {e["name"] for e in merged["events"]}
    assert {"task.submit", "task.done"} <= names
    assert any(key.startswith("worker.utilization.")
               for key in manifest.metrics)


def test_untraced_sweep_records_nothing(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"])
    manifest = runner.last_manifest
    assert manifest.trace == ""
    assert not (tmp_path / OBS_DIR_NAME).exists()


def test_manifest_round_trips_tasks_and_metrics(tmp_path):
    runner = SweepRunner(SETTINGS, cache_dir=tmp_path)
    runner.run_all(configs=(MEDIUM_BOOM,), workloads=["qsort"],
                   jobs=2, trace=True)
    from repro.pipeline.manifest import RunManifest

    reloaded = RunManifest.from_dict(json.loads(
        (tmp_path / "run_manifest.json").read_text()))
    assert {t.key for t in reloaded.tasks} == \
        {t.key for t in runner.last_manifest.tasks}
    assert reloaded.metrics == runner.last_manifest.metrics
    assert reloaded.trace == runner.last_manifest.trace
