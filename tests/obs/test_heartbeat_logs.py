"""Tests for heartbeat emission, leveled logging, and log merging."""

import logging

from repro.obs.heartbeat import HeartbeatEmitter, wrap_control_hook
from repro.obs.logs import (
    WorkerLogMerger,
    get_logger,
    setup_cli_logging,
    verbosity_level,
    worker_log_path,
)
from repro.obs.tracer import Tracer


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _sink_emitter(interval=1.0, **attrs):
    sink = []
    tracer = Tracer(sink=sink)
    clock = _FakeClock()
    emitter = HeartbeatEmitter(tracer, "core.instr", interval=interval,
                               clock=clock, **attrs)
    return emitter, sink, clock


def test_heartbeat_rate_limited():
    emitter, sink, clock = _sink_emitter(interval=1.0, total=100)
    emitter(10)            # 0.0s: inside the interval, suppressed
    clock.now = 0.5
    emitter(20)            # still suppressed
    clock.now = 1.5
    emitter(30)            # emitted
    beats = [r for r in sink if r["type"] == "hb"]
    assert len(beats) == 1
    assert beats[0]["attrs"]["value"] == 30
    assert beats[0]["attrs"]["total"] == 100
    assert beats[0]["attrs"]["rate"] == 30 / 1.5


def test_heartbeat_finish_bypasses_rate_limit():
    emitter, sink, clock = _sink_emitter(interval=100.0)
    emitter(10)
    emitter.finish(42, outcome="done")
    beats = [r for r in sink if r["type"] == "hb"]
    assert len(beats) == 1
    assert beats[0]["attrs"]["value"] == 42
    assert beats[0]["attrs"]["final"] is True
    assert beats[0]["attrs"]["outcome"] == "done"


def test_wrap_control_hook_preserves_original_calls():
    emitter, sink, clock = _sink_emitter(interval=0.0)
    calls = []
    wrapped = wrap_control_hook(lambda s, e: calls.append((s, e)), emitter)
    clock.now = 1.0
    wrapped(0x1000, 0x100C)  # 4 instructions
    assert calls == [(0x1000, 0x100C)]
    beats = [r for r in sink if r["type"] == "hb"]
    assert beats[-1]["attrs"]["value"] == 4


def test_wrap_control_hook_identity_without_emitter():
    def hook(s, e):
        pass

    assert wrap_control_hook(hook, None) is hook
    assert wrap_control_hook(None, None) is None


def test_verbosity_levels():
    assert verbosity_level(quiet=True) == logging.ERROR
    assert verbosity_level() == logging.WARNING
    assert verbosity_level(1) == logging.INFO
    assert verbosity_level(2) == logging.DEBUG


def test_setup_cli_logging_idempotent_single_handler():
    first = setup_cli_logging(verbose=1)
    second = setup_cli_logging(verbose=0)
    assert first is second
    tagged = [h for h in second.handlers
              if getattr(h, "_repro_cli_handler", False)]
    assert len(tagged) == 1


def test_get_logger_namespaced():
    assert get_logger("repro.flow.sweep").name == "repro.flow.sweep"
    assert get_logger("other").name == "repro.other"


def test_worker_log_merger_tails_complete_lines(tmp_path):
    path = worker_log_path(tmp_path, pid=777)
    path.write_text("first line\n")
    merger = WorkerLogMerger(tmp_path)
    lines = merger.drain()
    assert lines == ["[worker 777] first line"]
    with open(path, "a") as handle:
        handle.write("second\npartial")  # no trailing newline yet
    assert merger.drain() == ["[worker 777] second"]
    with open(path, "a") as handle:
        handle.write(" done\n")
    assert merger.drain() == ["[worker 777] partial done"]
    assert merger.drain() == []
