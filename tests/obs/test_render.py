"""Tests for trace rendering: span trees, summaries, Chrome export."""

import json

from repro.obs.merge import merge_event_files
from repro.obs.render import (
    build_spans,
    chrome_json,
    critical_path,
    format_summary,
    format_tree,
    stage_totals,
    to_chrome,
    worker_utilization,
)
from repro.obs.tracer import Tracer


def _recorded_trace(tmp_path):
    """A real two-span trace recorded through the tracer + merger."""
    tracer = Tracer(tmp_path / "events-1.jsonl")
    with tracer.span("task", key="prepare:qsort"):
        with tracer.span("stage.bbv_profile", fingerprint="f00"):
            tracer.event("artifact.miss", stage="bbv_profile")
        tracer.heartbeat("functional.instr", value=10)
    tracer.close()
    return merge_event_files([tmp_path / "events-1.jsonl"])


def test_build_spans_nesting(tmp_path):
    roots = build_spans(_recorded_trace(tmp_path))
    assert len(roots) == 1
    task = roots[0]
    assert task.name == "task"
    assert task.attrs["key"] == "prepare:qsort"
    assert [c.name for c in task.children] == ["stage.bbv_profile"]
    assert not task.truncated
    assert task.duration >= task.children[0].duration >= 0.0


def test_unclosed_span_is_clamped_and_flagged():
    trace = {"events": [
        {"type": "B", "name": "doomed", "ts": 0.0, "uts": 10.0,
         "pid": 5, "tid": 5, "sid": 1, "parent": None, "attrs": {}},
        {"type": "I", "name": "later", "ts": 0.0, "uts": 12.0,
         "pid": 5, "attrs": {}},
    ]}
    (node,) = build_spans(trace)
    assert node.truncated
    assert node.end == 12.0
    assert "!" in format_tree(trace)


def test_stage_totals_and_critical_path(tmp_path):
    trace = _recorded_trace(tmp_path)
    totals = stage_totals(trace)
    assert totals["task"]["count"] == 1
    assert totals["stage.bbv_profile"]["count"] == 1
    path = [node.name for node in critical_path(trace)]
    assert path == ["task", "stage.bbv_profile"]


def test_worker_utilization_no_double_count():
    # two overlapping root spans for one pid must merge, not sum
    events = []
    for sid, (start, end) in enumerate([(0.0, 6.0), (4.0, 8.0)], start=1):
        events.append({"type": "B", "name": "task", "ts": 0.0, "uts": start,
                       "pid": 9, "tid": 9, "sid": sid, "parent": None,
                       "attrs": {}})
        events.append({"type": "E", "name": "task", "ts": 0.0, "uts": end,
                       "pid": 9, "tid": 9, "sid": sid})
    events.sort(key=lambda e: e["uts"])
    events.append({"type": "I", "name": "fin", "ts": 0.0, "uts": 10.0,
                   "pid": 9, "attrs": {}})
    util = worker_utilization({"events": events})
    assert util[9] == (8.0 - 0.0) / 10.0


def test_format_summary_mentions_skipped_lines(tmp_path):
    trace = _recorded_trace(tmp_path)
    trace["skipped_lines"] = 2
    text = format_summary(trace)
    assert "critical path" in text
    assert "2 unparseable" in text


def test_chrome_export_valid_json_matched_pairs(tmp_path):
    trace = _recorded_trace(tmp_path)
    doc = json.loads(chrome_json(trace))
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    begins = [e for e in events if e["ph"] == "B"]
    ends = [e for e in events if e["ph"] == "E"]
    assert len(begins) == len(ends) == 2
    # B/E pair up per (pid, tid) in stack order with non-negative ts
    assert all(e["ts"] >= 0 for e in events)
    instants = [e for e in events if e["ph"] == "i"]
    assert {e["name"] for e in instants} == \
        {"artifact.miss", "functional.instr"}


def test_chrome_export_empty_trace():
    assert to_chrome({"events": []}) == \
        {"traceEvents": [], "displayTimeUnit": "ms"}
    assert format_tree({"events": []}) == "(empty trace)"


# ----------------------------------------------------------------------
# flight timeline rendering: sparklines and Chrome counter tracks
# ----------------------------------------------------------------------

def _flight_doc():
    def sample(seq, ipc, phase="measure"):
        return {"type": "flight", "pid": 7, "seq": seq, "workload": "sha",
                "config": "MediumBOOM", "checkpoint": 0, "phase": phase,
                "cycle": 4096 * (seq + 1), "cycles": 4096,
                "retired": int(ipc * 4096), "ipc": ipc, "final": False,
                "occupancy": {"rob": 10.0 + seq, "iq": 4.0, "ldq": 2.0,
                              "stq": 1.0, "fetch_buffer": 3.0},
                "rates": {"fetch_stall_frac": 0.1, "branch_mpki": 5.0,
                          "icache_mpki": 1.0, "dcache_mpki": 2.0 + seq},
                "power": {"tile_mw": 20.0 + seq,
                          "shares": {"rob": 0.5, "rest_of_tile": 0.5}}}

    samples = [sample(0, 0.8, phase="warmup"),
               sample(1, 1.0), sample(2, 1.5), sample(3, 0.5)]
    return {"schema": 1, "samples": samples, "skipped_lines": 1}


def test_sparkline_shapes():
    from repro.obs.render import sparkline

    assert sparkline([]) == ""
    flat = sparkline([3.0, 3.0, 3.0])
    assert len(flat) == 3 and len(set(flat)) == 1
    rising = sparkline([0.0, 1.0, 2.0, 3.0])
    assert rising == "".join(sorted(rising))
    assert len(sparkline(list(range(1000)), width=40)) == 40


def test_format_flight_blocks_and_stats():
    from repro.obs.render import format_flight

    out = format_flight(_flight_doc(), width=20)
    assert "sha × MediumBOOM · checkpoint 0 (3 samples" in out
    # warmup samples are excluded from the timeline
    assert "(3 samples, 12288 cycles)" in out
    assert "ipc" in out and "tile_mw" in out
    assert "min=0.500" in out and "max=1.500" in out
    assert "1 unparseable flight line(s) skipped" in out
    assert format_flight({"samples": []}) \
        == "(no measure-phase flight samples)"


def test_flight_to_chrome_counter_tracks():
    import json

    from repro.obs.render import flight_to_chrome

    doc = flight_to_chrome(_flight_doc())
    events = doc["traceEvents"]
    json.dumps(doc)
    meta = [e for e in events if e["ph"] == "M"]
    assert len(meta) == 1
    assert meta[0]["args"]["name"] == "sha/MediumBOOM#0"
    counters = [e for e in events if e["ph"] == "C"]
    # 3 measure samples × (ipc + occupancy + rates + tile_mw)
    assert len(counters) == 12
    ipc_track = [e for e in counters if e["name"] == "ipc"]
    assert [e["args"]["ipc"] for e in ipc_track] == [1.0, 1.5, 0.5]
    assert [e["ts"] for e in ipc_track] == [8192.0, 12288.0, 16384.0]
    assert flight_to_chrome({"samples": []})["traceEvents"] == []
