"""Integration tests for SimPoint selection end-to-end."""

import numpy as np
import pytest

from repro.errors import SimPointError
from repro.isa.assembler import assemble
from repro.profiling.bbv import BBVProfile, BBVProfiler
from repro.simpoint.simpoints import select_simpoints

THREE_PHASE = """
_start:
    li t0, 300
a:  addi t0, t0, -1
    xor t1, t1, t0
    bnez t0, a
    li t0, 300
b:  addi t0, t0, -1
    add t2, t2, t0
    mul t3, t2, t2
    bnez t0, b
    li t0, 300
c:  addi t0, t0, -1
    sub t4, t4, t0
    srli t5, t4, 3
    or  t6, t6, t5
    bnez t0, c
    li a0, 0
    li a7, 93
    ecall
"""


def profile_three_phase():
    return BBVProfiler(interval_size=100).profile(assemble(THREE_PHASE))


def test_detects_three_phases():
    selection = select_simpoints(profile_three_phase(), seed=3,
                                 bic_threshold=0.4)
    # At least the three macro phases must separate.
    assert selection.chosen_k >= 3
    top = selection.top_points()
    assert selection.coverage_of(top) >= 0.9


def test_weights_sum_to_one():
    selection = select_simpoints(profile_three_phase(), seed=3)
    assert sum(p.weight for p in selection.points) == pytest.approx(1.0)


def test_points_reference_valid_intervals():
    profile = profile_three_phase()
    selection = select_simpoints(profile, seed=3)
    for point in selection.points:
        assert 0 <= point.interval_index < profile.num_intervals


def test_representatives_belong_to_their_cluster():
    profile = profile_three_phase()
    selection = select_simpoints(profile, seed=3)
    for point in selection.points:
        assert selection.labels[point.interval_index] == point.cluster


def test_top_points_ranked_by_weight():
    selection = select_simpoints(profile_three_phase(), seed=3)
    top = selection.top_points()
    weights = [p.weight for p in top]
    assert weights == sorted(weights, reverse=True)


def test_full_coverage_returns_all_points():
    selection = select_simpoints(profile_three_phase(), seed=3)
    everything = selection.top_points(coverage=1.0)
    assert len(everything) == len(selection.points)


def test_deterministic_for_seed():
    a = select_simpoints(profile_three_phase(), seed=11)
    b = select_simpoints(profile_three_phase(), seed=11)
    assert a.chosen_k == b.chosen_k
    assert [(p.interval_index, p.cluster) for p in a.points] == \
        [(p.interval_index, p.cluster) for p in b.points]


def test_uniform_program_selects_one_phase():
    uniform = """
    _start:
        li t0, 2000
    loop:
        addi t0, t0, -1
        xor  t1, t1, t0
        bnez t0, loop
        li a0, 0
        li a7, 93
        ecall
    """
    profile = BBVProfiler(interval_size=100).profile(assemble(uniform))
    selection = select_simpoints(profile, seed=5, bic_threshold=0.4)
    top = selection.top_points()
    # One dominant phase: the heaviest point covers nearly everything.
    assert top[0].weight > 0.8


def test_empty_profile_raises():
    empty = BBVProfile(interval_size=10, vectors=[], interval_lengths=[],
                       blocks=[])
    with pytest.raises(SimPointError):
        select_simpoints(empty)


def test_max_k_caps_clusters():
    selection = select_simpoints(profile_three_phase(), seed=3, max_k=2)
    assert selection.chosen_k <= 2
