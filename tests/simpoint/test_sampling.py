"""Tests for the periodic/random sampling baselines."""

import pytest

from repro.errors import SimPointError
from repro.isa.assembler import assemble
from repro.profiling.bbv import BBVProfiler
from repro.simpoint.sampling import periodic_selection, random_selection

PROGRAM = """
_start:
    li t0, 2000
loop:
    addi t0, t0, -1
    xor  t1, t1, t0
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
"""


@pytest.fixture(scope="module")
def profile():
    return BBVProfiler(interval_size=100).profile(assemble(PROGRAM))


def test_periodic_spacing(profile):
    selection = periodic_selection(profile, 5)
    indices = [p.interval_index for p in selection.points]
    assert len(indices) == 5
    gaps = [b - a for a, b in zip(indices, indices[1:])]
    assert max(gaps) - min(gaps) <= 1  # even spacing


def test_periodic_weights_sum_to_one(profile):
    selection = periodic_selection(profile, 4)
    assert sum(p.weight for p in selection.points) == pytest.approx(1.0)


def test_periodic_count_capped(profile):
    selection = periodic_selection(profile, 10_000)
    assert len(selection.points) <= profile.num_intervals


def test_random_is_seeded(profile):
    a = random_selection(profile, 5, seed=3)
    b = random_selection(profile, 5, seed=3)
    c = random_selection(profile, 5, seed=4)
    assert [p.interval_index for p in a.points] == \
        [p.interval_index for p in b.points]
    assert [p.interval_index for p in a.points] != \
        [p.interval_index for p in c.points]


def test_random_indices_distinct(profile):
    selection = random_selection(profile, 8, seed=1)
    indices = [p.interval_index for p in selection.points]
    assert len(set(indices)) == len(indices)
    assert all(0 <= i < profile.num_intervals for i in indices)


def test_points_carry_exact_boundaries(profile):
    starts = profile.interval_starts()
    for selection in (periodic_selection(profile, 3),
                      random_selection(profile, 3, seed=9)):
        for point in selection.points:
            assert point.start_instruction == starts[point.interval_index]
            assert point.length == \
                profile.interval_lengths[point.interval_index]


def test_invalid_count(profile):
    with pytest.raises(SimPointError):
        periodic_selection(profile, 0)
    with pytest.raises(SimPointError):
        random_selection(profile, -1)


def test_selection_runs_through_the_flow(profile):
    """A baseline selection drops into the standard experiment path."""
    from repro.flow.experiment import FlowSettings, run_selection
    from repro.profiling.bbv import BBVProfiler
    from repro.uarch.config import MEDIUM_BOOM
    from repro.workloads.suite import build_program

    settings = FlowSettings(scale=0.1)
    program = build_program("qsort", scale=settings.scale,
                            seed=settings.seed)
    qsort_profile = BBVProfiler(200).profile(program)
    selection = periodic_selection(qsort_profile, 3)
    result = run_selection("qsort", MEDIUM_BOOM, selection, settings)
    assert result.ipc > 0
    assert len(result.runs) == len(selection.points)
