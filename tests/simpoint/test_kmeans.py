"""Unit and property tests for the from-scratch k-means."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimPointError
from repro.simpoint.kmeans import kmeans


def three_blobs(rng, per_blob=30, spread=0.05):
    centers = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 0.0]])
    points = []
    for center in centers:
        points.append(center + rng.normal(0, spread, size=(per_blob, 2)))
    return np.vstack(points)


def test_recovers_separated_blobs():
    rng = np.random.default_rng(1)
    data = three_blobs(rng)
    result = kmeans(data, 3, seed=4)
    # Each blob maps to exactly one cluster.
    for blob in range(3):
        labels = result.labels[30 * blob:30 * (blob + 1)]
        assert len(set(labels)) == 1
    assert result.inertia < 10.0


def test_k1_centroid_is_mean():
    data = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0]])
    result = kmeans(data, 1, seed=0)
    assert np.allclose(result.centroids[0], [1.0, 1.0])
    assert np.all(result.labels == 0)


def test_k_equals_samples_gives_zero_inertia():
    data = np.array([[0.0], [1.0], [2.0], [5.0]])
    result = kmeans(data, 4, seed=0)
    assert result.inertia == pytest.approx(0.0)
    assert len(set(result.labels)) == 4


def test_weights_bias_centroid():
    data = np.array([[0.0], [10.0]])
    heavy_left = kmeans(data, 1, weights=np.array([9.0, 1.0]), seed=0)
    assert heavy_left.centroids[0][0] == pytest.approx(1.0)


def test_deterministic_for_seed():
    rng = np.random.default_rng(2)
    data = three_blobs(rng)
    a = kmeans(data, 3, seed=7)
    b = kmeans(data, 3, seed=7)
    assert np.array_equal(a.labels, b.labels)
    assert a.inertia == b.inertia


def test_cluster_sizes():
    data = np.array([[0.0], [0.1], [10.0]])
    result = kmeans(data, 2, seed=0)
    sizes = result.cluster_sizes()
    assert sorted(sizes.tolist()) == [1.0, 2.0]


def test_invalid_inputs():
    data = np.zeros((3, 2))
    with pytest.raises(SimPointError):
        kmeans(data, 0)
    with pytest.raises(SimPointError):
        kmeans(data, 4)
    with pytest.raises(SimPointError):
        kmeans(np.zeros(3), 1)
    with pytest.raises(SimPointError):
        kmeans(data, 2, weights=np.ones(2))


def test_identical_points():
    data = np.ones((10, 3))
    result = kmeans(data, 2, seed=0)
    assert result.inertia == pytest.approx(0.0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=1, max_value=5),
       st.integers(min_value=0, max_value=99),
       st.integers(min_value=6, max_value=40))
def test_inertia_nonincreasing_in_k(k, seed, samples):
    """More clusters never fit worse (within seeding noise tolerance)."""
    rng = np.random.default_rng(seed)
    data = rng.uniform(size=(samples, 3))
    coarse = kmeans(data, 1, seed=seed)
    fine = kmeans(data, k, seed=seed)
    assert fine.inertia <= coarse.inertia + 1e-9


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=99))
def test_labels_in_range(seed):
    rng = np.random.default_rng(seed)
    data = rng.uniform(size=(20, 4))
    result = kmeans(data, 3, seed=seed)
    assert result.labels.min() >= 0
    assert result.labels.max() < 3
    assert result.labels.shape == (20,)
