"""Unit tests for random projection and BIC-based k selection."""

import math

import numpy as np
import pytest

from repro.errors import SimPointError
from repro.simpoint.bic import bic_score, choose_k
from repro.simpoint.kmeans import kmeans
from repro.simpoint.projection import project, projection_matrix


class TestProjection:
    def test_reduces_dimensions(self):
        matrix = np.random.default_rng(0).uniform(size=(20, 100))
        projected = project(matrix, dimensions=15, seed=1)
        assert projected.shape == (20, 15)

    def test_narrow_matrix_passes_through(self):
        matrix = np.random.default_rng(0).uniform(size=(20, 10))
        projected = project(matrix, dimensions=15, seed=1)
        assert np.array_equal(projected, matrix)

    def test_deterministic_for_seed(self):
        matrix = np.random.default_rng(0).uniform(size=(5, 50))
        a = project(matrix, seed=3)
        b = project(matrix, seed=3)
        assert np.array_equal(a, b)
        c = project(matrix, seed=4)
        assert not np.array_equal(a, c)

    def test_distances_roughly_preserved(self):
        """Johnson-Lindenstrauss sanity: relative distances survive."""
        rng = np.random.default_rng(5)
        near = rng.uniform(size=50)
        matrix = np.vstack([near, near + 0.01, near + 10.0])
        projected = project(matrix, dimensions=15, seed=0)
        d_near = np.linalg.norm(projected[0] - projected[1])
        d_far = np.linalg.norm(projected[0] - projected[2])
        assert d_far > 10 * d_near

    def test_invalid_inputs(self):
        with pytest.raises(SimPointError):
            projection_matrix(0, 15)
        with pytest.raises(SimPointError):
            projection_matrix(10, 0)
        with pytest.raises(SimPointError):
            project(np.zeros(3))


class TestBic:
    def make_blobs(self, k, per=20, seed=0):
        rng = np.random.default_rng(seed)
        centers = np.arange(k)[:, None] * 50.0 * np.ones((k, 4))
        return np.vstack([c + rng.normal(0, 1.0, size=(per, 4))
                          for c in centers])

    def test_bic_selects_true_k(self):
        data = self.make_blobs(3)
        scores = {k: bic_score(data, kmeans(data, k, seed=k))
                  for k in range(1, 7)}
        assert choose_k(scores, threshold=0.9) == 3

    def test_choose_k_prefers_smallest_good_k(self):
        data = self.make_blobs(2)
        scores = {k: bic_score(data, kmeans(data, k, seed=k))
                  for k in range(1, 6)}
        assert choose_k(scores, threshold=0.9) == 2

    def test_choose_k_threshold_zero_returns_one(self):
        scores = {1: -100.0, 2: -50.0, 3: -40.0}
        assert choose_k(scores, threshold=0.0) == 1

    def test_choose_k_handles_equal_scores(self):
        assert choose_k({1: -5.0, 2: -5.0}) == 1

    def test_choose_k_empty_raises(self):
        with pytest.raises(SimPointError):
            choose_k({})

    def test_degenerate_k_equals_samples(self):
        data = np.eye(3)
        result = kmeans(data, 3, seed=0)
        assert bic_score(data, result) == -math.inf
