"""Whole-study integration: a reduced-scale end-to-end run.

The benchmark harness validates the full Table II scale; this test runs
the same pipeline at scale 0.2 so `pytest tests/` alone exercises every
stage against the headline shape claims (a regression canary for the
study itself, not just its parts).
"""

from statistics import mean

import pytest

from repro.analysis import check_all, fig9_component_share, summarize
from repro.flow.experiment import FlowSettings
from repro.flow.speedup import speedup_report
from repro.flow.sweep import SweepRunner
from repro.power.area import ANALYZED_COMPONENTS
from repro.workloads.suite import workload_names

SETTINGS = FlowSettings(scale=0.2)


@pytest.fixture(scope="module")
def study():
    runner = SweepRunner(SETTINGS, cache_dir=None)
    return runner.run_all()


@pytest.mark.slow
def test_every_pair_completed(study):
    assert len(study) == 33
    for (workload, config), result in study.items():
        assert result.ipc > 0, (workload, config)
        assert result.tile_mw > 0, (workload, config)
        assert result.coverage >= 0.9, (workload, config)


@pytest.mark.slow
def test_headline_orderings_hold_at_reduced_scale(study):
    names = workload_names()
    # Power ordering: Mega > Large > Medium on the suite average.
    tiles = {config: mean(study[(w, config)].tile_mw for w in names)
             for config in ("MediumBOOM", "LargeBOOM", "MegaBOOM")}
    assert tiles["MediumBOOM"] < tiles["LargeBOOM"] < tiles["MegaBOOM"]
    # Performance ordering per workload (widest never slower).
    for workload in names:
        assert study[(workload, "MegaBOOM")].ipc >= \
            study[(workload, "MediumBOOM")].ipc - 0.05
    # Efficiency conclusion: the small core prevails on average.
    summary = summarize(study)
    assert summary.average_perf_per_watt["MediumBOOM"] > \
        summary.average_perf_per_watt["MegaBOOM"]


@pytest.mark.slow
def test_branch_predictor_is_top_hotspot(study):
    names = workload_names()
    for config in ("MediumBOOM", "LargeBOOM", "MegaBOOM"):
        averages = {component: mean(
            study[(w, config)].component_mw(component) for w in names)
            for component in ANALYZED_COMPONENTS}
        assert max(averages, key=averages.get) == "branch_predictor", \
            config


@pytest.mark.slow
def test_component_share_grows_with_width(study):
    shares = fig9_component_share(study)
    assert shares["MediumBOOM"] < shares["LargeBOOM"] < \
        shares["MegaBOOM"]


@pytest.mark.slow
def test_simpoint_saves_order_of_magnitude(study):
    report = speedup_report([study[(w, "MegaBOOM")]
                             for w in workload_names()])
    assert report.overall_speedup > 10.0


@pytest.mark.slow
def test_takeaway_checks_run_end_to_end(study):
    checks = check_all(study)
    assert len(checks) == 8
    # At reduced scale a subset of quantitative thresholds may wobble;
    # the structural ones must hold.
    by_number = {check.number: check for check in checks}
    assert by_number[6].passed   # ROB share
    assert by_number[7].passed   # BP is #1
