"""`repro-bench --trend`: the per-metric trajectory across snapshots."""

from __future__ import annotations

import json

from repro.bench import format_trend, load_snapshots, main


def _snapshot(path, date, *, ops, cycles):
    path.write_text(json.dumps({
        "date": date,
        "metrics": {
            "calibration.ops_per_s": ops,
            "core.batched.cycles_per_s": cycles,
            "bench.wall_s": 1.0,  # ungated: excluded from the default set
        },
    }) + "\n")


def test_load_snapshots_oldest_first(tmp_path):
    _snapshot(tmp_path / "BENCH_2026-02-02.json", "2026-02-02",
              ops=1e6, cycles=2e5)
    _snapshot(tmp_path / "BENCH_2026-01-01.json", "2026-01-01",
              ops=1e6, cycles=1e5)
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    names = [name for name, _ in load_snapshots(tmp_path)]
    # oldest first; the unreadable snapshot is skipped with a warning
    assert names == ["BENCH_2026-01-01.json", "BENCH_2026-02-02.json"]


def test_format_trend_normalizes_against_calibration(tmp_path):
    # the machine got 2x faster (calibration doubles) while the metric
    # only doubled too — normalized, that PR is flat (1.00)
    _snapshot(tmp_path / "BENCH_2026-01-01.json", "2026-01-01",
              ops=1e6, cycles=1e5)
    _snapshot(tmp_path / "BENCH_2026-02-02.json", "2026-02-02",
              ops=2e6, cycles=2e5)
    _snapshot(tmp_path / "BENCH_2026-03-03.json", "2026-03-03",
              ops=2e6, cycles=6e5)
    out = format_trend(load_snapshots(tmp_path))
    row = next(line for line in out.splitlines()
               if line.startswith("core.batched.cycles_per_s"))
    assert "1.00" in row and "3.00" in row
    assert "600,000" in row  # latest raw value closes the row
    assert "2026-02-02" in out and "2026-03-03" in out
    assert "bench.wall_s" not in out  # ungated metrics stay out


def test_format_trend_explicit_metric_and_too_few(tmp_path):
    _snapshot(tmp_path / "BENCH_2026-01-01.json", "2026-01-01",
              ops=1e6, cycles=1e5)
    assert "at least two" in format_trend(load_snapshots(tmp_path))
    _snapshot(tmp_path / "BENCH_2026-02-02.json", "2026-02-02",
              ops=1e6, cycles=3e5)
    out = format_trend(load_snapshots(tmp_path),
                       metrics=["bench.wall_s"])
    assert "bench.wall_s" in out
    assert "core.batched.cycles_per_s" not in out


def test_main_trend_mode_runs_no_benchmarks(tmp_path, capsys):
    _snapshot(tmp_path / "BENCH_2026-01-01.json", "2026-01-01",
              ops=1e6, cycles=1e5)
    _snapshot(tmp_path / "BENCH_2026-02-02.json", "2026-02-02",
              ops=1e6, cycles=1e5)
    code = main(["--trend", "--trend-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "core.batched.cycles_per_s" in out
    # trend mode must not write a fresh BENCH snapshot anywhere
    assert len(list(tmp_path.glob("BENCH_*.json"))) == 2
