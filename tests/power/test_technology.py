"""Tests for the technology card and its DVFS extension."""

import pytest

from repro.errors import PowerModelError
from repro.power.technology import ASAP7, TechnologyCard


def test_default_card_matches_paper_operating_point():
    assert ASAP7.voltage == 0.70
    assert ASAP7.clock_hz == 500e6
    assert "asap7" in ASAP7.name


def test_max_clock_scales_with_overdrive():
    assert ASAP7.max_clock_hz(ASAP7.voltage) == pytest.approx(500e6)
    assert ASAP7.max_clock_hz(0.5) < 500e6
    assert ASAP7.max_clock_hz(0.9) > 500e6
    assert ASAP7.max_clock_hz(0.2) == 0.0


def test_scaling_exponents():
    scaled = ASAP7.at_operating_point(0.35, 50e6)
    ratio = 0.35 / 0.70
    assert scaled.gate_switch_fj == \
        pytest.approx(ASAP7.gate_switch_fj * ratio ** 2)
    assert scaled.sram_read_fj_per_bit == \
        pytest.approx(ASAP7.sram_read_fj_per_bit * ratio ** 2)
    assert scaled.leak_flop_nw == \
        pytest.approx(ASAP7.leak_flop_nw * ratio ** 3)
    assert scaled.clock_hz == 50e6
    assert scaled.cycle_seconds == pytest.approx(20e-9)


def test_infeasible_frequency_rejected():
    with pytest.raises(PowerModelError):
        ASAP7.at_operating_point(0.5, 500e6)  # too fast for 0.5 V


def test_subthreshold_voltage_rejected():
    with pytest.raises(PowerModelError):
        ASAP7.at_operating_point(0.25, 1e6)


def test_nominal_point_is_identity():
    same = ASAP7.at_operating_point(0.70, 500e6)
    assert same.gate_switch_fj == pytest.approx(ASAP7.gate_switch_fj)
    assert same.leak_flop_nw == pytest.approx(ASAP7.leak_flop_nw)


def test_dvfs_lowers_power_on_real_model():
    """Low-voltage MegaBOOM dissipates far less at the same activity."""
    from repro.isa.assembler import assemble
    from repro.power.model import PowerModel
    from repro.uarch.config import MEGA_BOOM
    from repro.uarch.core import BoomCore

    source = """
    _start:
        li t0, 2000
    loop:
        addi t0, t0, -1
        xor  t1, t1, t0
        bnez t0, loop
        li a0, 0
        li a7, 93
        ecall
    """
    core = BoomCore(MEGA_BOOM, assemble(source))
    core.run(1500)
    stats = core.begin_measurement()
    core.run(3000)
    nominal = PowerModel(MEGA_BOOM).report(stats)
    slow = ASAP7.at_operating_point(0.5, 200e6)
    scaled = PowerModel(MEGA_BOOM, tech=slow).report(stats)
    # P_dyn ~ f V^2: 0.4x frequency x 0.51x energy => ~0.2x power.
    assert scaled.tile_mw < 0.35 * nominal.tile_mw
    # But energy per instruction (power x time / work) is only V^2 lower.
    nominal_epi = nominal.tile_mw / 500e6
    scaled_epi = scaled.tile_mw / 200e6
    assert scaled_epi < nominal_epi
    assert scaled_epi > 0.3 * nominal_epi


def test_card_is_immutable():
    with pytest.raises(Exception):
        ASAP7.voltage = 0.6  # frozen dataclass
