"""Tests for the structural power model."""

import pytest

from repro.errors import PowerModelError
from repro.isa.assembler import assemble
from repro.power.area import ANALYZED_COMPONENTS, REST_OF_TILE
from repro.power.model import PowerModel
from repro.power.technology import ASAP7
from repro.uarch.config import LARGE_BOOM, MEDIUM_BOOM, MEGA_BOOM
from repro.uarch.core import BoomCore

EXIT = "li a7, 93\n    ecall"

INT_LOOP = f"""
_start:
    li t0, 3000
loop:
    addi t0, t0, -1
    xor  t1, t1, t0
    add  t2, t2, t1
    bnez t0, loop
    li a0, 0
    {EXIT}
"""

FP_LOOP = f"""
    .data
vals: .double 1.5, 2.5
    .text
_start:
    la t0, vals
    li t1, 1500
loop:
    fld fa0, 0(t0)
    fld fa1, 8(t0)
    fmadd.d fa2, fa0, fa1, fa2
    fsd fa2, 8(t0)
    addi t1, t1, -1
    bnez t1, loop
    li a0, 0
    {EXIT}
"""


def stats_for(source, config=MEGA_BOOM, warmup=2000, measure=4000):
    core = BoomCore(config, assemble(source))
    core.run(warmup)
    stats = core.begin_measurement()
    core.run(measure)
    return stats


@pytest.fixture(scope="module")
def int_stats():
    return stats_for(INT_LOOP)


@pytest.fixture(scope="module")
def fp_stats():
    return stats_for(FP_LOOP)


def test_report_covers_all_components(int_stats):
    report = PowerModel(MEGA_BOOM).report(int_stats, workload="int")
    assert set(report.components) == \
        set(ANALYZED_COMPONENTS) | {REST_OF_TILE}


def test_all_power_terms_nonnegative(int_stats):
    report = PowerModel(MEGA_BOOM).report(int_stats)
    for name, power in report.components.items():
        assert power.leakage_mw >= 0, name
        assert power.internal_mw >= 0, name
        assert power.switching_mw >= 0, name


def test_tile_equals_component_sum(int_stats):
    report = PowerModel(MEGA_BOOM).report(int_stats)
    assert report.tile_mw == pytest.approx(
        sum(c.total_mw for c in report.components.values()))


def test_analyzed_share_below_one(int_stats):
    report = PowerModel(MEGA_BOOM).report(int_stats)
    assert 0.3 < report.analyzed_share < 1.0


def test_empty_window_rejected():
    from repro.uarch.stats import CoreStats

    with pytest.raises(PowerModelError):
        PowerModel(MEGA_BOOM).report(CoreStats())


def test_fp_program_raises_fp_component_power(int_stats, fp_stats):
    model = PowerModel(MEGA_BOOM)
    int_report = model.report(int_stats)
    fp_report = model.report(fp_stats)
    assert fp_report.components["fp_issue"].total_mw > \
        int_report.components["fp_issue"].total_mw
    assert fp_report.components["fp_regfile"].switching_mw > \
        int_report.components["fp_regfile"].switching_mw


def test_fp_regfile_static_floor_in_int_code(int_stats):
    """Key Takeaway #2: Mega's FP RF burns power even without FP ops."""
    mega = PowerModel(MEGA_BOOM).report(int_stats)
    floor = mega.components["fp_regfile"].total_mw
    assert floor > 0.3
    assert mega.components["fp_regfile"].switching_mw == \
        pytest.approx(0.0, abs=1e-9)


def test_fp_rename_active_in_int_code(int_stats):
    """Key Takeaway #3: branches snapshot the FP rename unit."""
    report = PowerModel(MEGA_BOOM).report(int_stats)
    assert report.components["fp_rename"].total_mw > 0.3


def test_leakage_independent_of_activity(int_stats, fp_stats):
    model = PowerModel(MEGA_BOOM)
    a = model.report(int_stats)
    b = model.report(fp_stats)
    for name in ANALYZED_COMPONENTS:
        assert a.components[name].leakage_mw == \
            pytest.approx(b.components[name].leakage_mw)


def test_issue_slot_power_matches_queue_size(int_stats):
    report = PowerModel(MEGA_BOOM).report(int_stats)
    assert len(report.int_issue_slot_mw) == MEGA_BOOM.int_iq_entries
    assert all(value >= 0 for value in report.int_issue_slot_mw)


def test_wider_config_burns_more_power():
    """Same kernel: the tile total grows with machine aggressiveness."""
    totals = []
    for config in (MEDIUM_BOOM, LARGE_BOOM, MEGA_BOOM):
        stats = stats_for(INT_LOOP, config=config)
        totals.append(PowerModel(config).report(stats).tile_mw)
    assert totals[0] < totals[1] < totals[2]


def test_gshare_predictor_cheaper_than_tage():
    """Key Takeaway #7 at the model level."""
    tage_stats = stats_for(INT_LOOP, config=MEGA_BOOM)
    gshare_config = MEGA_BOOM.with_predictor("gshare")
    gshare_stats = stats_for(INT_LOOP, config=gshare_config)
    tage = PowerModel(MEGA_BOOM).report(tage_stats)
    gshare = PowerModel(gshare_config).report(gshare_stats)
    ratio = tage.components["branch_predictor"].total_mw / \
        gshare.components["branch_predictor"].total_mw
    assert 1.5 < ratio < 5.0


def test_format_table_mentions_all_components(int_stats):
    text = PowerModel(MEGA_BOOM).report(int_stats).format_table()
    for name in ANALYZED_COMPONENTS:
        assert name in text
    assert "tile total" in text


def test_ranked_components_descending(int_stats):
    report = PowerModel(MEGA_BOOM).report(int_stats)
    ranked = report.ranked_components()
    values = [value for _, value in ranked]
    assert values == sorted(values, reverse=True)
    assert len(ranked) == 13


def test_technology_card_defaults():
    assert ASAP7.clock_hz == 500e6
    assert ASAP7.cycle_seconds == pytest.approx(2e-9)
    assert 0 < ASAP7.idle_clock_fraction < 1
