"""Tests for the structural area models."""

import pytest

from repro.power.area import (
    ANALYZED_COMPONENTS,
    bypass_factor,
    bypass_gates,
    cache_access_bits,
    cache_area,
    component_areas,
    ComponentArea,
    issue_queue_area,
    predictor_area,
    regfile_area,
    rename_area,
    REST_OF_TILE,
)
from repro.uarch.config import (
    LARGE_BOOM,
    MEDIUM_BOOM,
    MEGA_BOOM,
    PredictorParams,
)


def test_thirteen_components_plus_rest():
    areas = component_areas(MEGA_BOOM)
    assert set(areas) == set(ANALYZED_COMPONENTS) | {REST_OF_TILE}
    assert len(ANALYZED_COMPONENTS) == 13


def test_all_areas_nonnegative():
    for config in (MEDIUM_BOOM, LARGE_BOOM, MEGA_BOOM):
        for name, area in component_areas(config).items():
            assert area.flops >= 0, name
            assert area.gates >= 0, name
            assert area.sram_bits >= 0, name
            assert area.cam_bits >= 0, name


def test_bypass_factor_normalized_to_medium():
    assert bypass_factor(6, 3) == pytest.approx(1.0)
    # Key Takeaway #1: the Mega/Medium integer RF structural ratio is
    # super-linear — around the paper's observed 18x power gap.
    ratio = bypass_factor(12, 6) / bypass_factor(6, 3)
    assert 14.0 < ratio < 22.0


def test_bypass_fp_ratio_matches_paper_jump():
    """FP RF: Mega (8R/4W) vs Large (4R/2W) is a large structural jump."""
    ratio = bypass_factor(8, 4) / bypass_factor(4, 2)
    assert ratio > 12.0


def test_bypass_gates_monotonic_in_ports():
    assert bypass_gates(8, 4) > bypass_gates(6, 3)
    assert bypass_gates(12, 6) > bypass_gates(8, 4)


def test_predictor_area_tage_larger_than_gshare():
    tage = predictor_area(PredictorParams(kind="tage"))
    gshare = predictor_area(PredictorParams(kind="gshare"))
    assert tage.gates > gshare.gates  # per-table hash logic


def test_predictor_area_scales_with_btb():
    small = predictor_area(PredictorParams(btb_entries=256))
    large = predictor_area(PredictorParams(btb_entries=512))
    assert large.sram_bits > small.sram_bits


def test_cache_area_scales_with_size():
    small = cache_area(MEDIUM_BOOM.dcache)
    large = cache_area(MEGA_BOOM.dcache)
    assert large.sram_bits > 1.8 * small.sram_bits
    assert large.flops > small.flops  # MSHR registers


def test_cache_access_bits_scale_with_ways():
    assert cache_access_bits(MEGA_BOOM.dcache) == \
        2 * cache_access_bits(MEDIUM_BOOM.dcache)


def test_rename_area_includes_snapshots():
    with_snapshots = rename_area(128, 4, max_branches=20)
    without = rename_area(128, 4, max_branches=0)
    assert with_snapshots.flops - without.flops == 20 * 128


def test_issue_queue_area_scales_with_entries():
    small = issue_queue_area(20, 2)
    large = issue_queue_area(40, 4)
    assert large.flops == 2 * small.flops
    assert large.cam_bits == 2 * small.cam_bits


def test_regfile_area_storage():
    area = regfile_area(128, 12, 6)
    assert area.flops == 128 * 64


def test_component_area_addition():
    total = ComponentArea(flops=1, gates=2) + ComponentArea(flops=3,
                                                            cam_bits=4)
    assert total.flops == 4
    assert total.gates == 2
    assert total.cam_bits == 4


def test_rob_area_small_relative_to_regfile():
    """Merged regfile: the ROB holds bookkeeping only (§IV-B)."""
    areas = component_areas(MEGA_BOOM)
    assert areas["rob"].flops < areas["int_regfile"].flops


def test_mega_dcache_bigger_than_large_via_mshrs():
    large = component_areas(LARGE_BOOM)["dcache"]
    mega = component_areas(MEGA_BOOM)["dcache"]
    assert mega.flops > large.flops  # 2x MSHRs
    assert mega.sram_bits == large.sram_bits  # identical geometry
