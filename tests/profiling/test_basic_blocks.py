"""Unit tests for static basic-block discovery."""

from repro.isa.assembler import assemble
from repro.isa.program import TEXT_BASE
from repro.profiling.basic_blocks import block_map, discover_blocks


def test_single_block_program():
    program = assemble("""
    _start:
        addi a0, a0, 1
        addi a1, a1, 2
        ecall
    """)
    blocks = discover_blocks(program)
    assert len(blocks) == 1
    assert blocks[0].start_pc == TEXT_BASE
    assert blocks[0].length == 3


def test_branch_splits_blocks():
    program = assemble("""
    _start:
        addi a0, a0, 1
        beq  a0, a1, target
        addi a2, a2, 1
    target:
        addi a3, a3, 1
    """)
    blocks = discover_blocks(program)
    starts = sorted(b.start_pc for b in blocks)
    # leaders: _start, after-branch, target
    assert starts == [TEXT_BASE, TEXT_BASE + 8, TEXT_BASE + 12]


def test_backward_branch_target_is_leader():
    program = assemble("""
    _start:
        addi a0, a0, 1
    loop:
        addi a1, a1, -1
        bnez a1, loop
    """)
    blocks = discover_blocks(program)
    mapping = block_map(blocks)
    assert TEXT_BASE + 4 in mapping  # loop label
    loop_block = mapping[TEXT_BASE + 4]
    assert loop_block.length == 2


def test_block_lengths_cover_program():
    program = assemble("""
    _start:
        addi a0, a0, 1
        jal  ra, f
        addi a1, a1, 1
        ecall
    f:
        addi a2, a2, 1
        ret
    """)
    blocks = discover_blocks(program)
    total = sum(block.length for block in blocks)
    assert total == len(program)


def test_contains():
    program = assemble("_start: addi a0, a0, 1\n  addi a1, a1, 1")
    block = discover_blocks(program)[0]
    assert block.contains(TEXT_BASE)
    assert block.contains(TEXT_BASE + 4)
    assert not block.contains(TEXT_BASE + 8)


def test_empty_program():
    from repro.isa.program import Program

    assert discover_blocks(Program(instructions=[])) == []
