"""Unit tests for BBV profiling."""

import numpy as np
import pytest

from repro.errors import SimPointError
from repro.isa.assembler import assemble
from repro.profiling.bbv import BBVProfiler

TWO_PHASE = """
_start:
    li t0, 200
phase_a:
    addi t0, t0, -1
    xor  t1, t1, t0
    bnez t0, phase_a
    li t0, 200
phase_b:
    addi t0, t0, -1
    add  t2, t2, t0
    slli t3, t2, 1
    bnez t0, phase_b
    li a0, 0
    li a7, 93
    ecall
"""


def test_interval_budget_respected():
    profiler = BBVProfiler(interval_size=100)
    profile = profiler.profile(assemble(TWO_PHASE))
    # every interval except possibly the last holds >= interval_size
    assert all(length >= 100 for length in profile.interval_lengths[:-1])
    assert sum(profile.interval_lengths) == profile.total_instructions


def test_vector_weights_sum_to_interval_lengths():
    profile = BBVProfiler(interval_size=100).profile(assemble(TWO_PHASE))
    for vector, length in zip(profile.vectors, profile.interval_lengths):
        assert sum(vector.values()) == length


def test_phases_have_distinct_vectors():
    profile = BBVProfiler(interval_size=100).profile(assemble(TWO_PHASE))
    matrix = profile.matrix()
    # First and last interval exercise disjoint blocks.
    first, last = matrix[0], matrix[-1]
    overlap = np.minimum(first, last).sum()
    assert overlap < 0.1


def test_matrix_rows_normalized():
    profile = BBVProfiler(interval_size=100).profile(assemble(TWO_PHASE))
    matrix = profile.matrix()
    assert np.allclose(matrix.sum(axis=1), 1.0)
    raw = profile.matrix(normalize=False)
    assert raw.sum() == profile.total_instructions


def test_weights_sum_to_one():
    profile = BBVProfiler(interval_size=100).profile(assemble(TWO_PHASE))
    assert profile.weights().sum() == pytest.approx(1.0)


def test_single_interval_when_size_huge():
    profile = BBVProfiler(interval_size=10**9).profile(assemble(TWO_PHASE))
    assert profile.num_intervals == 1


def test_invalid_interval_size():
    with pytest.raises(SimPointError):
        BBVProfiler(interval_size=0)


def test_empty_profile_matrix_raises():
    from repro.profiling.bbv import BBVProfile

    empty = BBVProfile(interval_size=10, vectors=[], interval_lengths=[],
                       blocks=[])
    with pytest.raises(SimPointError):
        empty.matrix()


def test_profile_total_matches_plain_execution():
    from repro.sim.executor import Executor

    program = assemble(TWO_PHASE)
    plain = Executor(program)
    plain.run_to_completion()
    profile = BBVProfiler(interval_size=50).profile(assemble(TWO_PHASE))
    assert profile.total_instructions == plain.state.retired
