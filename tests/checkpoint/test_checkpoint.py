"""Tests for architectural checkpoint capture, restore, and serialization."""

import pytest

from repro.checkpoint.checkpoint import Checkpoint
from repro.errors import CheckpointError
from repro.isa.assembler import assemble
from repro.sim.executor import Executor

PROGRAM = """
    .data
buf: .space 64
    .text
_start:
    li t0, 1000
    la t1, buf
loop:
    addi t0, t0, -1
    sd   t0, 0(t1)
    fcvt.d.l fa0, t0
    fadd.d fa1, fa1, fa0
    bnez t0, loop
    li a0, 0
    li a7, 93
    ecall
"""


def make_checkpoint(at=500):
    program = assemble(PROGRAM, name="probe")
    executor = Executor(program)
    executor.run(max_instructions=at)
    return program, Checkpoint.capture(
        executor.state, workload="probe", interval_index=3, weight=0.5,
        warmup_instructions=100)


def test_capture_records_state():
    program, checkpoint = make_checkpoint()
    assert checkpoint.instruction_index == 500
    assert checkpoint.workload == "probe"
    assert checkpoint.interval_index == 3
    assert checkpoint.weight == 0.5
    assert checkpoint.pages  # text + data pages captured


def test_restore_resumes_identically():
    program, checkpoint = make_checkpoint()
    resumed = Executor(program, state=checkpoint.restore())
    reference = Executor(assemble(PROGRAM, name="probe"))
    reference.run_to_completion()
    resumed.run(max_instructions=10**6)
    assert resumed.state.exited
    assert resumed.state.x == reference.state.x
    assert resumed.state.f == reference.state.f
    assert resumed.state.retired == reference.state.retired


def test_restore_preserves_fp_bit_patterns():
    program, checkpoint = make_checkpoint()
    state = checkpoint.restore()
    original = Executor(program)
    original.run(max_instructions=500)
    assert state.f == original.state.f


def test_restored_memory_is_independent():
    program, checkpoint = make_checkpoint()
    state_a = checkpoint.restore()
    state_b = checkpoint.restore()
    state_a.memory.store(0x100000, 0xFF, 1)
    assert state_b.memory.load(0x100000, 1) != 0xFF or \
        checkpoint.pages  # writing one restore does not affect the other
    assert state_a.memory.load(0x100000, 1) == 0xFF


def test_serialization_roundtrip():
    _, checkpoint = make_checkpoint()
    blob = checkpoint.to_bytes()
    loaded = Checkpoint.from_bytes(blob)
    assert loaded.workload == checkpoint.workload
    assert loaded.instruction_index == checkpoint.instruction_index
    assert loaded.interval_index == checkpoint.interval_index
    assert loaded.weight == checkpoint.weight
    assert loaded.warmup_instructions == checkpoint.warmup_instructions
    assert loaded.pc == checkpoint.pc
    assert loaded.xregs == checkpoint.xregs
    assert loaded.fregs_bits == checkpoint.fregs_bits
    assert loaded.pages == checkpoint.pages


def test_serialized_restore_equivalence():
    program, checkpoint = make_checkpoint()
    loaded = Checkpoint.from_bytes(checkpoint.to_bytes())
    a = Executor(program, state=checkpoint.restore())
    b = Executor(program, state=loaded.restore())
    a.run(max_instructions=200)
    b.run(max_instructions=200)
    assert a.state.x == b.state.x
    assert a.state.pc == b.state.pc


def test_bad_magic_rejected():
    _, checkpoint = make_checkpoint()
    blob = bytearray(checkpoint.to_bytes())
    blob[0] = ord("X")
    with pytest.raises(CheckpointError):
        Checkpoint.from_bytes(bytes(blob))


def test_truncated_blob_rejected():
    with pytest.raises(CheckpointError):
        Checkpoint.from_bytes(b"RV")
