"""Tests for on-disk checkpoint storage."""

import pytest

from repro.checkpoint.creator import create_checkpoints
from repro.checkpoint.loader import verify_checkpoint
from repro.checkpoint.store import (
    describe_store,
    load_checkpoints,
    save_checkpoints,
)
from repro.errors import CheckpointError
from repro.flow.experiment import FlowSettings, profile_and_select
from repro.workloads.suite import build_program

SCALE = 0.15


@pytest.fixture(scope="module")
def qsort_checkpoints():
    settings = FlowSettings(scale=SCALE)
    program = build_program("qsort", scale=SCALE, seed=settings.seed)
    _, selection = profile_and_select("qsort", settings)
    return program, create_checkpoints(program, selection, warmup=200)


def test_save_load_roundtrip(tmp_path, qsort_checkpoints):
    program, checkpoints = qsort_checkpoints
    written = save_checkpoints(tmp_path, checkpoints)
    assert len(written) == len(checkpoints)
    assert (tmp_path / "manifest.json").exists()
    loaded = load_checkpoints(tmp_path)
    assert len(loaded) == len(checkpoints)
    for original, restored in zip(checkpoints, loaded):
        assert restored.instruction_index == original.instruction_index
        assert restored.pages == original.pages
        assert restored.weight == original.weight


def test_loaded_checkpoints_resume_correctly(tmp_path, qsort_checkpoints):
    program, checkpoints = qsort_checkpoints
    save_checkpoints(tmp_path, checkpoints)
    for checkpoint in load_checkpoints(tmp_path, workload=program.name):
        assert verify_checkpoint(program, checkpoint,
                                 probe_instructions=200)


def test_workload_filter(tmp_path, qsort_checkpoints):
    _, checkpoints = qsort_checkpoints
    save_checkpoints(tmp_path, checkpoints)
    with pytest.raises(CheckpointError):
        load_checkpoints(tmp_path, workload="sha")


def test_multiple_workloads_share_directory(tmp_path, qsort_checkpoints):
    _, checkpoints = qsort_checkpoints
    save_checkpoints(tmp_path, checkpoints)
    settings = FlowSettings(scale=0.05)
    sha_program = build_program("sha", scale=0.05, seed=settings.seed)
    _, sha_selection = profile_and_select("sha", settings)
    sha_checkpoints = create_checkpoints(sha_program, sha_selection,
                                         warmup=100)
    save_checkpoints(tmp_path, sha_checkpoints)
    everything = load_checkpoints(tmp_path)
    workloads = {c.workload for c in everything}
    assert len(workloads) == 2


def test_missing_manifest_raises(tmp_path):
    with pytest.raises(CheckpointError):
        load_checkpoints(tmp_path)


def test_empty_save_rejected(tmp_path):
    with pytest.raises(CheckpointError):
        save_checkpoints(tmp_path, [])


def test_describe_store(tmp_path, qsort_checkpoints):
    _, checkpoints = qsort_checkpoints
    save_checkpoints(tmp_path, checkpoints)
    text = describe_store(tmp_path)
    assert "checkpoints" in text
    assert ".ckpt" in text
    assert describe_store(tmp_path / "nowhere").endswith("(no manifest)")


def test_garbage_manifest_raises_checkpoint_error(tmp_path):
    (tmp_path / "manifest.json").write_text("{ not json")
    with pytest.raises(CheckpointError, match="corrupt"):
        load_checkpoints(tmp_path)
    (tmp_path / "manifest.json").write_text("[1, 2, 3]")
    with pytest.raises(CheckpointError, match="not a mapping"):
        load_checkpoints(tmp_path)


def test_truncated_blob_raises_checkpoint_error(tmp_path,
                                                qsort_checkpoints):
    _, checkpoints = qsort_checkpoints
    paths = save_checkpoints(tmp_path, checkpoints)
    blob = paths[0].read_bytes()
    paths[0].write_bytes(blob[:10])
    with pytest.raises(CheckpointError, match="blob"):
        load_checkpoints(tmp_path)
    # garbage payload (valid length, corrupt body) is wrapped too
    paths[0].write_bytes(blob[: len(blob) // 2] + b"\xff" * 16)
    with pytest.raises(CheckpointError):
        load_checkpoints(tmp_path)
