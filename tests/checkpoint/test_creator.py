"""Tests for checkpoint creation at SimPoint boundaries."""

import pytest

from repro.checkpoint.creator import (
    checkpoint_starts,
    create_checkpoints,
    DEFAULT_WARMUP,
)
from repro.checkpoint.loader import resume_functional, verify_checkpoint
from repro.errors import CheckpointError
from repro.profiling.bbv import BBVProfiler
from repro.simpoint.simpoints import select_simpoints, SimPoint
from repro.workloads import build_program, get_workload

SCALE = 0.2


@pytest.fixture(scope="module")
def qsort_setup():
    program = build_program("qsort", scale=SCALE)
    interval = get_workload("qsort").interval_for_scale(SCALE)
    profile = BBVProfiler(interval).profile(program)
    selection = select_simpoints(profile, seed=17, bic_threshold=0.4)
    return program, selection


def test_checkpoint_starts_clamp_warmup():
    points = [SimPoint(interval_index=0, cluster=0, weight=0.5),
              SimPoint(interval_index=10, cluster=1, weight=0.5)]
    plan = checkpoint_starts(points, interval_size=100, warmup=500)
    first_point, first_capture, first_warmup = plan[0]
    assert first_capture == 0
    assert first_warmup == 0
    second_point, second_capture, second_warmup = plan[1]
    assert second_capture == 500
    assert second_warmup == 500


def test_create_checkpoints_land_on_boundaries(qsort_setup):
    program, selection = qsort_setup
    warmup = 100
    checkpoints = create_checkpoints(program, selection, warmup=warmup)
    top = {p.interval_index: p for p in selection.top_points()}
    assert len(checkpoints) == len(top)
    for checkpoint in checkpoints:
        point = top[checkpoint.interval_index]
        # Checkpoints use the interval's *exact* start boundary (profile
        # intervals overshoot the nominal size by up to one basic block).
        start = point.start_instruction
        assert start >= point.interval_index * selection.interval_size
        assert checkpoint.instruction_index == max(0, start - warmup)
        assert checkpoint.warmup_instructions == \
            start - checkpoint.instruction_index
        assert checkpoint.measure_instructions == point.length
        assert point.length >= selection.interval_size or \
            start + point.length >= selection.total_instructions


def test_checkpoints_are_resume_equivalent(qsort_setup):
    program, selection = qsort_setup
    for checkpoint in create_checkpoints(program, selection, warmup=100):
        assert verify_checkpoint(program, checkpoint,
                                 probe_instructions=300)


def test_checkpoint_weights_match_selection(qsort_setup):
    program, selection = qsort_setup
    checkpoints = create_checkpoints(program, selection, warmup=100)
    expected = {p.interval_index: p.weight for p in selection.top_points()}
    for checkpoint in checkpoints:
        assert checkpoint.weight == expected[checkpoint.interval_index]


def test_explicit_points_subset(qsort_setup):
    program, selection = qsort_setup
    subset = selection.top_points()[:1]
    checkpoints = create_checkpoints(program, selection, points=subset,
                                     warmup=100)
    assert len(checkpoints) == 1


def test_no_points_raises(qsort_setup):
    program, selection = qsort_setup
    with pytest.raises(CheckpointError):
        create_checkpoints(program, selection, points=[])


def test_boundary_beyond_program_end_raises(qsort_setup):
    program, selection = qsort_setup
    bogus = [SimPoint(interval_index=10**6, cluster=0, weight=1.0)]
    with pytest.raises(CheckpointError):
        create_checkpoints(program, selection, points=bogus)


def test_resume_functional_checks_name(qsort_setup):
    program, selection = qsort_setup
    checkpoint = create_checkpoints(program, selection, warmup=100)[0]
    other = build_program("sha", scale=0.05)
    with pytest.raises(CheckpointError):
        resume_functional(other, checkpoint)


def test_default_warmup_matches_paper_scale():
    # 2k warm-up at 1:1000 scale corresponds to the paper's 2M warm-up.
    assert DEFAULT_WARMUP == 2000
