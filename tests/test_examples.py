"""Smoke tests: every example script must run to completion.

Marked slow (full-scale workloads inside); run with ``-m slow`` or let CI
include them.  Each example is executed in-process with a patched argv.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [str(EXAMPLES / name), *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


def test_example_inventory():
    assert len(ALL_EXAMPLES) >= 6
    assert "quickstart.py" in ALL_EXAMPLES


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "sum(1..100) = 5050" in out
    assert "performance per watt" in out


@pytest.mark.slow
def test_simpoint_phases(capsys):
    run_example("simpoint_phases.py")
    out = capsys.readouterr().out
    assert "phase timeline" in out
    assert "bitcount" in out


@pytest.mark.slow
def test_hotspot_analysis(capsys):
    run_example("hotspot_analysis.py")
    out = capsys.readouterr().out
    assert "hotspot ranking" in out
    assert "Takeaway" in out


@pytest.mark.slow
def test_design_space_exploration(capsys):
    run_example("design_space_exploration.py")
    out = capsys.readouterr().out
    assert "MegaBOOM-smallIQ" in out
    assert "Pareto frontier" in out
    assert "Sensitivity around MediumBOOM" in out


@pytest.mark.slow
def test_pipeline_debug(capsys):
    run_example("pipeline_debug.py")
    out = capsys.readouterr().out
    assert "sha on MegaBOOM" in out
    assert "avg issue-queue wait" in out


@pytest.mark.slow
def test_dvfs_frontier(capsys):
    run_example("dvfs_frontier.py")
    out = capsys.readouterr().out
    assert "MIPS/W" in out


@pytest.mark.slow
def test_cpi_characterization(capsys):
    run_example("cpi_characterization.py", argv=["MediumBOOM"])
    out = capsys.readouterr().out
    assert "CPI stacks on MediumBOOM" in out
    assert "tarfind" in out
