#!/usr/bin/env python
"""Generate golden equivalence fixtures for the optimized hot paths.

Thin CLI over :mod:`repro.goldens`: captures retire streams, BBV vectors,
final architectural state, ``uarch.stats`` counters, and power reports
from the *current* tree into ``benchmarks/golden/<workload>.json``.  The
fixtures committed in-repo were generated from the pre-optimization tree,
so the equivalence tests in ``tests/sim/test_equivalence.py`` pin the
optimized paths to the original semantics — regenerate only when an
intentional semantic change invalidates them.

Usage::

    PYTHONPATH=src python scripts/make_golden.py [--scale 0.1] [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.goldens import (  # noqa: E402
    GOLDEN_SCALE,
    GOLDEN_SEED,
    bbv_fixture,
    core_fixture,
    functional_fixture,
)
from repro.workloads.suite import build_program, workload_names  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=GOLDEN_SCALE)
    parser.add_argument("--seed", type=int, default=GOLDEN_SEED)
    parser.add_argument("--out", default=None,
                        help="output dir (default benchmarks/golden)")
    parser.add_argument("--workloads", nargs="*", default=None)
    args = parser.parse_args(argv)

    out_dir = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "benchmarks" / "golden"
    out_dir.mkdir(parents=True, exist_ok=True)

    names = args.workloads or workload_names()
    for workload in names:
        program = build_program(workload, scale=args.scale, seed=args.seed)
        fixture = {
            "workload": workload,
            "scale": args.scale,
            "seed": args.seed,
            "functional": functional_fixture(program),
            "bbv": bbv_fixture(workload, program, args.scale),
            "core": core_fixture(workload, program),
        }
        path = out_dir / f"{workload}.json"
        path.write_text(json.dumps(fixture, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} "
              f"(retired={fixture['functional']['retired']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
