#!/usr/bin/env python3
"""Observability smoke test: a traced parallel mini-sweep (CI gate).

Runs a small workload subset with tracing enabled across two pool
workers and asserts the observability pillars end to end:

* the merged trace covers every pipeline stage as a span, plus
  scheduler task lifecycle events and simulator heartbeats;
* every span's begin has a matching end (no torn or dangling spans in
  a clean run);
* the run manifest records per-task worker pids, wall-clock bounds and
  attempt counts, the metrics snapshot, and the trace path;
* the Chrome trace-event export is valid JSON with paired B/E phases;
* artifacts are byte-identical to an untraced run of the same sweep.

Usage::

    PYTHONPATH=src python scripts/smoke_trace.py [--scale 0.05] [--jobs 2]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.flow import FlowSettings, SweepRunner
from repro.obs.render import to_chrome
from repro.pipeline.artifacts import INTERNAL_DIRS
from repro.pipeline.stages import (
    CHECKPOINT_STAGE,
    DETAILED_STAGE,
    POWER_STAGE,
    PROFILE_STAGE,
    RESULT_STAGE,
    SELECTION_STAGE,
)
from repro.uarch.config import MEDIUM_BOOM, MEGA_BOOM

ALL_STAGES = (PROFILE_STAGE, SELECTION_STAGE, CHECKPOINT_STAGE,
              DETAILED_STAGE, POWER_STAGE, RESULT_STAGE)
WORKLOADS = ["qsort", "sha"]
CONFIGS = (MEDIUM_BOOM, MEGA_BOOM)


def _artifact_digests(cache_dir: Path) -> dict[str, str]:
    skip = {"run_manifest.json", "sweep_state.json"}
    digests = {}
    for path in sorted(cache_dir.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(cache_dir)
        if relative.parts[0] in INTERNAL_DIRS or \
                relative.suffix == ".lock" or relative.name in skip:
            continue
        digests[str(relative)] = hashlib.sha256(
            path.read_bytes()).hexdigest()
    return digests


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--jobs", type=int, default=2)
    args = parser.parse_args(argv)

    settings = FlowSettings(scale=args.scale)
    with tempfile.TemporaryDirectory() as cache:
        runner = SweepRunner(settings, cache_dir=cache)
        results = runner.run_all(configs=CONFIGS, workloads=WORKLOADS,
                                 jobs=args.jobs, trace=True)
        manifest = runner.last_manifest
        assert manifest.ok, "traced sweep degraded"
        assert len(results) == len(WORKLOADS) * len(CONFIGS)

        # --- manifest: trace path, task records, metrics snapshot -----
        assert manifest.trace, "manifest records no trace path"
        trace = json.loads(Path(manifest.trace).read_text())
        assert trace["skipped_lines"] == 0, "clean run tore trace lines"

        if args.jobs > 1:
            assert manifest.tasks, "parallel sweep recorded no tasks"
            parent = os.getpid()
            for task in manifest.tasks:
                assert task.pid != parent, "task pid is the parent"
                assert task.ended >= task.started
                assert task.attempts >= 1
            worker_pids = {task.pid for task in manifest.tasks}
            assert worker_pids <= set(trace["processes"]), (
                "worker event files missing from the merged trace")
        assert "cache.hit_rate" in manifest.metrics
        print(f"manifest: {len(manifest.tasks)} tasks, "
              f"{len(manifest.metrics)} metrics, trace={manifest.trace}")

        # --- span coverage: every stage, scheduler events, heartbeats -
        events = trace["events"]
        span_names = {e["name"] for e in events if e["type"] == "B"}
        for stage in ALL_STAGES:
            assert f"stage.{stage}" in span_names, (
                f"stage {stage} has no span in the trace")
        instant_names = {e["name"] for e in events if e["type"] == "I"}
        assert {"task.submit", "task.done"} <= instant_names, (
            "scheduler lifecycle events missing")
        heartbeats = [e for e in events if e["type"] == "hb"]
        assert heartbeats, "no heartbeats recorded"
        print(f"trace: {len(events)} events, {len(span_names)} span "
              f"kinds, {len(heartbeats)} heartbeats, "
              f"{len(trace['processes'])} processes")

        # --- every B has its E ----------------------------------------
        open_spans: dict[tuple, int] = {}
        for event in events:
            key = (event.get("pid"), event.get("sid"))
            if event["type"] == "B":
                open_spans[key] = open_spans.get(key, 0) + 1
            elif event["type"] == "E":
                assert open_spans.get(key, 0) > 0, f"E without B: {event}"
                open_spans[key] -= 1
        dangling = {k: v for k, v in open_spans.items() if v}
        assert not dangling, f"unclosed spans: {dangling}"

        # --- Chrome export --------------------------------------------
        chrome = to_chrome(trace)
        chrome_events = json.loads(json.dumps(chrome))["traceEvents"]
        begins = sum(1 for e in chrome_events if e["ph"] == "B")
        ends = sum(1 for e in chrome_events if e["ph"] == "E")
        assert begins == ends > 0, f"chrome B/E mismatch: {begins}/{ends}"
        assert all(e["ts"] >= 0 for e in chrome_events)
        print(f"chrome export: {len(chrome_events)} events, "
              f"{begins} B/E pairs")

        traced_digests = _artifact_digests(Path(cache))

        # --- determinism: byte-identical artifacts without tracing ----
        with tempfile.TemporaryDirectory() as plain_cache:
            plain = SweepRunner(settings, cache_dir=plain_cache)
            plain.run_all(configs=CONFIGS, workloads=WORKLOADS,
                          jobs=args.jobs)
            assert plain.last_manifest.trace == ""
            plain_digests = _artifact_digests(Path(plain_cache))
        assert traced_digests == plain_digests, (
            "tracing perturbed the artifact store")
        print(f"determinism: {len(traced_digests)} artifacts "
              f"byte-identical with tracing on vs off")

    print("\nsmoke_trace: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
