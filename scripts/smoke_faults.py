#!/usr/bin/env python3
"""Fault-injection sweep smoke test (CI gate for the recovery paths).

Runs the full workload x configuration sweep three times against fresh
cache directories:

* **baseline** — fault-free serial run; the bit-exactness reference;
* **crash** — a worker process is ``os._exit``-killed mid-sweep (the
  ``BrokenProcessPool`` signature of an OOM kill); the supervised
  scheduler must respawn the pool, re-enqueue only the lost tasks, and
  finish with a clean manifest and results byte-identical to baseline;
* **corrupt + flaky I/O** — one result artifact is garbled on write and
  artifact reads suffer transient injected I/O errors; the corrupt
  artifact must be discarded and recomputed, the I/O errors retried,
  and the sweep must again end clean and byte-identical.

Usage::

    PYTHONPATH=src python scripts/smoke_faults.py [--scale 0.05] [--jobs 2]
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.flow import FlowSettings, SweepRunner
from repro.pipeline.stages import RESULT_STAGE


def _run(settings: FlowSettings, jobs: int):
    with tempfile.TemporaryDirectory() as cache:
        runner = SweepRunner(settings, cache_dir=cache)
        results = runner.run_all(jobs=jobs)
        return ({key: result.to_json() for key, result in results.items()},
                runner.last_manifest)


def _check(name: str, manifest, results, baseline) -> None:
    print(f"\n{name} sweep:")
    print(manifest.format())
    assert manifest.ok, (
        f"{name}: manifest not clean — failures="
        f"{[record.key for record in manifest.failures]} "
        f"timeouts={[record.key for record in manifest.timeouts]}")
    assert set(results) == set(baseline), f"{name}: experiment set differs"
    for key, payload in baseline.items():
        assert results[key] == payload, f"{name}: result differs for {key}"
    print(f"{name} OK: recovered, {len(results)} experiments "
          f"byte-identical to baseline "
          f"(retries: {manifest.total_retries})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection seed")
    args = parser.parse_args(argv)
    jobs = max(2, args.jobs)  # worker-site faults need a process pool

    baseline_settings = FlowSettings(scale=args.scale)
    baseline, manifest = _run(baseline_settings, jobs=1)
    print("baseline sweep:")
    print(manifest.format())
    assert manifest.ok, "baseline: fault-free sweep must be clean"

    crash_settings = FlowSettings(
        scale=args.scale, fault_seed=args.seed,
        faults="worker.experiment:crash:n=1")
    results, manifest = _run(crash_settings, jobs=jobs)
    assert manifest.total_retries >= 1, "crash: lost task was not retried"
    _check("crash", manifest, results, baseline)

    corrupt_settings = FlowSettings(
        scale=args.scale, fault_seed=args.seed,
        faults=f"artifact.write:corrupt:n=1:k={RESULT_STAGE},"
               f"artifact.read:io:p=0.2:n=3")
    with tempfile.TemporaryDirectory() as cache:
        poisoned = SweepRunner(corrupt_settings, cache_dir=cache)
        results = poisoned.run_all(jobs=jobs)
        results = {key: result.to_json() for key, result in results.items()}
        _check("corrupt+io (cold)", poisoned.last_manifest, results,
               baseline)
        # one result artifact on disk is now garbage; a fresh runner must
        # detect it on read, discard it, and recompute — not crash or
        # serve the corruption
        warm = SweepRunner(FlowSettings(scale=args.scale), cache_dir=cache)
        reread = warm.run_all(jobs=1)
        reread = {key: result.to_json() for key, result in reread.items()}
        manifest = warm.last_manifest
        corrupt_seen = sum(stats.corrupt
                           for stats in warm.store.stats().values())
        assert corrupt_seen >= 1, (
            "corrupt: warm re-read never detected the garbled artifact")
        _check("corrupt+io (warm re-read)", manifest, reread, baseline)

    print(f"\nsmoke OK: crash and corruption injection recovered, "
          f"{len(baseline)} experiments, scale {args.scale:g}, jobs {jobs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
