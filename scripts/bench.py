#!/usr/bin/env python
"""Run the hot-path benchmark harness (thin wrapper over repro.bench).

Examples::

    python scripts/bench.py                 # full pinned suite
    python scripts/bench.py --quick         # CI smoke budgets
    python scripts/bench.py --baseline benchmarks/bench_baseline.json \
        --check --no-write                  # regression gate

Emits ``BENCH_<date>.json`` with instr/s, cycles/s, per-stage wall-clock,
and peak RSS, plus a comparison against the previous snapshot.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
