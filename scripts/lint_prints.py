#!/usr/bin/env python
"""Lint: no bare ``print()`` in library code.

Library modules must log through :mod:`repro.obs.logs` (diagnostics) or
return strings for the CLI to print (user-facing output).  A direct
``print()`` in a library module bypasses ``--quiet``/``--verbose``,
writes to the wrong stream, and interleaves under parallel sweeps.

Walks the AST (so docstrings, comments, and ``fingerprint``-style
substring matches never false-positive) of every module under
``src/repro`` except the explicit allowlist of user-facing front ends.

Exit status 1 if any offending call is found; the offenders are listed
as ``path:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: modules whose job is printing to the user (CLI front ends, report
#: renderers, the benchmark harness); everything else must use logging
ALLOWED = {
    "cli.py",
    "bench.py",
    "flow/report.py",
    "power/report.py",
}


def find_prints(path: Path) -> list[int]:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        print(f"{path}: syntax error: {exc}", file=sys.stderr)
        return []
    lines = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Name) and \
                node.func.id == "print":
            lines.append(node.lineno)
    return lines


def main() -> int:
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        relative = path.relative_to(SRC_ROOT).as_posix()
        if relative in ALLOWED:
            continue
        for line in find_prints(path):
            offenders.append(f"{path.relative_to(REPO_ROOT)}:{line}")
    if offenders:
        print("bare print() in library code (use repro.obs.logs or "
              "return text to the CLI):", file=sys.stderr)
        for offender in offenders:
            print(f"  {offender}", file=sys.stderr)
        return 1
    print(f"lint_prints: OK ({len(list(SRC_ROOT.rglob('*.py')))} modules "
          f"checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
