#!/usr/bin/env python3
"""Model-accuracy drift gate against the committed envelopes (CI gate).

The preset gate pins *bit-identity* of the pipeline for refactors that
promise it; this gate pins the *numbers* for changes that don't.  It
re-measures every envelope's workload across the three paper presets at
the envelopes' pinned scale/seed (fresh cache — nothing stale can leak
in), evaluates IPC, tile power, per-component power shares, and the
per-interval IPC profile against ``benchmarks/accuracy/*.json``, and
fails on any metric outside its tolerance band.  The sweep runs with the
flight recorder armed, so a failing gate ships an interval-level
timeline (``--flight-out``) for CI to upload — the drift arrives with
its own attribution.

``--self-test`` proves the gate can actually catch drift: it poisons a
scratch cache with a seeded ``bend`` fault (every ``cycles``/``ipc``
leaf of the result artifacts scaled ~10% — valid, plausible JSON that
every structural validator accepts), re-reads the sweep warm from that
cache, and asserts the evaluation FAILS.  A gate that cannot fail is
decoration; CI runs the self-test right after the clean pass.

Usage::

    PYTHONPATH=src python scripts/accuracy_gate.py               # gate
    PYTHONPATH=src python scripts/accuracy_gate.py --self-test   # prove it
    PYTHONPATH=src python scripts/accuracy_gate.py --update      # regen
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
from pathlib import Path

from repro.analysis.accuracy import (
    build_envelope,
    evaluate_accuracy,
    format_accuracy,
    load_envelopes,
    write_envelope,
)
from repro.flow import FlowSettings, SweepRunner
from repro.obs.flight import FLIGHT_ENV
from repro.obs.session import latest_run_dir

#: pinned gate parameters — changing them requires --update
GATE_SCALE = 0.05
GATE_SEED = 17

ENVELOPE_DIR = (Path(__file__).resolve().parents[1]
                / "benchmarks" / "accuracy")

#: the seeded perturbation for --self-test: bend every result artifact
BEND_SPEC = "artifact.write:bend:n=0:k=experiment_result"


def run_sweep(cache: str, *, scale: float, seed: int,
              workloads: list[str] | None, jobs: int,
              faults: str | None = None, flight: bool = False):
    """One sweep; returns (results, flight.json path or None)."""
    settings = FlowSettings(scale=scale, seed=seed, faults=faults)
    runner = SweepRunner(settings, cache_dir=cache)
    saved = os.environ.get(FLIGHT_ENV)
    if flight:
        os.environ[FLIGHT_ENV] = "1"
    try:
        # run_all owns the trace session; the recorder hooks into it
        # via REPRO_FLIGHT + the session's exported obs directory.
        results = runner.run_all(workloads=workloads, jobs=jobs,
                                 trace=flight)
    finally:
        if flight:
            if saved is None:
                os.environ.pop(FLIGHT_ENV, None)
            else:
                os.environ[FLIGHT_ENV] = saved
    flight_path = None
    if flight:
        run_dir = latest_run_dir(cache)
        if run_dir is not None and (run_dir / "flight.json").is_file():
            flight_path = run_dir / "flight.json"
    return results, flight_path


def gate(args: argparse.Namespace) -> int:
    envelopes = load_envelopes(ENVELOPE_DIR)
    if args.workloads:
        wanted = set(args.workloads)
        envelopes = {workload: envelope
                     for workload, envelope in envelopes.items()
                     if workload in wanted}
    if not envelopes:
        print(f"no envelopes under {ENVELOPE_DIR}; generate them with "
              f"--update", file=sys.stderr)
        return 2
    scales = {envelope["scale"] for envelope in envelopes.values()}
    if scales != {GATE_SCALE}:
        print(f"envelopes were built at scale {sorted(scales)}, the gate "
              f"is pinned to {GATE_SCALE}; regenerate with --update",
              file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory() as cache:
        results, flight_path = run_sweep(
            cache, scale=GATE_SCALE, seed=GATE_SEED,
            workloads=sorted(envelopes), jobs=args.jobs, flight=True)
        if flight_path is not None and args.flight_out:
            Path(args.flight_out).parent.mkdir(parents=True,
                                               exist_ok=True)
            shutil.copyfile(flight_path, args.flight_out)
            print(f"flight timeline saved to {args.flight_out}",
                  file=sys.stderr)
    evaluation = evaluate_accuracy(results, envelopes)
    print(format_accuracy(evaluation))
    if not evaluation.ok:
        print(f"\nACCURACY DRIFT: {len(evaluation.violations)} metric(s) "
              f"out of band, {len(evaluation.missing)} coverage gap(s). "
              f"If the model change is intentional, regenerate with "
              f"`scripts/accuracy_gate.py --update` and review the diff.",
              file=sys.stderr)
        return 1
    print(f"\naccuracy gate OK: {len(evaluation.checks)} metrics inside "
          f"their envelopes across {len(envelopes)} workloads")
    return 0


def self_test(args: argparse.Namespace) -> int:
    """Prove the gate catches a seeded model perturbation."""
    workloads = args.workloads or ["sha", "dijkstra"]
    envelopes = {workload: envelope
                 for workload, envelope
                 in load_envelopes(ENVELOPE_DIR).items()
                 if workload in set(workloads)}
    if not envelopes:
        print(f"no envelopes for {workloads} under {ENVELOPE_DIR}",
              file=sys.stderr)
        return 2
    with tempfile.TemporaryDirectory() as cache:
        # Cold pass with the bend fault armed: the computed results are
        # clean (the bend is applied to the artifact *files*), so this
        # also re-checks that in-memory results still pass...
        cold, _ = run_sweep(cache, scale=GATE_SCALE, seed=GATE_SEED,
                            workloads=workloads, jobs=args.jobs,
                            faults=BEND_SPEC)
        if not evaluate_accuracy(cold, envelopes).ok:
            print("self-test broken: the cold (in-memory) results "
                  "already violate the envelopes", file=sys.stderr)
            return 1
        # ...and the warm pass reads the poisoned artifacts back — the
        # silent-drift scenario the gate exists for.
        warm, _ = run_sweep(cache, scale=GATE_SCALE, seed=GATE_SEED,
                            workloads=workloads, jobs=args.jobs)
    evaluation = evaluate_accuracy(warm, envelopes)
    print(format_accuracy(evaluation))
    if evaluation.ok:
        print("\nSELF-TEST FAILED: a ~10% bend of every result artifact "
              "passed the accuracy gate — the envelopes are not "
              "protecting anything", file=sys.stderr)
        return 1
    print(f"\nself-test OK: the seeded bend was caught "
          f"({len(evaluation.violations)} metrics out of band)")
    return 0


def update(args: argparse.Namespace) -> int:
    with tempfile.TemporaryDirectory() as cache:
        results, _ = run_sweep(cache, scale=GATE_SCALE, seed=GATE_SEED,
                               workloads=args.workloads, jobs=args.jobs)
    by_workload: dict[str, dict] = {}
    for (workload, config), result in results.items():
        by_workload.setdefault(workload, {})[config] = result
    for workload in sorted(by_workload):
        path = write_envelope(ENVELOPE_DIR, build_envelope(
            workload, by_workload[workload],
            scale=GATE_SCALE, seed=GATE_SEED))
        print(f"wrote {path}")
    print(f"{len(by_workload)} envelope(s) regenerated — review the diff "
          f"before committing")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="regenerate the committed envelopes")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fails on a seeded bend")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--workloads", nargs="+", default=None,
                        metavar="WORKLOAD",
                        help="restrict the sweep (default: every "
                             "envelope; self-test default: sha dijkstra)")
    parser.add_argument("--flight-out", default=None, metavar="FILE",
                        help="copy the gate run's flight timeline here "
                             "(CI uploads it when the gate fails)")
    args = parser.parse_args(argv)
    if args.update:
        return update(args)
    if args.self_test:
        return self_test(args)
    return gate(args)


if __name__ == "__main__":
    sys.exit(main())
