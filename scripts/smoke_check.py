#!/usr/bin/env python3
"""Validation-layer smoke test (CI gate for ``repro.check``).

Proves the checker subsystem end to end, including that it is **not
vacuous** — every guarded fault class must actually be caught:

1. **clean** — ``repro-cli check`` (invariants + differential run +
   power/result validators) passes on an uncorrupted MediumBOOM run;
2. **invariant faults** — injected core-state corruptions (free-list
   leak, occupancy drift, ROB over-capacity) each raise
   :class:`InvariantViolation` naming the broken law;
3. **differential fault** — a tampered architectural register is pinned
   down by the lockstep functional re-execution;
4. **skew fault** — a ``repro.pipeline.faults`` ``skew`` fault leaves a
   cached result as *valid JSON with impossible values*; a fresh runner
   must detect it at the load boundary, discard, and recompute a result
   byte-identical to baseline;
5. **byte-identity** — a run with ``REPRO_CHECK=1`` produces artifacts
   byte-identical to an unchecked run.

Usage::

    PYTHONPATH=src python scripts/smoke_check.py [--scale 0.05]
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.check import set_checks_enabled
from repro.check.differential import diff_core_against_reference
from repro.check.invariants import CoreInvariantChecker
from repro.check.runner import run_check
from repro.checkpoint import Checkpoint
from repro.errors import InvariantViolation
from repro.flow import FlowSettings, SweepRunner
from repro.pipeline.stages import RESULT_STAGE
from repro.sim.executor import Executor
from repro.uarch.config import MEDIUM_BOOM
from repro.uarch.core import BoomCore
from repro.workloads.suite import build_program

WORKLOAD = "dijkstra"


def _expect_violation(label: str, corrupt, caught: list[str]) -> None:
    """Corrupt a mid-flight core and require the checker to object."""
    program = build_program(WORKLOAD, scale=0.05, seed=17)
    core = BoomCore(MEDIUM_BOOM, program)
    core.run(1500)
    checker = CoreInvariantChecker(core)
    checker.check()  # clean before the corruption
    corrupt(core)
    try:
        checker.check()
    except InvariantViolation as exc:
        print(f"  caught [{label}]: {exc}")
        caught.append(label)
        return
    raise AssertionError(f"{label}: corruption not caught")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    args = parser.parse_args(argv)
    settings = FlowSettings(scale=args.scale)

    # 1. clean end-to-end check pass -----------------------------------
    with tempfile.TemporaryDirectory() as cache:
        runner = SweepRunner(settings, cache_dir=cache)
        report = run_check(WORKLOAD, MEDIUM_BOOM, runner.settings,
                           runner.store)
        print(report.format())
        assert report.ok, "clean run must pass every check"

    # 2. injected invariant faults must be caught ----------------------
    caught: list[str] = []
    print("\ninvariant fault injection:")
    _expect_violation(
        "rename free-list leak",
        lambda core: setattr(core.rename.int_unit, "free",
                             core.rename.int_unit.free - 1), caught)
    _expect_violation(
        "branch occupancy drift",
        lambda core: setattr(core, "branches_in_flight",
                             core.branches_in_flight + 1), caught)
    _expect_violation(
        "ROB over capacity",
        lambda core: setattr(core.rob, "entries", len(core.rob) - 1),
        caught)

    # 3. differential divergence must be caught ------------------------
    program = build_program(WORKLOAD, scale=0.05, seed=17)
    executor = Executor(program)
    executor.run(max_instructions=500)
    checkpoint = Checkpoint.capture(executor.state, workload=WORKLOAD,
                                    interval_index=0, weight=1.0,
                                    warmup_instructions=0)
    core = BoomCore(MEDIUM_BOOM, program, state=checkpoint.restore())
    core.retire_log = []
    core.run(1000)
    core.frontend.state.x[9] ^= 0xBAD
    diff = diff_core_against_reference(core, program, checkpoint.restore(),
                                       raise_on_mismatch=False)
    assert not diff.ok, "tampered register not caught by differential run"
    print(f"  caught [differential]: {diff.divergence}")
    caught.append("differential divergence")

    # 4. skew fault: valid-JSON corruption caught at load --------------
    print("\nskew fault injection:")
    with tempfile.TemporaryDirectory() as cache:
        baseline = SweepRunner(settings, cache_dir=cache).run(
            WORKLOAD, MEDIUM_BOOM).to_json()
    with tempfile.TemporaryDirectory() as cache:
        poisoned = SweepRunner(
            FlowSettings(scale=args.scale,
                         faults=f"artifact.write:skew:n=1:k={RESULT_STAGE}"),
            cache_dir=cache)
        poisoned.run(WORKLOAD, MEDIUM_BOOM)
        # The result artifact on disk now holds impossible values behind
        # valid JSON.  A fresh runner must catch that at the load
        # boundary (validator -> corrupt-artifact path) and recompute.
        warm = SweepRunner(settings, cache_dir=cache)
        recomputed = warm.run(WORKLOAD, MEDIUM_BOOM).to_json()
        corrupt_seen = sum(stats.corrupt
                           for stats in warm.store.stats().values())
        assert corrupt_seen >= 1, (
            "skewed artifact was served without validation")
        assert recomputed == baseline, (
            "recomputed result differs from baseline")
        print(f"  caught [skew]: artifact discarded and recomputed, "
              f"byte-identical to baseline")
        caught.append("skewed artifact")

    assert len(caught) >= 3, f"caught only {len(caught)} fault classes"

    # 5. REPRO_CHECK=1 must not change artifacts -----------------------
    set_checks_enabled(True)
    try:
        with tempfile.TemporaryDirectory() as cache:
            checked = SweepRunner(settings, cache_dir=cache).run(
                WORKLOAD, MEDIUM_BOOM).to_json()
    finally:
        set_checks_enabled(False)
    assert checked == baseline, "REPRO_CHECK=1 changed the result"
    print("\nchecked run byte-identical to unchecked baseline")

    print(f"\nsmoke OK: clean pass, {len(caught)} fault classes caught "
          f"({', '.join(caught)}), scale {args.scale:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
