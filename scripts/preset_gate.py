#!/usr/bin/env python3
"""Preset-equivalence gate: the sweep path must not drift for the paper's
three presets (CI gate).

The design-space generalization turned the hardcoded
MediumBOOM/LargeBOOM/MegaBOOM axis into "any iterable of BoomConfigs".
This gate pins the invariant that refactor promised to keep: for the
three paper presets the refactored pipeline produces *bit-identical*
artifacts under *identical* cache keys.  It runs a pinned
(workload, preset) matrix against a fresh cache and compares

* the ``experiment_result`` stage fingerprint (the cache key), and
* the sha256 of the result's canonical JSON (the artifact bytes)

against the committed goldens in ``benchmarks/preset_goldens.json``,
which were generated from the pre-refactor tree.

Usage::

    PYTHONPATH=src python scripts/preset_gate.py            # verify
    PYTHONPATH=src python scripts/preset_gate.py --update   # regenerate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
from pathlib import Path

from repro.flow import FlowSettings, SweepRunner
from repro.uarch.config import ALL_CONFIGS

#: pinned gate parameters — changing any of them invalidates the goldens
GATE_SCALE = 0.05
GATE_SEED = 17
GATE_WORKLOADS = ("sha", "dijkstra")

GOLDEN_PATH = (Path(__file__).resolve().parents[1]
               / "benchmarks" / "preset_goldens.json")


def collect() -> dict:
    """Fingerprints + artifact hashes for the pinned preset matrix."""
    settings = FlowSettings(scale=GATE_SCALE, seed=GATE_SEED)
    entries: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as cache:
        runner = SweepRunner(settings, cache_dir=cache)
        for config in ALL_CONFIGS:
            for workload in GATE_WORKLOADS:
                fingerprint = runner.pipeline.result_fingerprint(workload,
                                                                 config)
                result = runner.run(workload, config)
                digest = hashlib.sha256(
                    result.to_json().encode()).hexdigest()
                entries[f"{workload}/{config.name}"] = {
                    "result_fingerprint": fingerprint,
                    "artifact_sha256": digest,
                }
    return {
        "scale": GATE_SCALE,
        "seed": GATE_SEED,
        "workloads": list(GATE_WORKLOADS),
        "entries": entries,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="regenerate the committed goldens")
    args = parser.parse_args(argv)

    current = collect()
    if args.update:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(current, indent=2,
                                          sort_keys=True) + "\n")
        print(f"wrote {GOLDEN_PATH} ({len(current['entries'])} entries)")
        return 0

    golden = json.loads(GOLDEN_PATH.read_text())
    failures: list[str] = []
    for pin in ("scale", "seed", "workloads"):
        if golden[pin] != current[pin]:
            failures.append(f"pinned parameter {pin} drifted: "
                            f"{golden[pin]!r} -> {current[pin]!r}")
    for key, want in golden["entries"].items():
        got = current["entries"].get(key)
        if got is None:
            failures.append(f"{key}: missing from current run")
            continue
        if got["result_fingerprint"] != want["result_fingerprint"]:
            failures.append(
                f"{key}: cache key drifted "
                f"({want['result_fingerprint']} -> "
                f"{got['result_fingerprint']})")
        if got["artifact_sha256"] != want["artifact_sha256"]:
            failures.append(
                f"{key}: artifact bytes drifted "
                f"({want['artifact_sha256'][:16]}... -> "
                f"{got['artifact_sha256'][:16]}...)")
    if failures:
        print("PRESET EQUIVALENCE BROKEN:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"preset gate OK: {len(golden['entries'])} (workload, preset) "
          f"pairs bit-identical to the committed goldens")
    return 0


if __name__ == "__main__":
    sys.exit(main())
