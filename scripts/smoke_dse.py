#!/usr/bin/env python3
"""DSE end-to-end smoke test (CI gate for `repro-cli dse`).

Generates a small design-space lattice (>= 8 points plus the paper
presets), sweeps one workload through the *supervised* scheduler with a
transient fault injected — the scheduler must retry it to success — and
asserts the flow's DSE guarantees:

* every design point completes (the frontier skips nothing);
* the frontier artifact is strict JSON, partitions the point set, and
  anchors the paper presets on or near the frontier;
* a warm re-run reproduces the identical point set and frontier from
  cache, with zero detailed-simulation re-executions.

Usage::

    PYTHONPATH=src python scripts/smoke_dse.py [--points 8] [--scale 0.05]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.flow.dse import run_dse
from repro.flow.experiment import FlowSettings
from repro.pipeline.stages import DETAILED_STAGE
from repro.uarch.config import ALL_CONFIGS, config_id
from repro.uarch.space import SpaceSpec

WORKLOAD = "sha"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=8)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--base", default="LargeBOOM")
    args = parser.parse_args(argv)
    assert args.points >= 8, "smoke needs at least 8 design points"

    spec = SpaceSpec(base=args.base, count=args.points, seed=17)
    with tempfile.TemporaryDirectory() as tmp:
        # cold, with one transient I/O fault: the supervised scheduler
        # must retry it and still complete every design point
        faulty = FlowSettings(scale=args.scale,
                              faults="worker.experiment:io:n=1",
                              fault_seed=7)
        cold = run_dse(spec, settings=faulty, cache_dir=tmp,
                       jobs=args.jobs, workloads=[WORKLOAD])
        manifest = cold.manifest
        print("cold DSE sweep:")
        print(manifest.format())
        assert manifest.ok, (
            f"cold: sweep degraded ({len(manifest.failures)} failures) — "
            f"the transient fault was not retried to success")
        assert sum(manifest.retries.values()) >= 1, (
            "cold: the injected transient fault never triggered a retry")
        assert not cold.skipped, f"cold: skipped points {cold.skipped}"
        assert len(cold.points) >= args.points, (
            f"cold: {len(cold.points)} points, expected >= {args.points}")
        assert cold.frontier, "cold: empty Pareto frontier"
        assert cold.points_per_s > 0

        # frontier artifact: strict JSON, partitions the point set
        document = cold.document()
        text = json.dumps(document, indent=2, sort_keys=True,
                          allow_nan=False)
        artifact = Path(tmp) / "frontier.json"
        artifact.write_text(text + "\n")
        rebuilt = json.loads(artifact.read_text())
        names = {point["name"] for point in rebuilt["points"]}
        frontier = set(rebuilt["frontier"])
        dominated = set(rebuilt["dominated"])
        assert frontier | dominated == names
        assert not frontier & dominated

        # the paper presets anchor the frontier: all three are in the
        # point set, and the frontier keeps at least two of them
        preset_names = {config.name for config in ALL_CONFIGS}
        assert preset_names <= names, "presets missing from the lattice"
        on_frontier = preset_names & frontier
        assert len(on_frontier) >= 2, (
            f"only {sorted(on_frontier)} of the paper presets are on "
            f"the frontier")

        # warm, faults off: identical points and frontier, all cached
        warm = run_dse(spec, settings=FlowSettings(scale=args.scale),
                       cache_dir=tmp, jobs=args.jobs,
                       workloads=[WORKLOAD])
        print("\nwarm DSE sweep:")
        print(warm.manifest.format())
        assert warm.manifest.executions(DETAILED_STAGE) == 0, (
            "warm: detailed simulation ran again")
        assert [config_id(c) for c in warm.configs] == \
            [config_id(c) for c in cold.configs], "point set drifted"
        assert [p.name for p in warm.frontier] == \
            [p.name for p in cold.frontier], "frontier drifted"
        # the underlying result artifacts are byte-identical; the point
        # summaries recompute weighted means from them, so allow float
        # summation-order noise at the ULP level and nothing more
        for key, result in cold.results.items():
            assert warm.results[key].to_json() == result.to_json(), (
                f"warm result artifact differs for {key}")
        for point, again in zip(cold.points, warm.points):
            assert point.name == again.name
            assert abs(point.ipc - again.ipc) <= 1e-9 * max(
                1.0, abs(point.ipc))
            assert abs(point.tile_mw - again.tile_mw) <= 1e-9 * max(
                1.0, abs(point.tile_mw))

    # batched leg: the same sweep through the batched multi-config
    # engine (fresh cache, batch=True) must emit a byte-identical
    # frontier artifact — batching is an execution strategy, never a
    # model change
    with tempfile.TemporaryDirectory() as tmp:
        batched = run_dse(spec,
                          settings=FlowSettings(scale=args.scale,
                                                batch=True),
                          cache_dir=tmp, jobs=args.jobs,
                          workloads=[WORKLOAD])
        print("\nbatched DSE sweep:")
        print(batched.manifest.format())
        assert batched.manifest.ok, "batched: sweep degraded"
        assert not batched.skipped, \
            f"batched: skipped points {batched.skipped}"
        # compare everything but the run-timing section ("settings"
        # carries points_per_s / wall_seconds, which are wall clock,
        # not model output)
        def stable(document: dict) -> str:
            document = {key: value for key, value in document.items()
                        if key != "settings"}
            return json.dumps(document, indent=2, sort_keys=True,
                              allow_nan=False)

        assert stable(batched.document()) == stable(rebuilt), (
            "batched: frontier artifact differs from the per-config "
            "sweep's — batch on/off must be byte-identical")

    print(f"\nsmoke OK: {len(cold.points)} design points, "
          f"{len(cold.frontier)} on the frontier "
          f"({', '.join(sorted(on_frontier))} among them), "
          f"{cold.points_per_s:.1f} points/s cold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
