#!/usr/bin/env python3
"""Cold-then-warm sweep smoke test for the staged pipeline (CI gate).

Runs the full workload x configuration sweep twice against a fresh
cache directory and asserts the pipeline's two core guarantees:

* cold: the per-workload stages (BBV profiling, SimPoint selection,
  checkpoint creation) execute exactly once per workload, shared across
  all configurations;
* warm: every result is served from the cache — zero stage executions
  (in particular zero detailed-simulation runs), a 100 % hit rate, and
  byte-identical results.

Usage::

    PYTHONPATH=src python scripts/smoke_sweep.py [--scale 0.05] [--jobs 2]
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.flow import FlowSettings, SweepRunner
from repro.pipeline import STAGE_ORDER, WORKLOAD_STAGES
from repro.pipeline.stages import DETAILED_STAGE
from repro.workloads.suite import workload_names


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)

    settings = FlowSettings(scale=args.scale)
    num_workloads = len(workload_names())
    with tempfile.TemporaryDirectory() as cache:
        cold = SweepRunner(settings, cache_dir=cache)
        cold_results = cold.run_all(jobs=args.jobs)
        manifest = cold.last_manifest
        print("cold sweep:")
        print(manifest.format())
        for stage in WORKLOAD_STAGES:
            executed = manifest.executions(stage)
            assert executed == num_workloads, (
                f"cold: {stage} executed {executed}x, expected exactly "
                f"once per workload ({num_workloads})")

        warm = SweepRunner(settings, cache_dir=cache)
        warm_results = warm.run_all(jobs=args.jobs)
        manifest = warm.last_manifest
        print("\nwarm sweep:")
        print(manifest.format())
        assert manifest.executions(DETAILED_STAGE) == 0, (
            "warm: detailed simulation ran again")
        for stage in STAGE_ORDER:
            executed = manifest.executions(stage)
            assert executed == 0, f"warm: {stage} executed {executed}x"
        assert manifest.hit_rate == 1.0, (
            f"warm: hit rate {manifest.hit_rate:.1%}, expected 100%")

        assert set(cold_results) == set(warm_results)
        for key, result in cold_results.items():
            assert warm_results[key].to_json() == result.to_json(), (
                f"warm result differs for {key}")

    print(f"\nsmoke OK: {len(cold_results)} experiments, "
          f"{num_workloads} workloads, scale {args.scale:g}, "
          f"jobs {args.jobs}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
