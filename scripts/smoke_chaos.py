#!/usr/bin/env python3
"""Kill -9 chaos smoke test (CI gate for crash recovery + resume).

The property under test: *no matter where a sweep process is killed,
``repro-cli recover`` + ``--resume`` converge on artifacts
byte-identical to an uninterrupted run.*

The script runs an uninterrupted baseline sweep into cache A, then
repeatedly launches the same sweep against cache B as a real child
process group and SIGKILLs it at seeded-random delays — landing kills
inside stage computes, mid-rename, between journal claim and commit,
while leases are held.  After each kill it runs :func:`recover_cache`
(asserting the storage audit comes back clean) and resumes.  Once the
sweep finally completes, every stage artifact in B must be
byte-identical to A, and no quarantined garbage may have leaked back
into the stage directories.

Usage::

    PYTHONPATH=src python scripts/smoke_chaos.py [--scale 0.05]
        [--kills 4] [--seed 0]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.check.storage import validate_storage
from repro.flow import FlowSettings, SweepRunner
from repro.pipeline.artifacts import INTERNAL_DIRS
from repro.pipeline.journal import recover_cache

#: the child sweep, run as its own process group so SIGKILL takes the
#: whole pool down at once — exactly the operator's kill -9
_CHILD = """
import sys
from repro.flow import FlowSettings, SweepRunner

runner = SweepRunner(FlowSettings(scale=float(sys.argv[2])),
                     cache_dir=sys.argv[1])
runner.run_all(jobs=2, resume=True)
"""


def _artifact_digests(cache: Path) -> dict[str, str]:
    """sha256 of every stage artifact (bookkeeping excluded)."""
    digests: dict[str, str] = {}
    for path in sorted(cache.rglob("*")):
        if not path.is_file():
            continue
        relative = path.relative_to(cache)
        if relative.parts[0] in INTERNAL_DIRS or \
                relative.suffix == ".lock" or \
                relative.name in ("run_manifest.json", "sweep_state.json"):
            continue
        digests[str(relative)] = hashlib.sha256(
            path.read_bytes()).hexdigest()
    return digests


def _launch(cache: Path, scale: float) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(cache), str(scale)],
        start_new_session=True,  # its own process group: killable whole
        env={**os.environ, "PYTHONPATH": "src"},
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--kills", type=int, default=4,
                        help="number of kill-9 interruptions to inflict")
    parser.add_argument("--seed", type=int, default=0,
                        help="seed for the kill-delay draws")
    parser.add_argument("--max-delay", type=float, default=6.0,
                        help="upper bound on each kill delay (seconds)")
    args = parser.parse_args(argv)
    rng = random.Random(args.seed)

    with tempfile.TemporaryDirectory() as a, \
            tempfile.TemporaryDirectory() as b:
        baseline_cache, chaos_cache = Path(a), Path(b)

        print(f"baseline: uninterrupted sweep (scale {args.scale:g})")
        runner = SweepRunner(FlowSettings(scale=args.scale),
                             cache_dir=baseline_cache)
        baseline_results = runner.run_all(jobs=2)
        assert runner.last_manifest.ok, "baseline sweep must be clean"
        baseline = _artifact_digests(baseline_cache)
        print(f"baseline OK: {len(baseline_results)} experiments, "
              f"{len(baseline)} artifacts")

        kills = 0
        while kills < args.kills:
            delay = rng.uniform(0.3, args.max_delay)
            child = _launch(chaos_cache, args.scale)
            try:
                child.wait(timeout=delay)
                # finished before the axe fell: sweep is complete
                print(f"  kill {kills + 1}: sweep finished in under "
                      f"{delay:.1f}s; no more work to interrupt")
                break
            except subprocess.TimeoutExpired:
                os.killpg(child.pid, signal.SIGKILL)
                child.wait()
                kills += 1
            # the group is dying, not instantly dead: a SIGKILLed worker
            # can briefly still probe as alive.  Recovery is idempotent,
            # so run it until the audit settles clean.
            for _ in range(50):
                report = recover_cache(chaos_cache)
                audit = validate_storage(chaos_cache)
                if audit.ok:
                    break
                time.sleep(0.1)
            assert audit.ok, (
                f"storage audit failed after recover: {audit.problems}")
            print(f"  kill {kills} after {delay:.1f}s: "
                  f"{len(report.quarantined)} quarantined, "
                  f"{report.leases_released} leases released, "
                  f"{report.tmp_removed} tmp removed — audit clean")
            time.sleep(0.1)

        # final recover + resume to completion (in-process, so the run
        # manifest is inspectable) — the operator's documented sequence
        recover_cache(chaos_cache)
        final = SweepRunner(FlowSettings(scale=args.scale),
                            cache_dir=chaos_cache)
        results = final.run_all(jobs=2, resume=True)
        assert final.last_manifest.ok, (
            f"resumed sweep not clean: "
            f"{[r.key for r in final.last_manifest.failures]}")
        assert {key for key in results} == set(baseline_results), \
            "resumed sweep lost experiments"

        chaos = _artifact_digests(chaos_cache)
        missing = set(baseline) - set(chaos)
        extra = set(chaos) - set(baseline)
        assert not missing, f"artifacts missing after recovery: {missing}"
        assert not extra, f"unexpected artifacts after recovery: {extra}"
        different = [name for name, digest in baseline.items()
                     if chaos[name] != digest]
        assert not different, (
            f"artifacts differ from uninterrupted run: {different}")

        state = json.loads(
            (chaos_cache / "sweep_state.json").read_text())
        assert state["status"] == "complete", state["status"]

    print(f"\nchaos OK: {kills} kill -9 interruption(s) recovered; "
          f"{len(chaos)} artifacts byte-identical to the uninterrupted "
          f"run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
