#!/usr/bin/env python3
"""Job-server end-to-end smoke test (CI gate for `repro-cli serve`).

Starts the daemon as a real subprocess, then drives it with the load
generator and asserts the service guarantees:

* concurrent duplicate submissions collapse to exactly one compute
  (one created job, N-1 deduplicated attaches) and every client reads
  a byte-identical result body;
* distinct submissions compute independently and all complete;
* per-client quotas refuse over-limit submissions with 429 and exact
  accounting;
* SIGTERM drains gracefully — the server stops accepting, finishes
  running work, and exits 0.

Usage::

    PYTHONPATH=src python scripts/smoke_serve.py [--clients 8]
        [--scale 0.05]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serve import ServeClient, run_load

REPO_ROOT = Path(__file__).resolve().parents[1]


def start_server(cache: Path, port_file: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "--cache-dir", str(cache),
         "serve", "--port-file", str(port_file), "--workers", "2",
         "--max-queue", "32", "--rate", "1000", "--burst", "1000",
         "--max-client-jobs", "8"],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30.0
    while not port_file.exists():
        assert proc.poll() is None, \
            f"server died at startup:\n{proc.communicate()[0]}"
        assert time.monotonic() < deadline, "server never wrote its port"
        time.sleep(0.05)
    return proc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--scale", type=float, default=0.05)
    args = parser.parse_args(argv)

    request = {"kind": "sweep", "scale": args.scale,
               "workloads": ["sha"], "configs": ["SmallBOOM"]}

    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "cache"
        port_file = Path(tmp) / "port"
        proc = start_server(cache, port_file)
        try:
            port = int(port_file.read_text())
            probe = ServeClient(port=port, client_id="smoke-probe")

            status, health = probe.healthz()
            assert status == 200 and health["status"] == "ok", health

            # --- duplicate wave: the dedup acceptance criterion -------
            dup = run_load(port, request, clients=args.clients,
                           mode="duplicate", timeout=300.0)
            print(f"duplicate wave: {json.dumps(dup.to_dict())}")
            assert dup.failed == 0, dup.errors
            assert dup.completed == args.clients
            assert len(dup.bodies) == 1, "expected one request hash"
            assert dup.byte_identical, \
                "clients saw differing result bytes"
            _, health = probe.healthz()
            table = health["table"]
            assert table["created"] == 1, table
            assert table["deduped"] == args.clients - 1, table
            document = json.loads(
                probe.result_text(next(iter(dup.bodies)))[1])
            assert document["manifest"]["experiments"] == 1, \
                "manifest must show exactly one task set"

            # --- distinct wave: independent computes ------------------
            distinct = run_load(port, request, clients=4,
                                mode="distinct", timeout=300.0)
            print(f"distinct wave: {json.dumps(distinct.to_dict())}")
            assert distinct.failed == 0, distinct.errors
            assert distinct.completed == 4
            assert len(distinct.bodies) == 4, \
                "distinct seeds must not collide"

            # --- quota wave: 429s with exact accounting ---------------
            greedy = ServeClient(port=port, client_id="smoke-greedy")
            codes = [greedy.submit(dict(request, seed=9000 + i))[0]
                     for i in range(12)]
            refused = codes.count(429)
            assert refused >= 12 - 8, f"quota never pushed back: {codes}"
            _, health = probe.healthz()
            rejections = health["quotas"]["rejections"]["smoke-greedy"]
            assert sum(rejections.values()) == refused, \
                (rejections, refused)

            # --- graceful SIGTERM drain -------------------------------
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120.0)
            assert proc.returncode == 0, \
                f"drain exited {proc.returncode}:\n{out}"
            assert "drained" in out, out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10.0)

    print(f"\nsmoke OK: {args.clients} duplicate clients -> 1 compute, "
          f"{dup.sweeps_per_s:.1f} sweeps/s; distinct wave OK; quota "
          f"429s accounted; SIGTERM drained clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
