#!/usr/bin/env python3
"""Quickstart: assemble, simulate, and measure power in ~30 lines.

Runs a tiny RISC-V program on the functional simulator, then pushes one
real workload (qsort, reduced scale) through the full paper flow —
profiling, SimPoint selection, checkpointing, detailed simulation on
MediumBOOM, and power estimation.
"""

from repro.flow import run_experiment
from repro.isa.assembler import assemble
from repro.sim.executor import Executor
from repro.uarch.config import MEDIUM_BOOM


def functional_hello() -> None:
    program = assemble("""
        .data
    result: .dword 0
        .text
    _start:
        li   t0, 0
        li   t1, 100
    loop:
        add  t0, t0, t1
        addi t1, t1, -1
        bnez t1, loop
        la   t2, result
        sd   t0, 0(t2)
        li   a0, 0
        li   a7, 93          # exit syscall
        ecall
    """)
    executor = Executor(program)
    executor.run_to_completion()
    total = executor.state.memory.load(program.symbol("result"), 8)
    print(f"functional simulator: sum(1..100) = {total}, "
          f"{executor.state.retired} instructions retired")


def full_flow() -> None:
    result = run_experiment("qsort", MEDIUM_BOOM, scale=0.3)
    print(f"\nqsort on {result.config_name} (scale {result.scale:g}):")
    print(f"  {result.total_instructions:,} instructions profiled into "
          f"{result.num_intervals} intervals")
    print(f"  SimPoint chose k={result.chosen_k}; simulated "
          f"{len(result.runs)} points covering {result.coverage:.0%}")
    print(f"  IPC = {result.ipc:.2f}")
    print(f"  tile power = {result.tile_mw:.2f} mW "
          f"({result.analyzed_share:.0%} in the 13 analyzed components)")
    print(f"  performance per watt = {result.perf_per_watt:.1f} IPC/W")
    print("\n  top power components:")
    ranked = sorted(
        ((name, result.component_mw(name))
         for name in result.runs[0].report.components
         if name != "rest_of_tile"),
        key=lambda item: item[1], reverse=True)
    for name, power in ranked[:5]:
        print(f"    {name:<18} {power:6.3f} mW")


if __name__ == "__main__":
    functional_hello()
    full_flow()
