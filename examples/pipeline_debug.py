#!/usr/bin/env python3
"""Pipeline waterfalls: *see* why sha flies and tarfind crawls.

Renders per-uop pipeline diagrams (dispatch/issue/execute/complete/retire)
for steady-state windows of three behaviourally opposite workloads on
MegaBOOM — the visual counterpart of Fig. 8 and Key Takeaway #4.
"""

from repro.uarch.config import MEGA_BOOM
from repro.uarch.pipeview import (
    render_waterfall,
    summarize_timings,
    trace_program,
)
from repro.workloads.suite import build_program

WINDOWS = {
    # workload: (skip into steady state, note)
    "sha": (50_000, "four independent ALU chains -> issues back-to-back"),
    "dijkstra": (50_000, "load-dependent compares pile up in the IQ"),
    "tarfind": (100_000, "unpredictable branches restart the frontend"),
}


def main() -> None:
    for workload, (skip, note) in WINDOWS.items():
        program = build_program(workload, scale=1.0)
        timings = trace_program(program, MEGA_BOOM, max_uops=24,
                                skip_instructions=skip)
        print(f"\n=== {workload} on MegaBOOM — {note} ===")
        print(render_waterfall(timings))
        summary = summarize_timings(timings)
        print(f"avg issue-queue wait: {summary['avg_queue_wait']:.1f} "
              f"cycles; avg execute latency: "
              f"{summary['avg_latency']:.1f}; window IPC ~ "
              f"{summary['uops'] / summary['span_cycles']:.2f}")


if __name__ == "__main__":
    main()
