#!/usr/bin/env python3
"""Design-space exploration with custom BOOM configurations.

The paper's flow "can be used to evaluate any CPU design" — this example
does it two ways:

1. hand-crafted ablations the paper never measured (the Key Takeaway
   #1/#7/#8 knobs), evaluated point by point;
2. a generated design-space lattice around MediumBOOM
   (`repro.uarch.space`) swept to an energy-efficiency Pareto frontier
   (`repro.flow.run_dse`).
"""

import dataclasses
from statistics import mean

from repro.flow import FlowSettings, SweepRunner, run_dse
from repro.uarch.config import LARGE_BOOM, MEGA_BOOM
from repro.uarch.space import SpaceSpec

WORKLOADS = ["sha", "dijkstra", "matmult", "qsort"]
SCALE = 0.3


def design_points():
    yield MEGA_BOOM
    yield MEGA_BOOM.with_predictor("gshare")
    yield dataclasses.replace(MEGA_BOOM, int_iq_entries=20,
                              name="MegaBOOM-smallIQ")
    yield dataclasses.replace(
        LARGE_BOOM,
        dcache=dataclasses.replace(LARGE_BOOM.dcache, mshrs=8),
        name="LargeBOOM-8mshr")
    yield dataclasses.replace(LARGE_BOOM, int_rf_read_ports=12,
                              int_rf_write_ports=6,
                              name="LargeBOOM-fatRF")


def hand_crafted_ablations() -> None:
    runner = SweepRunner(FlowSettings(scale=SCALE), cache_dir=None)
    print(f"{'design':<22}{'IPC':>7}{'tile mW':>9}{'IPC/W':>8}"
          f"{'BP mW':>7}{'IRF mW':>8}{'D$ mW':>7}")
    for config in design_points():
        rows = [runner.run(w, config) for w in WORKLOADS]
        ipc = mean(r.ipc for r in rows)
        tile = mean(r.tile_mw for r in rows)
        ppw = mean(r.perf_per_watt for r in rows)
        bp = mean(r.component_mw("branch_predictor") for r in rows)
        irf = mean(r.component_mw("int_regfile") for r in rows)
        dcache = mean(r.component_mw("dcache") for r in rows)
        print(f"{config.name:<22}{ipc:>7.2f}{tile:>9.2f}{ppw:>8.1f}"
              f"{bp:>7.2f}{irf:>8.2f}{dcache:>7.2f}")
    print("\nobservations to look for:")
    print(" * gshare cuts branch-predictor power at (nearly) equal IPC")
    print(" * the small integer IQ saves power but costs IPC on dijkstra")
    print(" * extra MSHRs raise D-cache power (Key Takeaway #8)")
    print(" * MegaBOOM-class RF ports on a 3-wide core explode IRF power "
          "with no IPC to show for it (Key Takeaway #1)")


def generated_lattice() -> None:
    # the same idea, systematized: a seeded neighborhood of MediumBOOM
    # (plus the paper presets), swept through the supervised scheduler
    # and pruned to the IPC / tile-power / area Pareto frontier
    spec = SpaceSpec(base="MediumBOOM", count=12, seed=7)
    outcome = run_dse(spec, settings=FlowSettings(scale=SCALE),
                      cache_dir=None, workloads=["sha", "dijkstra"])
    print(outcome.format())
    print(f"swept {len(outcome.points)} generated design points at "
          f"{outcome.points_per_s:.1f} points/s")


def main() -> None:
    hand_crafted_ablations()
    print()
    generated_lattice()


if __name__ == "__main__":
    main()
