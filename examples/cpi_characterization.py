#!/usr/bin/env python3
"""CPI-stack characterization of the whole suite.

The power figures say where the *energy* goes; CPI stacks say where the
*cycles* go.  Together they explain the perf-per-watt results: tarfind is
cheap in power but wastes cycles on mispredicts; basicmath serializes on
the divider; sha is pure base CPI.

Runs a steady-state window of every workload on a chosen configuration
and prints the stacked breakdown plus each workload's dominant
bottleneck.
"""

import sys

from repro.analysis.cpi_stack import (
    cpi_stack,
    dominant_bottleneck,
    STACK_COMPONENTS,
)
from repro.uarch.config import config_by_name
from repro.uarch.core import BoomCore
from repro.workloads.suite import build_program, workload_names

SKIP = 20_000
WINDOW = 5_000


def main() -> None:
    config = config_by_name(sys.argv[1] if len(sys.argv) > 1
                            else "MegaBOOM")
    print(f"CPI stacks on {config.name} "
          f"(window of {WINDOW} instructions after {SKIP} warm-up)\n")
    header = f"{'workload':<14}{'CPI':>7}"
    header += "".join(f"{name[:9]:>10}" for name in STACK_COMPONENTS)
    header += "  bottleneck"
    print(header)
    for workload in workload_names():
        program = build_program(workload, scale=1.0)
        core = BoomCore(config, program)
        core.run(SKIP)
        stats = core.begin_measurement()
        core.run(WINDOW)
        stack = cpi_stack(stats, config)
        row = f"{workload:<14}{stack['cpi']:>7.2f}"
        row += "".join(f"{stack[name]:>10.3f}"
                       for name in STACK_COMPONENTS)
        row += f"  {dominant_bottleneck(stack)}"
        print(row)


if __name__ == "__main__":
    main()
