#!/usr/bin/env python3
"""Microarchitectural hotspot analysis — the paper's core use case.

Runs the full workload suite on all three BOOM configurations (at a
reduced scale so this finishes in under a minute without a cache), then:

* prints the per-component power ranking per configuration (Figs. 5-7),
* identifies the hotspots the paper's takeaways call out,
* checks all 8 key takeaways programmatically.

Run with ``--full`` for the Table II scale used by the benchmark harness.
"""

import sys
from statistics import mean

from repro.analysis import check_all, format_checks
from repro.analysis.figures import COMPONENT_LABELS
from repro.flow import FlowSettings, SweepRunner
from repro.power.area import ANALYZED_COMPONENTS
from repro.workloads.suite import workload_names


def main() -> None:
    scale = 1.0 if "--full" in sys.argv else 0.25
    print(f"running the 11-workload x 3-configuration sweep "
          f"(scale {scale:g})...")
    runner = SweepRunner(FlowSettings(scale=scale), cache_dir=None)
    results = runner.run_all()

    for config in ("MediumBOOM", "LargeBOOM", "MegaBOOM"):
        averages = {
            name: mean(results[(w, config)].component_mw(name)
                       for w in workload_names())
            for name in ANALYZED_COMPONENTS}
        tile = mean(results[(w, config)].tile_mw for w in workload_names())
        print(f"\n=== {config}: hotspot ranking "
              f"(tile {tile:.1f} mW) ===")
        ranked = sorted(averages.items(), key=lambda kv: kv[1],
                        reverse=True)
        for rank, (name, power) in enumerate(ranked, start=1):
            bar = "#" * int(40 * power / ranked[0][1])
            print(f"{rank:>3}. {COMPONENT_LABELS[name]:<18}"
                  f"{power:7.3f} mW  {bar}")

    print("\n=== key takeaway checks ===")
    print(format_checks(check_all(results)))


if __name__ == "__main__":
    main()
