#!/usr/bin/env python3
"""DVFS frontier: extend the paper's fixed 500 MHz point to a V/f sweep.

The paper compares three microarchitectures at one operating point
(0.7 V, 500 MHz on ASAP7).  With the technology card's DVFS extension we
can ask the follow-up question the paper's conclusion invites: does a big
core slowed down beat a small core at speed?

For each configuration the same measured activity window (sha) is
re-evaluated at several feasible operating points; performance is
IPC x clock, and efficiency is performance per watt.
"""

from repro.isa.program import Program
from repro.power.model import PowerModel
from repro.power.technology import ASAP7
from repro.uarch.config import ALL_CONFIGS
from repro.uarch.core import BoomCore
from repro.workloads.suite import build_program

OPERATING_POINTS = [
    (0.70, 500e6),   # the paper's point
    (0.60, 375e6),
    (0.50, 250e6),
    (0.40, 125e6),
]
WORKLOAD = "sha"


def measure(config) -> tuple[float, object]:
    program: Program = build_program(WORKLOAD, scale=1.0)
    core = BoomCore(config, program)
    core.run(45_000)                      # into the steady-state kernel
    stats = core.begin_measurement()
    core.run(5_000)
    return stats.ipc, stats


def main() -> None:
    print(f"workload: {WORKLOAD} (steady-state kernel window)\n")
    print(f"{'config':<12}{'V':>6}{'MHz':>6}{'MIPS':>8}{'mW':>9}"
          f"{'MIPS/W':>9}{'pJ/instr':>10}")
    for config in ALL_CONFIGS:
        ipc, stats = measure(config)
        for voltage, clock in OPERATING_POINTS:
            tech = ASAP7.at_operating_point(voltage, clock)
            report = PowerModel(config, tech=tech).report(stats)
            mips = ipc * clock / 1e6
            watts = report.tile_mw * 1e-3
            pj_per_instr = watts / (mips * 1e6) * 1e12
            print(f"{config.name:<12}{voltage:>6.2f}{clock / 1e6:>6.0f}"
                  f"{mips:>8.0f}{report.tile_mw:>9.2f}"
                  f"{mips / watts:>9.0f}{pj_per_instr:>10.2f}")
        print()
    print("reading the frontier: within one design, lower V/f always "
          "improves MIPS/W\n(dynamic energy ~ V^2) at the cost of absolute "
          "MIPS.  Across designs it\nnuances the paper's conclusion: at "
          "the paper's fixed operating point the\nsmall core is the most "
          "efficient, but at *iso-throughput* (e.g. 1000 MIPS)\nthe big "
          "core scaled down to 0.5 V edges out the small core at full "
          "speed —\nvoltage scaling pays quadratically, width only "
          "linearly.")


if __name__ == "__main__":
    main()
