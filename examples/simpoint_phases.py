#!/usr/bin/env python3
"""SimPoint phase analysis: see a program's phases and their weights.

Profiles bitcount (three distinct kernels -> three phases) and sha, runs
the SimPoint pipeline, and renders the phase timeline as ASCII — the same
data Fig. 4 of the paper feeds into checkpoint generation.
"""

from repro.flow import FlowSettings, profile_and_select

SCALE = 0.5
SETTINGS = FlowSettings(scale=SCALE)
GLYPHS = "ABCDEFGHIJ"


def analyze(workload: str) -> None:
    profile, selection = profile_and_select(workload, SETTINGS)
    print(f"\n=== {workload} (scale {SCALE:g}) ===")
    print(f"{profile.total_instructions:,} instructions, "
          f"{profile.num_intervals} intervals of ~{profile.interval_size}, "
          f"{profile.num_blocks} dynamic basic blocks")
    print(f"SimPoint: k={selection.chosen_k} clusters")

    timeline = "".join(GLYPHS[label % len(GLYPHS)]
                       for label in selection.labels)
    print("phase timeline (one glyph per interval):")
    for start in range(0, len(timeline), 72):
        print("  " + timeline[start:start + 72])

    top = selection.top_points()
    print(f"top {len(top)} simulation points "
          f"(coverage {selection.coverage_of(top):.0%}):")
    for point in sorted(top, key=lambda p: -p.weight):
        print(f"  interval {point.interval_index:>4} "
              f"(instr {point.start_instruction:>8,})  "
              f"cluster {GLYPHS[point.cluster % len(GLYPHS)]}  "
              f"weight {point.weight:.2f}")


if __name__ == "__main__":
    for workload in ("bitcount", "sha", "basicmath"):
        analyze(workload)
