"""Command-line front end: run the flow, print every table and figure.

Usage (``python -m repro.cli`` or the ``repro-cli`` entry point)::

    repro-cli table1
    repro-cli table2 --scale 0.2
    repro-cli run sha MegaBOOM --scale 1.0
    repro-cli fig 10 --scale 1.0
    repro-cli takeaways --gshare
    repro-cli speedup
    repro-cli sweep --verbose --jobs 4
    repro-cli --check sweep
    repro-cli check dijkstra MediumBOOM
    repro-cli cache stats
    repro-cli cache invalidate --stage detailed_sim
    repro-cli recover --verify
    repro-cli bench --quick
    repro-cli bench --trend
    repro-cli --flight sweep
    repro-cli flight
    repro-cli accuracy
    repro-cli accuracy --update
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    check_all,
    component_power_series,
    fig10_ipc,
    fig11_perf_per_watt,
    fig8_issue_slots,
    fig9_component_share,
    format_checks,
    format_component_power,
    format_fig8,
    format_per_benchmark,
    format_table_ii,
    summarize,
    table_i,
    table_ii,
)
from repro.flow import FlowSettings, speedup_report, SweepRunner
from repro.obs.logs import setup_cli_logging
from repro.uarch.config import ALL_CONFIGS, config_by_name
from repro.workloads.suite import workload_names


def _settings(args: argparse.Namespace) -> FlowSettings:
    from repro.pipeline.faults import FaultInjector

    # fault injection: the CLI flag wins; otherwise REPRO_FAULTS /
    # REPRO_FAULT_SEED let CI inject faults without changing commands
    env_faults, env_seed = FaultInjector.env_spec()
    faults = getattr(args, "faults", None) or env_faults
    fault_seed = getattr(args, "fault_seed", None)
    return FlowSettings(
        scale=args.scale, seed=args.seed, faults=faults,
        fault_seed=env_seed if fault_seed is None else fault_seed,
        batch=bool(getattr(args, "batch", False)))


def _runner(args: argparse.Namespace) -> SweepRunner:
    cache = None if args.no_cache else args.cache_dir
    return SweepRunner(_settings(args), cache_dir=cache)


def _cmd_table1(args: argparse.Namespace) -> int:
    print(table_i())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    runner = _runner(args)
    rows = table_ii(runner.settings, store=runner.store)
    print(format_table_ii(rows))
    return 0


def _maybe_trace_session(args: argparse.Namespace, runner: SweepRunner,
                         *, label: str):
    """Open a :class:`TraceSession` when tracing was requested."""
    from repro.obs.session import TraceSession
    from repro.obs.tracer import tracing_requested

    if not (getattr(args, "trace", False) or tracing_requested()):
        return None
    if runner.cache_dir is None:
        print("tracing requires a cache directory (drop --no-cache)",
              file=sys.stderr)
        return None
    return TraceSession(runner.cache_dir, label=label).start()


def _finish_trace_session(session) -> None:
    if session is None:
        return
    path = session.finish()
    if path is not None:
        print(f"trace written to {path} (render with `repro-cli trace`)",
              file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    runner = _runner(args)
    config = config_by_name(args.config)
    session = _maybe_trace_session(args, runner, label="run")
    try:
        result = runner.run(args.workload, config)
    finally:
        _finish_trace_session(session)
    print(f"{args.workload} on {config.name} (scale {args.scale:g})")
    print(f"  SimPoints: {len(result.runs)} of k={result.chosen_k} "
          f"clusters, coverage {result.coverage:.2f}")
    print(f"  IPC: {result.ipc:.3f}")
    print(f"  Tile power: {result.tile_mw:.2f} mW "
          f"(analyzed share {result.analyzed_share:.1%})")
    print(f"  Perf/W: {result.perf_per_watt:.1f} IPC/W")
    for run in result.runs:
        print(f"    interval {run.interval_index}: weight={run.weight:.2f} "
              f"ipc={run.ipc:.2f} tile={run.report.tile_mw:.2f} mW")
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    runner = _runner(args)
    results = runner.run_all(jobs=args.jobs, trace=args.trace)
    number = args.number
    if number in (5, 6, 7):
        config = {5: "MediumBOOM", 6: "LargeBOOM", 7: "MegaBOOM"}[number]
        series = component_power_series(results, config)
        print(format_component_power(
            series, f"Fig. {number}: per-component power, {config}"))
    elif number == 8:
        print(format_fig8(fig8_issue_slots(results)))
    elif number == 9:
        shares = fig9_component_share(results)
        print("Fig. 9: analyzed-component share of tile power")
        for config, share in shares.items():
            print(f"  {config:<12} {share:.1%}")
    elif number == 10:
        print(format_per_benchmark(fig10_ipc(results),
                                   "Fig. 10: IPC per benchmark", "IPC"))
    elif number == 11:
        print(format_per_benchmark(
            fig11_perf_per_watt(results),
            "Fig. 11: performance per watt", "IPC/W"))
    else:
        print(f"unknown figure {number}", file=sys.stderr)
        return 2
    return 0


def _cmd_takeaways(args: argparse.Namespace) -> int:
    runner = _runner(args)
    results = runner.run_all(jobs=args.jobs, trace=args.trace)
    gshare_results = None
    if args.gshare:
        gshare_configs = tuple(c.with_predictor("gshare")
                               for c in ALL_CONFIGS)
        gshare_results = runner.run_all(configs=gshare_configs,
                                        jobs=args.jobs, trace=args.trace)
    checks = check_all(results, gshare_results)
    print(format_checks(checks))
    return 0 if all(c.passed for c in checks) else 1


def _cmd_speedup(args: argparse.Namespace) -> int:
    runner = _runner(args)
    results = [runner.run(w, config_by_name(args.config))
               for w in workload_names()]
    print(speedup_report(results).format_table())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.flow.scheduler import RetryPolicy

    if args.workloads:
        known = set(workload_names())
        unknown = sorted(set(args.workloads) - known)
        if unknown:
            print(f"unknown workload(s): {', '.join(unknown)}; "
                  f"see `repro-cli workloads`", file=sys.stderr)
            return 2
    runner = _runner(args)
    policy = RetryPolicy(max_attempts=args.retries + 1) \
        if args.retries is not None else None
    results = runner.run_all(
        workloads=args.workloads, jobs=args.jobs, policy=policy,
        timeout=args.timeout,
        fail_fast=args.fail_fast, resume=args.resume,
        trace=args.trace, progress=args.progress,
        deadline=args.deadline, max_rss_mb=args.max_rss,
        min_free_mb=args.min_free_mb)
    if args.resume and runner.resumed_completed:
        print(f"resumed: {runner.resumed_completed} experiments already "
              f"complete from the interrupted run")
    print(summarize(results).format())
    manifest = runner.last_manifest
    if args.verbose and manifest is not None:
        print()
        print(manifest.format())
    if manifest is not None and manifest.trace:
        print(f"trace written to {manifest.trace} "
              f"(render with `repro-cli trace`)", file=sys.stderr)
    if manifest is not None and not manifest.ok:
        fault_table = manifest.format_faults()
        if fault_table and not args.verbose:
            print()
            print(fault_table)
        print(f"\nsweep degraded: {len(results)} of "
              f"{manifest.experiments} experiments completed "
              f"({len(manifest.failures)} failed, "
              f"{len(manifest.timeouts)} timed out)", file=sys.stderr)
        return 3
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.flow.jobs import JobLimits
    from repro.serve import ClientQuotas, serve_forever

    limits = JobLimits(
        jobs_cap=args.jobs_cap, timeout=args.timeout,
        retries=args.retries, deadline=args.deadline,
        max_rss_mb=args.max_rss, min_free_mb=args.min_free_mb)
    quotas = ClientQuotas(rate=args.rate, burst=args.burst,
                          max_client_jobs=args.max_client_jobs)
    return serve_forever(
        args.cache_dir, host=args.host, port=args.port,
        workers=args.workers, limits=limits, quotas=quotas,
        max_queue=args.max_queue, trace_jobs=args.trace_jobs,
        drain_timeout=args.drain_timeout, port_file=args.port_file,
        announce=lambda line: print(line, flush=True))


def _cmd_trace(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.merge import write_merged_trace
    from repro.obs.render import chrome_json, format_summary, format_tree
    from repro.obs.session import METRICS_NAME, resolve_run_dir

    run_dir = resolve_run_dir(args.cache_dir, args.run)
    if run_dir is None:
        wanted = args.run or "latest"
        print(f"no trace run found ({wanted}); record one with "
              f"`repro-cli sweep --trace` or REPRO_TRACE=1",
              file=sys.stderr)
        return 2
    trace_path = run_dir / "trace.json"
    if not trace_path.exists():
        # interrupted / crashed run: merge whatever event files survived
        try:
            write_merged_trace(run_dir)
        except OSError as exc:
            print(f"cannot merge trace in {run_dir}: {exc}",
                  file=sys.stderr)
            return 2
    trace = json.loads(trace_path.read_text())
    if args.format == "chrome":
        text = chrome_json(trace)
        if args.output:
            Path(args.output).write_text(text)
            print(f"wrote {args.output} (open in Perfetto / "
                  f"chrome://tracing)")
        else:
            print(text)
        return 0
    if args.format in ("tree", "full"):
        print(format_tree(trace))
    if args.format in ("summary", "full"):
        if args.format == "full":
            print()
        print(format_summary(trace))
    if args.metrics:
        metrics_path = run_dir / METRICS_NAME
        if metrics_path.exists():
            print()
            print(metrics_path.read_text().rstrip())
        else:
            print("\n(no metrics snapshot recorded)")
    if args.prom:
        from repro.obs.metrics import snapshot_to_prometheus

        metrics_path = run_dir / METRICS_NAME
        if not metrics_path.exists():
            print("no metrics snapshot recorded for this run; nothing "
                  "to export", file=sys.stderr)
            return 2
        text = snapshot_to_prometheus(json.loads(metrics_path.read_text()))
        Path(args.prom).write_text(text)
        print(f"wrote Prometheus textfile {args.prom}", file=sys.stderr)
    return 0


def _cmd_flight(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.flight import write_merged_flight
    from repro.obs.render import flight_to_chrome, format_flight
    from repro.obs.session import resolve_run_dir

    run_dir = resolve_run_dir(args.cache_dir, args.run)
    if run_dir is None:
        wanted = args.run or "latest"
        print(f"no obs run found ({wanted}); record one with "
              f"`repro-cli --flight sweep` or REPRO_FLIGHT=1",
              file=sys.stderr)
        return 2
    flight_path = run_dir / "flight.json"
    if not flight_path.exists():
        # interrupted run: merge whatever per-process files survived
        try:
            merged = write_merged_flight(run_dir)
        except OSError as exc:
            print(f"cannot merge flight data in {run_dir}: {exc}",
                  file=sys.stderr)
            return 2
        if merged is None:
            print(f"no flight samples in {run_dir}; record a run with "
                  f"`repro-cli --flight sweep` or REPRO_FLIGHT=1",
                  file=sys.stderr)
            return 2
    flight = json.loads(flight_path.read_text())
    if args.format == "chrome":
        text = json.dumps(flight_to_chrome(flight),
                          separators=(",", ":"))
        if args.output:
            Path(args.output).write_text(text)
            print(f"wrote {args.output} (open in Perfetto / "
                  f"chrome://tracing)")
        else:
            print(text)
        return 0
    print(format_flight(flight, width=args.width))
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.accuracy import (
        build_envelope,
        evaluate_accuracy,
        format_accuracy,
        load_envelopes,
        write_envelope,
    )

    directory = Path(args.envelopes)
    envelopes: dict[str, dict] = {}
    if args.update:
        scale, seed = args.scale, args.seed
    else:
        try:
            envelopes = load_envelopes(directory)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.workloads:
            wanted = set(args.workloads)
            envelopes = {workload: envelope
                         for workload, envelope in envelopes.items()
                         if workload in wanted}
        if not envelopes:
            print(f"no accuracy envelopes under {directory}; create "
                  f"them with `repro-cli accuracy --update`",
                  file=sys.stderr)
            return 2
        # The envelopes pin the operating point: re-measure at exactly
        # the scale/seed they were built at, whatever --scale says.
        scales = {envelope["scale"] for envelope in envelopes.values()}
        if len(scales) != 1:
            print(f"envelopes disagree on scale ({sorted(scales)}); "
                  f"regenerate them together", file=sys.stderr)
            return 2
        scale = scales.pop()
        seeds = {envelope.get("seed") for envelope in envelopes.values()}
        seed = seeds.pop() if len(seeds) == 1 and None not in seeds \
            else args.seed
    settings = FlowSettings(scale=scale, seed=seed,
                            batch=bool(getattr(args, "batch", False)))
    cache = None if args.no_cache else args.cache_dir
    runner = SweepRunner(settings, cache_dir=cache)
    # The committed envelopes define the coverage: sweep exactly their
    # workloads unless the user restricted further (or is regenerating).
    workloads = args.workloads
    if workloads is None and envelopes:
        workloads = sorted(envelopes)
    results = runner.run_all(workloads=workloads, jobs=args.jobs,
                             trace=args.trace)
    if args.update:
        by_workload: dict[str, dict] = {}
        for (workload, config), result in results.items():
            by_workload.setdefault(workload, {})[config] = result
        for workload in sorted(by_workload):
            path = write_envelope(directory, build_envelope(
                workload, by_workload[workload], scale=scale, seed=seed))
            print(f"wrote {path}")
        print(f"{len(by_workload)} envelope(s) regenerated — review the "
              f"diff before committing")
        return 0
    evaluation = evaluate_accuracy(results, envelopes)
    print(format_accuracy(evaluation))
    return 0 if evaluation.ok else 1


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.flow.sweep import MANIFEST_NAME
    from repro.pipeline import ArtifactStore, RunManifest, STAGE_ORDER

    store = ArtifactStore(args.cache_dir)
    if args.action == "stats":
        counts = store.artifact_counts()
        legacy = store.legacy_files()
        if not counts and not legacy:
            print(f"{args.cache_dir}: empty")
            return 0
        print(f"{'stage':<22}{'artifacts':>10}{'bytes':>12}")
        for stage in STAGE_ORDER:
            if stage in counts:
                number, size = counts[stage]
                print(f"{stage:<22}{number:>10}{size:>12,}")
        for stage in sorted(set(counts) - set(STAGE_ORDER)):
            number, size = counts[stage]
            print(f"{stage:<22}{number:>10}{size:>12,}")
        if legacy:
            print(f"{'(legacy layout)':<22}{len(legacy):>10}"
                  f"{sum(p.stat().st_size for p in legacy):>12,}")
        manifest_path = Path(args.cache_dir) / MANIFEST_NAME
        if manifest_path.exists():
            import json

            manifest = RunManifest.from_dict(
                json.loads(manifest_path.read_text()))
            print("\nlast sweep:")
            print(manifest.format())
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} artifacts from {args.cache_dir}")
        return 0
    # invalidate: drop the stage AND everything downstream of it, since
    # downstream artifacts were derived from the invalidated outputs.
    if args.stage is None:
        print("cache invalidate requires --stage", file=sys.stderr)
        return 2
    if args.stage not in STAGE_ORDER:
        print(f"unknown stage {args.stage!r}; one of: "
              f"{', '.join(STAGE_ORDER)}", file=sys.stderr)
        return 2
    removed = 0
    for stage in STAGE_ORDER[STAGE_ORDER.index(args.stage):]:
        dropped = store.invalidate_stage(stage)
        if dropped:
            print(f"  {stage}: {dropped} artifacts")
        removed += dropped
    print(f"removed {removed} artifacts from {args.cache_dir}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.check.storage import validate_storage
    from repro.pipeline.journal import recover_cache

    exit_code = 0
    if not args.check_only:
        report = recover_cache(args.cache_dir)
        print(report.format())
    if args.check_only or args.check_after:
        storage = validate_storage(args.cache_dir)
        print(storage.format())
        if not storage.ok:
            exit_code = 1
    return exit_code


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads.suite import get_workload

    print(f"{'name':<14}{'suite':<9}{'interval':>9}{'paper instr':>15}"
          f"{'SPs':>4}  description")
    for name in workload_names():
        spec = get_workload(name)
        print(f"{spec.name:<14}{spec.suite:<9}{spec.interval_size:>9}"
              f"{spec.paper_instructions:>15,}{spec.paper_simpoints:>4}"
              f"  {spec.description}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.flow.report import generate_report

    text = generate_report(_runner(args), include_gshare=args.gshare)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_checkpoints(args: argparse.Namespace) -> int:
    from repro.checkpoint import (
        create_checkpoints,
        describe_store,
        save_checkpoints,
    )
    from repro.flow import profile_and_select
    from repro.workloads.suite import build_program

    settings = FlowSettings(scale=args.scale, seed=args.seed)
    program = build_program(args.workload, scale=settings.scale,
                            seed=settings.seed)
    _, selection = profile_and_select(args.workload, settings)
    checkpoints = create_checkpoints(program, selection,
                                     warmup=settings.scaled_warmup())
    save_checkpoints(args.directory, checkpoints)
    print(describe_store(args.directory))
    return 0


def _cmd_cpi(args: argparse.Namespace) -> int:
    from repro.analysis.cpi_stack import (
        cpi_stack,
        dominant_bottleneck,
        format_cpi_stack,
    )
    from repro.uarch.core import BoomCore
    from repro.workloads.suite import build_program

    config = config_by_name(args.config)
    program = build_program(args.workload, scale=args.scale,
                            seed=args.seed)
    core = BoomCore(config, program)
    core.run(args.skip)
    stats = core.begin_measurement()
    core.run(args.window)
    stack = cpi_stack(stats, config)
    print(format_cpi_stack(stack, f"{args.workload} on {config.name}"))
    print(f"dominant bottleneck: {dominant_bottleneck(stack)}")
    return 0


def _cmd_pipeline(args: argparse.Namespace) -> int:
    from repro.uarch.pipeview import (
        render_waterfall,
        summarize_timings,
        trace_program,
    )
    from repro.workloads.suite import build_program

    program = build_program(args.workload, scale=args.scale,
                            seed=args.seed)
    timings = trace_program(program, config_by_name(args.config),
                            max_uops=args.uops,
                            skip_instructions=args.skip)
    print(render_waterfall(timings))
    for key, value in summarize_timings(timings).items():
        print(f"{key}: {value:.2f}" if isinstance(value, float)
              else f"{key}: {value}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.check.runner import run_check

    runner = _runner(args)
    exit_code = 0
    for workload in args.workloads or ["dijkstra"]:
        for config_name in args.configs or ["MediumBOOM"]:
            report = run_check(workload, config_by_name(config_name),
                               runner.settings, runner.store)
            print(report.format())
            if not report.ok:
                exit_code = 1
    return exit_code


def _cmd_dse(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.errors import ConfigError
    from repro.flow.dse import run_dse
    from repro.flow.scheduler import RetryPolicy
    from repro.uarch.space import (
        DesignSpace,
        generate_points,
        points_from_dict,
        points_to_dict,
        SpaceSpec,
    )

    spec = SpaceSpec(base=args.base, mode=args.mode, count=args.points,
                     radius=args.radius, max_changed=args.max_changed,
                     seed=args.space_seed,
                     include_presets=not args.no_presets)
    configs = None
    if args.action == "generate":
        space = DesignSpace.around(spec.base)
        points = generate_points(spec, space=space)
        text = json.dumps(points_to_dict(spec, points, space=space),
                          indent=2, sort_keys=True)
        if args.space:
            Path(args.space).write_text(text + "\n")
            print(f"wrote {len(points)} design points to {args.space}")
        else:
            print(text)
        return 0
    if args.space:
        path = Path(args.space)
        if not path.exists():
            print(f"space document {args.space} not found; create it "
                  f"with `repro-cli dse generate --space {args.space}`",
                  file=sys.stderr)
            return 2
        try:
            spec, configs = points_from_dict(json.loads(path.read_text()))
        except (ValueError, ConfigError, KeyError) as exc:
            print(f"cannot load space document {args.space}: {exc}",
                  file=sys.stderr)
            return 2
    policy = RetryPolicy(max_attempts=args.retries + 1) \
        if args.retries is not None else None
    outcome = run_dse(
        spec, settings=_settings(args),
        cache_dir=None if args.no_cache else args.cache_dir,
        jobs=args.jobs, configs=configs, workloads=args.workloads,
        policy=policy, timeout=args.timeout, fail_fast=args.fail_fast,
        resume=args.resume, trace=args.trace, progress=args.progress)
    document = outcome.document()
    if args.output:
        Path(args.output).write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n")
        print(f"wrote frontier artifact to {args.output}", file=sys.stderr)
    if args.action == "frontier":
        if not args.output:
            print(json.dumps(document, indent=2, sort_keys=True))
    else:  # sweep | report
        print(outcome.format())
        print(f"\nswept {len(outcome.points)} design points "
              f"({len(outcome.results)} experiments) at "
              f"{outcome.points_per_s:.1f} points/s")
    manifest = outcome.manifest
    if manifest is not None and manifest.trace:
        print(f"trace written to {manifest.trace} "
              f"(render with `repro-cli trace`)", file=sys.stderr)
    if manifest is not None and not manifest.ok:
        print(f"\nsweep degraded: {len(outcome.skipped)} design points "
              f"incomplete ({len(manifest.failures)} experiments failed, "
              f"{len(manifest.timeouts)} timed out)", file=sys.stderr)
        if args.action == "sweep" or not outcome.frontier:
            return 3
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import main as bench_main

    argv: list[str] = []
    if args.quick:
        argv.append("--quick")
    if args.output:
        argv += ["--output", args.output]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.check:
        argv.append("--check")
    if args.no_write:
        argv.append("--no-write")
    if args.threshold is not None:
        argv += ["--threshold", str(args.threshold)]
    if args.trend:
        argv.append("--trend")
    if args.trend_dir:
        argv += ["--trend-dir", args.trend_dir]
    for metric in args.metric or ():
        argv += ["--metric", metric]
    return bench_main(argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="SimPoint-based BOOM hotspot & energy-efficiency "
                    "analysis (ISPASS 2024 reproduction)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = Table II / 1000)")
    parser.add_argument("--seed", type=int, default=17)
    parser.add_argument("--cache-dir", default=".repro_cache")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers for sweeps")
    parser.add_argument("--quiet", "-q", action="store_true",
                        help="only errors on stderr")
    parser.add_argument("--verbose", dest="log_verbose", action="count",
                        default=0,
                        help="diagnostic logging on stderr (repeat for "
                             "debug)")
    parser.add_argument("--trace", action="store_true",
                        help="record a structured trace of the run under "
                             "<cache>/obs/ (also via REPRO_TRACE=1); "
                             "render it with `repro-cli trace`")
    parser.add_argument("--flight", action="store_true",
                        help="record per-interval microarchitectural "
                             "telemetry during detailed simulation (also "
                             "via REPRO_FLIGHT=1; implies --trace); "
                             "render it with `repro-cli flight`")
    parser.add_argument("--check", dest="runtime_checks",
                        action="store_true",
                        help="assert core invariants while simulating "
                             "(also via REPRO_CHECK=1); artifacts stay "
                             "byte-identical to an unchecked run")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("table1", help="print Table I").set_defaults(
        handler=_cmd_table1)
    commands.add_parser("table2", help="measure Table II").set_defaults(
        handler=_cmd_table2)

    run_parser = commands.add_parser("run", help="one experiment")
    run_parser.add_argument("workload", choices=workload_names())
    run_parser.add_argument("config")
    run_parser.set_defaults(handler=_cmd_run)

    fig_parser = commands.add_parser("fig", help="print a figure's series")
    fig_parser.add_argument("number", type=int, choices=range(5, 12))
    fig_parser.set_defaults(handler=_cmd_fig)

    takeaway_parser = commands.add_parser(
        "takeaways", help="validate the 8 key takeaways")
    takeaway_parser.add_argument("--gshare", action="store_true",
                                 help="also run the gshare ablation")
    takeaway_parser.set_defaults(handler=_cmd_takeaways)

    speedup_parser = commands.add_parser(
        "speedup", help="SimPoint simulation-time accounting")
    speedup_parser.add_argument("--config", default="MegaBOOM")
    speedup_parser.set_defaults(handler=_cmd_speedup)

    sweep_parser = commands.add_parser(
        "sweep", help="full study + efficiency summary")
    sweep_parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="print the per-stage run manifest (executions, cache "
             "hits/misses, timings, failures/retries)")
    sweep_parser.add_argument(
        "--resume", action="store_true",
        help="pick an interrupted sweep back up: completed experiments "
             "come from the cache, permanent failures are not re-run")
    sweep_parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="WORKLOAD",
        help="restrict the sweep to these workloads (default: the "
             "full suite)")
    sweep_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=False,
        help="simulate all configs of a workload in one batched pass "
             "sharing the recorded fetch trace (byte-identical "
             "artifacts; falls back to per-config runs on any batch "
             "fault)")
    sweep_parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first permanent failure instead of "
             "completing the remaining experiments")
    sweep_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget (jobs > 1); hung tasks are "
             "abandoned and recorded in the manifest")
    sweep_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max retries per task for transient failures (default 2)")
    sweep_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec, e.g. 'worker.experiment:crash:n=1' "
             "(testing; also via REPRO_FAULTS)")
    sweep_parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault-injection probability draws")
    sweep_parser.add_argument(
        "--progress", action="store_true",
        help="live per-workload progress + ETA on stderr, tailing the "
             "simulator heartbeats (implies tracing)")
    sweep_parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the whole sweep; leftover work is "
             "recorded (kind 'deadline') and the sweep degrades (exit 3)")
    sweep_parser.add_argument(
        "--max-rss", type=float, default=None, metavar="MB",
        help="per-worker resident-set ceiling; offenders are terminated "
             "and their tasks retried within the attempt budget")
    sweep_parser.add_argument(
        "--min-free-mb", type=float, default=None, metavar="MB",
        help="refuse to start tasks once free disk under the cache "
             "falls below this floor (kind 'disk-full', exit 3)")
    sweep_parser.set_defaults(handler=_cmd_sweep)

    trace_parser = commands.add_parser(
        "trace", help="render a recorded run trace")
    trace_parser.add_argument(
        "run", nargs="?", default=None,
        help="run id under <cache>/obs/, a run directory path, or "
             "'latest' (default)")
    trace_parser.add_argument(
        "--format", "-f", default="full",
        choices=("full", "tree", "summary", "chrome"),
        help="full = span tree + critical-path/utilization summary; "
             "chrome = Chrome trace-event JSON (Perfetto)")
    trace_parser.add_argument(
        "--output", "-o", default=None,
        help="write chrome JSON here instead of stdout")
    trace_parser.add_argument(
        "--metrics", action="store_true",
        help="also print the run's metrics snapshot")
    trace_parser.add_argument(
        "--prom", default=None, metavar="FILE",
        help="export the run's metrics snapshot as a Prometheus "
             "textfile (node-exporter textfile collector format)")
    trace_parser.set_defaults(handler=_cmd_trace)

    flight_parser = commands.add_parser(
        "flight", help="render a run's flight-recorder telemetry "
                       "(per-interval IPC/occupancy/power timelines)")
    flight_parser.add_argument(
        "run", nargs="?", default=None,
        help="run id under <cache>/obs/, a run directory path, or "
             "'latest' (default)")
    flight_parser.add_argument(
        "--format", "-f", default="timeline",
        choices=("timeline", "chrome"),
        help="timeline = sparkline tables; chrome = Chrome trace-event "
             "counter tracks (Perfetto)")
    flight_parser.add_argument(
        "--output", "-o", default=None,
        help="write chrome JSON here instead of stdout")
    flight_parser.add_argument(
        "--width", type=int, default=60,
        help="sparkline width in characters (default 60)")
    flight_parser.set_defaults(handler=_cmd_flight)

    accuracy_parser = commands.add_parser(
        "accuracy", help="compare a sweep against the committed golden "
                         "accuracy envelopes (MAPE table + drift gate)")
    accuracy_parser.add_argument(
        "--envelopes", default="benchmarks/accuracy", metavar="DIR",
        help="envelope directory (default benchmarks/accuracy)")
    accuracy_parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="WORKLOAD",
        help="restrict to these workloads (default: every envelope)")
    accuracy_parser.add_argument(
        "--update", action="store_true",
        help="regenerate the envelopes from the current model at "
             "--scale/--seed instead of evaluating against them")
    accuracy_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=False,
        help="use the batched multi-config engine for the sweep")
    accuracy_parser.set_defaults(handler=_cmd_accuracy)

    cache_parser = commands.add_parser(
        "cache", help="inspect or prune the stage artifact cache")
    cache_parser.add_argument("action",
                              choices=("stats", "clear", "invalidate"))
    cache_parser.add_argument(
        "--stage", default=None,
        help="stage to invalidate (with everything downstream of it)")
    cache_parser.set_defaults(handler=_cmd_cache)

    recover_parser = commands.add_parser(
        "recover", help="repair the cache after crashes: quarantine "
                        "torn artifacts, release dead leases, fix "
                        "sweep state so --resume is trustworthy")
    recover_parser.add_argument(
        "--check", dest="check_only", action="store_true",
        help="audit only — report journal/lease/state inconsistencies "
             "without repairing anything (exit 1 if problems found)")
    recover_parser.add_argument(
        "--verify", dest="check_after", action="store_true",
        help="run the storage audit after repairing (exit 1 if "
             "problems remain)")
    recover_parser.set_defaults(handler=_cmd_recover)

    commands.add_parser(
        "workloads", help="list the benchmark suite").set_defaults(
        handler=_cmd_workloads)

    report_parser = commands.add_parser(
        "report", help="render the full study as a markdown report")
    report_parser.add_argument("--output", "-o", default=None)
    report_parser.add_argument("--gshare", action="store_true")
    report_parser.set_defaults(handler=_cmd_report)

    checkpoint_parser = commands.add_parser(
        "checkpoints", help="create and save a workload's checkpoints")
    checkpoint_parser.add_argument("workload", choices=workload_names())
    checkpoint_parser.add_argument("directory")
    checkpoint_parser.set_defaults(handler=_cmd_checkpoints)

    cpi_parser = commands.add_parser(
        "cpi", help="CPI-stack breakdown for one workload window")
    cpi_parser.add_argument("workload", choices=workload_names())
    cpi_parser.add_argument("config", nargs="?", default="MegaBOOM")
    cpi_parser.add_argument("--skip", type=int, default=20_000)
    cpi_parser.add_argument("--window", type=int, default=5_000)
    cpi_parser.set_defaults(handler=_cmd_cpi)

    pipeline_parser = commands.add_parser(
        "pipeline", help="render a pipeline waterfall for a workload")
    pipeline_parser.add_argument("workload", choices=workload_names())
    pipeline_parser.add_argument("config", nargs="?", default="MediumBOOM")
    pipeline_parser.add_argument("--uops", type=int, default=32)
    pipeline_parser.add_argument("--skip", type=int, default=0)
    pipeline_parser.set_defaults(handler=_cmd_pipeline)

    dse_parser = commands.add_parser(
        "dse", help="design-space exploration: generate a config "
                    "lattice, sweep it, compute the Pareto frontier")
    dse_parser.add_argument(
        "action", choices=("generate", "sweep", "frontier", "report"),
        help="generate = materialize the point set (JSON); sweep = run "
             "it and print the frontier; frontier = emit the frontier "
             "artifact JSON; report = human-readable frontier + "
             "sensitivity tables")
    dse_parser.add_argument(
        "--points", type=int, default=64, metavar="N",
        help="lattice size to generate (default 64)")
    dse_parser.add_argument(
        "--base", default="LargeBOOM",
        help="preset the lattice is centered on (default LargeBOOM)")
    dse_parser.add_argument(
        "--mode", default="neighborhood",
        choices=("neighborhood", "random", "grid"),
        help="sampling strategy (default neighborhood)")
    dse_parser.add_argument(
        "--radius", type=int, default=2,
        help="neighborhood ring radius in lattice rungs (default 2)")
    dse_parser.add_argument(
        "--max-changed", type=int, default=2,
        help="max axes changed per neighborhood point (default 2)")
    dse_parser.add_argument(
        "--space-seed", type=int, default=17,
        help="seed for random-legal lattice draws (default 17)")
    dse_parser.add_argument(
        "--no-presets", action="store_true",
        help="exclude the three paper presets from the point set")
    dse_parser.add_argument(
        "--space", default=None, metavar="FILE",
        help="space document: written by `generate`, read by the other "
             "actions (bit-reproducible point sets)")
    dse_parser.add_argument(
        "--output", "-o", default=None, metavar="FILE",
        help="write the frontier artifact JSON here")
    dse_parser.add_argument(
        "--workloads", nargs="+", default=None, metavar="WORKLOAD",
        help="workloads to sweep (default: the full suite)")
    dse_parser.add_argument(
        "--resume", action="store_true",
        help="pick an interrupted DSE sweep back up from the cache")
    dse_parser.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=False,
        help="simulate all configs of a workload in one batched pass "
             "sharing the recorded fetch trace (byte-identical "
             "artifacts; falls back to per-config runs on any batch "
             "fault)")
    dse_parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort on the first permanent failure")
    dse_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget (jobs > 1)")
    dse_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="max retries per task for transient failures (default 2)")
    dse_parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="fault-injection spec (testing; also via REPRO_FAULTS)")
    dse_parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed for the fault-injection probability draws")
    dse_parser.add_argument(
        "--progress", action="store_true",
        help="live progress + ETA on stderr (implies tracing)")
    dse_parser.set_defaults(handler=_cmd_dse)

    bench_parser = commands.add_parser(
        "bench", help="run the hot-path benchmark harness "
                      "(emits BENCH_<date>.json)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="small budgets for CI smoke runs")
    bench_parser.add_argument("--output", "-o", default=None)
    bench_parser.add_argument("--baseline", default=None,
                              help="snapshot to compare against")
    bench_parser.add_argument("--check", action="store_true",
                              help="exit 1 on regression past --threshold")
    bench_parser.add_argument("--no-write", action="store_true")
    bench_parser.add_argument("--threshold", type=float, default=None,
                              help="allowed fractional regression "
                                   "(default 0.30)")
    bench_parser.add_argument("--trend", action="store_true",
                              help="print the per-metric trajectory "
                                   "across committed BENCH_*.json and "
                                   "exit (no measurement)")
    bench_parser.add_argument("--trend-dir", default=None, metavar="DIR",
                              help="directory holding the snapshots "
                                   "(default: auto-detect)")
    bench_parser.add_argument("--metric", action="append", default=None,
                              help="restrict --trend to this metric "
                                   "(repeatable)")
    bench_parser.set_defaults(handler=_cmd_bench)

    serve_parser = commands.add_parser(
        "serve", help="run the sweep-as-a-service job server "
                      "(see docs/serve.md)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = pick a free one; see --port-file)")
    serve_parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port here once listening")
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="concurrent jobs executed at once (default 2)")
    serve_parser.add_argument(
        "--max-queue", type=int, default=16,
        help="bounded job queue depth; beyond it submissions get 429 "
             "queue-full (default 16)")
    serve_parser.add_argument(
        "--jobs-cap", type=int, default=1, metavar="N",
        help="clamp on the per-job worker fan-out a request may ask "
             "for (default 1)")
    serve_parser.add_argument(
        "--rate", type=float, default=10.0,
        help="per-client sustained submissions/s (default 10)")
    serve_parser.add_argument(
        "--burst", type=float, default=20.0,
        help="per-client submission burst size (default 20)")
    serve_parser.add_argument(
        "--max-client-jobs", type=int, default=4, metavar="N",
        help="per-client concurrent unfinished jobs (default 4)")
    serve_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment timeout inside each job")
    serve_parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="per-experiment retry budget inside each job")
    serve_parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock guardrail")
    serve_parser.add_argument(
        "--max-rss", type=float, default=None, metavar="MB",
        help="per-job peak-RSS guardrail")
    serve_parser.add_argument(
        "--min-free-mb", type=float, default=None, metavar="MB",
        help="refuse job work when free memory drops below this")
    serve_parser.add_argument(
        "--trace-jobs", action="store_true",
        help="record an observability trace for every job")
    serve_parser.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="SECONDS",
        help="how long SIGTERM waits for running jobs (default 60)")
    serve_parser.set_defaults(handler=_cmd_serve)

    check_parser = commands.add_parser(
        "check", help="validate the models: invariants, differential "
                      "re-execution, power/result validators")
    check_parser.add_argument(
        "workloads", nargs="*", metavar="workload",
        help="workloads to validate (default: dijkstra)")
    check_parser.add_argument(
        "--configs", nargs="+", default=None, metavar="CONFIG",
        help="configurations to validate (default: MediumBOOM)")
    check_parser.set_defaults(handler=_cmd_check)
    return parser


def _report_failure(exc: BaseException, *, verbose: bool) -> int:
    """One taxonomy-coded line on stderr + the reserved exit code.

    Subcommand handlers let unexpected exceptions escape; this is the
    single place they land.  Without ``--verbose`` the traceback is
    suppressed — scripts and CI wrappers get a stable one-liner and a
    meaningful exit code (``repro.errors``) instead of a raw dump.
    """
    import traceback

    from repro.errors import (
        SweepInterrupted,
        classify_failure,
        exit_code_for,
    )

    code = exit_code_for(exc)
    if isinstance(exc, (SweepInterrupted, KeyboardInterrupt)):
        name = exc.signal_name if isinstance(exc, SweepInterrupted) \
            else "SIGINT"
        print(f"repro-cli: interrupted by {name} (exit {code}); "
              f"state settled — resume with --resume", file=sys.stderr)
        return code
    if verbose:
        traceback.print_exc()
    kind = classify_failure(exc)
    print(f"repro-cli: error[{kind}/{type(exc).__name__}]: {exc}",
          file=sys.stderr)
    if not verbose:
        print("repro-cli: re-run with --verbose for the full traceback",
              file=sys.stderr)
    return code


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    setup_cli_logging(verbose=args.log_verbose, quiet=args.quiet)
    if args.runtime_checks:
        from repro.check import set_checks_enabled

        set_checks_enabled(True)
    if args.flight:
        # The env var is the worker handoff (pool workers inherit it),
        # and an obs session must exist for the recorder to have a
        # directory — so --flight implies --trace.
        import os

        from repro.obs.flight import FLIGHT_ENV

        os.environ[FLIGHT_ENV] = "1"
        args.trace = True
    try:
        return args.handler(args)
    except SystemExit:
        raise
    except BaseException as exc:
        return _report_failure(exc, verbose=args.log_verbose > 0)


if __name__ == "__main__":
    raise SystemExit(main())
