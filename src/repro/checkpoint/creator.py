"""Checkpoint creation at SimPoint boundaries.

Given a SimPoint selection, run the functional simulator once and snapshot
architectural state at each chosen point's warm-up start — i.e.
``interval_index * interval_size - warmup`` retired instructions (clamped
to 0).  One sequential pass produces all checkpoints, exactly like the
paper's Spike-based generation step (Fig. 4, step 3).
"""

from __future__ import annotations

from repro.errors import CheckpointError
from repro.checkpoint.checkpoint import Checkpoint
from repro.isa.program import Program
from repro.obs.tracer import get_tracer
from repro.sim.executor import Executor
from repro.simpoint.simpoints import SimPoint, SimPointSelection

DEFAULT_WARMUP = 2000


def checkpoint_starts(points: list[SimPoint], interval_size: int,
                      warmup: int) -> list[tuple[SimPoint, int, int]]:
    """Compute (point, capture index, actual warm-up) for each point.

    The capture index is where the functional run snapshots; the actual
    warm-up can be shorter than requested when the SimPoint interval sits
    near the start of the program.  Points carry their exact start
    boundary (profile intervals overshoot the nominal size by up to one
    basic block); older selections without it fall back to
    ``interval_index * interval_size``.
    """
    out = []
    for point in sorted(points, key=lambda p: p.interval_index):
        measure_start = point.start_instruction \
            or point.interval_index * interval_size
        capture = max(0, measure_start - warmup)
        out.append((point, capture, measure_start - capture))
    return out


def create_checkpoints(program: Program, selection: SimPointSelection,
                       points: list[SimPoint] | None = None,
                       warmup: int = DEFAULT_WARMUP) -> list[Checkpoint]:
    """Create checkpoints for ``points`` (default: the top-ranked points).

    Returns checkpoints in ascending instruction order.  Raises
    :class:`CheckpointError` if the program exits before a requested
    boundary (which would indicate a stale SimPoint selection).
    """
    if points is None:
        points = selection.top_points()
    if not points:
        raise CheckpointError("no SimPoints to checkpoint")
    plan = checkpoint_starts(points, selection.interval_size, warmup)

    executor = Executor(program)
    state = executor.state
    checkpoints: list[Checkpoint] = []
    for point, capture_index, actual_warmup in plan:
        remaining = capture_index - state.retired
        if remaining < 0:
            raise CheckpointError(
                "SimPoints overlap: two checkpoints within one warm-up")
        if remaining:
            executor.run(max_instructions=remaining)
        if state.retired != capture_index:
            raise CheckpointError(
                f"program exited at {state.retired} instructions, before "
                f"the SimPoint boundary at {capture_index}")
        checkpoint = Checkpoint.capture(
            state, workload=program.name,
            interval_index=point.interval_index,
            weight=point.weight,
            warmup_instructions=actual_warmup)
        checkpoint.measure_instructions = point.length or None
        checkpoints.append(checkpoint)
        get_tracer().event("checkpoint.capture", workload=program.name,
                           interval=point.interval_index,
                           retired=state.retired)
    return checkpoints
