"""On-disk checkpoint storage.

The paper's flow materializes Spike checkpoints as files consumed later by
the Chipyard testbench; this module provides the same decoupling: write a
workload's SimPoint checkpoints into a directory (one ``.ckpt`` per point
plus a JSON manifest), reload them later without re-running profiling.

The experiment flow itself no longer manages checkpoint directories
directly: its checkpoint sets live *inside* the content-addressed
artifact store (see :mod:`repro.pipeline.artifacts`), which uses this
module's format — ``save_checkpoints``/``load_checkpoints`` — for each
``checkpoints/<fingerprint>/`` directory.  Corrupt stores (truncated
blobs, garbage manifests) always surface as :class:`CheckpointError`,
which the artifact store turns into a discard-and-recompute.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.checkpoint.checkpoint import Checkpoint
from repro.errors import CheckpointError

MANIFEST_NAME = "manifest.json"


def _checkpoint_filename(checkpoint: Checkpoint) -> str:
    return f"{checkpoint.workload}_iv{checkpoint.interval_index:06d}.ckpt"


def save_checkpoints(directory: Path | str,
                     checkpoints: list[Checkpoint]) -> list[Path]:
    """Write ``checkpoints`` into ``directory`` and update its manifest.

    Returns the written file paths.  Checkpoints from multiple workloads
    can share one directory; the manifest keeps one entry per file.
    """
    if not checkpoints:
        raise CheckpointError("no checkpoints to save")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / MANIFEST_NAME
    manifest: dict[str, dict] = {}
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text())
    written = []
    for checkpoint in checkpoints:
        name = _checkpoint_filename(checkpoint)
        path = directory / name
        path.write_bytes(checkpoint.to_bytes())
        manifest[name] = {
            "workload": checkpoint.workload,
            "interval_index": checkpoint.interval_index,
            "instruction_index": checkpoint.instruction_index,
            "weight": checkpoint.weight,
            "warmup_instructions": checkpoint.warmup_instructions,
            "measure_instructions": checkpoint.measure_instructions,
            "pages": len(checkpoint.pages),
            "bytes": path.stat().st_size,
        }
        written.append(path)
    manifest_path.write_text(json.dumps(manifest, indent=2, sort_keys=True))
    return written


def load_checkpoints(directory: Path | str,
                     workload: str | None = None) -> list[Checkpoint]:
    """Load checkpoints from ``directory`` (optionally one workload's).

    Returns checkpoints sorted by instruction index, exactly as the
    creator produced them.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        raise CheckpointError(f"no checkpoint manifest in {directory}")
    try:
        manifest = json.loads(manifest_path.read_text())
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt checkpoint manifest in {directory}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(
            f"corrupt checkpoint manifest in {directory}: not a mapping")
    checkpoints = []
    for name, entry in manifest.items():
        try:
            entry_workload = entry["workload"]
        except (TypeError, KeyError) as exc:
            raise CheckpointError(
                f"corrupt manifest entry {name!r} in {directory}") from exc
        if workload is not None and entry_workload != workload:
            continue
        path = directory / name
        if not path.exists():
            raise CheckpointError(f"manifest references missing {name}")
        try:
            checkpoints.append(Checkpoint.from_bytes(path.read_bytes()))
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"corrupt checkpoint blob {name}: {exc}") from exc
    if workload is not None and not checkpoints:
        raise CheckpointError(
            f"no checkpoints for workload {workload!r} in {directory}")
    checkpoints.sort(key=lambda c: (c.workload, c.instruction_index))
    return checkpoints


def describe_store(directory: Path | str) -> str:
    """Human-readable summary of a checkpoint directory."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.exists():
        return f"{directory}: empty (no manifest)"
    manifest = json.loads(manifest_path.read_text())
    lines = [f"{directory}: {len(manifest)} checkpoints",
             f"{'file':<36}{'instr':>10}{'weight':>8}{'pages':>7}"
             f"{'bytes':>10}"]
    for name in sorted(manifest):
        entry = manifest[name]
        lines.append(f"{name:<36}{entry['instruction_index']:>10}"
                     f"{entry['weight']:>8.2f}{entry['pages']:>7}"
                     f"{entry['bytes']:>10}")
    return "\n".join(lines)
