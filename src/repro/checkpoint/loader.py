"""Checkpoint loading and verification.

The detailed core consumes checkpoints directly (it executes from the
restored :class:`ArchState`), but two helpers live here:

* :func:`resume_functional` — restore a checkpoint into a fresh functional
  executor, used by tests and by the equivalence checks below;
* :func:`verify_checkpoint` — the invariant at the heart of the paper's
  methodology: running the original program up to the checkpoint index and
  then N more instructions must equal restoring the checkpoint and running
  N instructions.
"""

from __future__ import annotations

from repro.checkpoint.checkpoint import Checkpoint
from repro.errors import CheckpointError
from repro.isa.program import Program
from repro.sim.executor import Executor


def resume_functional(program: Program, checkpoint: Checkpoint) -> Executor:
    """Return a functional executor resumed from ``checkpoint``."""
    if checkpoint.workload != program.name:
        raise CheckpointError(
            f"checkpoint is for {checkpoint.workload!r}, "
            f"not {program.name!r}")
    return Executor(program, state=checkpoint.restore())


def verify_checkpoint(program: Program, checkpoint: Checkpoint,
                      probe_instructions: int = 500) -> bool:
    """Check resume-equivalence: restored state replays identically.

    Runs the original program from reset to the checkpoint index plus
    ``probe_instructions``, and the restored checkpoint for
    ``probe_instructions``; compares registers and PC.
    """
    reference = Executor(program)
    reference.run(max_instructions=checkpoint.instruction_index
                  + probe_instructions)
    resumed = resume_functional(program, checkpoint)
    budget = reference.state.retired - checkpoint.instruction_index
    if budget > 0:
        resumed.run(max_instructions=budget)
    same_x = reference.state.x == resumed.state.x
    same_f = reference.state.f == resumed.state.f
    same_pc = reference.state.pc == resumed.state.pc
    return same_x and same_f and same_pc
