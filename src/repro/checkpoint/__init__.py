"""Architectural checkpointing at SimPoint boundaries (Spike analogue)."""

from repro.checkpoint.checkpoint import Checkpoint
from repro.checkpoint.creator import (
    checkpoint_starts,
    create_checkpoints,
    DEFAULT_WARMUP,
)
from repro.checkpoint.loader import resume_functional, verify_checkpoint
from repro.checkpoint.store import (
    describe_store,
    load_checkpoints,
    save_checkpoints,
)

__all__ = [
    "describe_store",
    "load_checkpoints",
    "save_checkpoints",
    "Checkpoint",
    "checkpoint_starts",
    "create_checkpoints",
    "DEFAULT_WARMUP",
    "resume_functional",
    "verify_checkpoint",
]
