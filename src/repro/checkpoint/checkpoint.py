"""Architectural checkpoints — the Spike stage of the paper's flow.

A checkpoint captures the complete architectural state of the hart at a
SimPoint boundary: PC, the 32 integer and 32 FP registers, ``fcsr``, and
every touched memory page.  Loading one into the detailed core (with a
warm-up allowance for the cold caches and branch predictor, §IV-A of the
paper) reproduces execution from that point exactly.

Checkpoints serialize to a compact binary format (magic, header, register
block, zlib-compressed page table) so they can be written to disk like the
paper's Spike-generated checkpoints.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import CheckpointError
from repro.sim.memory import Memory, PAGE_SIZE
from repro.sim.state import ArchState

_MAGIC = b"RVCK"
_VERSION = 1


@dataclass
class Checkpoint:
    """Architectural state at one SimPoint boundary."""

    workload: str
    #: dynamic instruction index at which this state was captured
    instruction_index: int
    #: interval the associated SimPoint represents
    interval_index: int
    #: execution weight of the SimPoint (cluster share)
    weight: float
    #: instructions of warm-up to run before measurement starts
    warmup_instructions: int
    pc: int
    #: exact interval length to measure (None: use the nominal size)
    measure_instructions: int | None = None
    xregs: list[int] = field(default_factory=lambda: [0] * 32)
    fregs_bits: list[int] = field(default_factory=lambda: [0] * 32)
    fcsr: int = 0
    pages: dict[int, bytes] = field(default_factory=dict)

    @classmethod
    def capture(cls, state: ArchState, workload: str, interval_index: int,
                weight: float, warmup_instructions: int) -> "Checkpoint":
        """Snapshot ``state`` into a new checkpoint."""
        import struct as _struct

        fregs_bits = [int.from_bytes(_struct.pack("<d", v), "little")
                      for v in state.f]
        return cls(workload=workload,
                   instruction_index=state.retired,
                   interval_index=interval_index,
                   weight=weight,
                   warmup_instructions=warmup_instructions,
                   pc=state.pc,
                   xregs=list(state.x),
                   fregs_bits=fregs_bits,
                   fcsr=state.fcsr,
                   pages=state.memory.snapshot_pages())

    def restore(self) -> ArchState:
        """Materialize a fresh :class:`ArchState` from this checkpoint."""
        import struct as _struct

        memory = Memory()
        memory.restore_pages(self.pages)
        state = ArchState(memory)
        state.x = list(self.xregs)
        state.f = [_struct.unpack("<d", bits.to_bytes(8, "little"))[0]
                   for bits in self.fregs_bits]
        state.pc = self.pc
        state.fcsr = self.fcsr
        state.retired = self.instruction_index
        return state

    # ------------------------------------------------------------------
    # binary serialization
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the compact binary checkpoint format."""
        name = self.workload.encode()
        measure = -1 if self.measure_instructions is None \
            else self.measure_instructions
        header = struct.pack(
            "<4sHH q q d q q q I I",
            _MAGIC, _VERSION, len(name),
            self.instruction_index, self.interval_index, self.weight,
            self.warmup_instructions, measure, self.pc, self.fcsr,
            len(self.pages))
        registers = struct.pack("<32Q", *(v & (1 << 64) - 1
                                          for v in self.xregs))
        registers += struct.pack("<32Q", *self.fregs_bits)
        page_blob = bytearray()
        for number in sorted(self.pages):
            page = self.pages[number]
            if len(page) != PAGE_SIZE:
                raise CheckpointError(
                    f"page {number} has size {len(page)}, "
                    f"expected {PAGE_SIZE}")
            page_blob += struct.pack("<Q", number)
            page_blob += page
        compressed = zlib.compress(bytes(page_blob), level=6)
        return (header + name + registers
                + struct.pack("<I", len(compressed)) + compressed)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        """Deserialize a checkpoint produced by :meth:`to_bytes`."""
        header_format = "<4sHH q q d q q q I I"
        header_size = struct.calcsize(header_format)
        if len(blob) < header_size:
            raise CheckpointError("checkpoint blob too short")
        (magic, version, name_length, instruction_index, interval_index,
         weight, warmup, measure, pc, fcsr, page_count) = struct.unpack(
            header_format, blob[:header_size])
        if magic != _MAGIC:
            raise CheckpointError("bad checkpoint magic")
        if version != _VERSION:
            raise CheckpointError(f"unsupported checkpoint version {version}")
        offset = header_size
        name = blob[offset:offset + name_length].decode()
        offset += name_length
        xregs = list(struct.unpack("<32Q", blob[offset:offset + 256]))
        offset += 256
        fregs_bits = list(struct.unpack("<32Q", blob[offset:offset + 256]))
        offset += 256
        (compressed_length,) = struct.unpack("<I", blob[offset:offset + 4])
        offset += 4
        page_blob = zlib.decompress(blob[offset:offset + compressed_length])
        pages: dict[int, bytes] = {}
        stride = 8 + PAGE_SIZE
        if len(page_blob) != page_count * stride:
            raise CheckpointError("corrupt page table in checkpoint")
        for index in range(page_count):
            base = index * stride
            (number,) = struct.unpack("<Q", page_blob[base:base + 8])
            pages[number] = page_blob[base + 8:base + stride]
        return cls(workload=name, instruction_index=instruction_index,
                   interval_index=interval_index, weight=weight,
                   warmup_instructions=warmup,
                   measure_instructions=None if measure < 0 else measure,
                   pc=pc, xregs=xregs,
                   fregs_bits=fregs_bits, fcsr=fcsr, pages=pages)
