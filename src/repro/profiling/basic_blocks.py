"""Static basic-block discovery.

The SimPoint flow itself uses *dynamic* basic blocks (from the executor's
control hook), but static block structure is useful for validating the
profiler and for workload analysis: every dynamic block reported at runtime
must be a suffix of a static block chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import Program, TEXT_BASE


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line code region [start_pc, end_pc]."""

    start_pc: int
    end_pc: int

    @property
    def length(self) -> int:
        """Number of instructions in the block."""
        return ((self.end_pc - self.start_pc) >> 2) + 1

    def contains(self, pc: int) -> bool:
        return self.start_pc <= pc <= self.end_pc


def discover_blocks(program: Program) -> list[BasicBlock]:
    """Partition the text segment into static basic blocks.

    Leaders are: the first instruction, every control-flow target inside
    the text segment, and every instruction following a control-flow
    instruction.
    """
    if not program.instructions:
        return []
    leaders = {TEXT_BASE}
    end = program.text_end
    for instr in program.instructions:
        if instr.is_control:
            follower = instr.pc + 4
            if follower < end:
                leaders.add(follower)
            if instr.opclass.name != "JALR":  # jalr targets are dynamic
                target = instr.pc + instr.imm
                if TEXT_BASE <= target < end:
                    leaders.add(target)
    ordered = sorted(leaders)
    blocks = []
    for index, start in enumerate(ordered):
        stop = ordered[index + 1] if index + 1 < len(ordered) else end
        # A block also ends at its first control-flow instruction.
        pc = start
        while pc < stop:
            instr = program.instruction_at(pc)
            if instr.is_control:
                pc += 4
                break
            pc += 4
        blocks.append(BasicBlock(start, pc - 4))
        # If control flow ended the block early, the remainder starts a new
        # leader chain; static discovery treats the follower as a leader
        # already, so pc == stop in practice for well-formed programs.
    return blocks


def block_map(blocks: list[BasicBlock]) -> dict[int, BasicBlock]:
    """Index blocks by start pc."""
    return {block.start_pc: block for block in blocks}
