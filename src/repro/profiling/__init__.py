"""Profiling: basic-block discovery and BBV collection (gem5 analogue)."""

from repro.profiling.basic_blocks import BasicBlock, block_map, discover_blocks
from repro.profiling.bbv import BBVProfile, BBVProfiler

__all__ = [
    "BasicBlock",
    "block_map",
    "discover_blocks",
    "BBVProfile",
    "BBVProfiler",
]
