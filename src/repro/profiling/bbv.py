"""Basic-block-vector (BBV) profiling — the gem5 stage of the paper's flow.

A BBV characterizes one execution interval (a fixed-size chunk of the
dynamic instruction stream) by how many instructions it spent in each
dynamic basic block.  The SimPoint algorithm clusters these vectors to
find program phases (paper Fig. 4, step 1).

:class:`BBVProfiler` drives the functional executor with a control hook:
each executed control-flow instruction closes a dynamic block, which is
credited (weighted by its instruction count) to the current interval.
Intervals close as soon as their instruction budget fills, exactly like
gem5's SimPoint probe.

Example::

    profiler = BBVProfiler(interval_size=10_000)
    profile = profiler.profile(program)
    matrix = profile.matrix()          # intervals x blocks, row-normalized
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimPointError
from repro.isa.program import Program
from repro.obs.heartbeat import HeartbeatEmitter, wrap_control_hook
from repro.obs.tracer import get_tracer
from repro.sim.executor import Executor


@dataclass
class BBVProfile:
    """The result of profiling one program: one vector per interval."""

    interval_size: int
    #: sparse vectors: one dict (block id -> instruction count) per interval
    vectors: list[dict[int, int]]
    #: actual instruction count of each interval (>= interval_size except
    #: possibly the last)
    interval_lengths: list[int]
    #: (start_pc, end_pc) of each dynamic block, indexed by block id
    blocks: list[tuple[int, int]]
    total_instructions: int = 0
    program_name: str = "program"

    def interval_starts(self) -> list[int]:
        """Dynamic-instruction index at which each interval begins.

        Intervals overshoot their budget by up to one basic block, so the
        start of interval *i* is the cumulative length of all earlier
        intervals — not ``i * interval_size``.  Checkpoint placement must
        use these exact boundaries.
        """
        starts = []
        position = 0
        for length in self.interval_lengths:
            starts.append(position)
            position += length
        return starts

    @property
    def num_intervals(self) -> int:
        return len(self.vectors)

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def matrix(self, normalize: bool = True) -> np.ndarray:
        """Dense (intervals x blocks) matrix of block weights.

        With ``normalize`` each row sums to 1, which is what the SimPoint
        clustering operates on (intervals of slightly different lengths
        become comparable).
        """
        if not self.vectors:
            raise SimPointError("profile has no intervals")
        dense = np.zeros((self.num_intervals, self.num_blocks))
        for row, vector in enumerate(self.vectors):
            for block_id, weight in vector.items():
                dense[row, block_id] = weight
        if normalize:
            sums = dense.sum(axis=1, keepdims=True)
            sums[sums == 0.0] = 1.0
            dense = dense / sums
        return dense

    def weights(self) -> np.ndarray:
        """Fraction of total instructions in each interval."""
        lengths = np.asarray(self.interval_lengths, dtype=float)
        return lengths / lengths.sum()


class BBVProfiler:
    """Collects per-interval basic-block vectors from a functional run."""

    def __init__(self, interval_size: int) -> None:
        if interval_size <= 0:
            raise SimPointError("interval_size must be positive")
        self.interval_size = interval_size

    def profile(self, program: Program,
                max_instructions: int | None = None) -> BBVProfile:
        """Run ``program`` to completion and return its BBV profile."""
        interval_size = self.interval_size
        block_ids: dict[tuple[int, int], int] = {}
        blocks: list[tuple[int, int]] = []
        vectors: list[dict[int, int]] = []
        lengths: list[int] = []
        current: dict[int, int] = {}
        filled = 0

        def hook(start_pc: int, end_pc: int) -> None:
            nonlocal filled, current
            key = (start_pc, end_pc)
            block_id = block_ids.get(key)
            if block_id is None:
                block_id = len(blocks)
                block_ids[key] = block_id
                blocks.append(key)
            length = ((end_pc - start_pc) >> 2) + 1
            current[block_id] = current.get(block_id, 0) + length
            filled += length
            if filled >= interval_size:
                vectors.append(current)
                lengths.append(filled)
                current = {}
                filled = 0

        executor = Executor(program)
        run_hook = hook
        emitter = None
        tracer = get_tracer()
        if tracer.enabled:
            # wrap (never replace) the profiling hook: block boundaries
            # and interval contents are untouched, so the traced profile
            # is byte-identical to the untraced one
            emitter = HeartbeatEmitter(tracer, "functional.instr",
                                       units="instructions",
                                       workload=program.name)
            run_hook = wrap_control_hook(hook, emitter)
        executor.run(max_instructions=max_instructions,
                     control_hook=run_hook)
        if emitter is not None:
            emitter.finish(executor.state.retired)
        if filled:
            vectors.append(current)
            lengths.append(filled)
        total = executor.state.retired
        return BBVProfile(interval_size=interval_size, vectors=vectors,
                          interval_lengths=lengths, blocks=blocks,
                          total_instructions=total,
                          program_name=program.name)
