"""Load generator: N concurrent clients against one job server.

Drives the BENCH-tracked ``serve.sweeps_per_s`` metric and the CI smoke
test.  Two request mixes:

* ``duplicate`` — every client submits the *same* request; the server
  must collapse them onto one compute (the dedup acceptance criterion),
  so throughput here measures request-hash arbitration, not the
  pipeline.
* ``distinct`` — every client perturbs the seed, forcing one compute
  each; throughput here measures the worker tier end to end.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.serve.client import ServeClient

__all__ = ["LoadReport", "run_load"]


@dataclass
class LoadReport:
    """What N clients saw, plus wall-clock throughput."""

    clients: int = 0
    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    wall_seconds: float = 0.0
    #: job_id -> set of distinct result bodies observed (dedup check:
    #: every set must have exactly one element)
    bodies: dict[str, set[str]] = field(default_factory=dict)
    errors: list[str] = field(default_factory=list)

    @property
    def sweeps_per_s(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def byte_identical(self) -> bool:
        return all(len(texts) == 1 for texts in self.bodies.values())

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "wall_seconds": round(self.wall_seconds, 3),
            "sweeps_per_s": round(self.sweeps_per_s, 3),
            "distinct_jobs": len(self.bodies),
            "byte_identical": self.byte_identical,
            "errors": self.errors[:10],
        }


def run_load(port: int, request: dict, *, clients: int = 8,
             mode: str = "duplicate", host: str = "127.0.0.1",
             timeout: float = 300.0) -> LoadReport:
    """Fire ``clients`` concurrent submissions and wait them all out."""
    if mode not in ("duplicate", "distinct"):
        raise ValueError(f"unknown load mode: {mode!r}")
    report = LoadReport(clients=clients)
    lock = threading.Lock()

    def one_client(index: int) -> None:
        client = ServeClient(host, port, client_id=f"loadgen-{index}",
                             timeout=timeout)
        body = dict(request)
        if mode == "distinct":
            body["seed"] = int(body.get("seed", 17)) + index
        with lock:
            report.submitted += 1
        try:
            status, payload = client.submit(body)
            if status == 429:
                with lock:
                    report.rejected += 1
                return
            if status != 202:
                raise RuntimeError(f"submit -> {status}: {payload}")
            with lock:
                report.accepted += 1
            job_id = payload["job_id"]
            final = client.wait(job_id, timeout=timeout)
            if final.get("state") != "done":
                raise RuntimeError(
                    f"job {job_id} ended {final.get('state')}: "
                    f"{final.get('error')}")
            status, text = client.result_text(job_id)
            if status != 200:
                raise RuntimeError(f"result -> {status}")
            with lock:
                report.completed += 1
                report.bodies.setdefault(job_id, set()).add(text)
        except Exception as exc:
            with lock:
                report.failed += 1
                report.errors.append(f"client {index}: {exc}")

    started = time.perf_counter()
    threads = [threading.Thread(target=one_client, args=(index,),
                                name=f"loadgen-{index}")
               for index in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - started
    return report
