"""Sweep-as-a-service: a job server over the content-addressed pipeline.

``repro-cli serve`` runs a long-lived asyncio daemon that accepts
sweep/DSE job submissions from many concurrent clients over a local
HTTP/JSON endpoint.  Identical requests collapse to one compute — a
canonical request hash keys the in-process job table, and the
underlying stage artifacts deduplicate further through the
``ArtifactStore`` + ``WorkClaims`` lease arbitration — so N clients
asking for the same study cost one sweep and N byte-identical result
bodies.  See DESIGN.md §14 and docs/serve.md.
"""

from repro.serve.client import ServeClient
from repro.serve.jobs import Job, JobTable
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.protocol import JobRequest, request_hash
from repro.serve.quotas import ClientQuotas, TokenBucket
from repro.serve.server import JobServer, ServerThread, serve_forever

__all__ = [
    "ClientQuotas",
    "Job",
    "JobRequest",
    "JobServer",
    "JobTable",
    "LoadReport",
    "ServeClient",
    "ServerThread",
    "TokenBucket",
    "request_hash",
    "run_load",
    "serve_forever",
]
