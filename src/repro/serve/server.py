"""The sweep-as-a-service daemon: asyncio HTTP front, threaded workers.

``repro-cli serve`` runs one :class:`JobServer` per cache directory.
The front half is a hand-rolled HTTP/1.1 JSON endpoint on
``asyncio.start_server`` (stdlib only — no web framework); the back
half is a bounded queue drained by worker coroutines that push each
job into a thread pool running :func:`repro.flow.jobs.run_job`, so the
blocking pipeline never stalls the accept loop.

Endpoints::

    POST /submit        {"client": str, "request": {...}} -> 202
    GET  /status/<id>   job lifecycle + live progress
    GET  /result/<id>   canonical result body, verbatim
    POST /cancel/<id>   {"client": str} — withdraw a subscription
    GET  /jobs          every job's status
    GET  /healthz       liveness + accounting

Dedup is structural: the job id *is* the request hash, so identical
submissions collapse onto one compute in the :class:`JobTable`; the
artifact store's lease arbitration additionally dedupes against
concurrent sweeps outside the server.  Overload surfaces as 429 with a
machine-readable reason — per-client token-bucket/quota refusals from
:class:`ClientQuotas`, or ``queue-full`` when the bounded job queue
pushes back.

Shutdown is a drain, not a kill: SIGTERM/SIGINT stop admissions,
queued jobs are cancelled (their subscribers' quota released), running
jobs finish within ``drain_timeout``, and the process exits 0 — the
interrupted-sweep settling of :mod:`repro.flow.sweep` is the fallback
for harder deaths, not the normal path.
"""

from __future__ import annotations

import asyncio
import json
import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable

from repro.errors import ServeError, classify_failure
from repro.flow.jobs import JobLimits, run_job
from repro.obs.metrics import get_metrics
from repro.serve.jobs import CANCELLED, DONE, QUEUED, RUNNING, Job, JobTable
from repro.serve.protocol import JobRequest
from repro.serve.quotas import ClientQuotas

__all__ = ["JobServer", "ServerThread", "serve_forever"]

logger = logging.getLogger(__name__)

#: largest request body the server will read (submissions are tiny)
MAX_BODY_BYTES = 1 << 20
#: per-connection read timeout — clients are local and prompt
READ_TIMEOUT = 10.0


def _json_body(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


class JobServer:
    """One daemon instance: HTTP front end + deduplicating worker tier."""

    def __init__(self, cache_dir: Path | str | None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 workers: int = 2,
                 limits: JobLimits | None = None,
                 quotas: ClientQuotas | None = None,
                 max_queue: int = 16,
                 trace_jobs: bool = False,
                 drain_timeout: float = 60.0) -> None:
        self.cache_dir = cache_dir
        self.host = host
        self.port = port  # rebound to the real port after start()
        self.workers = max(1, workers)
        self.limits = limits if limits is not None else JobLimits()
        self.quotas = quotas if quotas is not None else ClientQuotas()
        self.max_queue = max(1, max_queue)
        self.trace_jobs = trace_jobs
        self.drain_timeout = drain_timeout

        self.table = JobTable()
        self.started_at = time.time()
        self.draining = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._queue: asyncio.Queue[Job | None] | None = None
        self._workers: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-job")
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._workers = [
            asyncio.ensure_future(self._worker())
            for _ in range(self.workers)]
        logger.info("serving on %s:%d (%d workers, queue %d)",
                    self.host, self.port, self.workers, self.max_queue)

    def request_shutdown(self) -> None:
        """Begin the drain; safe to call from signal handlers and other
        threads."""
        loop = self._loop
        if loop is None:
            return
        loop.call_soon_threadsafe(self._shutdown.set)

    async def run_until_shutdown(self) -> None:
        """Block until a shutdown request, then drain and tear down."""
        await self._shutdown.wait()
        await self._drain()

    async def _drain(self) -> None:
        self.draining = True
        assert self._server is not None and self._queue is not None
        self._server.close()
        await self._server.wait_closed()
        # cancel everything still queued; nothing computes after this
        cancelled = 0
        while True:
            try:
                job = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if job is None:
                continue
            for client in self.table.cancel_queued(job):
                self.quotas.release(client)
            cancelled += 1
        for _ in self._workers:
            self._queue.put_nowait(None)  # wake idle workers to exit
        done, pending = await asyncio.wait(
            self._workers, timeout=self.drain_timeout)
        for task in pending:
            task.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=not pending)
        running = sum(1 for job in self.table.jobs()
                      if job.state == RUNNING)
        logger.info("drained: %d queued cancelled, %d still running "
                    "after %.0fs", cancelled, running, self.drain_timeout)

    # ------------------------------------------------------------------
    # worker tier
    # ------------------------------------------------------------------

    async def _worker(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            job = await self._queue.get()
            if job is None:
                return
            self._set_queue_gauge()
            try:
                await self._loop.run_in_executor(
                    self._executor, self._execute, job)
            except Exception:  # never let one job kill the worker
                logger.exception("job %s: worker crash", job.id)

    def _execute(self, job: Job) -> None:
        """Runs on an executor thread: the blocking pipeline call."""
        if not self.table.mark_running(job):
            return  # cancelled while queued
        metrics = get_metrics()
        metrics.counter("serve.started").inc()

        def attach(runner) -> None:
            job.runner = runner

        try:
            document = run_job(job.request, self.cache_dir,
                               limits=self.limits, trace=self.trace_jobs,
                               runner_hook=attach)
        except Exception as exc:
            kind = classify_failure(exc)
            settled = self.table.mark_failed(
                job, f"{type(exc).__name__}: {exc}", kind)
            metrics.counter("serve.failed").inc()
            logger.warning("job %s failed (%s): %s", job.id, kind, exc)
        else:
            settled = self.table.mark_done(job, _json_body(document))
            metrics.counter("serve.completed").inc()
        finally:
            job.runner = None
            job.tap = None
        for client in settled:
            self.quotas.release(client)

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        status, body = 500, _json_body({"error": "internal"})
        try:
            status, body = await self._serve_one(reader)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError):
            status, body = 408, _json_body({"error": "request timeout"})
        except ServeError as exc:
            status, body = exc.status, _json_body({"error": str(exc)})
        except Exception:
            logger.exception("request handler crash")
        try:
            payload = body.encode()
            writer.write(
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n".encode() + payload)
            await writer.drain()
        except ConnectionError:
            pass  # client went away; nothing to tell them
        finally:
            writer.close()

    async def _serve_one(self, reader: asyncio.StreamReader) \
            -> tuple[int, str]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=READ_TIMEOUT)
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            raise ServeError("malformed request line", status=400)
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=READ_TIMEOUT)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    raise ServeError("bad content-length", status=400)
        if length > MAX_BODY_BYTES:
            raise ServeError("request body too large", status=413)
        raw = b""
        if length:
            raw = await asyncio.wait_for(
                reader.readexactly(length), timeout=READ_TIMEOUT)
        return self._route(method, target, raw)

    def _route(self, method: str, target: str, raw: bytes) \
            -> tuple[int, str]:
        target = target.split("?", 1)[0]
        if method == "POST" and target == "/submit":
            return self._post_submit(self._parse_json(raw))
        if method == "GET" and target.startswith("/status/"):
            return self._get_status(target[len("/status/"):])
        if method == "GET" and target.startswith("/result/"):
            return self._get_result(target[len("/result/"):])
        if method == "POST" and target.startswith("/cancel/"):
            return self._post_cancel(target[len("/cancel/"):],
                                     self._parse_json(raw))
        if method == "GET" and target == "/jobs":
            return 200, _json_body(
                {"jobs": [job.status_dict() for job in self.table.jobs()]})
        if method == "GET" and target == "/healthz":
            return self._get_healthz()
        raise ServeError(f"no such endpoint: {method} {target}",
                         status=404)

    @staticmethod
    def _parse_json(raw: bytes) -> dict:
        if not raw:
            return {}
        try:
            body = json.loads(raw)
        except ValueError:
            raise ServeError("body is not valid JSON", status=400)
        if not isinstance(body, dict):
            raise ServeError("body must be a JSON object", status=400)
        return body

    # -- endpoints ------------------------------------------------------

    def _post_submit(self, body: dict) -> tuple[int, str]:
        metrics = get_metrics()
        metrics.counter("serve.submitted").inc()
        if self.draining:
            raise ServeError("server is draining", status=503)
        client = str(body.get("client") or "anon")
        request = JobRequest.from_dict(body.get("request") or {})
        reason = self.quotas.admit(client)
        if reason is not None:
            metrics.counter("serve.rejected").inc()
            return 429, _json_body(
                {"error": reason, "client": client, "retry_after": 1.0})
        job, created, settled = self.table.submit(request, client)
        if settled:
            # attached to an already-finished job: the subscription is
            # satisfied instantly, so the slot goes straight back
            self.quotas.release(client)
        if created:
            assert self._queue is not None
            try:
                self._queue.put_nowait(job)
            except asyncio.QueueFull:
                for waiter in self.table.discard(job):
                    self.quotas.release(waiter)
                metrics.counter("serve.rejected").inc()
                return 429, _json_body(
                    {"error": "queue-full", "client": client,
                     "retry_after": 5.0})
            self._set_queue_gauge()
        else:
            metrics.counter("serve.deduped").inc()
        return 202, _json_body(
            {"job_id": job.id, "state": job.state, "created": created,
             "deduped": not created})

    def _get_status(self, job_id: str) -> tuple[int, str]:
        job = self._job_or_404(job_id)
        self._attach_tap(job)
        return 200, _json_body(job.status_dict())

    def _get_result(self, job_id: str) -> tuple[int, str]:
        job = self._job_or_404(job_id)
        if job.state == DONE:
            assert job.result_text is not None
            return 200, job.result_text  # canonical bytes, verbatim
        if job.terminal:
            return 410, _json_body(
                {"error": f"job {job.state}", "id": job.id,
                 "detail": job.error, "error_kind": job.error_kind})
        return 409, _json_body(
            {"error": "not finished", "id": job.id, "state": job.state})

    def _post_cancel(self, job_id: str, body: dict) -> tuple[int, str]:
        client = str(body.get("client") or "anon")
        job, removed = self.table.cancel(job_id, client)
        if job is None:
            raise ServeError(f"unknown job: {job_id}", status=404)
        if removed:
            self.quotas.release(client)
        return 200, _json_body(
            {"job_id": job.id, "state": job.state,
             "cancel_requested": job.cancel_requested})

    def _get_healthz(self) -> tuple[int, str]:
        queue = self._queue
        return 200, _json_body({
            "status": "draining" if self.draining else "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "workers": self.workers,
            "queue_depth": queue.qsize() if queue is not None else 0,
            "queue_capacity": self.max_queue,
            "table": self.table.counts(),
            "quotas": self.quotas.snapshot(),
        })

    # -- helpers --------------------------------------------------------

    def _job_or_404(self, job_id: str) -> Job:
        job = self.table.get(job_id)
        if job is None:
            raise ServeError(f"unknown job: {job_id}", status=404)
        return job

    def _attach_tap(self, job: Job) -> None:
        """Lazily wire the obs heartbeat tap once the runner is live."""
        if job.state != RUNNING or job.tap is not None:
            return
        run_dir = getattr(job.runner, "obs_run_dir", None)
        if run_dir is None:
            return
        try:
            from repro.obs.progress import HeartbeatTap
            job.tap = HeartbeatTap(run_dir)
        except Exception:  # progress is best-effort, never fatal
            pass

    def _set_queue_gauge(self) -> None:
        if self._queue is not None:
            get_metrics().gauge("serve.queue_depth").set(
                float(self._queue.qsize()))


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    408: "Request Timeout", 409: "Conflict", 410: "Gone",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class ServerThread:
    """Host a :class:`JobServer` on a background thread (tests, bench).

    Use as a context manager::

        with ServerThread(cache_dir, workers=2) as host:
            client = ServeClient(port=host.port)
            ...
    """

    def __init__(self, cache_dir: Path | str | None, **kwargs) -> None:
        self._kwargs = dict(kwargs, cache_dir=cache_dir)
        self.server: JobServer | None = None
        self._ready = threading.Event()
        self._failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="serve-host", daemon=True)

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("job server failed to start in time")
        if self._failure is not None:
            raise RuntimeError(
                f"job server failed to start: {self._failure!r}")
        return self

    def __exit__(self, *exc_info) -> None:
        if self.server is not None:
            self.server.request_shutdown()
        self._thread.join(timeout=60.0)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surface startup crashes to enter
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = JobServer(**self._kwargs)
        await self.server.start()
        self._ready.set()
        await self.server.run_until_shutdown()


def serve_forever(cache_dir: Path | str | None, *,
                  host: str = "127.0.0.1", port: int = 0,
                  workers: int = 2,
                  limits: JobLimits | None = None,
                  quotas: ClientQuotas | None = None,
                  max_queue: int = 16,
                  trace_jobs: bool = False,
                  drain_timeout: float = 60.0,
                  port_file: Path | str | None = None,
                  announce: Callable[[str], None] | None = None) -> int:
    """Blocking entry point for ``repro-cli serve``.

    Installs SIGINT/SIGTERM handlers that trigger a graceful drain;
    returns 0 after the drain completes.  ``port_file``, when given,
    receives the bound port as text — how scripts discover a server
    started with ``--port 0``.  ``announce`` receives the user-facing
    lifecycle lines (the CLI passes ``print``); by default they go to
    the log only.
    """
    import signal

    def tell(message: str) -> None:
        logger.info("%s", message)
        if announce is not None:
            announce(message)

    async def _main() -> None:
        server = JobServer(
            cache_dir, host=host, port=port, workers=workers,
            limits=limits, quotas=quotas, max_queue=max_queue,
            trace_jobs=trace_jobs, drain_timeout=drain_timeout)
        await server.start()
        if port_file is not None:
            Path(port_file).write_text(f"{server.port}\n")
        tell(f"repro-serve: listening on http://{server.host}:"
             f"{server.port} (cache: {cache_dir})")
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or exotic platform
        await server.run_until_shutdown()
        tell("repro-serve: drained, exiting")

    asyncio.run(_main())
    return 0
