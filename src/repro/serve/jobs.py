"""The job table: request-hash-keyed dedup of in-flight and done work.

One :class:`Job` per distinct request hash.  The first submission
creates the job; every later identical submission *attaches* to it
(``job.clients`` grows, ``deduped`` accounting increments) — whether
the job is still queued, already running, or long done.  All attached
clients read the same canonical result text, so "byte-identical results
for every client" holds by construction; the lease arbitration in the
artifact store additionally dedupes against sweeps running *outside*
the server on the same cache.

A failed or cancelled job does not poison its hash: the next identical
submission replaces it with a fresh attempt (transient environment
errors are worth retrying; the supervised scheduler inside the job
already retried the cheap cases).

Cancellation is subscription-scoped: cancelling removes *that client's*
interest, and only a queued job with no remaining subscribers is
actually cancelled — one impatient client cannot kill a study seven
others are waiting on.  Running jobs finish (their artifacts are cached
work, never wasted); a best-effort ``cancel_requested`` flag is left
for the runner to observe between experiments.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from repro.serve.protocol import JobRequest, request_hash

__all__ = ["Job", "JobTable", "QUEUED", "RUNNING", "DONE", "FAILED",
           "CANCELLED"]

QUEUED, RUNNING, DONE, FAILED, CANCELLED = (
    "queued", "running", "done", "failed", "cancelled")

#: states in which a new identical submission attaches instead of
#: creating a fresh job
_ATTACHABLE = (QUEUED, RUNNING, DONE)


@dataclass
class Job:
    """One unit of deduplicated work and its lifecycle bookkeeping."""

    id: str
    request: JobRequest
    state: str = QUEUED
    clients: list[str] = field(default_factory=list)
    error: str | None = None
    error_kind: str | None = None
    #: canonical result body — rendered exactly once, served verbatim
    #: to every subscriber
    result_text: str | None = None
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    cancel_requested: bool = False
    #: live progress sources, attached by the worker while running
    runner: Any = None
    tap: Any = None
    done_event: threading.Event = field(default_factory=threading.Event,
                                        repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED, CANCELLED)

    def progress(self) -> dict:
        out: dict = {}
        runner = self.runner
        if runner is not None:
            try:
                out = runner.progress()
            except Exception:  # progress must never fail a status read
                out = {}
        tap = self.tap
        if tap is not None:
            try:
                tap.poll()
                streams = tap.snapshot()
            except Exception:
                streams = {}
            if streams:
                out["streams"] = streams
        return out

    def status_dict(self) -> dict:
        out = {
            "id": self.id,
            "state": self.state,
            "kind": self.request.kind,
            "clients": sorted(set(self.clients)),
            "subscribers": len(self.clients),
            "created": self.created,
        }
        if self.started is not None:
            out["started"] = self.started
        if self.finished is not None:
            out["finished"] = self.finished
        if self.error is not None:
            out["error"] = self.error
            out["error_kind"] = self.error_kind
        if self.cancel_requested:
            out["cancel_requested"] = True
        if self.state == RUNNING:
            out["progress"] = self.progress()
        return out


class JobTable:
    """Thread-safe request-hash-keyed registry of jobs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        #: total submissions that attached to an existing job
        self.deduped = 0
        #: total fresh computes created
        self.created = 0

    # ------------------------------------------------------------------
    # submission / lookup
    # ------------------------------------------------------------------

    def submit(self, request: JobRequest, client: str) \
            -> tuple[Job, bool, bool]:
        """Create or attach; returns ``(job, created, settled)``.

        ``settled`` is true when the submission attached to a job that
        was already terminal *at attach time* (decided under the table
        lock) — the caller must release that client's quota slot
        immediately, because the worker's settle pass has already run
        (or will run against a subscriber snapshot that predates this
        attach).
        """
        job_id = request_hash(request)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.state in _ATTACHABLE:
                job.clients.append(client)
                self.deduped += 1
                return job, False, job.state == DONE
            # absent, failed, or cancelled: (re)create
            job = Job(id=job_id, request=request, clients=[client])
            self._jobs[job_id] = job
            self.created += 1
            return job, True, False

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return list(self._jobs.values())

    # ------------------------------------------------------------------
    # lifecycle transitions (called by the worker tier)
    # ------------------------------------------------------------------

    def mark_running(self, job: Job) -> bool:
        """Queued -> running; ``False`` if the job was cancelled first."""
        with self._lock:
            if job.state != QUEUED:
                return False
            job.state = RUNNING
            job.started = time.time()
            return True

    def mark_done(self, job: Job, result_text: str) -> list[str]:
        """Running -> done; returns the subscribers to settle.

        The snapshot is taken under the same lock that guards attach,
        so every subscriber lands in exactly one settlement: either
        this list, or (if they attached after the state flip) the
        ``settled`` flag :meth:`submit` hands back.
        """
        with self._lock:
            job.result_text = result_text
            job.state = DONE
            job.finished = time.time()
            settled = list(job.clients)
        job.done_event.set()
        return settled

    def mark_failed(self, job: Job, error: str, kind: str) -> list[str]:
        """Running -> failed; returns the subscribers to settle."""
        with self._lock:
            job.error = error
            job.error_kind = kind
            job.state = FAILED
            job.finished = time.time()
            settled = list(job.clients)
        job.done_event.set()
        return settled

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------

    def cancel(self, job_id: str, client: str) \
            -> tuple[Job | None, bool]:
        """Withdraw ``client``'s subscription; cancel if nobody is left.

        Returns ``(job, removed)``: the job (whatever state it ended
        in, ``None`` if unknown) and whether an active subscription of
        ``client`` was actually withdrawn — only then does the caller
        owe a quota release.
        """
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None, False
            removed = False
            if not job.terminal:
                try:
                    job.clients.remove(client)
                    removed = True
                except ValueError:
                    pass  # not a subscriber: a no-op, not an error
            if job.clients or job.terminal:
                return job, removed
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished = time.time()
                job.done_event.set()
            elif job.state == RUNNING:
                job.cancel_requested = True
            return job, removed

    def cancel_queued(self, job: Job) -> list[str]:
        """Force-cancel a still-queued job (server drain); returns the
        subscribers whose quota slots must be released."""
        with self._lock:
            if job.state != QUEUED:
                return []
            job.state = CANCELLED
            job.finished = time.time()
            settled = list(job.clients)
        job.done_event.set()
        return settled

    def discard(self, job: Job) -> list[str]:
        """Roll back a freshly created job that could not be enqueued
        (bounded-queue backpressure); returns subscribers to release."""
        with self._lock:
            if self._jobs.get(job.id) is not job or job.state != QUEUED:
                return []
            del self._jobs[job.id]
            self.created -= 1
            job.state = CANCELLED
            job.finished = time.time()
            settled = list(job.clients)
        job.done_event.set()
        return settled

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def counts(self) -> dict:
        with self._lock:
            by_state: dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            return {"jobs": len(self._jobs), "by_state": by_state,
                    "created": self.created, "deduped": self.deduped}
