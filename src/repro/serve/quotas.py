"""Per-client admission control: token-bucket rates + concurrency caps.

The server is a shared resource in front of an expensive pipeline; one
greedy (or buggy) client must not starve the rest.  Admission is
decided per *client id* (self-declared, like a user agent — this is a
local trust domain, not an auth system) in two independent dimensions:

* a :class:`TokenBucket` bounds the *submission rate* — sustained
  ``rate`` requests/s with bursts up to ``burst``;
* a concurrent-job quota bounds how many unfinished jobs one client
  may have in flight at once (attaching to an existing deduplicated
  job still counts — the quota meters demanded *results*, not spawned
  computes).

Both refusals surface as 429 responses with a machine-readable
``reason``, and are counted per client so the dedup test can assert
exact accounting.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["ClientQuotas", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {burst:g}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._last = clock()

    def try_take(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    @property
    def available(self) -> float:
        now = self._clock()
        return min(self.burst,
                   self._tokens + (now - self._last) * self.rate)


class ClientQuotas:
    """Thread-safe per-client admission ledger."""

    def __init__(self, *, rate: float = 10.0, burst: float = 20.0,
                 max_client_jobs: int = 4,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = rate
        self.burst = burst
        self.max_client_jobs = max_client_jobs
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._inflight: dict[str, int] = {}
        self._rejections: dict[str, dict[str, int]] = {}

    # ------------------------------------------------------------------

    def admit(self, client: str) -> str | None:
        """``None`` to admit, else the machine-readable refusal reason.

        An admitted submission charges one token *and* one in-flight
        slot; callers must pair every admit with a :meth:`release` when
        the client's interest in the job ends.
        """
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.rate, self.burst,
                                     clock=self._clock)
                self._buckets[client] = bucket
            if not bucket.try_take():
                self._count_rejection(client, "rate-limited")
                return "rate-limited"
            if self._inflight.get(client, 0) >= self.max_client_jobs:
                self._count_rejection(client, "quota-exceeded")
                return "quota-exceeded"
            self._inflight[client] = self._inflight.get(client, 0) + 1
            return None

    def release(self, client: str) -> None:
        """Return one in-flight slot (job finished or was cancelled)."""
        with self._lock:
            count = self._inflight.get(client, 0)
            if count <= 1:
                self._inflight.pop(client, None)
            else:
                self._inflight[client] = count - 1

    def _count_rejection(self, client: str, reason: str) -> None:
        per_client = self._rejections.setdefault(client, {})
        per_client[reason] = per_client.get(reason, 0) + 1

    # ------------------------------------------------------------------

    def inflight(self, client: str) -> int:
        with self._lock:
            return self._inflight.get(client, 0)

    def snapshot(self) -> dict:
        """JSON-able accounting: in-flight and rejections per client."""
        with self._lock:
            return {
                "inflight": dict(self._inflight),
                "rejections": {client: dict(reasons) for client, reasons
                               in self._rejections.items()},
            }
