"""Blocking stdlib client for the job server.

``http.client`` keeps the dependency budget at zero and matches the
server's connection-per-request model.  Every call returns
``(status, payload)`` where ``payload`` is the decoded JSON body (or
``{"raw": text}`` when the body is not JSON — never raises on an error
status, so callers can assert on 429s as easily as on 202s).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Any

from repro.errors import ServeError
from repro.pipeline.locking import DecorrelatedJitter

__all__ = ["ServeClient"]


class ServeClient:
    """One logical client (one quota identity) talking to one server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 client_id: str = "anon",
                 timeout: float = 30.0) -> None:
        if port <= 0:
            raise ServeError(f"client needs a real port, got {port}")
        self.host = host
        self.port = port
        self.client_id = client_id
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _call(self, method: str, path: str,
              body: dict | None = None) -> tuple[int, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            text = response.read().decode()
        finally:
            conn.close()
        try:
            return response.status, json.loads(text)
        except ValueError:
            return response.status, {"raw": text}

    # ------------------------------------------------------------------
    # endpoints
    # ------------------------------------------------------------------

    def submit(self, request: dict) -> tuple[int, Any]:
        return self._call("POST", "/submit",
                          {"client": self.client_id, "request": request})

    def status(self, job_id: str) -> tuple[int, Any]:
        return self._call("GET", f"/status/{job_id}")

    def result(self, job_id: str) -> tuple[int, Any]:
        return self._call("GET", f"/result/{job_id}")

    def result_text(self, job_id: str) -> tuple[int, str]:
        """The raw result body — byte-identical across subscribers."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/result/{job_id}")
            response = conn.getresponse()
            return response.status, response.read().decode()
        finally:
            conn.close()

    def cancel(self, job_id: str) -> tuple[int, Any]:
        return self._call("POST", f"/cancel/{job_id}",
                          {"client": self.client_id})

    def healthz(self) -> tuple[int, Any]:
        return self._call("GET", "/healthz")

    def jobs(self) -> tuple[int, Any]:
        return self._call("GET", "/jobs")

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def wait(self, job_id: str, *, timeout: float = 300.0,
             poll: float = 0.2,
             rng: random.Random | None = None) -> dict:
        """Poll until the job is terminal; returns its final status.

        Uses the same decorrelated jitter as the lease layer so many
        waiting clients do not stampede the status endpoint in
        lock-step.
        """
        deadline = time.monotonic() + timeout
        jitter = DecorrelatedJitter(poll, rng=rng)
        while True:
            status, payload = self.status(job_id)
            if status != 200:
                raise ServeError(
                    f"status({job_id}) -> {status}: {payload}",
                    status=status)
            if payload.get("state") in ("done", "failed", "cancelled"):
                return payload
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                raise ServeError(
                    f"job {job_id} not finished after {timeout:g}s",
                    status=408)
            time.sleep(min(jitter.next_delay(), remaining))

    def run(self, request: dict, *, timeout: float = 300.0) -> dict:
        """Submit, wait, fetch: the whole client lifecycle in one call.

        Returns the decoded result document; raises :class:`ServeError`
        on rejection or failure.
        """
        status, payload = self.submit(request)
        if status != 202:
            raise ServeError(f"submit -> {status}: {payload}",
                             status=status)
        job_id = payload["job_id"]
        final = self.wait(job_id, timeout=timeout)
        if final.get("state") != "done":
            raise ServeError(
                f"job {job_id} ended {final.get('state')}: "
                f"{final.get('error')}")
        status, document = self.result(job_id)
        if status != 200:
            raise ServeError(f"result -> {status}: {document}",
                             status=status)
        return document
