"""Canonical job requests and their content-addressed hashes.

A job request is the service-level analogue of a stage fingerprint: it
names *what to compute* (kind, scale, seed, workload set, config set —
everything that changes the result) and deliberately excludes *how to
compute it* (``jobs`` worker fan-out, ``batch`` engine selection —
execution strategies whose artifacts are byte-identical either way, by
the same rule that keeps them out of
:class:`~repro.flow.experiment.FlowSettings` fingerprints).  Two
clients disagreeing only on execution strategy therefore share one
compute and one result body.

Hashing reuses :func:`repro.pipeline.artifacts.canonical_fingerprint`
— the exact canonical-JSON/sha256 recipe behind every artifact key —
with ``MODEL_VERSION`` folded in so a model bump retires every cached
job result at once.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.errors import ServeError
from repro.pipeline.artifacts import MODEL_VERSION, canonical_fingerprint
from repro.uarch.config import ALL_CONFIGS, config_by_name
from repro.workloads.suite import workload_names

__all__ = ["JobRequest", "REQUEST_FORMAT", "request_hash"]

#: bump when the request schema itself changes incompatibly
REQUEST_FORMAT = 1

_KINDS = ("sweep", "dse")
_DSE_MODES = ("neighborhood", "random", "grid")


@dataclass(frozen=True)
class JobRequest:
    """One validated, normalized job submission."""

    kind: str = "sweep"
    scale: float = 1.0
    seed: int = 17
    #: workload subset (sorted; ``None`` = the full suite)
    workloads: tuple[str, ...] | None = None
    #: preset-config subset for sweeps (sorted; ``None`` = all presets)
    configs: tuple[str, ...] | None = None
    #: execution strategy — batched multi-config engine (hash-excluded)
    batch: bool = False
    #: execution strategy — worker processes inside the job
    #: (hash-excluded; the server clamps it to its own cap)
    jobs: int = 1
    # DSE lattice recipe (kind == "dse" only)
    points: int = 8
    base: str = "LargeBOOM"
    mode: str = "neighborhood"
    radius: int = 2
    max_changed: int = 2
    space_seed: int = 17

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ServeError(f"unknown job kind {self.kind!r}; "
                             f"one of: {', '.join(_KINDS)}")
        if not (0.0 < float(self.scale) <= 4.0):
            raise ServeError(f"scale must be in (0, 4], got {self.scale!r}")
        if self.jobs < 1:
            raise ServeError(f"jobs must be >= 1, got {self.jobs}")
        if self.workloads is not None:
            unknown = sorted(set(self.workloads) - set(workload_names()))
            if unknown:
                raise ServeError(
                    f"unknown workload(s): {', '.join(unknown)}")
        if self.configs is not None:
            if self.kind == "dse":
                raise ServeError("configs is a sweep field; a dse job "
                                 "generates its own lattice")
            for name in self.configs:
                try:
                    config_by_name(name)
                except Exception:
                    raise ServeError(
                        f"unknown config {name!r}; one of: "
                        f"{', '.join(c.name for c in ALL_CONFIGS)}") \
                        from None
        if self.kind == "dse":
            if self.mode not in _DSE_MODES:
                raise ServeError(f"unknown dse mode {self.mode!r}; "
                                 f"one of: {', '.join(_DSE_MODES)}")
            if not (1 <= self.points <= 256):
                raise ServeError(
                    f"dse points must be in [1, 256], got {self.points}")

    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, data: dict) -> "JobRequest":
        """Parse an untrusted submission body; normalizes as it goes.

        Workload/config lists are deduplicated and *sorted* — request
        order cannot change what a sweep computes, so it must not
        change the request hash either.
        """
        if not isinstance(data, dict):
            raise ServeError("request body must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ServeError(f"unknown request field(s): "
                             f"{', '.join(unknown)}")
        kwargs = dict(data)
        for key in ("workloads", "configs"):
            value = kwargs.get(key)
            if value is None:
                continue
            if not isinstance(value, (list, tuple)) or \
                    not all(isinstance(item, str) for item in value):
                raise ServeError(f"{key} must be a list of names")
            kwargs[key] = tuple(sorted(set(value)))
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ServeError(f"malformed request: {exc}") from None

    def to_dict(self) -> dict:
        """Canonical JSON form (round-trips through :meth:`from_dict`)."""
        out: dict = {"kind": self.kind, "scale": self.scale,
                     "seed": self.seed, "batch": self.batch,
                     "jobs": self.jobs}
        if self.workloads is not None:
            out["workloads"] = list(self.workloads)
        if self.configs is not None:
            out["configs"] = list(self.configs)
        if self.kind == "dse":
            out.update(points=self.points, base=self.base, mode=self.mode,
                       radius=self.radius, max_changed=self.max_changed,
                       space_seed=self.space_seed)
        return out

    # ------------------------------------------------------------------

    def hash_params(self) -> dict:
        """The result-relevant fields (execution strategy excluded)."""
        params: dict = {
            "format": REQUEST_FORMAT,
            "model": MODEL_VERSION,
            "kind": self.kind,
            "scale": self.scale,
            "seed": self.seed,
            "workloads": sorted(self.workloads)
            if self.workloads is not None else None,
        }
        if self.kind == "sweep":
            params["configs"] = sorted(self.configs) \
                if self.configs is not None else None
        else:
            params.update(points=self.points, base=self.base,
                          mode=self.mode, radius=self.radius,
                          max_changed=self.max_changed,
                          space_seed=self.space_seed)
        return params


def request_hash(request: JobRequest) -> str:
    """Stable content address of what a request computes.

    Same recipe as every artifact fingerprint; ``batch`` and ``jobs``
    do not participate, so requests differing only in execution
    strategy deduplicate to one job.
    """
    return canonical_fingerprint("serve.request", request.hash_params())
