"""Baseline sampling strategies to compare SimPoint against.

SimPoint's value proposition is that *phase-aware* interval selection
beats naive sampling at the same simulation budget.  This module provides
the two canonical baselines:

* **periodic sampling** (SMARTS-style): every k-th interval, equal
  weights;
* **random sampling**: a seeded uniform draw of intervals, equal weights.

Both return a :class:`~repro.simpoint.simpoints.SimPointSelection`, so
the rest of the flow (checkpoints, detailed simulation, weighting) runs
unchanged — the comparison isolates the selection policy.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimPointError
from repro.profiling.bbv import BBVProfile
from repro.simpoint.simpoints import SimPoint, SimPointSelection


def _selection_from_indices(profile: BBVProfile,
                            indices: list[int]) -> SimPointSelection:
    if not indices:
        raise SimPointError("no intervals selected")
    starts = profile.interval_starts()
    lengths = profile.interval_lengths
    total = sum(lengths[i] for i in indices)
    points = [SimPoint(interval_index=i, cluster=rank,
                       weight=lengths[i] / total,
                       start_instruction=starts[i], length=lengths[i])
              for rank, i in enumerate(sorted(indices))]
    return SimPointSelection(
        points=points, chosen_k=len(points),
        interval_size=profile.interval_size,
        num_intervals=profile.num_intervals,
        total_instructions=profile.total_instructions,
        labels=None, coverage_target=1.0)


def periodic_selection(profile: BBVProfile,
                       count: int) -> SimPointSelection:
    """Every (n/count)-th interval, starting at the first stride midpoint."""
    if count <= 0:
        raise SimPointError("count must be positive")
    n = profile.num_intervals
    count = min(count, n)
    stride = n / count
    indices = sorted({min(n - 1, int(stride * i + stride / 2))
                      for i in range(count)})
    return _selection_from_indices(profile, indices)


def random_selection(profile: BBVProfile, count: int,
                     seed: int = 0) -> SimPointSelection:
    """A uniform random draw of ``count`` distinct intervals."""
    if count <= 0:
        raise SimPointError("count must be positive")
    n = profile.num_intervals
    count = min(count, n)
    rng = np.random.default_rng(seed)
    indices = sorted(rng.choice(n, size=count, replace=False).tolist())
    return _selection_from_indices(profile, indices)
