"""SimPoint selection: from BBV profile to weighted simulation points.

This is the SimPoint 3.0 pipeline (paper Fig. 4):

1. row-normalize the BBV matrix and randomly project it to 15 dimensions,
2. run k-means for k = 1 .. max_k,
3. score each clustering with the BIC and pick the smallest k within 90 %
   of the best score,
4. for each cluster, emit the interval closest to the centroid as its
   simulation point, weighted by the cluster's share of execution,
5. rank simulation points by weight; the *top* points that reach the
   coverage target (90 % in the paper) are the ones actually simulated.

Example::

    profile = BBVProfiler(1000).profile(program)
    selection = select_simpoints(profile, seed=42)
    for point in selection.top_points():
        print(point.interval_index, point.weight)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimPointError
from repro.profiling.bbv import BBVProfile
from repro.simpoint.bic import bic_score, choose_k, DEFAULT_BIC_THRESHOLD
from repro.simpoint.kmeans import kmeans, KMeansResult
from repro.simpoint.projection import DEFAULT_DIMENSIONS, project

DEFAULT_MAX_K = 10
DEFAULT_COVERAGE = 0.9


@dataclass(frozen=True)
class SimPoint:
    """One selected simulation point."""

    interval_index: int        # which interval of the profile
    cluster: int               # cluster this point represents
    weight: float              # fraction of execution it stands for
    start_instruction: int = 0  # exact dynamic-instruction boundary
    length: int = 0            # actual interval length in instructions


@dataclass
class SimPointSelection:
    """The complete result of SimPoint analysis for one workload."""

    points: list[SimPoint]
    chosen_k: int
    interval_size: int
    num_intervals: int
    total_instructions: int
    bic_scores: dict[int, float] = field(default_factory=dict)
    labels: np.ndarray | None = None
    coverage_target: float = DEFAULT_COVERAGE

    def top_points(self, coverage: float | None = None) -> list[SimPoint]:
        """Highest-weight points reaching the coverage target.

        This is the "# Simpoints" column of Table II: the top-ranked
        points whose cumulative weight is at least ``coverage``.
        """
        target = self.coverage_target if coverage is None else coverage
        ranked = sorted(self.points, key=lambda p: p.weight, reverse=True)
        chosen: list[SimPoint] = []
        cumulative = 0.0
        for point in ranked:
            chosen.append(point)
            cumulative += point.weight
            if cumulative >= target:
                break
        return chosen

    def coverage_of(self, points: list[SimPoint]) -> float:
        """Total execution weight covered by ``points``."""
        return sum(point.weight for point in points)

    @property
    def num_top_points(self) -> int:
        return len(self.top_points())


def select_simpoints(profile: BBVProfile,
                     max_k: int = DEFAULT_MAX_K,
                     dimensions: int = DEFAULT_DIMENSIONS,
                     seed: int = 0,
                     bic_threshold: float = DEFAULT_BIC_THRESHOLD,
                     coverage: float = DEFAULT_COVERAGE) -> SimPointSelection:
    """Run the full SimPoint analysis over a BBV profile."""
    if profile.num_intervals == 0:
        raise SimPointError("profile has no intervals")
    matrix = profile.matrix(normalize=True)
    projected = project(matrix, dimensions=dimensions, seed=seed)
    weights = profile.weights()

    limit = min(max_k, profile.num_intervals)
    results: dict[int, KMeansResult] = {}
    scores: dict[int, float] = {}
    for k in range(1, limit + 1):
        result = kmeans(projected, k, weights=weights, seed=seed + k)
        results[k] = result
        scores[k] = bic_score(projected, result)
    chosen_k = choose_k(scores, threshold=bic_threshold)
    best = results[chosen_k]

    points: list[SimPoint] = []
    cluster_weights = best.cluster_sizes(weights)
    starts = profile.interval_starts()
    for cluster in range(chosen_k):
        members = np.flatnonzero(best.labels == cluster)
        if members.size == 0:
            continue
        centroid = best.centroids[cluster]
        deltas = projected[members] - centroid
        distances = np.einsum("ij,ij->i", deltas, deltas)
        representative = int(members[distances.argmin()])
        points.append(SimPoint(
            interval_index=representative,
            cluster=cluster,
            weight=float(cluster_weights[cluster]),
            start_instruction=starts[representative],
            length=profile.interval_lengths[representative]))
    points.sort(key=lambda p: p.interval_index)
    return SimPointSelection(points=points, chosen_k=chosen_k,
                             interval_size=profile.interval_size,
                             num_intervals=profile.num_intervals,
                             total_instructions=profile.total_instructions,
                             bic_scores=scores, labels=best.labels,
                             coverage_target=coverage)
