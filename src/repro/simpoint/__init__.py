"""SimPoint 3.0: random projection, k-means, BIC, point selection."""

from repro.simpoint.bic import bic_score, choose_k, DEFAULT_BIC_THRESHOLD
from repro.simpoint.kmeans import kmeans, KMeansResult
from repro.simpoint.projection import (
    DEFAULT_DIMENSIONS,
    project,
    projection_matrix,
)
from repro.simpoint.simpoints import (
    DEFAULT_COVERAGE,
    DEFAULT_MAX_K,
    select_simpoints,
    SimPoint,
    SimPointSelection,
)

__all__ = [
    "bic_score",
    "choose_k",
    "DEFAULT_BIC_THRESHOLD",
    "kmeans",
    "KMeansResult",
    "DEFAULT_DIMENSIONS",
    "project",
    "projection_matrix",
    "DEFAULT_COVERAGE",
    "DEFAULT_MAX_K",
    "select_simpoints",
    "SimPoint",
    "SimPointSelection",
]
