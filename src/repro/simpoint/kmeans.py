"""k-means clustering, from scratch, as used by SimPoint 3.0.

Lloyd's algorithm with k-means++ seeding and a fixed random seed for
reproducibility.  Supports per-sample weights so longer intervals can count
proportionally (the profiler's trailing interval may be short).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimPointError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means run."""

    k: int
    labels: np.ndarray          # cluster index per sample
    centroids: np.ndarray       # (k x dims)
    inertia: float              # weighted sum of squared distances
    iterations: int

    def cluster_sizes(self, weights: np.ndarray | None = None) -> np.ndarray:
        """Total (optionally weighted) membership of each cluster."""
        if weights is None:
            weights = np.ones(len(self.labels))
        sizes = np.zeros(self.k)
        np.add.at(sizes, self.labels, weights)
        return sizes


def _squared_distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """(samples x k) matrix of squared Euclidean distances."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2
    x_sq = np.einsum("ij,ij->i", data, data)[:, None]
    c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
    cross = data @ centroids.T
    return np.maximum(x_sq - 2.0 * cross + c_sq, 0.0)


def _kmeanspp_init(data: np.ndarray, k: int,
                   rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    samples = data.shape[0]
    centroids = np.empty((k, data.shape[1]))
    first = rng.integers(samples)
    centroids[0] = data[first]
    closest = _squared_distances(data, centroids[:1]).ravel()
    for index in range(1, k):
        total = closest.sum()
        if total <= 0.0:
            # All remaining points coincide with a centroid; copy one.
            centroids[index] = data[rng.integers(samples)]
            continue
        probabilities = closest / total
        choice = rng.choice(samples, p=probabilities)
        centroids[index] = data[choice]
        new_distance = _squared_distances(data, centroids[index:index + 1])
        closest = np.minimum(closest, new_distance.ravel())
    return centroids


def kmeans(data: np.ndarray, k: int, weights: np.ndarray | None = None,
           seed: int = 0, max_iterations: int = 100,
           tolerance: float = 1e-8) -> KMeansResult:
    """Cluster ``data`` (samples x dims) into ``k`` clusters.

    Empty clusters are re-seeded with the point farthest from its centroid,
    so the result always has exactly ``k`` non-degenerate clusters when the
    data has at least ``k`` distinct points.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise SimPointError("kmeans expects a 2-D matrix")
    samples = data.shape[0]
    if not 1 <= k <= samples:
        raise SimPointError(f"k={k} out of range for {samples} samples")
    if weights is None:
        weights = np.ones(samples)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (samples,):
            raise SimPointError("weights must have one entry per sample")

    rng = np.random.default_rng(seed)
    centroids = _kmeanspp_init(data, k, rng)
    labels = np.zeros(samples, dtype=int)
    previous_inertia = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        distances = _squared_distances(data, centroids)
        labels = distances.argmin(axis=1)
        inertia = float((weights
                         * distances[np.arange(samples), labels]).sum())
        # Recompute centroids as weighted means.
        for cluster in range(k):
            mask = labels == cluster
            mass = weights[mask].sum()
            if mass > 0.0:
                centroids[cluster] = (
                    (weights[mask, None] * data[mask]).sum(axis=0) / mass)
            else:
                # Re-seed an empty cluster on the worst-fit point.
                worst = distances[np.arange(samples), labels].argmax()
                centroids[cluster] = data[worst]
        if previous_inertia - inertia <= tolerance * max(previous_inertia, 1.0):
            previous_inertia = inertia
            break
        previous_inertia = inertia
    return KMeansResult(k=k, labels=labels, centroids=centroids,
                        inertia=previous_inertia, iterations=iterations)
