"""Random projection of basic-block vectors.

SimPoint 3.0 projects the (very wide, sparse) BBV matrix down to a small
dimension — 15 by default — before clustering.  The Johnson-Lindenstrauss
lemma guarantees pairwise distances are approximately preserved, and the
clustering cost drops from O(blocks) to O(15) per distance.

The projection matrix entries are drawn i.i.d. uniform in [-1, 1] from a
seeded generator, matching the SimPoint release.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimPointError

DEFAULT_DIMENSIONS = 15


def projection_matrix(num_blocks: int, dimensions: int = DEFAULT_DIMENSIONS,
                      seed: int = 0) -> np.ndarray:
    """A (num_blocks x dimensions) random projection matrix."""
    if num_blocks <= 0:
        raise SimPointError("projection needs at least one block")
    if dimensions <= 0:
        raise SimPointError("projection dimension must be positive")
    rng = np.random.default_rng(seed)
    return rng.uniform(-1.0, 1.0, size=(num_blocks, dimensions))


def project(matrix: np.ndarray, dimensions: int = DEFAULT_DIMENSIONS,
            seed: int = 0) -> np.ndarray:
    """Project a BBV matrix (intervals x blocks) to ``dimensions`` columns.

    If the matrix is already narrower than ``dimensions`` it is returned
    unchanged — projecting *up* would only add noise.
    """
    if matrix.ndim != 2:
        raise SimPointError("expected a 2-D interval-by-block matrix")
    if matrix.shape[1] <= dimensions:
        return matrix.astype(float)
    basis = projection_matrix(matrix.shape[1], dimensions, seed)
    return matrix @ basis
