"""Bayesian Information Criterion scoring for k selection.

SimPoint 3.0 runs k-means for each candidate k and keeps the smallest k
whose BIC reaches a fixed fraction (default 0.9) of the best BIC observed.
The score follows the X-means formulation (Pelleg & Moore, 2000): a
spherical-Gaussian log-likelihood of the clustering minus a model-size
penalty of ``(p / 2) * log(R)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import SimPointError
from repro.simpoint.kmeans import KMeansResult

DEFAULT_BIC_THRESHOLD = 0.9


def bic_score(data: np.ndarray, result: KMeansResult) -> float:
    """BIC of a k-means clustering of ``data`` (higher is better)."""
    samples, dims = data.shape
    k = result.k
    if samples <= k:
        # Degenerate: every point its own cluster; maximally penalized.
        return -math.inf
    # Pooled spherical variance (maximum-likelihood estimate).
    variance = result.inertia / (dims * (samples - k))
    if variance <= 0.0:
        variance = 1e-12
    sizes = np.bincount(result.labels, minlength=k).astype(float)
    log_likelihood = 0.0
    for cluster in range(k):
        size = sizes[cluster]
        if size <= 0.0:
            continue
        log_likelihood += (
            size * math.log(size / samples)
            - size * dims / 2.0 * math.log(2.0 * math.pi * variance)
            - (size - 1.0) * dims / 2.0
        )
    parameters = k * (dims + 1.0)
    return log_likelihood - parameters / 2.0 * math.log(samples)


def choose_k(scores: dict[int, float],
             threshold: float = DEFAULT_BIC_THRESHOLD) -> int:
    """The smallest k whose BIC reaches ``threshold`` of the best score.

    Scores are shifted to be non-negative first (BIC values are usually
    negative), matching the SimPoint release's normalization.
    """
    if not scores:
        raise SimPointError("no BIC scores to choose from")
    finite = {k: s for k, s in scores.items() if math.isfinite(s)}
    if not finite:
        return min(scores)
    low = min(finite.values())
    high = max(finite.values())
    if high == low:
        return min(finite)
    for k in sorted(finite):
        normalized = (finite[k] - low) / (high - low)
        if normalized >= threshold:
            return k
    return max(finite)  # pragma: no cover - threshold <= 1 always returns
