"""Structural RTL-style power estimation (Cadence Joules analogue)."""

from repro.power.area import (
    ANALYZED_COMPONENTS,
    component_areas,
    ComponentArea,
    REST_OF_TILE,
)
from repro.power.model import COMPONENT_ENERGY_SCALE, PowerModel
from repro.power.report import ComponentPower, PowerReport
from repro.power.technology import ASAP7, TechnologyCard

__all__ = [
    "ANALYZED_COMPONENTS",
    "component_areas",
    "ComponentArea",
    "REST_OF_TILE",
    "COMPONENT_ENERGY_SCALE",
    "PowerModel",
    "ComponentPower",
    "PowerReport",
    "ASAP7",
    "TechnologyCard",
]
