"""The structural power model — our Cadence Joules.

Power is computed per component as::

    leakage   = cells x per-cell leakage                      (always on)
    internal  = clock energy of the component's flops, scaled by a
                clock-gating factor derived from its utilization
    switching = sum over events of (event count x bits x per-bit energy)

Event counts come from the cycle model's activity statistics (the "trace
file"), cell counts from :mod:`repro.power.area` (the "mapped netlist"),
and per-bit energies from :mod:`repro.power.technology` (the "liberty
characterization").  ``COMPONENT_ENERGY_SCALE`` holds one global cell-
sizing factor per component — the single calibration knob, set once
against the paper's MegaBOOM averages and never varied per workload.

Example::

    model = PowerModel(MEGA_BOOM)
    report = model.report(stats, workload="sha")
    print(report.format_table())
"""

from __future__ import annotations

import math

from repro.errors import PowerModelError
from repro.power.area import (
    ANALYZED_COMPONENTS,
    cache_access_bits,
    component_areas,
    ComponentArea,
    REST_OF_TILE,
    _FETCH_ENTRY_BITS,
    _PREG_TAG_BITS,
    _ROB_ENTRY_BITS,
    _UOP_PAYLOAD_BITS,
)
from repro.power.report import ComponentPower, PowerReport
from repro.power.technology import ASAP7, TechnologyCard
from repro.uarch.config import BoomConfig
from repro.uarch.stats import CoreStats, IssueQueueStats

#: Global per-component cell-sizing calibration (drive strengths); one
#: constant per component for the whole study.
COMPONENT_ENERGY_SCALE: dict[str, float] = {
    "branch_predictor": 90.86,
    "fetch_buffer": 1.78,
    "int_rename": 8.77,
    "fp_rename": 22.59,
    "int_issue": 6.72,
    "mem_issue": 4.92,
    "fp_issue": 4.94,
    "rob": 5.0,
    "int_regfile": 5.53,
    "fp_regfile": 16.72,
    "lsu": 7.23,
    "dcache": 20.14,
    "icache": 4.44,
    REST_OF_TILE: 8.42,
}


#: Dynamic-energy exponent of the machine-width cell-sizing effect.
_WIDTH_EXPONENT = 0.7
#: Components whose width scaling is already explicit (RF ports; the
#: fetch buffer's width effect is captured by its fill/drain activity).
_WIDTH_EXEMPT = frozenset(
    {"int_regfile", "fp_regfile", "fetch_buffer"})


class PowerModel:
    """Structural leakage/internal/switching model for one configuration."""

    def __init__(self, config: BoomConfig,
                 tech: TechnologyCard = ASAP7) -> None:
        self.config = config
        self.tech = tech
        self.areas = component_areas(config)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _leakage_mw(self, area: ComponentArea) -> float:
        tech = self.tech
        nanowatts = (area.flops * tech.leak_flop_nw
                     + area.gates * tech.leak_gate_nw
                     + (area.sram_bits + area.cam_bits)
                     * tech.leak_sram_nw_per_bit)
        return nanowatts * 1e-6

    def _sram_read_fj(self, bits_per_access: float,
                      total_bits: float) -> float:
        """SRAM read energy: accessed bits plus bitline cost of the array."""
        array_factor = 0.6 + 0.4 * math.sqrt(max(total_bits, 1.0) / 4096.0)
        return self.tech.sram_read_fj_per_bit * bits_per_access \
            * array_factor

    def _sram_write_fj(self, bits_per_access: float,
                       total_bits: float) -> float:
        array_factor = 0.6 + 0.4 * math.sqrt(max(total_bits, 1.0) / 4096.0)
        return self.tech.sram_write_fj_per_bit * bits_per_access \
            * array_factor

    def _mw(self, total_fj: float, cycles: int) -> float:
        """Convert accumulated femtojoules over a window to milliwatts."""
        seconds = cycles * self.tech.cycle_seconds
        return total_fj * 1e-15 / seconds * 1e3 if seconds else 0.0

    def _internal_mw(self, area: ComponentArea, cycles: int,
                     utilization: float) -> float:
        gating = self.tech.idle_clock_fraction \
            + (1.0 - self.tech.idle_clock_fraction) * min(1.0, utilization)
        total_fj = area.flops * self.tech.flop_clock_fj * cycles * gating
        return self._mw(total_fj, cycles)

    # ------------------------------------------------------------------
    # the report
    # ------------------------------------------------------------------

    def report(self, stats: CoreStats, workload: str = "?") -> PowerReport:
        if stats.cycles <= 0:
            raise PowerModelError("stats window has no cycles")
        report = PowerReport(config_name=self.config.name,
                             workload=workload, cycles=stats.cycles)
        builders = {
            "branch_predictor": self._branch_predictor,
            "fetch_buffer": self._fetch_buffer,
            "int_rename": lambda s: self._rename(s, "int"),
            "fp_rename": lambda s: self._rename(s, "fp"),
            "int_issue": lambda s: self._issue_queue(s, "int"),
            "mem_issue": lambda s: self._issue_queue(s, "mem"),
            "fp_issue": lambda s: self._issue_queue(s, "fp"),
            "rob": self._rob,
            "int_regfile": lambda s: self._regfile(s, "int"),
            "fp_regfile": lambda s: self._regfile(s, "fp"),
            "lsu": self._lsu,
            "dcache": lambda s: self._cache(s, "dcache"),
            "icache": lambda s: self._cache(s, "icache"),
            REST_OF_TILE: self._rest_of_tile,
        }
        width_factor = (self.config.decode_width / 4.0) ** _WIDTH_EXPONENT
        for name, builder in builders.items():
            scale = COMPONENT_ENERGY_SCALE[name]
            leakage, internal, switching = builder(stats)
            if name not in _WIDTH_EXEMPT:
                # Wider machines size up drivers and wiring throughout
                # their datapaths; dynamic energy per event follows.
                internal *= width_factor
                switching *= width_factor
            report.components[name] = ComponentPower(
                leakage_mw=leakage * scale,
                internal_mw=internal * scale,
                switching_mw=switching * scale)
        report.int_issue_slot_mw = self._issue_slot_power(stats)
        return report

    # ------------------------------------------------------------------
    # per-component builders: return (leakage, internal, switching) in mW
    # ------------------------------------------------------------------

    def _branch_predictor(self, stats: CoreStats):
        area = self.areas["branch_predictor"]
        predictor = self.config.predictor
        p = stats.predictor
        cycles = stats.cycles
        if predictor.kind == "gshare":
            table_bits = predictor.gshare_entries * 2.0
            read_bits = 2.0
            write_bits = 2.0
        else:
            entry_bits = 3.0 + 2.0 + predictor.tage_tag_bits
            table_bits = (predictor.tage_tables
                          * predictor.tage_table_entries * entry_bits
                          + predictor.tage_base_entries * 2.0)
            read_bits = entry_bits
            write_bits = entry_bits
        btb_bits = predictor.btb_entries * 63.0
        # Predictor tables are read whole-row every cycle without the
        # sub-banking of a big cache, so access energy is linear in the
        # array size (the reason halving the structures halves BP power).
        reference_bits = 4096 * 2.0 + 4 * 512 * 14.0
        dir_fj = self.tech.sram_read_fj_per_bit * read_bits \
            * 24.0 * (0.15 + 0.85 * table_bits / reference_bits)
        btb_fj = self.tech.sram_read_fj_per_bit * 63.0 \
            * 5.0 * (0.15 + 0.85 * btb_bits / (512 * 63.0))
        energy = p.dir_table_reads * dir_fj
        energy += (p.dir_updates + p.allocations) * dir_fj * 1.3
        energy += p.btb_lookups * btb_fj
        energy += p.btb_updates * btb_fj * 1.3
        energy += (p.ras_pushes + p.ras_pops) * 32.0 \
            * self.tech.flop_write_fj
        # Hashing / select logic evaluates on every lookup.
        energy += p.lookups * area.gates * 0.10 * self.tech.gate_switch_fj
        utilization = p.lookups / cycles
        # Internal power is bank precharge: scales with array size and
        # lookup rate, not with a fixed flop population.
        internal_fj = (table_bits + btb_bits) * 0.0022 \
            * self.tech.flop_clock_fj * cycles \
            * (0.1 + 0.9 * min(1.0, utilization))
        return (self._leakage_mw(area),
                self._mw(internal_fj, cycles),
                self._mw(energy, cycles))

    def _fetch_buffer(self, stats: CoreStats):
        area = self.areas["fetch_buffer"]
        f = stats.frontend
        cycles = stats.cycles
        energy = f.fetch_buffer_writes * _FETCH_ENTRY_BITS \
            * self.tech.flop_write_fj
        energy += f.fetch_buffer_reads * _FETCH_ENTRY_BITS * 0.5 \
            * self.tech.gate_switch_fj
        utilization = f.fetch_buffer_occupancy \
            / (cycles * self.config.fetch_buffer_entries)
        return (self._leakage_mw(area),
                self._internal_mw(area, cycles, utilization),
                self._mw(energy, cycles))

    def _rename(self, stats: CoreStats, kind: str):
        area = self.areas[f"{kind}_rename"]
        r = stats.int_rename if kind == "int" else stats.fp_rename
        cycles = stats.cycles
        phys = self.config.int_phys_regs if kind == "int" \
            else self.config.fp_phys_regs
        energy = (r.map_reads + r.map_writes) * _PREG_TAG_BITS \
            * self.tech.flop_write_fj
        # Allocation-list snapshot: copies a phys-regs-wide bit vector.
        energy += (r.snapshots + r.snapshot_restores) * phys \
            * self.tech.flop_write_fj
        energy += (r.freelist_allocs + r.freelist_frees) \
            * (_PREG_TAG_BITS + 8.0) * self.tech.flop_write_fj
        utilization = (r.map_writes + r.snapshots) \
            / (cycles * self.config.decode_width)
        return (self._leakage_mw(area),
                self._internal_mw(area, cycles, utilization),
                self._mw(energy, cycles))

    def _wakeup_ports(self, queue: str) -> int:
        """Wakeup broadcast ports seen by each queue entry's comparators.

        The number of simultaneously-broadcast destination tags tracks the
        register-file write-port count, so every entry in a wider machine
        carries proportionally more CAM comparators.
        """
        if queue == "fp":
            return self.config.fp_rf_write_ports
        return self.config.int_rf_write_ports

    def _issue_queue(self, stats: CoreStats, queue: str):
        area = self.areas[f"{queue}_issue"]
        q = stats.issue_queue(queue)
        cycles = stats.cycles
        entries = {"int": self.config.int_iq_entries,
                   "mem": self.config.mem_iq_entries,
                   "fp": self.config.fp_iq_entries}[queue]
        # Per-entry fabric width scales with the broadcast port count.
        port_factor = self._wakeup_ports(queue) / 6.0
        energy = q.writes * _UOP_PAYLOAD_BITS * self.tech.flop_write_fj
        # Collapsing shifts rewrite whole entries (Key Takeaway #5); the
        # ring alternative instead updates one age-matrix row per write.
        energy += q.shifts * _UOP_PAYLOAD_BITS * self.tech.flop_write_fj
        if self.config.issue_queue_kind == "ring":
            energy += q.writes * entries * self.tech.cam_compare_fj_per_bit
        # Wakeup: every broadcast compares against every occupied entry,
        # on every broadcast port.
        average_occupancy = q.occupancy / cycles if cycles else 0.0
        energy += q.wakeup_broadcasts * average_occupancy * 2.0 \
            * _PREG_TAG_BITS * self.tech.cam_compare_fj_per_bit \
            * port_factor * 6.0
        # Select tree evaluates over occupied entries each cycle.
        energy += q.occupancy * 14.0 * self.tech.gate_switch_fj
        # Occupied entries burn clock power: occupancy-driven (Fig. 8).
        occupied_clock_fj = q.occupancy * _UOP_PAYLOAD_BITS \
            * self.tech.flop_clock_fj * (0.4 + 0.6 * port_factor * 6.0 / 4.0)
        idle_fraction = self.tech.idle_clock_fraction
        idle_clock_fj = (cycles * entries - q.occupancy) \
            * _UOP_PAYLOAD_BITS * self.tech.flop_clock_fj * idle_fraction
        internal = self._mw(occupied_clock_fj + idle_clock_fj, cycles)
        internal += self._internal_mw(
            ComponentArea(flops=0, gates=area.gates), cycles, 0.0)
        return (self._leakage_mw(area), internal, self._mw(energy, cycles))

    def _rob(self, stats: CoreStats):
        area = self.areas["rob"]
        r = stats.rob
        cycles = stats.cycles
        energy = r.dispatch_writes * _ROB_ENTRY_BITS * self.tech.flop_write_fj
        energy += r.commit_reads * _ROB_ENTRY_BITS * 0.5 \
            * self.tech.gate_switch_fj
        utilization = r.occupancy / (cycles * self.config.rob_entries)
        return (self._leakage_mw(area),
                self._internal_mw(area, cycles, utilization),
                self._mw(energy, cycles))

    def _regfile(self, stats: CoreStats, kind: str):
        area = self.areas[f"{kind}_regfile"]
        r = stats.int_regfile if kind == "int" else stats.fp_regfile
        cycles = stats.cycles
        if kind == "int":
            read_ports = self.config.int_rf_read_ports
            write_ports = self.config.int_rf_write_ports
        else:
            read_ports = self.config.fp_rf_read_ports
            write_ports = self.config.fp_rf_write_ports
        from repro.power.area import bypass_factor

        # Every access drives the port/bypass fabric, so the static floor
        # (leakage + residual clock of the mux fabric) and the per-access
        # energies all scale with the super-linear bypass factor
        # (Key Takeaways #1 and #2).
        factor = bypass_factor(read_ports, write_ports)
        energy = r.reads * 64.0 * 2.0 * factor * self.tech.gate_switch_fj
        energy += r.writes * 64.0 * 3.0 * factor * self.tech.gate_switch_fj
        energy += r.bypasses * 64.0 * 1.4 * factor \
            * self.tech.gate_switch_fj
        utilization = (r.reads + r.writes) \
            / (cycles * (read_ports + write_ports))
        internal_fj = factor * 64.0 * (1.0 + 5.0 * min(1.0, utilization)) \
            * self.tech.flop_clock_fj * cycles
        return (self._leakage_mw(area),
                self._mw(internal_fj, cycles),
                self._mw(energy, cycles))

    def _lsu(self, stats: CoreStats):
        area = self.areas["lsu"]
        l = stats.lsu
        cycles = stats.cycles
        energy = l.ldq_writes * 78.0 * self.tech.flop_write_fj
        energy += l.stq_writes * 142.0 * self.tech.flop_write_fj
        energy += l.cam_searches * 48.0 * self.tech.cam_compare_fj_per_bit
        energy += l.forwards * 64.0 * self.tech.gate_switch_fj
        capacity = self.config.ldq_entries + self.config.stq_entries
        utilization = (l.ldq_occupancy + l.stq_occupancy) \
            / (cycles * capacity)
        return (self._leakage_mw(area),
                self._internal_mw(area, cycles, utilization),
                self._mw(energy, cycles))

    def _cache(self, stats: CoreStats, which: str):
        area = self.areas[which]
        c = stats.icache if which == "icache" else stats.dcache
        params = self.config.icache if which == "icache" \
            else self.config.dcache
        cycles = stats.cycles
        total_bits = params.size_bytes * 8.0
        access_bits = cache_access_bits(params)
        line_bits = params.line_bytes * 8.0
        energy = c.reads * self._sram_read_fj(access_bits, total_bits)
        energy += c.writes * self._sram_write_fj(access_bits, total_bits)
        # Refills/writebacks stream into one sub-bank at half weight.
        energy += (c.misses + c.writebacks) * 0.5 \
            * self._sram_write_fj(line_bits, total_bits)
        energy += c.mshr_allocs * 120.0 * self.tech.flop_write_fj
        switching = self._mw(energy, cycles)
        # Internal power is array precharge: proportional to the access
        # energy, plus the MSHR/control flop clock.
        internal = 0.75 * switching + self._internal_mw(
            ComponentArea(flops=area.flops), cycles,
            (c.reads + c.writes) / cycles)
        return (self._leakage_mw(area), internal, switching)

    def _rest_of_tile(self, stats: CoreStats):
        area = self.areas[REST_OF_TILE]
        e = stats.execute
        cycles = stats.cycles
        g = self.tech.gate_switch_fj
        energy = e.alu_ops * 950.0 * g
        energy += e.mul_ops * 5200.0 * g
        energy += e.div_busy_cycles * 900.0 * g
        energy += (e.fp_alu_ops + e.fp_cvt_ops) * 6800.0 * g
        energy += e.fp_mul_ops * 11500.0 * g
        energy += e.fp_div_ops * 9000.0 * g
        energy += e.agu_ops * 700.0 * g
        energy += stats.retired * 260.0 * g  # decode, FTQ, commit plumbing
        utilization = stats.retired / (cycles * self.config.decode_width)
        return (self._leakage_mw(area),
                self._internal_mw(area, cycles, utilization),
                self._mw(energy, cycles))

    # ------------------------------------------------------------------
    # Fig. 8: per-slot power of the integer issue queue
    # ------------------------------------------------------------------

    def _issue_slot_power(self, stats: CoreStats) -> list[float]:
        q: IssueQueueStats = stats.int_iq
        cycles = stats.cycles
        if not q.slot_occupancy or cycles == 0:
            return []
        scale = COMPONENT_ENERGY_SCALE["int_issue"]
        slots = []
        for occupancy, writes in zip(q.slot_occupancy, q.slot_writes):
            clock_fj = occupancy * _UOP_PAYLOAD_BITS * self.tech.flop_clock_fj
            idle_fj = (cycles - occupancy) * _UOP_PAYLOAD_BITS \
                * self.tech.flop_clock_fj * self.tech.idle_clock_fraction
            write_fj = writes * _UOP_PAYLOAD_BITS * self.tech.flop_write_fj
            wakeup_fj = occupancy * 2.0 * _PREG_TAG_BITS \
                * self.tech.cam_compare_fj_per_bit * 0.5
            slots.append(self._mw(clock_fj + idle_fj + write_fj + wakeup_fj,
                                  cycles) * scale)
        return slots
