"""Structural area models: from BoomConfig to cell counts per component.

This is the "technology mapping" step of the Joules flow (paper Fig. 1):
each of the 13 analyzed components is decomposed into flip-flops,
combinational gates, SRAM bits, and CAM bits as a function of its
configuration parameters only.  The decompositions encode the structural
effects the paper highlights:

* register-file bypass networks grow super-linearly with port count
  (Key Takeaway #1: ``ports^1.6``),
* the rename units carry ``max_branches`` allocation-list snapshot
  copies (Key Takeaway #3),
* collapsing issue queues pay shift muxes per entry (Key Takeaway #5),
* the ROB is small because BOOM's merged register file keeps data out of
  it (§IV-B),
* TAGE is several tagged SRAMs against gshare's single table
  (Key Takeaway #7),
* MSHRs and extra memory ports grow the D-cache (Key Takeaway #8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.uarch.config import BoomConfig, CacheParams, PredictorParams

#: The 13 analyzed components, in the paper's Figs. 5-7 order.
ANALYZED_COMPONENTS: tuple[str, ...] = (
    "branch_predictor",
    "fetch_buffer",
    "int_rename",
    "fp_rename",
    "int_issue",
    "mem_issue",
    "fp_issue",
    "rob",
    "int_regfile",
    "fp_regfile",
    "lsu",
    "dcache",
    "icache",
)

REST_OF_TILE = "rest_of_tile"

_PREG_TAG_BITS = 7          # physical register tag width (<= 128 regs)
_UOP_PAYLOAD_BITS = 72      # issue-queue entry payload
_FETCH_ENTRY_BITS = 48      # fetch-buffer entry
_ROB_ENTRY_BITS = 26        # bookkeeping only: merged register file
_BYPASS_EXPONENT = 2.05     # super-linear port growth of bypass networks


@dataclass(frozen=True)
class ComponentArea:
    """Cell inventory of one hardware component."""

    flops: float = 0.0
    gates: float = 0.0
    sram_bits: float = 0.0
    cam_bits: float = 0.0

    def __add__(self, other: "ComponentArea") -> "ComponentArea":
        return ComponentArea(self.flops + other.flops,
                             self.gates + other.gates,
                             self.sram_bits + other.sram_bits,
                             self.cam_bits + other.cam_bits)


def bypass_factor(read_ports: int, write_ports: int) -> float:
    """Relative size of a bypass network, normalized to 6R/3W = 1.

    The bypass mux fabric and its wiring grow super-linearly with the
    port product (Key Takeaway #1); the exponent is the one structural
    constant calibrated against the paper's cross-configuration register-
    file ratios.
    """
    return (read_ports * write_ports) ** _BYPASS_EXPONENT \
        / (6 * 3) ** _BYPASS_EXPONENT


def bypass_gates(read_ports: int, write_ports: int,
                 width_bits: int = 64) -> float:
    """Bypass-network gate count: super-linear in the port product."""
    return 260.0 * width_bits * bypass_factor(read_ports, write_ports)


def predictor_area(params: PredictorParams) -> ComponentArea:
    btb_bits = params.btb_entries * (30 + 32 + 1)
    ras_flops = params.ras_entries * 32
    if params.kind == "gshare":
        table_bits = params.gshare_entries * 2
        logic = 2200.0
    else:
        entry_bits = 3 + 2 + params.tage_tag_bits
        table_bits = (params.tage_base_entries * 2
                      + params.tage_tables * params.tage_table_entries
                      * entry_bits)
        # per-table folded-history hashing and the provider select tree
        logic = 2200.0 + 2600.0 * params.tage_tables
    return ComponentArea(flops=ras_flops + 420,
                         gates=logic,
                         sram_bits=btb_bits + table_bits)


def cache_area(params: CacheParams) -> ComponentArea:
    data_bits = params.size_bytes * 8
    tag_bits = params.sets * params.ways * 28
    mshr_flops = params.mshrs * 120
    control_gates = 1500.0 + 450.0 * params.ways + 900.0 * params.mshrs
    return ComponentArea(flops=mshr_flops + 380,
                         gates=control_gates,
                         sram_bits=data_bits + tag_bits)


def cache_access_bits(params: CacheParams) -> float:
    """SRAM bits touched per access: all ways of tags + one data word."""
    return params.ways * 28 + params.ways * 64


def regfile_area(phys_regs: int, read_ports: int, write_ports: int,
                 max_branches: int = 0) -> ComponentArea:
    """Register file: storage is minor; the port/bypass fabric dominates.

    The paper's register-file power is dominated by the bypass network
    (Key Takeaways #1 and #2: MegaBOOM's FP RF burns power even in FP-free
    code, "almost entirely static logic power" of the doubled-port bypass),
    so the gate inventory here is almost entirely the bypass fabric.
    """
    storage = phys_regs * 64
    return ComponentArea(flops=storage,
                         gates=bypass_gates(read_ports, write_ports))


def rename_area(phys_regs: int, width: int, max_branches: int) -> \
        ComponentArea:
    map_table = 32 * _PREG_TAG_BITS
    free_list = phys_regs
    # Snapshot storage: one allocation-list copy per branch tag.
    snapshots = max_branches * phys_regs
    logic = 900.0 * width
    return ComponentArea(flops=map_table + free_list + snapshots,
                         gates=logic)


def issue_queue_area(entries: int, width: int,
                     kind: str = "collapsing") -> ComponentArea:
    payload = entries * _UOP_PAYLOAD_BITS
    wakeup_cam = entries * 2 * _PREG_TAG_BITS
    if kind == "ring":
        # Non-collapsing: no shift muxes, but an age matrix for the
        # oldest-first select (one bit per entry pair).
        logic = entries * (38.0 + 11.0 * width)
        age_matrix = float(entries * entries)
        return ComponentArea(flops=payload, gates=logic,
                             cam_bits=wakeup_cam + age_matrix)
    # Collapsing shift muxes plus the oldest-first select tree.
    logic = entries * (95.0 + 11.0 * width)
    return ComponentArea(flops=payload, gates=logic, cam_bits=wakeup_cam)


#: relative silicon cost per cell type, in generic gate-equivalents —
#: a flop is ~8 NAND2-equivalents, an SRAM bit well under one, a CAM
#: bit carries its match logic.  The absolute scale is arbitrary; the
#: DSE layer only ever compares area proxies against each other.
_GE_PER_FLOP = 8.0
_GE_PER_GATE = 1.0
_GE_PER_SRAM_BIT = 0.6
_GE_PER_CAM_BIT = 2.0


def area_gate_equivalents(area: ComponentArea) -> float:
    """Collapse one cell inventory to scalar gate-equivalents."""
    return (area.flops * _GE_PER_FLOP + area.gates * _GE_PER_GATE
            + area.sram_bits * _GE_PER_SRAM_BIT
            + area.cam_bits * _GE_PER_CAM_BIT)


def component_area_proxy(config: BoomConfig) -> dict[str, float]:
    """Per-component scalar area (gate-equivalents) for ``config``."""
    return {name: area_gate_equivalents(area)
            for name, area in component_areas(config).items()}


def area_proxy(config: BoomConfig) -> float:
    """Whole-tile scalar area proxy (gate-equivalents).

    This is the area axis of the DSE Pareto frontier: a structural
    stand-in for synthesized cell area, consistent across the design
    space because every component grows through the same inventory
    model that drives the power reports.
    """
    return sum(component_area_proxy(config).values())


def component_areas(config: BoomConfig) -> dict[str, ComponentArea]:
    """The full per-component cell inventory for ``config``."""
    areas: dict[str, ComponentArea] = {}
    areas["branch_predictor"] = predictor_area(config.predictor)
    areas["fetch_buffer"] = ComponentArea(
        flops=config.fetch_buffer_entries * _FETCH_ENTRY_BITS,
        gates=260.0 * config.fetch_width)
    areas["int_rename"] = rename_area(config.int_phys_regs,
                                      config.decode_width,
                                      config.max_branches)
    areas["fp_rename"] = rename_area(config.fp_phys_regs,
                                     config.decode_width,
                                     config.max_branches)
    areas["int_issue"] = issue_queue_area(config.int_iq_entries,
                                          config.alu_units,
                                          config.issue_queue_kind)
    areas["mem_issue"] = issue_queue_area(config.mem_iq_entries,
                                          config.mem_units,
                                          config.issue_queue_kind)
    areas["fp_issue"] = issue_queue_area(config.fp_iq_entries,
                                         config.fp_units,
                                         config.issue_queue_kind)
    areas["rob"] = ComponentArea(
        flops=config.rob_entries * _ROB_ENTRY_BITS,
        gates=420.0 * config.decode_width + 6.0 * config.rob_entries)
    areas["int_regfile"] = regfile_area(config.int_phys_regs,
                                        config.int_rf_read_ports,
                                        config.int_rf_write_ports)
    areas["fp_regfile"] = regfile_area(config.fp_phys_regs,
                                       config.fp_rf_read_ports,
                                       config.fp_rf_write_ports)
    areas["lsu"] = ComponentArea(
        flops=config.ldq_entries * 78 + config.stq_entries * 142,
        gates=2300.0 + 800.0 * config.mem_units,
        cam_bits=config.stq_entries * 48)
    areas["dcache"] = cache_area(config.dcache)
    areas["icache"] = cache_area(config.icache)
    # Everything else in the tile: decode, FTQ, execution units, PTW...
    fp_fma_gates = 30000.0 * config.fp_units
    alu_gates = 6200.0 * config.alu_units
    mul_div_gates = 14500.0
    decode_gates = 2600.0 * config.decode_width
    areas[REST_OF_TILE] = ComponentArea(
        flops=2400.0 + 420.0 * config.decode_width
        + config.ftq_entries * 40,
        gates=fp_fma_gates + alu_gates + mul_div_gates + decode_gates
        + 5200.0)
    return areas
