"""Power report data structures and formatting.

A :class:`PowerReport` mirrors what the paper extracts from Cadence Joules
output (Fig. 3, step 11): per-component leakage / internal / switching
power in milliwatts, the analyzed-component share of the tile (Fig. 9),
and per-issue-slot detail (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power.area import ANALYZED_COMPONENTS, REST_OF_TILE


@dataclass(frozen=True)
class ComponentPower:
    """Power of one component, split by dissipation source (§II-E)."""

    leakage_mw: float
    internal_mw: float
    switching_mw: float

    @property
    def total_mw(self) -> float:
        return self.leakage_mw + self.internal_mw + self.switching_mw

    @property
    def dynamic_mw(self) -> float:
        return self.internal_mw + self.switching_mw

    def __add__(self, other: "ComponentPower") -> "ComponentPower":
        return ComponentPower(self.leakage_mw + other.leakage_mw,
                              self.internal_mw + other.internal_mw,
                              self.switching_mw + other.switching_mw)


@dataclass
class PowerReport:
    """Full tile power for one measured window."""

    config_name: str
    workload: str
    cycles: int
    components: dict[str, ComponentPower] = field(default_factory=dict)
    #: per-slot power of the integer issue queue (Fig. 8), milliwatts
    int_issue_slot_mw: list[float] = field(default_factory=list)

    @property
    def tile_mw(self) -> float:
        """Total BOOM tile power (core + L1 caches)."""
        return sum(c.total_mw for c in self.components.values())

    @property
    def analyzed_mw(self) -> float:
        """Power of the 13 analyzed components only."""
        return sum(self.components[name].total_mw
                   for name in ANALYZED_COMPONENTS)

    @property
    def analyzed_share(self) -> float:
        """Fraction of tile power in the analyzed components (Fig. 9)."""
        tile = self.tile_mw
        return self.analyzed_mw / tile if tile else 0.0

    def component_mw(self, name: str) -> float:
        return self.components[name].total_mw

    def ranked_components(self) -> list[tuple[str, float]]:
        """Analyzed components sorted by descending power."""
        pairs = [(name, self.components[name].total_mw)
                 for name in ANALYZED_COMPONENTS]
        return sorted(pairs, key=lambda item: item[1], reverse=True)

    def format_table(self) -> str:
        """Human-readable per-component table."""
        lines = [f"{self.config_name} / {self.workload} "
                 f"({self.cycles} cycles)",
                 f"{'component':<18}{'leak':>8}{'int':>8}{'switch':>8}"
                 f"{'total':>8}  mW"]
        for name in (*ANALYZED_COMPONENTS, REST_OF_TILE):
            power = self.components[name]
            lines.append(f"{name:<18}{power.leakage_mw:>8.3f}"
                         f"{power.internal_mw:>8.3f}"
                         f"{power.switching_mw:>8.3f}"
                         f"{power.total_mw:>8.3f}")
        lines.append(f"{'tile total':<18}{'':>24}{self.tile_mw:>8.3f}")
        lines.append(f"analyzed share: {self.analyzed_share:.1%}")
        return "\n".join(lines)
