"""The technology card: an ASAP7-like 7-nm predictive process at 500 MHz.

Cadence Joules computes power from liberty-file cell characterizations;
this module plays the role of those liberty files.  Per-event energies
(femtojoules) and per-cell leakage (nanowatts) are single global constants
— calibrated once against the paper's absolute numbers and never adjusted
per workload or per configuration, so every relative trend in the results
is produced by structure sizes and simulated activity, not by tuning
(DESIGN.md §1).

The three power components follow §II-E of the paper:

* **leakage** — per-cell static draw, always on;
* **internal** — short-circuit and internal-net power, dominated by the
  clock network and flop clocking (scaled by per-component clock gating);
* **switching** — load-capacitance charging on logic evaluation and
  SRAM/CAM accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import PowerModelError

#: Effective threshold voltage of the 7-nm cell library: the linear
#: alpha-power timing model below caps frequency at (V - VT) scaling.
_THRESHOLD_V = 0.30


@dataclass(frozen=True)
class TechnologyCard:
    """Per-cell energy and leakage characterization."""

    name: str = "asap7-like-7nm"
    voltage: float = 0.70
    clock_hz: float = 500e6

    # -- internal (clock) energy, femtojoules per flop per clocked cycle --
    flop_clock_fj: float = 0.38
    # -- switching energies, femtojoules per event --
    flop_write_fj: float = 0.55
    gate_switch_fj: float = 0.095
    sram_read_fj_per_bit: float = 0.135
    sram_write_fj_per_bit: float = 0.185
    cam_compare_fj_per_bit: float = 0.19
    wire_fj_per_bit_mm: float = 0.18

    # -- leakage, nanowatts per cell (or per bit for SRAM) --
    leak_flop_nw: float = 0.85
    leak_gate_nw: float = 0.22
    leak_sram_nw_per_bit: float = 0.016

    #: fraction of a component's flops still clocked when idle (imperfect
    #: clock gating; Joules reports the same residual internal power)
    idle_clock_fraction: float = 0.06

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz

    def max_clock_hz(self, voltage: float) -> float:
        """Highest feasible clock at ``voltage`` (alpha-power model)."""
        if voltage <= _THRESHOLD_V:
            return 0.0
        return self.clock_hz * (voltage - _THRESHOLD_V) \
            / (self.voltage - _THRESHOLD_V)

    def at_operating_point(self, voltage: float,
                           clock_hz: float) -> "TechnologyCard":
        """A DVFS-scaled card: the paper's fixed 500 MHz/0.7 V point
        generalized to any feasible (voltage, frequency) pair.

        Dynamic (internal + switching) energies scale with V^2; leakage
        scales with V^3 (DIBL-dominated short-channel leakage).  The
        requested clock must be timing-feasible at the requested voltage.
        """
        if voltage <= _THRESHOLD_V:
            raise PowerModelError(
                f"voltage {voltage} V is below the {_THRESHOLD_V} V "
                f"threshold")
        if clock_hz > self.max_clock_hz(voltage) * (1 + 1e-9):
            raise PowerModelError(
                f"{clock_hz / 1e6:.0f} MHz is not timing-feasible at "
                f"{voltage} V (max "
                f"{self.max_clock_hz(voltage) / 1e6:.0f} MHz)")
        dynamic = (voltage / self.voltage) ** 2
        leakage = (voltage / self.voltage) ** 3
        return replace(
            self,
            name=f"{self.name}@{voltage:.2f}V/{clock_hz / 1e6:.0f}MHz",
            voltage=voltage,
            clock_hz=clock_hz,
            flop_clock_fj=self.flop_clock_fj * dynamic,
            flop_write_fj=self.flop_write_fj * dynamic,
            gate_switch_fj=self.gate_switch_fj * dynamic,
            sram_read_fj_per_bit=self.sram_read_fj_per_bit * dynamic,
            sram_write_fj_per_bit=self.sram_write_fj_per_bit * dynamic,
            cam_compare_fj_per_bit=self.cam_compare_fj_per_bit * dynamic,
            wire_fj_per_bit_mm=self.wire_fj_per_bit_mm * dynamic,
            leak_flop_nw=self.leak_flop_nw * leakage,
            leak_gate_nw=self.leak_gate_nw * leakage,
            leak_sram_nw_per_bit=self.leak_sram_nw_per_bit * leakage,
        )


#: The card used throughout the study (ASAP7 at 500 MHz, like the paper).
ASAP7 = TechnologyCard()
