"""Differential validation: detailed core vs. functional executor.

The detailed core is oracle-driven — its frontend steps a private
functional model at fetch — so a second, independent functional run from
the *same checkpoint* must agree with it exactly: same commit PC stream,
same final registers (FP compared bitwise), same memory pages.  Any
divergence means one of the two execution paths is wrong, and the report
pins down the first point where they disagree.

The comparison aligns the two runs on *fetched* instructions: the core
stops once its retire target is reached, possibly with uops still in
flight, but its oracle state has already executed every fetched
instruction — so the reference executor runs for exactly
``core.frontend.fetched`` instructions.  The commit PC stream is checked
as a prefix (only retired uops have committed).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import DifferentialMismatch
from repro.sim.executor import Executor
from repro.uarch.core import BoomCore


def _f_bits(value: float) -> int:
    return int.from_bytes(struct.pack("<d", value), "little")


@dataclass(frozen=True)
class DifferentialReport:
    """Outcome of one lockstep comparison."""

    config_name: str
    #: instructions both models executed (fetched by the detailed core)
    instructions: int
    #: committed uops whose PCs were checked against the reference stream
    commit_pcs_checked: int
    #: human-readable description of the first divergence, or ``None``
    divergence: str | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def format(self) -> str:
        status = "OK" if self.ok else f"DIVERGED: {self.divergence}"
        return (f"differential [{self.config_name}] "
                f"{self.instructions} instructions, "
                f"{self.commit_pcs_checked} commit PCs checked: {status}")


def _first_divergence(detailed, reference) -> str | None:
    """Compare final architectural state; return the first mismatch."""
    for index, (got, want) in enumerate(zip(detailed.x, reference.x)):
        if got != want:
            return (f"x{index}: detailed=0x{got:x} reference=0x{want:x}")
    for index, (got, want) in enumerate(zip(detailed.f, reference.f)):
        if _f_bits(got) != _f_bits(want):
            return (f"f{index}: detailed bits 0x{_f_bits(got):x} "
                    f"reference bits 0x{_f_bits(want):x}")
    if detailed.pc != reference.pc:
        return f"pc: detailed=0x{detailed.pc:x} reference=0x{reference.pc:x}"
    if detailed.fcsr != reference.fcsr:
        return f"fcsr: detailed={detailed.fcsr} reference={reference.fcsr}"
    got_pages = detailed.memory.snapshot_pages()
    want_pages = reference.memory.snapshot_pages()
    for number in sorted(set(got_pages) | set(want_pages)):
        got = got_pages.get(number)
        want = want_pages.get(number)
        if got != want:
            side = ("missing in detailed" if got is None
                    else "missing in reference" if want is None
                    else "contents differ")
            return f"memory page {number}: {side}"
    return None


def run_differential(config, program, checkpoint,
                     max_instructions: int,
                     raise_on_mismatch: bool = True) -> DifferentialReport:
    """Run detailed and functional models from ``checkpoint`` and diff.

    ``max_instructions`` is the detailed core's retire budget (warm-up
    plus measurement window in real runs).  Raises
    :class:`DifferentialMismatch` on the first divergence unless
    ``raise_on_mismatch`` is False, in which case the report carries it.
    """
    core = BoomCore(config, program, state=checkpoint.restore())
    core.retire_log = []
    core.run(max_instructions)
    return diff_core_against_reference(
        core, program, checkpoint.restore(),
        raise_on_mismatch=raise_on_mismatch)


def diff_core_against_reference(core, program, reference_state,
                                raise_on_mismatch: bool = True
                                ) -> DifferentialReport:
    """Diff an already-run detailed core against a fresh reference run.

    ``core`` must have been constructed with ``retire_log`` enabled and
    run to whatever point is being validated; ``reference_state`` must be
    an independent restore of the same starting checkpoint.
    """
    detailed_state = core.frontend.state
    fetched = core.frontend.fetched

    reference_pcs: list[int] = []

    def hook(block_start: int, block_end: int) -> None:
        reference_pcs.extend(range(block_start, block_end + 4, 4))

    executor = Executor(program, state=reference_state)
    executed = executor.run(max_instructions=fetched, control_hook=hook)

    divergence = None
    checked = 0
    if executed != fetched:
        divergence = (f"instruction count: detailed fetched {fetched}, "
                      f"reference executed {executed}")
    else:
        # Commit order is program order, so the retire log must be a
        # prefix of the reference PC stream.
        for index, (uop, _cycle) in enumerate(core.retire_log or ()):
            if index >= len(reference_pcs):
                divergence = (f"commit #{index}: detailed committed "
                              f"pc=0x{uop.instr.pc:x} beyond the "
                              f"reference stream")
                break
            if uop.instr.pc != reference_pcs[index]:
                divergence = (f"commit #{index}: detailed "
                              f"pc=0x{uop.instr.pc:x} reference "
                              f"pc=0x{reference_pcs[index]:x}")
                break
            checked += 1
        if divergence is None:
            divergence = _first_divergence(detailed_state, reference_state)
    report = DifferentialReport(config_name=core.config.name,
                                instructions=fetched,
                                commit_pcs_checked=checked,
                                divergence=divergence)
    if divergence is not None and raise_on_mismatch:
        raise DifferentialMismatch(report.format())
    return report
