"""Cross-layer correctness tooling: invariants, differential runs, validators.

The paper's conclusions stand on two models — the cycle-level core and the
structural power model — and this package continuously proves them
self-consistent (DESIGN.md §10):

``repro.check.invariants``
    Conservation laws checked inside the detailed core while it runs
    (free-list totals, occupancy bounds, port budgets).  Opt-in via
    ``--check`` / ``REPRO_CHECK=1``; zero overhead when off.

``repro.check.differential``
    The fast functional executor re-runs the same checkpoint and the two
    architectural states are diffed, with first-divergence reporting.

``repro.check.validators``
    Semantic checks on power reports and experiment results (powers
    non-negative, weighted sums consistent, strictly finite JSON), applied
    at the sweep's artifact load/save boundaries.

``repro.check.runner``
    The ``repro-cli check`` entry point: runs all of the above against one
    (workload, config) pair and reports pass/fail.

``repro.check.storage``
    Consistency audit of the cache's concurrency metadata — intent
    journals, work-claim leases, stray scratch files, sweep state and
    the ``obs/latest`` pointer (``repro-cli recover --check``).
"""

from __future__ import annotations

import os

#: environment switch for runtime invariant checking; inherited by sweep
#: worker processes, so ``--check`` reaches parallel runs without touching
#: the cache fingerprint (checked runs produce byte-identical artifacts).
CHECK_ENV = "REPRO_CHECK"

_FALSY = frozenset({"", "0", "false", "no", "off"})


def checks_enabled() -> bool:
    """True when runtime invariant checking is switched on."""
    return os.environ.get(CHECK_ENV, "").strip().lower() not in _FALSY


def set_checks_enabled(enabled: bool) -> None:
    """Flip the ``REPRO_CHECK`` switch for this process and its children."""
    if enabled:
        os.environ[CHECK_ENV] = "1"
    else:
        os.environ.pop(CHECK_ENV, None)


from repro.check.differential import DifferentialReport, run_differential
from repro.check.invariants import CoreInvariantChecker
from repro.check.storage import StorageReport, validate_storage
from repro.check.validators import (
    require_valid_result,
    validate_report,
    validate_result,
)

__all__ = [
    "CHECK_ENV",
    "CoreInvariantChecker",
    "DifferentialReport",
    "StorageReport",
    "checks_enabled",
    "require_valid_result",
    "run_differential",
    "set_checks_enabled",
    "validate_report",
    "validate_result",
    "validate_storage",
]
