"""Semantic validators for power reports and experiment results.

These check what JSON parsing cannot: that a result's *values* are
physically possible.  They run at two boundaries of the sweep pipeline:

load
    A cached artifact that decodes but fails validation is a *skewed*
    artifact — corrupted in place, or written by a buggy model version.
    :func:`repro.check.validators` problems raised there become
    :class:`~repro.errors.ResultValidationError` (transient), so the
    artifact store discards and recomputes, exactly like a torn file.

save
    The same failure on a freshly computed result is a model bug:
    recomputing reproduces it, so it raises :class:`CheckError`
    (permanent) and the sweep records the failure instead of retrying.

Everything here is duck-typed against :class:`ExperimentResult` /
:class:`PowerReport` shapes (and their plain-dict forms) to avoid import
cycles with the flow layer.

The per-slot issue-queue powers (Fig. 8) use a different energy formula
than the ``int_issue`` component total (slots model clock/write/wakeup
per entry; the component adds the select tree, shift traffic, and gate
clock), so they are checked structurally — non-negative, finite — plus a
generous consistency band: the slot sum may not exceed a small multiple
of the component total.
"""

from __future__ import annotations

import math

from repro.errors import CheckError, ResultValidationError
from repro.power.area import ANALYZED_COMPONENTS, REST_OF_TILE

#: absolute slack (mW) for power comparisons
_EPS_MW = 1e-9
#: relative slack for weighted-sum identities
_REL_TOL = 1e-6
#: per-slot sums stay well under this multiple of the int_issue total
#: (calibrated: real runs land near 0.5-0.9x; the slack allows model
#: evolution without strangling it)
_SLOT_SUM_BAND = 3.0


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and math.isfinite(value)


def validate_report(report) -> list[str]:
    """Validate one :class:`PowerReport`; returns problem strings."""
    problems: list[str] = []
    if report.cycles <= 0:
        problems.append(f"cycles={report.cycles} is not positive")
    missing = [name for name in (*ANALYZED_COMPONENTS, REST_OF_TILE)
               if name not in report.components]
    if missing:
        problems.append(f"components missing: {', '.join(missing)}")
    for name, component in report.components.items():
        for field in ("leakage_mw", "internal_mw", "switching_mw"):
            value = getattr(component, field)
            if not _finite(value):
                problems.append(f"{name}.{field}={value!r} is not finite")
            elif value < 0.0:
                problems.append(f"{name}.{field}={value} is negative")
    if not problems:
        analyzed = report.analyzed_mw
        tile = report.tile_mw
        if analyzed > tile * (1.0 + _REL_TOL) + _EPS_MW:
            problems.append(
                f"analyzed components sum to {analyzed} mW, more than "
                f"the {tile} mW tile")
    slot_sum = 0.0
    for index, value in enumerate(report.int_issue_slot_mw):
        if not _finite(value):
            problems.append(f"int_issue_slot[{index}]={value!r} "
                            f"is not finite")
        elif value < 0.0:
            problems.append(f"int_issue_slot[{index}]={value} is negative")
        else:
            slot_sum += value
    if not problems and report.int_issue_slot_mw:
        component = report.components.get("int_issue")
        if component is not None:
            total = component.total_mw
            if slot_sum > _SLOT_SUM_BAND * total + _EPS_MW:
                problems.append(
                    f"per-slot issue powers sum to {slot_sum} mW, "
                    f"inconsistent with the {total} mW int_issue "
                    f"component")
    return problems


def _validate_run(run, index: int) -> list[str]:
    problems: list[str] = []
    where = f"runs[{index}]"
    if not 0.0 <= run.weight <= 1.0 + _REL_TOL:
        problems.append(f"{where}.weight={run.weight} outside [0, 1]")
    if run.cycles <= 0:
        problems.append(f"{where}.cycles={run.cycles} is not positive")
    if run.measured_instructions < 0:
        problems.append(f"{where}.measured_instructions="
                        f"{run.measured_instructions} is negative")
    if not _finite(run.ipc) or run.ipc < 0.0:
        problems.append(f"{where}.ipc={run.ipc!r} is not a finite "
                        f"non-negative number")
    elif run.cycles > 0:
        implied = run.ipc * run.cycles
        slack = max(1.0, _REL_TOL * run.measured_instructions)
        if abs(implied - run.measured_instructions) > slack:
            problems.append(
                f"{where}: ipc*cycles={implied:.3f} disagrees with "
                f"measured_instructions={run.measured_instructions}")
    problems.extend(f"{where}.report: {p}"
                    for p in validate_report(run.report))
    return problems


def validate_result(result) -> list[str]:
    """Validate one :class:`ExperimentResult`; returns problem strings."""
    problems: list[str] = []
    for field in ("scale", "coverage"):
        value = getattr(result, field)
        if not _finite(value):
            problems.append(f"{field}={value!r} is not finite")
    if not problems and not 0.0 <= result.coverage <= 1.0 + _REL_TOL:
        problems.append(f"coverage={result.coverage} outside [0, 1]")
    weight_total = 0.0
    for index, run in enumerate(result.runs):
        problems.extend(_validate_run(run, index))
        if _finite(run.weight):
            weight_total += run.weight
    # SimPoint weights are cluster shares of the *covered* intervals:
    # they must sum to (approximately) the reported coverage or, for
    # fully-covered selections, to 1.
    if not problems and result.runs:
        if weight_total > 1.0 + _REL_TOL:
            problems.append(f"SimPoint weights sum to {weight_total}, "
                            f"more than 1")
        elif weight_total < result.coverage - 1e-3:
            problems.append(
                f"SimPoint weights sum to {weight_total}, less than "
                f"the reported coverage {result.coverage}")
    return problems


def require_valid_result(result, boundary: str = "save") -> None:
    """Raise if ``result`` fails validation.

    ``boundary`` selects the failure class: ``"load"`` raises the
    transient :class:`ResultValidationError` (discard the artifact and
    recompute), ``"save"`` raises the permanent :class:`CheckError` (the
    model itself produced impossible values).
    """
    problems = validate_result(result)
    if not problems:
        return
    head = "; ".join(problems[:5])
    more = f" (+{len(problems) - 5} more)" if len(problems) > 5 else ""
    message = (f"result {result.workload}/{result.config_name} failed "
               f"validation: {head}{more}")
    if boundary == "load":
        raise ResultValidationError(message)
    raise CheckError(message)
