"""The ``repro-cli check`` entry point: one full validation pass.

For one (workload, config) pair this materializes the shared pipeline
stages (profile -> SimPoints -> checkpoints, cached like any sweep), then
runs every checkpoint through the detailed core with

* runtime invariants attached as the heartbeat observer (and a final
  check after the pipeline drains),
* the commit log enabled, so the run is differentially validated against
  an independent functional re-execution of the same checkpoint,
* the power model applied to the measured window and its report
  validated,

and finally assembles the SimPoint-weighted :class:`ExperimentResult`
from those runs and validates it — the same validators the sweep applies
at its artifact load/save boundaries.  One pass therefore exercises
every layer of :mod:`repro.check` against real model state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.check.differential import diff_core_against_reference
from repro.check.invariants import CoreInvariantChecker
from repro.check.validators import validate_report, validate_result
from repro.errors import CheckError


@dataclass
class CheckReport:
    """Outcome of one ``repro-cli check`` pass."""

    workload: str
    config_name: str
    checkpoints: int = 0
    invariant_checks: int = 0
    differential_instructions: int = 0
    commit_pcs_checked: int = 0
    #: failure messages, in the order they were found (empty when clean)
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def format(self) -> str:
        lines = [f"check {self.workload}/{self.config_name}:",
                 f"  checkpoints validated     {self.checkpoints}",
                 f"  invariant checks run      {self.invariant_checks}",
                 f"  differential instructions {self.differential_instructions}",
                 f"  commit PCs cross-checked  {self.commit_pcs_checked}"]
        if self.ok:
            lines.append("  PASS: all invariants, differential runs, and "
                         "validators clean")
        else:
            lines.append(f"  FAIL: {len(self.failures)} problem(s)")
            lines.extend(f"    - {message}" for message in self.failures)
        return "\n".join(lines)


def run_check(workload: str, config, settings, store) -> CheckReport:
    """Validate one (workload, config) pair end to end."""
    # Imported here: repro.pipeline.stages imports repro.check for its
    # own wiring, so a module-level import would be circular.
    from repro.pipeline.stages import ExperimentPipeline, assemble_result
    from repro.flow.results import SimPointRun
    from repro.power.model import PowerModel
    from repro.uarch.core import BoomCore
    from repro.workloads.suite import get_workload

    report = CheckReport(workload=workload, config_name=config.name)
    pipeline = ExperimentPipeline(store, settings)
    program = pipeline.program(workload)
    selection = pipeline.selection(workload)
    checkpoints = pipeline.checkpoints(workload)
    interval = get_workload(workload).interval_for_scale(settings.scale)
    model = PowerModel(config)
    runs: list[SimPointRun] = []

    for checkpoint in checkpoints:
        report.checkpoints += 1
        core = BoomCore(config, program, state=checkpoint.restore())
        core.retire_log = []
        checker = CoreInvariantChecker(core)
        window = checkpoint.measure_instructions or interval
        try:
            if checkpoint.warmup_instructions:
                core.run(checkpoint.warmup_instructions, heartbeat=checker)
            stats = core.begin_measurement()
            measured = core.run(window, heartbeat=checker)
            checker.check()
        except CheckError as exc:
            report.invariant_checks += checker.checks_run
            report.failures.append(
                f"checkpoint {checkpoint.interval_index}: {exc}")
            continue
        report.invariant_checks += checker.checks_run

        diff = diff_core_against_reference(core, program,
                                           checkpoint.restore(),
                                           raise_on_mismatch=False)
        report.differential_instructions += diff.instructions
        report.commit_pcs_checked += diff.commit_pcs_checked
        if not diff.ok:
            report.failures.append(
                f"checkpoint {checkpoint.interval_index}: {diff.format()}")

        power = model.report(stats, workload=workload)
        report.failures.extend(
            f"checkpoint {checkpoint.interval_index} power: {problem}"
            for problem in validate_report(power))
        runs.append(SimPointRun(
            interval_index=checkpoint.interval_index,
            weight=checkpoint.weight,
            warmup_instructions=checkpoint.warmup_instructions,
            measured_instructions=measured,
            cycles=stats.cycles,
            ipc=stats.ipc,
            report=power))

    if runs:
        result = assemble_result(workload, config, settings, selection,
                                 runs)
        report.failures.extend(f"result: {problem}"
                               for problem in validate_result(result))
    return report
