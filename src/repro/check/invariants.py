"""Runtime conservation laws for the detailed core.

A :class:`CoreInvariantChecker` is attached to a :class:`BoomCore` as (or
wrapping) the heartbeat observer of :meth:`BoomCore.run`, so it fires every
``_HEARTBEAT_STRIDE`` cycles *between* pipeline steps — never mid-step —
and sees settled state.  Like the heartbeat it strictly observes: it reads
structural occupancies and counters, recomputes what they must add up to,
and raises :class:`~repro.errors.InvariantViolation` on the first law that
fails.  With checks off the core's hot loop is untouched, and a checked
run retires exactly the same instructions as an unchecked one.

The laws, by structure:

rename (per unit)
    ``free`` never negative, never above ``phys - 32``; every in-flight
    destination in the ROB holds exactly one physical register, so
    ``free + in_flight == phys - 32`` and lifetime
    ``allocs - frees == in_flight``; snapshot restores never outnumber
    snapshots (the lazy-FP-snapshot bug this PR fixes broke exactly this).

occupancy
    ROB, the three issue queues, the fetch buffer, and the LDQ/STQ all
    within their configured capacities; issue-queue residents are exactly
    the dispatched-not-issued uops in the ROB; the core's
    ``branches_in_flight`` / ``fp_in_flight`` shadow counters agree with a
    ROB scan; LDQ/STQ contents are exactly the ROB's loads/stores.

caches
    Live MSHRs (fills still in flight) never exceed the configured count.

register-file ports
    Over each window between two checks, read/write counts stay within
    what the issue bandwidth can generate: reads are counted at issue, so
    ``Δreads <= Δcycles * read_bandwidth``; writes are counted at
    completion and complete bursts can drain the whole in-flight window,
    so ``Δwrites <= Δcycles * issue_width + rob_entries``.  (The int RF
    read-port count equals ``2 * (alu + mem)`` in every configuration;
    the bandwidth bound adds only the FP-queue ops that read an integer
    operand, e.g. ``fcvt.d.w``.)
"""

from __future__ import annotations

from repro.errors import InvariantViolation
from repro.uarch.uop import DISPATCHED


class CoreInvariantChecker:
    """Conservation-law observer for one :class:`BoomCore`.

    Use it directly as the ``heartbeat`` argument of ``core.run``, or pass
    ``wrapped=`` to chain an existing observer (e.g. a tracing heartbeat)
    behind the checks::

        checker = CoreInvariantChecker(core)
        core.run(budget, heartbeat=checker)
        checker.check()   # final state, after the run returns
    """

    def __init__(self, core, wrapped=None) -> None:
        self.core = core
        self.wrapped = wrapped
        self.checks_run = 0
        # (stats identity, cycles, int reads/writes, fp reads/writes) at
        # the previous check — the baseline for port-budget deltas.
        self._port_baseline: tuple | None = None

    # -- heartbeat protocol -------------------------------------------

    def __call__(self, retired: int, cycles: int) -> None:
        self.check()
        if self.wrapped is not None:
            self.wrapped(retired, cycles)

    # -- the laws ------------------------------------------------------

    def check(self) -> None:
        """Run every invariant against the core's current state."""
        self.checks_run += 1
        core = self.core
        rob_uops = list(core.rob)
        self._check_rename(rob_uops)
        self._check_occupancy(rob_uops)
        self._check_lsu(rob_uops)
        self._check_mshrs()
        self._check_port_budgets()

    def _fail(self, invariant: str, message: str) -> None:
        raise InvariantViolation(invariant, message, cycle=self.core.cycle)

    def _check_rename(self, rob_uops: list) -> None:
        for unit in (self.core.rename.int_unit, self.core.rename.fp_unit):
            kind = unit.kind
            budget = unit.phys_regs - 32
            in_flight = sum(1 for u in rob_uops if u.dest_kind == kind)
            if unit.free < 0:
                self._fail(f"rename.{kind}.free_nonneg",
                           f"free list underflow: free={unit.free}")
            if unit.free > budget:
                self._fail(f"rename.{kind}.free_bound",
                           f"free={unit.free} exceeds phys-32={budget}")
            if unit.free + in_flight != budget:
                self._fail(
                    f"rename.{kind}.conservation",
                    f"free={unit.free} + in_flight={in_flight} != "
                    f"phys-32={budget}")
            if unit.total_allocs - unit.total_frees != in_flight:
                self._fail(
                    f"rename.{kind}.alloc_balance",
                    f"allocs={unit.total_allocs} - "
                    f"frees={unit.total_frees} != in_flight={in_flight}")
            if unit.total_restores > unit.total_snapshots:
                self._fail(
                    f"rename.{kind}.snapshot_balance",
                    f"restores={unit.total_restores} exceed "
                    f"snapshots={unit.total_snapshots}")

    def _check_occupancy(self, rob_uops: list) -> None:
        core = self.core
        config = core.config
        if len(core.rob) > core.rob.entries:
            self._fail("rob.capacity",
                       f"{len(core.rob)} uops in a "
                       f"{core.rob.entries}-entry ROB")
        queued = 0
        for name, queue in core._queues.items():
            occupancy = len(queue)
            queued += occupancy
            if occupancy > queue.entries:
                self._fail(f"iq.{name}.capacity",
                           f"{occupancy} uops in a "
                           f"{queue.entries}-entry queue")
        dispatched = sum(1 for u in rob_uops if u.state == DISPATCHED)
        if queued != dispatched:
            self._fail("iq.rob_membership",
                       f"{queued} uops resident in issue queues but "
                       f"{dispatched} dispatched-not-issued uops in ROB")
        buffered = len(core.frontend.buffer)
        if buffered > config.fetch_buffer_entries:
            self._fail("frontend.buffer_capacity",
                       f"{buffered} uops in a "
                       f"{config.fetch_buffer_entries}-entry fetch buffer")
        branches = sum(1 for u in rob_uops if u.is_control)
        if core.branches_in_flight != branches:
            self._fail("branches.accounting",
                       f"branches_in_flight={core.branches_in_flight} "
                       f"but ROB holds {branches} control uops")
        if core.branches_in_flight > config.max_branches:
            self._fail("branches.capacity",
                       f"{core.branches_in_flight} branches in flight, "
                       f"max_branches={config.max_branches}")
        fp = sum(1 for u in rob_uops
                 if u.dest_kind == "f" or u.queue == "fp")
        if core.fp_in_flight != fp:
            self._fail("fp.accounting",
                       f"fp_in_flight={core.fp_in_flight} "
                       f"but ROB holds {fp} FP uops")

    def _check_lsu(self, rob_uops: list) -> None:
        core = self.core
        config = core.config
        # White-box: the LDQ/STQ lists are the LSU's only state.
        ldq = len(core.lsu._ldq)
        stq = len(core.lsu._stq)
        if ldq > config.ldq_entries:
            self._fail("lsu.ldq_capacity",
                       f"{ldq} loads in a {config.ldq_entries}-entry LDQ")
        if stq > config.stq_entries:
            self._fail("lsu.stq_capacity",
                       f"{stq} stores in a {config.stq_entries}-entry STQ")
        loads = sum(1 for u in rob_uops if u.is_load)
        stores = sum(1 for u in rob_uops if u.is_store)
        if ldq != loads:
            self._fail("lsu.ldq_accounting",
                       f"LDQ holds {ldq} loads but ROB holds {loads}")
        if stq != stores:
            self._fail("lsu.stq_accounting",
                       f"STQ holds {stq} stores but ROB holds {stores}")

    def _check_mshrs(self) -> None:
        core = self.core
        cycle = core.cycle
        for name, cache in (("icache", core.icache), ("dcache",
                                                      core.dcache)):
            live = cache.mshrs_in_flight(cycle)
            limit = cache.params.mshrs
            if live > limit:
                self._fail(f"cache.{name}.mshr_capacity",
                           f"{live} fills in flight, {limit} MSHRs")

    def _check_port_budgets(self) -> None:
        core = self.core
        stats = core.stats
        snapshot = (stats.cycles,
                    stats.int_regfile.reads, stats.int_regfile.writes,
                    stats.fp_regfile.reads, stats.fp_regfile.writes)
        baseline = self._port_baseline
        self._port_baseline = (id(stats),) + snapshot
        if baseline is None or baseline[0] != id(stats):
            # First check, or begin_measurement() swapped the stats tree
            # in between: no comparable window, just re-baseline.
            return
        d_cycles = snapshot[0] - baseline[1]
        if d_cycles <= 0:
            return
        config = core.config
        issue_width = (config.alu_units + config.mem_units
                       + config.fp_units)
        # Reads happen at issue: 2 int operands per int/mem-queue op plus
        # one for FP-queue ops with an integer source; 3 fp operands per
        # FP-queue op (FMA) plus store data on the mem queue.
        int_read_bw = (2 * (config.alu_units + config.mem_units)
                       + config.fp_units)
        fp_read_bw = 3 * config.fp_units + config.mem_units
        burst_slack = config.rob_entries
        budgets = (
            ("int_regfile.read_ports", snapshot[1] - baseline[2],
             d_cycles * int_read_bw),
            ("int_regfile.write_ports", snapshot[2] - baseline[3],
             d_cycles * issue_width + burst_slack),
            ("fp_regfile.read_ports", snapshot[3] - baseline[4],
             d_cycles * fp_read_bw),
            ("fp_regfile.write_ports", snapshot[4] - baseline[5],
             d_cycles * issue_width + burst_slack),
        )
        for invariant, used, budget in budgets:
            if used > budget:
                self._fail(invariant,
                           f"{used} accesses in a {d_cycles}-cycle "
                           f"window, budget {budget}")
