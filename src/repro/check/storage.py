"""Validators for the cache's concurrency metadata (DESIGN.md §12).

Where :mod:`repro.check.validators` proves artifact *values* are
physically possible, this module proves the cache's *bookkeeping* is
consistent: every journal parses and follows the claim→commit/abort
protocol, every lease names a live owner, no dead process left scratch
files or a ``running`` sweep state behind, and the ``obs/latest``
pointer resolves.  ``repro-cli recover --check`` runs it after (or
instead of) a repair pass; a clean report is the machine-checkable
statement that ``--resume`` can be trusted.

Everything reported here is *diagnosable by recovery*: each problem
string names the finding, and :func:`repro.pipeline.journal.recover_cache`
is the repair for all of them.  Live processes' state (their journals,
leases and tmp files) is never a problem — in-flight work is healthy.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.pipeline.journal import (
    QUARANTINE_DIR_NAME,
    _iter_stray_tmp,
    _tmp_pid,
    open_intents,
    read_journal,
    journal_files,
)
from repro.pipeline.journal import _file_owner as _journal_owner
from repro.pipeline.locking import WorkClaims, boot_id, process_alive

__all__ = ["StorageReport", "validate_storage"]


@dataclass
class StorageReport:
    """Findings of one storage-consistency pass."""

    journals_scanned: int = 0
    leases_scanned: int = 0
    problems: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def to_dict(self) -> dict:
        return {"journals_scanned": self.journals_scanned,
                "leases_scanned": self.leases_scanned,
                "problems": list(self.problems),
                "notes": list(self.notes)}

    def format(self) -> str:
        lines = [f"storage check: {self.journals_scanned} journal(s), "
                 f"{self.leases_scanned} lease(s) scanned"]
        if self.ok:
            lines.append("  OK: journals, leases, sweep state and "
                         "pointers are consistent")
        else:
            lines.extend(f"  PROBLEM: {problem}"
                         for problem in self.problems)
            lines.append("  (repro-cli recover repairs all of the above)")
        lines.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(lines)


def _journal_owner_dead(path: Path) -> bool | None:
    """True/False for a well-formed journal name, ``None`` if malformed."""
    owner = _journal_owner(path)
    if owner is None:
        return None
    pid, boot8 = owner
    return not process_alive(pid, None if boot8 == boot_id()[:8] else boot8)


def _check_journals(cache_root: Path, report: StorageReport) -> None:
    for path in journal_files(cache_root):
        report.journals_scanned += 1
        dead = _journal_owner_dead(path)
        if dead is None:
            report.problems.append(
                f"journal {path.name}: unparseable file name "
                f"(expected intents-<boot>-<pid>.jsonl)")
            continue
        records = read_journal(path)
        garbage = sum(1 for record in records if record.op == "garbage")
        if garbage:
            report.problems.append(
                f"journal {path.name}: {garbage} corrupt record(s) "
                f"before the final line")
        claimed = {(r.stage, r.fingerprint) for r in records
                   if r.op == "claim"}
        for record in records:
            if record.op == "commit" and \
                    (record.stage, record.fingerprint) not in claimed:
                report.problems.append(
                    f"journal {path.name}: commit without claim for "
                    f"{record.stage}/{record.fingerprint[:12]}")
        pending = open_intents(records)
        if dead and pending:
            report.problems.append(
                f"journal {path.name}: dead owner left "
                f"{len(pending)} open claim(s) — artifacts may be torn")
        elif not dead and pending:
            report.notes.append(
                f"journal {path.name}: {len(pending)} claim(s) "
                f"in flight (owner alive)")


def _check_leases(cache_root: Path, report: StorageReport) -> None:
    for path, owner in WorkClaims(cache_root).iter_leases():
        report.leases_scanned += 1
        if owner is None:
            report.problems.append(
                f"lease {path.parent.name}/{path.name}: "
                f"malformed owner record")
        elif not process_alive(int(owner.get("pid", 0) or 0),
                               owner.get("boot_id")):
            report.problems.append(
                f"lease {path.parent.name}/{path.name}: "
                f"owner pid {owner.get('pid')} is dead")


def _check_tmp(cache_root: Path, report: StorageReport) -> None:
    for tmp in _iter_stray_tmp(cache_root):
        pid = _tmp_pid(tmp)
        if pid is not None and not process_alive(pid, None):
            report.problems.append(
                f"stray scratch {tmp.parent.name}/{tmp.name}: "
                f"writer pid {pid} is dead")


def _check_sweep_state(cache_root: Path, report: StorageReport) -> None:
    state_path = cache_root / "sweep_state.json"
    if not state_path.exists():
        return
    try:
        state = json.loads(state_path.read_text())
        if not isinstance(state, dict):
            raise ValueError("not an object")
    except (OSError, ValueError) as exc:
        report.problems.append(f"sweep state: unparseable ({exc})")
        return
    owner = state.get("owner") or {}
    if state.get("status") == "running" and \
            not process_alive(int(owner.get("pid", 0) or 0),
                              owner.get("boot_id")):
        report.problems.append(
            "sweep state: status 'running' but owner is dead "
            "(interrupted sweep, --resume needs repair first)")


def _check_pointer(cache_root: Path, report: StorageReport) -> None:
    from repro.obs.session import LATEST_NAME, OBS_DIR_NAME

    pointer = cache_root / OBS_DIR_NAME / LATEST_NAME
    if not pointer.exists():
        return
    try:
        name = pointer.read_text().strip()
    except OSError:
        name = ""
    if not name or not (pointer.parent / name).is_dir():
        report.problems.append(
            f"obs/latest points at {name!r}, which does not exist")


def validate_storage(cache_root: Path | str) -> StorageReport:
    """Audit journals, leases, scratch files, state and pointers.

    Read-only: never repairs anything.  A non-empty ``problems`` list
    means :func:`repro.pipeline.journal.recover_cache` has work to do.
    """
    cache_root = Path(cache_root)
    report = StorageReport()
    if not cache_root.is_dir():
        return report
    _check_journals(cache_root, report)
    _check_leases(cache_root, report)
    _check_tmp(cache_root, report)
    _check_sweep_state(cache_root, report)
    _check_pointer(cache_root, report)
    quarantine = cache_root / QUARANTINE_DIR_NAME
    if quarantine.is_dir():
        held = sum(1 for _ in quarantine.rglob("*") if _.is_file())
        if held:
            report.notes.append(
                f"quarantine holds {held} file(s) from past recoveries "
                f"(safe to delete once inspected)")
    return report
