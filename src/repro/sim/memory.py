"""Sparse, paged byte-addressable memory.

Backing store is a dictionary of 4 KiB ``bytearray`` pages allocated on
first touch, so a program can scatter data across a 64-bit address space
without cost.  Accesses are little-endian, matching RISC-V.  The page map
is also the unit of checkpointing: :meth:`Memory.snapshot_pages` captures
exactly the touched pages.
"""

from __future__ import annotations

from repro.errors import MemoryFault

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
_PAGE_MASK = PAGE_SIZE - 1

#: pages below this number (32 MiB of address space — text, data, stack
#: and heap base all live here) also get a slot in a flat array, so the
#: scalar fast path is a list index instead of a dict probe
_DIRECT_PAGES = 1 << 13


class Memory:
    """Sparse paged memory with little-endian scalar accessors.

    The dict of pages remains the single source of truth (snapshots,
    clones and page counts all walk it); ``_direct`` is a read-through
    acceleration structure for the low address range the executor's
    loads and stores almost always hit.
    """

    __slots__ = ("_pages", "_direct")

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._direct: list[bytearray | None] = [None] * _DIRECT_PAGES

    # ------------------------------------------------------------------
    # bulk operations
    # ------------------------------------------------------------------

    def write_bytes(self, address: int, data: bytes) -> None:
        """Copy ``data`` into memory starting at ``address``."""
        if address < 0:
            raise MemoryFault(address, "negative address")
        offset = 0
        remaining = len(data)
        while remaining:
            page = self._page(address + offset)
            page_offset = (address + offset) & _PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - page_offset)
            page[page_offset:page_offset + chunk] = data[offset:offset + chunk]
            offset += chunk
            remaining -= chunk

    def read_bytes(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address``."""
        if address < 0:
            raise MemoryFault(address, "negative address")
        out = bytearray()
        offset = 0
        while offset < length:
            page = self._page(address + offset)
            page_offset = (address + offset) & _PAGE_MASK
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            out += page[page_offset:page_offset + chunk]
            offset += chunk
        return bytes(out)

    # ------------------------------------------------------------------
    # scalar accessors (the executor's hot path)
    # ------------------------------------------------------------------

    def load(self, address: int, width: int) -> int:
        """Load ``width`` bytes at ``address`` as an unsigned integer."""
        page_offset = address & _PAGE_MASK
        if page_offset + width <= PAGE_SIZE:
            number = address >> PAGE_SHIFT
            if 0 <= number < _DIRECT_PAGES:
                page = self._direct[number]
            else:
                page = self._pages.get(number)
            if page is None:
                page = self._page(address)
            return int.from_bytes(page[page_offset:page_offset + width],
                                  "little")
        return int.from_bytes(self.read_bytes(address, width), "little")

    def store(self, address: int, value: int, width: int) -> None:
        """Store the low ``width`` bytes of ``value`` at ``address``."""
        page_offset = address & _PAGE_MASK
        data = (value & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
        if page_offset + width <= PAGE_SIZE:
            number = address >> PAGE_SHIFT
            if 0 <= number < _DIRECT_PAGES:
                page = self._direct[number]
            else:
                page = self._pages.get(number)
            if page is None:
                page = self._page(address)
            page[page_offset:page_offset + width] = data
        else:
            self.write_bytes(address, data)

    # ------------------------------------------------------------------
    # checkpoint support
    # ------------------------------------------------------------------

    def snapshot_pages(self) -> dict[int, bytes]:
        """Return an immutable copy of every touched page (by page number)."""
        return {number: bytes(page) for number, page in self._pages.items()}

    def restore_pages(self, pages: dict[int, bytes]) -> None:
        """Replace memory contents with a page snapshot."""
        self._pages = {number: bytearray(page)
                       for number, page in pages.items()}
        self._rebuild_direct()

    def touched_page_count(self) -> int:
        """Number of pages that have been allocated."""
        return len(self._pages)

    def clone(self) -> "Memory":
        """Return an independent deep copy of this memory."""
        copy = Memory()
        copy._pages = {number: bytearray(page)
                       for number, page in self._pages.items()}
        copy._rebuild_direct()
        return copy

    # ------------------------------------------------------------------

    def _rebuild_direct(self) -> None:
        direct: list[bytearray | None] = [None] * _DIRECT_PAGES
        for number, page in self._pages.items():
            if 0 <= number < _DIRECT_PAGES:
                direct[number] = page
        self._direct = direct

    def _page(self, address: int) -> bytearray:
        if address < 0:
            raise MemoryFault(address, "negative address")
        number = address >> PAGE_SHIFT
        page = self._pages.get(number)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[number] = page
            if number < _DIRECT_PAGES:
                self._direct[number] = page
        return page
