"""Retire-stream tracing utilities for debugging and validation.

The detailed core and the functional simulator both retire architecturally
visible instruction streams; :class:`RetireTrace` captures a bounded window
of the most recent retirements so divergences between the two models can be
localized in tests.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class TraceEntry:
    """One retired instruction: sequence number, pc, and mnemonic."""

    sequence: int
    pc: int
    mnemonic: str


class RetireTrace:
    """A bounded ring buffer of retired instructions."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._entries: deque[TraceEntry] = deque(maxlen=capacity)
        self._sequence = 0

    def record(self, instr: Instruction) -> None:
        """Append one retired instruction."""
        self._entries.append(
            TraceEntry(self._sequence, instr.pc, instr.mnemonic))
        self._sequence += 1

    @property
    def total_recorded(self) -> int:
        """Total instructions ever recorded (including evicted ones)."""
        return self._sequence

    def entries(self) -> list[TraceEntry]:
        """The retained window, oldest first."""
        return list(self._entries)

    def last(self) -> TraceEntry | None:
        """Most recent entry, or ``None`` if empty."""
        return self._entries[-1] if self._entries else None

    def format(self) -> str:
        """Human-readable dump of the retained window."""
        return "\n".join(f"{e.sequence:>10}  0x{e.pc:08x}  {e.mnemonic}"
                         for e in self._entries)


def diff_traces(expected: list[TraceEntry],
                actual: list[TraceEntry]) -> int | None:
    """Index of the first mismatching (pc, mnemonic) pair, or ``None``.

    Sequence numbers are ignored so windows from different sources can be
    compared positionally.
    """
    for index, (a, b) in enumerate(zip(expected, actual)):
        if (a.pc, a.mnemonic) != (b.pc, b.mnemonic):
            return index
    if len(expected) != len(actual):
        return min(len(expected), len(actual))
    return None
