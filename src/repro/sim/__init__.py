"""Functional simulation: memory, architectural state, executor, syscalls."""

from repro.sim.executor import Executor
from repro.sim.memory import Memory, PAGE_SIZE
from repro.sim.state import ArchState, MASK64, to_signed, to_unsigned
from repro.sim.syscalls import SYS_EXIT, SYS_PRINT_INT, SYS_WRITE
from repro.sim.tracing import RetireTrace, TraceEntry, diff_traces

__all__ = [
    "Executor",
    "Memory",
    "PAGE_SIZE",
    "ArchState",
    "MASK64",
    "to_signed",
    "to_unsigned",
    "SYS_EXIT",
    "SYS_PRINT_INT",
    "SYS_WRITE",
    "RetireTrace",
    "TraceEntry",
    "diff_traces",
]
