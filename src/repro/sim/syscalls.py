"""Minimal bare-metal syscall layer (the ``ecall`` environment).

Workloads in this study run on a proxy-kernel-like environment, matching
how the paper's MiBench/Embench binaries run under Spike and the Chipyard
testbench.  Three calls are implemented:

* ``exit`` (a7 = 93): terminate with exit code a0,
* ``write`` (a7 = 64): append ``a2`` bytes at address ``a1`` to the
  program's output buffer (the fd in a0 is ignored),
* ``print_int`` (a7 = 1): append the decimal rendering of a0 — a
  convenience used by workload self-checks.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.state import ArchState, to_signed

SYS_PRINT_INT = 1
SYS_WRITE = 64
SYS_EXIT = 93


def handle_ecall(state: ArchState) -> None:
    """Execute the environment call selected by register a7 (x17)."""
    number = state.x[17]
    if number == SYS_EXIT:
        state.exited = True
        state.exit_code = state.x[10] & 0xFF
    elif number == SYS_WRITE:
        address = state.x[11]
        length = state.x[12]
        if length > (1 << 20):
            raise SimulationError(f"write syscall of {length} bytes refused")
        state.output += state.memory.read_bytes(address, length)
    elif number == SYS_PRINT_INT:
        state.output += str(to_signed(state.x[10])).encode()
        state.output += b"\n"
    else:
        raise SimulationError(f"unsupported syscall number {number}")
