"""The functional ISA simulator (our Spike analogue).

The executor runs a pre-decoded :class:`~repro.isa.program.Program` against
an :class:`~repro.sim.state.ArchState` at interpreter speed.  It serves
three roles in the experimental flow (paper Fig. 4):

1. **profiling** — with a ``control_hook`` installed it reports every
   dynamic basic block so :mod:`repro.profiling` can build the basic-block
   vectors gem5 produces in the paper's flow;
2. **checkpoint creation** — ``run(max_instructions=N)`` retires exactly
   ``N`` instructions so checkpoints land on precise SimPoint boundaries;
3. **reference execution** — workload self-checks compare detailed-core
   results against this model.

Two dispatch strategies are available (``dispatch=`` constructor arg):

``superblock`` (default)
    Each static basic block is lazily translated — once, at first entry —
    into a fused handler function, so the fetch -> decode -> dict-lookup
    cycle and the per-instruction loop overhead are paid per *block*
    instead of per dynamic instruction (the same trick binary translators
    play, minus the codegen).  Retire counts, ``control_hook`` semantics,
    and exception behavior are bit-identical to the reference loop; the
    equivalence suite in ``tests/sim/test_equivalence.py`` pins both to
    golden fixtures captured from the pre-optimization implementation.

``reference``
    The original per-instruction loop, kept as the semantic baseline the
    optimized path is diffed against (and for A/B benchmarking).

Example::

    from repro.isa.assembler import assemble
    from repro.sim.executor import Executor

    program = assemble(SOURCE)
    executor = Executor(program)
    executor.run()
    assert executor.state.exit_code == 0
"""

from __future__ import annotations

import weakref
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.isa.program import Program, TEXT_BASE
from repro.sim.semantics import _sext32, semantics_for
from repro.sim.state import MASK64, ArchState, to_signed

#: ``control_hook(block_start_pc, block_end_pc)`` is invoked when a dynamic
#: basic block ends (i.e., at every executed control-flow instruction); the
#: block spans the instructions from start to end inclusive.
ControlHook = Callable[[int, int], None]

_DEFAULT_FUEL = 1 << 62

#: superblock tuple layout: (block_fn, total_count, has_ecall,
#: term_is_control, end_pc); ``block_fn(state)`` executes the whole block
#: and returns the next pc (never ``None``)
_Block = tuple

#: per-program superblock caches, shared by every executor bound to the
#: same Program object (the sweep builds many executors per program —
#: profiling, checkpointing, self-checks — and translation cost must be
#: paid once, not per executor).  Keyed by id() because the Program
#: dataclass is unhashable; a weakref finalizer evicts the entry when the
#: program dies so a recycled id can never serve stale blocks.
_BLOCK_CACHES: dict[int, list] = {}


def _blocks_for(program: Program) -> list:
    key = id(program)
    cache = _BLOCK_CACHES.get(key)
    if cache is None:
        cache = [None] * len(program.instructions)
        _BLOCK_CACHES[key] = cache
        weakref.finalize(program, _BLOCK_CACHES.pop, key, None)
    return cache


#: expression templates for x-register-writing ops: each must replicate
#: its semantics.py handler exactly, with register indices and immediates
#: folded in as constants (``_x`` is ``state.x``, ``_mem`` is
#: ``state.memory``, ``_M``/``_sg``/``_sx`` are MASK64/to_signed/_sext32)
_XW_TEMPLATES: dict[str, Callable[[int, int, int], str]] = {
    "add": lambda r1, r2, imm: f"(_x[{r1}] + _x[{r2}]) & _M",
    "sub": lambda r1, r2, imm: f"(_x[{r1}] - _x[{r2}]) & _M",
    "and": lambda r1, r2, imm: f"_x[{r1}] & _x[{r2}]",
    "or": lambda r1, r2, imm: f"_x[{r1}] | _x[{r2}]",
    "xor": lambda r1, r2, imm: f"_x[{r1}] ^ _x[{r2}]",
    "sll": lambda r1, r2, imm: f"(_x[{r1}] << (_x[{r2}] & 63)) & _M",
    "srl": lambda r1, r2, imm: f"_x[{r1}] >> (_x[{r2}] & 63)",
    "sra": lambda r1, r2, imm: f"(_sg(_x[{r1}]) >> (_x[{r2}] & 63)) & _M",
    "slli": lambda r1, r2, imm: f"(_x[{r1}] << {imm}) & _M",
    "srli": lambda r1, r2, imm: f"_x[{r1}] >> {imm}",
    "srai": lambda r1, r2, imm: f"(_sg(_x[{r1}]) >> {imm}) & _M",
    "addi": lambda r1, r2, imm: f"(_x[{r1}] + {imm}) & _M",
    "andi": lambda r1, r2, imm: f"_x[{r1}] & {imm & MASK64}",
    "ori": lambda r1, r2, imm: f"_x[{r1}] | {imm & MASK64}",
    "xori": lambda r1, r2, imm: f"_x[{r1}] ^ {imm & MASK64}",
    "slti": lambda r1, r2, imm: f"1 if _sg(_x[{r1}]) < {imm} else 0",
    "sltiu": lambda r1, r2, imm: f"1 if _x[{r1}] < {imm & MASK64} else 0",
    "slt": lambda r1, r2, imm:
        f"1 if _sg(_x[{r1}]) < _sg(_x[{r2}]) else 0",
    "sltu": lambda r1, r2, imm: f"1 if _x[{r1}] < _x[{r2}] else 0",
    "lui": lambda r1, r2, imm: f"{_sext32(imm << 12)}",
    "addw": lambda r1, r2, imm: f"_sx(_x[{r1}] + _x[{r2}])",
    "addiw": lambda r1, r2, imm: f"_sx(_x[{r1}] + {imm})",
    "slliw": lambda r1, r2, imm: f"_sx(_x[{r1}] << {imm})",
    "srliw": lambda r1, r2, imm:
        f"_sx((_x[{r1}] & 4294967295) >> {imm})",
    "mul": lambda r1, r2, imm: f"(_x[{r1}] * _x[{r2}]) & _M",
    "ld": lambda r1, r2, imm: f"_mem.load((_x[{r1}] + {imm}) & _M, 8)",
    "lwu": lambda r1, r2, imm: f"_mem.load((_x[{r1}] + {imm}) & _M, 4)",
    "lw": lambda r1, r2, imm:
        f"_sx(_mem.load((_x[{r1}] + {imm}) & _M, 4))",
    "lbu": lambda r1, r2, imm: f"_mem.load((_x[{r1}] + {imm}) & _M, 1)",
    "lhu": lambda r1, r2, imm: f"_mem.load((_x[{r1}] + {imm}) & _M, 2)",
}

_STORE_WIDTHS = {"sd": 8, "sw": 4, "sh": 2, "sb": 1}

#: unsigned branch comparison operators (signed ones go through ``_sg``)
_BRANCH_OPS = {"beq": "==", "bne": "!=", "bltu": "<", "bgeu": ">="}
_SIGNED_BRANCH_OPS = {"blt": "<", "bge": ">="}


def _inline_body_lines(instr) -> list[str] | None:
    """Inline source for a straight-line instruction, or ``None``."""
    m = instr.mnemonic
    template = _XW_TEMPLATES.get(m)
    if template is not None:
        if not instr.rd:
            return []  # the handler is a no-op for rd == x0
        return [f"    _x[{instr.rd}] = "
                f"{template(instr.rs1, instr.rs2, instr.imm)}"]
    width = _STORE_WIDTHS.get(m)
    if width is not None:
        return [f"    _mem.store((_x[{instr.rs1}] + {instr.imm}) & _M, "
                f"_x[{instr.rs2}], {width})"]
    if m in ("lb", "lh"):
        if not instr.rd:
            return []
        width, bound, bias = (1, 0x80, 0x100) if m == "lb" \
            else (2, 0x8000, 0x10000)
        return [f"    _v = _mem.load((_x[{instr.rs1}] + {instr.imm}) "
                f"& _M, {width})",
                f"    _x[{instr.rd}] = "
                f"(_v - {bias} if _v >= {bound} else _v) & _M"]
    return None


def _inline_term_lines(instr) -> list[str] | None:
    """Inline source for a control terminator (ends in ``return``)."""
    m = instr.mnemonic
    target = None if instr.imm is None else instr.pc + instr.imm
    op = _BRANCH_OPS.get(m)
    if op is not None:
        return [f"    return {target} "
                f"if _x[{instr.rs1}] {op} _x[{instr.rs2}] else _fall"]
    op = _SIGNED_BRANCH_OPS.get(m)
    if op is not None:
        return [f"    return {target} "
                f"if _sg(_x[{instr.rs1}]) {op} _sg(_x[{instr.rs2}]) "
                f"else _fall"]
    if m == "jal":
        lines = []
        if instr.rd:
            lines.append(f"    _x[{instr.rd}] = "
                         f"{(instr.pc + 4) & MASK64}")
        lines.append(f"    return {target}")
        return lines
    if m == "jalr":
        # Target before link write: rs1 may alias rd.
        lines = [f"    _v = (_x[{instr.rs1}] + {instr.imm}) "
                 f"& {MASK64 & ~1}"]
        if instr.rd:
            lines.append(f"    _x[{instr.rd}] = "
                         f"{(instr.pc + 4) & MASK64}")
        lines.append("    return _v")
        return lines
    return None


def _fuse_block(body: list, term, fall_pc: int) -> Callable:
    """Compile one static basic block into a single function.

    Each instruction either inlines to specialized source (the templates
    above, with register numbers and immediates folded to constants) or
    falls back to a handler call bound as a default argument.  The
    terminator and the next-pc selection are fused in as well: the block
    function returns the next pc directly (the fall-through pc when the
    terminator does not redirect, or when there is no terminator), so
    executing a block costs one call with no loop bookkeeping, list
    indexing, or bounds/control checks — straight-line instructions
    cannot branch, exit, or leave the text segment by construction.
    """
    namespace: dict = {}
    binds = []
    lines = []
    for k, (fn, instr) in enumerate(body):
        inline = _inline_body_lines(instr)
        if inline is None:
            namespace[f"_f{k}"] = fn
            namespace[f"_i{k}"] = instr
            binds.append(f"_f{k}=_f{k}, _i{k}=_i{k}")
            lines.append(f"    _f{k}(_s, _i{k})")
        else:
            lines.extend(inline)
    namespace["_fall"] = fall_pc
    binds.append("_fall=_fall")
    if term is not None:
        term_fn, term_instr, term_control = term
        inline = _inline_term_lines(term_instr) if term_control else None
        if inline is None:
            namespace["_t"] = term_fn
            namespace["_it"] = term_instr
            binds.append("_t=_t, _it=_it")
            lines.append("    _r = _t(_s, _it)")
            lines.append("    return _r if _r is not None else _fall")
        else:
            lines.extend(inline)
    else:
        lines.append("    return _fall")
    text = "\n".join(lines)
    prologue = []
    for probe, setup, value in (("_x[", "    _x = _s.x", None),
                                ("_mem.", "    _mem = _s.memory", None),
                                ("_M", None, MASK64),
                                ("_sg(", None, to_signed),
                                ("_sx(", None, _sext32)):
        if probe in text:
            if setup is not None:
                prologue.append(setup)
            else:
                name = probe.rstrip("(")
                namespace[name] = value
                binds.append(f"{name}={name}")
    source = (f"def _block(_s, {', '.join(binds)}):\n"
              + "\n".join(prologue + lines) + "\n")
    exec(source, namespace)
    return namespace["_block"]


class Executor:
    """Functional simulator bound to one program and one state."""

    def __init__(self, program: Program,
                 state: ArchState | None = None,
                 dispatch: str = "superblock") -> None:
        if dispatch not in ("superblock", "reference"):
            raise ValueError(f"unknown dispatch strategy: {dispatch!r}")
        self.program = program
        self.state = state if state is not None else \
            ArchState.for_program(program)
        self.dispatch = dispatch
        # Bind semantics once: the hot loop indexes (fn, instr, is_control).
        self._ops = [(semantics_for(instr), instr,
                      instr.opclass.is_control)
                     for instr in program.instructions]
        # Lazily-built superblock cache, keyed by entry instruction index
        # and shared across executors of the same program.
        self._blocks: list[_Block | None] = _blocks_for(program)

    def run(self, max_instructions: Optional[int] = None,
            control_hook: Optional[ControlHook] = None) -> int:
        """Execute until exit or until ``max_instructions`` retire.

        Returns the number of instructions retired by this call.  With a
        ``control_hook``, the hook fires once per executed control-flow
        instruction with the dynamic basic block it terminates; the final
        partial block (ended by exit or by the instruction budget) is also
        reported.
        """
        state = self.state
        state.require_not_exited()
        if self.dispatch == "reference":
            if control_hook is None:
                return self._run_plain(max_instructions)
            return self._run_profiled(max_instructions, control_hook)
        if control_hook is None:
            return self._run_super_plain(max_instructions)
        return self._run_super_profiled(max_instructions, control_hook)

    # ------------------------------------------------------------------
    # superblock dispatch
    # ------------------------------------------------------------------

    def _build_block(self, index: int) -> _Block:
        """Translate the static basic block entered at ``index``.

        A block extends from the entry to the first control-flow
        instruction or ``ecall`` (the only handler that can set
        ``exited``), or to the end of the text segment.  Entries at
        different offsets into the same straight-line run get their own
        (overlapping) blocks, so any resume pc works.
        """
        ops = self._ops
        count = len(ops)
        body = []
        term = None
        i = index
        while i < count:
            fn, instr, is_control = ops[i]
            if is_control or instr.mnemonic == "ecall":
                term = (fn, instr, is_control)
                break
            body.append((fn, instr))
            i += 1
        if term is not None:
            term_control = term[2]
            has_ecall = not term_control
            end_pc = term[1].pc
            total = len(body) + 1
        else:
            term_control = False
            has_ecall = False
            end_pc = TEXT_BASE + ((i - 1) << 2)
            total = len(body)
        block_fn = _fuse_block(body, term, end_pc + 4)
        block = (block_fn, total, has_ecall, term_control, end_pc)
        self._blocks[index] = block
        return block

    def _run_super_plain(self, max_instructions: Optional[int]) -> int:
        state = self.state
        blocks = self._blocks
        count = len(self._ops)
        pc = state.pc
        fuel = max_instructions if max_instructions is not None \
            else _DEFAULT_FUEL
        retired = 0
        while fuel > 0:
            index = (pc - TEXT_BASE) >> 2
            if not 0 <= index < count:
                raise SimulationError(f"pc left text segment: 0x{pc:x}")
            block = blocks[index]
            if block is None:
                block = self._build_block(index)
            total = block[1]
            if total > fuel:
                # The budget ends inside this block: finish with the
                # per-instruction loop so the retire count lands exactly.
                ops = self._ops
                while fuel > 0:
                    index = (pc - TEXT_BASE) >> 2
                    if not 0 <= index < count:
                        raise SimulationError(
                            f"pc left text segment: 0x{pc:x}")
                    fn, instr, _ = ops[index]
                    next_pc = fn(state, instr)
                    retired += 1
                    fuel -= 1
                    if state.exited:
                        pc += 4
                        break
                    pc = next_pc if next_pc is not None else pc + 4
                break
            pc = block[0](state)
            retired += total
            fuel -= total
            if block[2] and state.exited:
                # Only ecall-terminated blocks can exit; the block fn
                # already left pc at the ecall's fall-through.
                break
        state.pc = pc
        state.retired += retired
        return retired

    def _run_super_profiled(self, max_instructions: Optional[int],
                            control_hook: ControlHook) -> int:
        state = self.state
        blocks = self._blocks
        ops = self._ops
        count = len(ops)
        pc = state.pc
        fuel = max_instructions if max_instructions is not None \
            else _DEFAULT_FUEL
        retired = 0
        # The *dynamic* block start: unlike a superblock entry, a dynamic
        # block only closes at control flow — an ecall (not a control op)
        # ends a superblock but leaves the dynamic block open, and a
        # budget-bounded resume re-enters mid-block.
        block_start = pc
        last_pc = pc
        while fuel > 0:
            index = (pc - TEXT_BASE) >> 2
            if not 0 <= index < count:
                raise SimulationError(f"pc left text segment: 0x{pc:x}")
            block = blocks[index]
            if block is None:
                block = self._build_block(index)
            block_fn, total, has_ecall, term_control, end_pc = block
            if total > fuel:
                # Budget ends inside this block: per-instruction tail.
                while fuel > 0:
                    index = (pc - TEXT_BASE) >> 2
                    if not 0 <= index < count:
                        raise SimulationError(
                            f"pc left text segment: 0x{pc:x}")
                    fn, instr, is_control = ops[index]
                    next_pc = fn(state, instr)
                    retired += 1
                    fuel -= 1
                    last_pc = pc
                    if state.exited:
                        pc += 4
                        break
                    if is_control:
                        control_hook(block_start, last_pc)
                        pc = next_pc if next_pc is not None else pc + 4
                        block_start = pc
                    else:
                        pc = next_pc if next_pc is not None else pc + 4
                break
            pc = block_fn(state)
            retired += total
            fuel -= total
            last_pc = end_pc
            if term_control:
                control_hook(block_start, end_pc)
                block_start = pc
            elif has_ecall and state.exited:
                # An exit does not close the dynamic block here: the
                # trailing-close below reports it, like the reference.
                break
        if retired and (state.exited or pc != block_start):
            # Close the trailing partial block (exit / fuel exhausted).
            if last_pc >= block_start:
                control_hook(block_start, last_pc)
        state.pc = pc
        state.retired += retired
        return retired

    # ------------------------------------------------------------------
    # reference dispatch (the semantic baseline)
    # ------------------------------------------------------------------

    def _run_plain(self, max_instructions: Optional[int]) -> int:
        state = self.state
        ops = self._ops
        count = len(ops)
        pc = state.pc
        fuel = max_instructions if max_instructions is not None \
            else _DEFAULT_FUEL
        retired = 0
        while fuel > 0:
            index = (pc - TEXT_BASE) >> 2
            if not 0 <= index < count:
                raise SimulationError(f"pc left text segment: 0x{pc:x}")
            fn, instr, _ = ops[index]
            next_pc = fn(state, instr)
            retired += 1
            fuel -= 1
            if state.exited:
                pc += 4
                break
            pc = next_pc if next_pc is not None else pc + 4
        state.pc = pc
        state.retired += retired
        return retired

    def _run_profiled(self, max_instructions: Optional[int],
                      control_hook: ControlHook) -> int:
        state = self.state
        ops = self._ops
        count = len(ops)
        pc = state.pc
        fuel = max_instructions if max_instructions is not None \
            else _DEFAULT_FUEL
        retired = 0
        block_start = pc
        last_pc = pc
        while fuel > 0:
            index = (pc - TEXT_BASE) >> 2
            if not 0 <= index < count:
                raise SimulationError(f"pc left text segment: 0x{pc:x}")
            fn, instr, is_control = ops[index]
            next_pc = fn(state, instr)
            retired += 1
            fuel -= 1
            last_pc = pc
            if state.exited:
                pc += 4
                break
            if is_control:
                control_hook(block_start, last_pc)
                pc = next_pc if next_pc is not None else pc + 4
                block_start = pc
            else:
                pc = next_pc if next_pc is not None else pc + 4
        if retired and (state.exited or pc != block_start):
            # Close the trailing partial block (exit / fuel exhausted).
            if last_pc >= block_start:
                control_hook(block_start, last_pc)
        state.pc = pc
        state.retired += retired
        return retired

    def run_to_completion(self, limit: int = 200_000_000) -> int:
        """Run until the program exits; raise if ``limit`` is exceeded."""
        retired = self.run(max_instructions=limit)
        if not self.state.exited:
            raise SimulationError(
                f"program did not exit within {limit} instructions")
        return retired
