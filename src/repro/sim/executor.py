"""The functional ISA simulator (our Spike analogue).

The executor runs a pre-decoded :class:`~repro.isa.program.Program` against
an :class:`~repro.sim.state.ArchState` at interpreter speed.  It serves
three roles in the experimental flow (paper Fig. 4):

1. **profiling** — with a ``control_hook`` installed it reports every
   dynamic basic block so :mod:`repro.profiling` can build the basic-block
   vectors gem5 produces in the paper's flow;
2. **checkpoint creation** — ``run(max_instructions=N)`` retires exactly
   ``N`` instructions so checkpoints land on precise SimPoint boundaries;
3. **reference execution** — workload self-checks compare detailed-core
   results against this model.

Example::

    from repro.isa.assembler import assemble
    from repro.sim.executor import Executor

    program = assemble(SOURCE)
    executor = Executor(program)
    executor.run()
    assert executor.state.exit_code == 0
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.isa.program import Program, TEXT_BASE
from repro.sim.semantics import SEMANTICS
from repro.sim.state import ArchState

#: ``control_hook(block_start_pc, block_end_pc)`` is invoked when a dynamic
#: basic block ends (i.e., at every executed control-flow instruction); the
#: block spans the instructions from start to end inclusive.
ControlHook = Callable[[int, int], None]

_DEFAULT_FUEL = 1 << 62


class Executor:
    """Functional simulator bound to one program and one state."""

    def __init__(self, program: Program,
                 state: ArchState | None = None) -> None:
        self.program = program
        self.state = state if state is not None else \
            ArchState.for_program(program)
        # Bind semantics once: the hot loop indexes (fn, instr, is_control).
        self._ops = [(SEMANTICS[instr.mnemonic], instr,
                      instr.opclass.is_control)
                     for instr in program.instructions]

    def run(self, max_instructions: Optional[int] = None,
            control_hook: Optional[ControlHook] = None) -> int:
        """Execute until exit or until ``max_instructions`` retire.

        Returns the number of instructions retired by this call.  With a
        ``control_hook``, the hook fires once per executed control-flow
        instruction with the dynamic basic block it terminates; the final
        partial block (ended by exit or by the instruction budget) is also
        reported.
        """
        state = self.state
        state.require_not_exited()
        if control_hook is None:
            return self._run_plain(max_instructions)
        return self._run_profiled(max_instructions, control_hook)

    def _run_plain(self, max_instructions: Optional[int]) -> int:
        state = self.state
        ops = self._ops
        count = len(ops)
        pc = state.pc
        fuel = max_instructions if max_instructions is not None \
            else _DEFAULT_FUEL
        retired = 0
        while fuel > 0:
            index = (pc - TEXT_BASE) >> 2
            if not 0 <= index < count:
                raise SimulationError(f"pc left text segment: 0x{pc:x}")
            fn, instr, _ = ops[index]
            next_pc = fn(state, instr)
            retired += 1
            fuel -= 1
            if state.exited:
                pc += 4
                break
            pc = next_pc if next_pc is not None else pc + 4
        state.pc = pc
        state.retired += retired
        return retired

    def _run_profiled(self, max_instructions: Optional[int],
                      control_hook: ControlHook) -> int:
        state = self.state
        ops = self._ops
        count = len(ops)
        pc = state.pc
        fuel = max_instructions if max_instructions is not None \
            else _DEFAULT_FUEL
        retired = 0
        block_start = pc
        last_pc = pc
        while fuel > 0:
            index = (pc - TEXT_BASE) >> 2
            if not 0 <= index < count:
                raise SimulationError(f"pc left text segment: 0x{pc:x}")
            fn, instr, is_control = ops[index]
            next_pc = fn(state, instr)
            retired += 1
            fuel -= 1
            last_pc = pc
            if state.exited:
                pc += 4
                break
            if is_control:
                control_hook(block_start, last_pc)
                pc = next_pc if next_pc is not None else pc + 4
                block_start = pc
            else:
                pc = next_pc if next_pc is not None else pc + 4
        if retired and (state.exited or pc != block_start):
            # Close the trailing partial block (exit / fuel exhausted).
            if last_pc >= block_start:
                control_hook(block_start, last_pc)
        state.pc = pc
        state.retired += retired
        return retired

    def run_to_completion(self, limit: int = 200_000_000) -> int:
        """Run until the program exits; raise if ``limit`` is exceeded."""
        retired = self.run(max_instructions=limit)
        if not self.state.exited:
            raise SimulationError(
                f"program did not exit within {limit} instructions")
        return retired
