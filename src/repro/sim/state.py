"""Architectural state of a RISC-V hart.

This is the state a Spike-style ISA simulator maintains and the exact
content of an architectural checkpoint: program counter, the 32 integer and
32 floating-point registers, the ``fcsr`` control register, and memory.
The integer registers are stored as unsigned 64-bit values (``0`` ..
``2**64 - 1``); helpers convert to signed where semantics need it.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.program import DATA_BASE, Program, STACK_TOP, TEXT_BASE
from repro.isa.registers import NUM_FREGS, NUM_XREGS
from repro.sim.memory import Memory

MASK64 = (1 << 64) - 1


def to_signed(value: int) -> int:
    """Interpret an unsigned 64-bit value as two's-complement signed."""
    return value - (1 << 64) if value >= (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer into the unsigned 64-bit domain."""
    return value & MASK64


class ArchState:
    """Complete architectural state: registers, pc, memory, exit status."""

    __slots__ = ("x", "f", "pc", "fcsr", "memory", "retired", "exited",
                 "exit_code", "output")

    def __init__(self, memory: Memory | None = None) -> None:
        self.x: list[int] = [0] * NUM_XREGS
        self.f: list[float] = [0.0] * NUM_FREGS
        self.pc: int = 0
        self.fcsr: int = 0
        self.memory = memory if memory is not None else Memory()
        #: instructions retired since reset (not part of checkpoints)
        self.retired: int = 0
        self.exited: bool = False
        self.exit_code: int = 0
        #: bytes written through the write syscall (program output)
        self.output: bytearray = bytearray()

    @classmethod
    def for_program(cls, program: Program) -> "ArchState":
        """Create a reset state with ``program`` loaded into memory.

        The text segment is materialized as real machine code (so the state
        is self-contained, like a Spike memory image), data is placed at its
        base address, ``pc`` points at the entry symbol and ``sp`` at the
        stack top.
        """
        state = cls()
        state.memory.write_bytes(TEXT_BASE, program.encode_text())
        if program.data:
            state.memory.write_bytes(DATA_BASE, program.data)
        state.pc = program.entry
        state.x[2] = STACK_TOP  # sp
        return state

    def read_x(self, index: int) -> int:
        return self.x[index]

    def write_x(self, index: int, value: int) -> None:
        """Write an integer register; writes to ``x0`` are discarded."""
        if index:
            self.x[index] = value & MASK64

    def require_not_exited(self) -> None:
        if self.exited:
            raise SimulationError("hart has exited; cannot continue")

    def copy_registers_from(self, other: "ArchState") -> None:
        """Copy registers/pc/fcsr (not memory) from ``other``."""
        self.x = list(other.x)
        self.f = list(other.f)
        self.pc = other.pc
        self.fcsr = other.fcsr

    def __repr__(self) -> str:
        return (f"ArchState(pc=0x{self.pc:x}, retired={self.retired}, "
                f"exited={self.exited})")
