"""Execution semantics for every mnemonic in the ISA subset.

Each semantic function has the signature ``fn(state, ins) -> int | None``:
it mutates :class:`~repro.sim.state.ArchState` and returns the next PC for
control transfers, or ``None`` for ordinary fall-through.  The table
:data:`SEMANTICS` maps mnemonics to their functions; the executor binds the
function to each instruction once, so the hot loop never dispatches by
string.

Numeric conventions: integer registers hold unsigned 64-bit values;
floating-point registers hold Python floats (IEEE binary64).  The only
deliberate deviation from the ISA manual is that the fused multiply-add
family rounds twice (Python has no scalar FMA primitive); no workload in
this study is sensitive to the last ULP.
"""

from __future__ import annotations

import math
import struct
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.state import ArchState, MASK64, to_signed
from repro.sim.syscalls import handle_ecall
from repro.isa.instructions import Instruction

SemanticFn = Callable[[ArchState, Instruction], Optional[int]]

SEMANTICS: dict[str, SemanticFn] = {}

_MASK32 = 0xFFFFFFFF
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1
_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1


def _register(name: str):
    def wrap(fn: SemanticFn) -> SemanticFn:
        SEMANTICS[name] = fn
        return fn
    return wrap


def _sext32(value: int) -> int:
    """Sign-extend the low 32 bits of ``value`` into the 64-bit domain."""
    value &= _MASK32
    if value >= 1 << 31:
        value -= 1 << 32
    return value & MASK64


# ----------------------------------------------------------------------
# integer register-register
# ----------------------------------------------------------------------

@_register("add")
def _add(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (s.x[i.rs1] + s.x[i.rs2]) & MASK64


@_register("sub")
def _sub(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (s.x[i.rs1] - s.x[i.rs2]) & MASK64


@_register("and")
def _and(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] & s.x[i.rs2]


@_register("or")
def _or(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] | s.x[i.rs2]


@_register("xor")
def _xor(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] ^ s.x[i.rs2]


@_register("sll")
def _sll(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (s.x[i.rs1] << (s.x[i.rs2] & 63)) & MASK64


@_register("srl")
def _srl(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] >> (s.x[i.rs2] & 63)


@_register("sra")
def _sra(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (to_signed(s.x[i.rs1]) >> (s.x[i.rs2] & 63)) & MASK64


@_register("slt")
def _slt(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = 1 if to_signed(s.x[i.rs1]) < to_signed(s.x[i.rs2]) else 0


@_register("sltu")
def _sltu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = 1 if s.x[i.rs1] < s.x[i.rs2] else 0


@_register("addw")
def _addw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(s.x[i.rs1] + s.x[i.rs2])


@_register("subw")
def _subw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(s.x[i.rs1] - s.x[i.rs2])


@_register("sllw")
def _sllw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(s.x[i.rs1] << (s.x[i.rs2] & 31))


@_register("srlw")
def _srlw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32((s.x[i.rs1] & _MASK32) >> (s.x[i.rs2] & 31))


@_register("sraw")
def _sraw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = _sext32(s.x[i.rs1])
        s.x[i.rd] = (to_signed(value) >> (s.x[i.rs2] & 31)) & MASK64


# ----------------------------------------------------------------------
# M extension
# ----------------------------------------------------------------------

@_register("mul")
def _mul(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (s.x[i.rs1] * s.x[i.rs2]) & MASK64


@_register("mulh")
def _mulh(s: ArchState, i: Instruction) -> None:
    if i.rd:
        product = to_signed(s.x[i.rs1]) * to_signed(s.x[i.rs2])
        s.x[i.rd] = (product >> 64) & MASK64


@_register("mulhu")
def _mulhu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = ((s.x[i.rs1] * s.x[i.rs2]) >> 64) & MASK64


@_register("mulw")
def _mulw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(s.x[i.rs1] * s.x[i.rs2])


def _divide(dividend: int, divisor: int) -> int:
    """RISC-V signed division: truncate toward zero, -1 on divide-by-zero."""
    if divisor == 0:
        return -1
    quotient = abs(dividend) // abs(divisor)
    if (dividend < 0) != (divisor < 0):
        quotient = -quotient
    return quotient


def _remainder(dividend: int, divisor: int) -> int:
    """RISC-V signed remainder: sign of the dividend."""
    if divisor == 0:
        return dividend
    return dividend - divisor * _divide(dividend, divisor)


@_register("div")
def _div(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = _divide(to_signed(s.x[i.rs1]), to_signed(s.x[i.rs2]))
        s.x[i.rd] = value & MASK64


@_register("divu")
def _divu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        divisor = s.x[i.rs2]
        s.x[i.rd] = MASK64 if divisor == 0 else s.x[i.rs1] // divisor


@_register("rem")
def _rem(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = _remainder(to_signed(s.x[i.rs1]), to_signed(s.x[i.rs2]))
        s.x[i.rd] = value & MASK64


@_register("remu")
def _remu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        divisor = s.x[i.rs2]
        s.x[i.rd] = s.x[i.rs1] if divisor == 0 else s.x[i.rs1] % divisor


@_register("divw")
def _divw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = _divide(to_signed(_sext32(s.x[i.rs1])),
                        to_signed(_sext32(s.x[i.rs2])))
        s.x[i.rd] = _sext32(value)


@_register("divuw")
def _divuw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        divisor = s.x[i.rs2] & _MASK32
        if divisor == 0:
            s.x[i.rd] = MASK64
        else:
            s.x[i.rd] = _sext32((s.x[i.rs1] & _MASK32) // divisor)


@_register("remw")
def _remw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = _remainder(to_signed(_sext32(s.x[i.rs1])),
                           to_signed(_sext32(s.x[i.rs2])))
        s.x[i.rd] = _sext32(value)


@_register("remuw")
def _remuw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        divisor = s.x[i.rs2] & _MASK32
        if divisor == 0:
            s.x[i.rd] = _sext32(s.x[i.rs1])
        else:
            s.x[i.rd] = _sext32((s.x[i.rs1] & _MASK32) % divisor)


# ----------------------------------------------------------------------
# immediates
# ----------------------------------------------------------------------

@_register("addi")
def _addi(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (s.x[i.rs1] + i.imm) & MASK64


@_register("addiw")
def _addiw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(s.x[i.rs1] + i.imm)


@_register("andi")
def _andi(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] & (i.imm & MASK64)


@_register("ori")
def _ori(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] | (i.imm & MASK64)


@_register("xori")
def _xori(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] ^ (i.imm & MASK64)


@_register("slti")
def _slti(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = 1 if to_signed(s.x[i.rs1]) < i.imm else 0


@_register("sltiu")
def _sltiu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = 1 if s.x[i.rs1] < (i.imm & MASK64) else 0


@_register("slli")
def _slli(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (s.x[i.rs1] << i.imm) & MASK64


@_register("srli")
def _srli(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.x[i.rs1] >> i.imm


@_register("srai")
def _srai(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (to_signed(s.x[i.rs1]) >> i.imm) & MASK64


@_register("slliw")
def _slliw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(s.x[i.rs1] << i.imm)


@_register("srliw")
def _srliw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32((s.x[i.rs1] & _MASK32) >> i.imm)


@_register("sraiw")
def _sraiw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = to_signed(_sext32(s.x[i.rs1]))
        s.x[i.rd] = (value >> i.imm) & MASK64


@_register("lui")
def _lui(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(i.imm << 12)


@_register("auipc")
def _auipc(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = (i.pc + to_signed(_sext32(i.imm << 12))) & MASK64


# ----------------------------------------------------------------------
# loads / stores
# ----------------------------------------------------------------------

@_register("lb")
def _lb(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 1)
        s.x[i.rd] = (value - 0x100 if value >= 0x80 else value) & MASK64


@_register("lbu")
def _lbu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 1)


@_register("lh")
def _lh(s: ArchState, i: Instruction) -> None:
    if i.rd:
        value = s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 2)
        s.x[i.rd] = (value - 0x10000 if value >= 0x8000 else value) & MASK64


@_register("lhu")
def _lhu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 2)


@_register("lw")
def _lw(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _sext32(s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 4))


@_register("lwu")
def _lwu(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 4)


@_register("ld")
def _ld(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 8)


@_register("sb")
def _sb(s: ArchState, i: Instruction) -> None:
    s.memory.store((s.x[i.rs1] + i.imm) & MASK64, s.x[i.rs2], 1)


@_register("sh")
def _sh(s: ArchState, i: Instruction) -> None:
    s.memory.store((s.x[i.rs1] + i.imm) & MASK64, s.x[i.rs2], 2)


@_register("sw")
def _sw(s: ArchState, i: Instruction) -> None:
    s.memory.store((s.x[i.rs1] + i.imm) & MASK64, s.x[i.rs2], 4)


@_register("sd")
def _sd(s: ArchState, i: Instruction) -> None:
    s.memory.store((s.x[i.rs1] + i.imm) & MASK64, s.x[i.rs2], 8)


# ----------------------------------------------------------------------
# control flow
# ----------------------------------------------------------------------

@_register("beq")
def _beq(s: ArchState, i: Instruction) -> Optional[int]:
    return i.pc + i.imm if s.x[i.rs1] == s.x[i.rs2] else None


@_register("bne")
def _bne(s: ArchState, i: Instruction) -> Optional[int]:
    return i.pc + i.imm if s.x[i.rs1] != s.x[i.rs2] else None


@_register("blt")
def _blt(s: ArchState, i: Instruction) -> Optional[int]:
    if to_signed(s.x[i.rs1]) < to_signed(s.x[i.rs2]):
        return i.pc + i.imm
    return None


@_register("bge")
def _bge(s: ArchState, i: Instruction) -> Optional[int]:
    if to_signed(s.x[i.rs1]) >= to_signed(s.x[i.rs2]):
        return i.pc + i.imm
    return None


@_register("bltu")
def _bltu(s: ArchState, i: Instruction) -> Optional[int]:
    return i.pc + i.imm if s.x[i.rs1] < s.x[i.rs2] else None


@_register("bgeu")
def _bgeu(s: ArchState, i: Instruction) -> Optional[int]:
    return i.pc + i.imm if s.x[i.rs1] >= s.x[i.rs2] else None


@_register("jal")
def _jal(s: ArchState, i: Instruction) -> int:
    if i.rd:
        s.x[i.rd] = (i.pc + 4) & MASK64
    return i.pc + i.imm


@_register("jalr")
def _jalr(s: ArchState, i: Instruction) -> int:
    target = (s.x[i.rs1] + i.imm) & MASK64 & ~1
    if i.rd:
        s.x[i.rd] = (i.pc + 4) & MASK64
    return target


# ----------------------------------------------------------------------
# system
# ----------------------------------------------------------------------

@_register("ecall")
def _ecall(s: ArchState, i: Instruction) -> None:
    handle_ecall(s)


@_register("fence")
def _fence(s: ArchState, i: Instruction) -> None:
    return None


# ----------------------------------------------------------------------
# floating point (double precision)
# ----------------------------------------------------------------------

@_register("fld")
def _fld(s: ArchState, i: Instruction) -> None:
    bits = s.memory.load((s.x[i.rs1] + i.imm) & MASK64, 8)
    s.f[i.rd] = struct.unpack("<d", bits.to_bytes(8, "little"))[0]


@_register("fsd")
def _fsd(s: ArchState, i: Instruction) -> None:
    bits = struct.pack("<d", s.f[i.rs2])
    s.memory.store((s.x[i.rs1] + i.imm) & MASK64,
                   int.from_bytes(bits, "little"), 8)


@_register("fadd.d")
def _fadd(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = s.f[i.rs1] + s.f[i.rs2]


@_register("fsub.d")
def _fsub(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = s.f[i.rs1] - s.f[i.rs2]


@_register("fmul.d")
def _fmul(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = s.f[i.rs1] * s.f[i.rs2]


@_register("fdiv.d")
def _fdiv(s: ArchState, i: Instruction) -> None:
    dividend, divisor = s.f[i.rs1], s.f[i.rs2]
    if divisor == 0.0:
        if dividend == 0.0 or math.isnan(dividend):
            s.f[i.rd] = math.nan
        else:
            s.f[i.rd] = math.copysign(math.inf, dividend) * \
                math.copysign(1.0, divisor)
    else:
        s.f[i.rd] = dividend / divisor


@_register("fsqrt.d")
def _fsqrt(s: ArchState, i: Instruction) -> None:
    value = s.f[i.rs1]
    s.f[i.rd] = math.nan if value < 0.0 else math.sqrt(value)


@_register("fsgnj.d")
def _fsgnj(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = math.copysign(abs(s.f[i.rs1]), s.f[i.rs2])


@_register("fsgnjn.d")
def _fsgnjn(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = math.copysign(abs(s.f[i.rs1]), -s.f[i.rs2])


@_register("fsgnjx.d")
def _fsgnjx(s: ArchState, i: Instruction) -> None:
    negative = (math.copysign(1.0, s.f[i.rs1])
                * math.copysign(1.0, s.f[i.rs2])) < 0
    s.f[i.rd] = -abs(s.f[i.rs1]) if negative else abs(s.f[i.rs1])


@_register("fmin.d")
def _fmin(s: ArchState, i: Instruction) -> None:
    a, b = s.f[i.rs1], s.f[i.rs2]
    if math.isnan(a):
        s.f[i.rd] = b
    elif math.isnan(b):
        s.f[i.rd] = a
    else:
        s.f[i.rd] = min(a, b)


@_register("fmax.d")
def _fmax(s: ArchState, i: Instruction) -> None:
    a, b = s.f[i.rs1], s.f[i.rs2]
    if math.isnan(a):
        s.f[i.rd] = b
    elif math.isnan(b):
        s.f[i.rd] = a
    else:
        s.f[i.rd] = max(a, b)


@_register("feq.d")
def _feq(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = 1 if s.f[i.rs1] == s.f[i.rs2] else 0


@_register("flt.d")
def _flt(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = 1 if s.f[i.rs1] < s.f[i.rs2] else 0


@_register("fle.d")
def _fle(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = 1 if s.f[i.rs1] <= s.f[i.rs2] else 0


def _float_to_int(value: float, low: int, high: int) -> int:
    """Convert toward zero with RISC-V saturation rules."""
    if math.isnan(value):
        return high
    if value <= low:
        return low
    if value >= high:
        return high
    return int(value)


@_register("fcvt.l.d")
def _fcvt_l_d(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _float_to_int(s.f[i.rs1], _INT64_MIN, _INT64_MAX) & MASK64


@_register("fcvt.w.d")
def _fcvt_w_d(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = _float_to_int(s.f[i.rs1], _INT32_MIN, _INT32_MAX) & MASK64


@_register("fcvt.d.l")
def _fcvt_d_l(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = float(to_signed(s.x[i.rs1]))


@_register("fcvt.d.w")
def _fcvt_d_w(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = float(to_signed(_sext32(s.x[i.rs1])))


@_register("fmv.d.x")
def _fmv_d_x(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = struct.unpack("<d", s.x[i.rs1].to_bytes(8, "little"))[0]


@_register("fmv.x.d")
def _fmv_x_d(s: ArchState, i: Instruction) -> None:
    if i.rd:
        s.x[i.rd] = int.from_bytes(struct.pack("<d", s.f[i.rs1]), "little")


@_register("fmadd.d")
def _fmadd(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = s.f[i.rs1] * s.f[i.rs2] + s.f[i.rs3]


@_register("fmsub.d")
def _fmsub(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = s.f[i.rs1] * s.f[i.rs2] - s.f[i.rs3]


@_register("fnmadd.d")
def _fnmadd(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = -(s.f[i.rs1] * s.f[i.rs2]) - s.f[i.rs3]


@_register("fnmsub.d")
def _fnmsub(s: ArchState, i: Instruction) -> None:
    s.f[i.rd] = -(s.f[i.rs1] * s.f[i.rs2]) + s.f[i.rs3]


def semantics_for(instr: Instruction) -> SemanticFn:
    """Semantic function for ``instr``, as a simulation-level failure.

    An unknown mnemonic surfaces as :class:`SimulationError` carrying the
    faulting pc — a diagnosable simulation fault rather than a bare
    ``KeyError`` escaping the dispatch table.
    """
    fn = SEMANTICS.get(instr.mnemonic)
    if fn is None:
        raise SimulationError(
            f"unknown opcode {instr.mnemonic!r} at pc 0x{instr.pc:x}")
    return fn


def missing_semantics() -> list[str]:
    """Mnemonics present in the ISA table but lacking semantics (should be [])."""
    from repro.isa.instructions import SPECS

    return sorted(set(SPECS) - set(SEMANTICS))
