"""Batched multi-config detailed simulation with front-end specialization.

Replaying one SimPoint checkpoint across N uarch configurations repeats
all config-invariant work N times: the serial stage-4 path
(:func:`repro.pipeline.stages.simulate_raw_runs`) restores the
architectural state per config and lets each core's oracle frontend
re-execute the functional model instruction-by-instruction at fetch.
Those fetch-side semantics — branch outcomes, effective addresses, the
dynamic instruction stream itself — are pure functions of the
checkpointed state and identical for every config.

The batched engine lifts them out of the per-config loop:

1. the checkpoint's architectural state is reconstructed **once**, into
   a shared :class:`~repro.uarch.ftrace.FetchTrace` that lazily records
   the oracle instruction stream;
2. each configuration's :class:`~repro.uarch.core.BoomCore` replays that
   stream through its own private fetch timing
   (:class:`~repro.uarch.frontend.TraceFetchUnit`) and steps its own
   back-end independently.

Per-config stats are **bit-identical** to the serial path (gated by
``tests/sim/test_equivalence.py``), so batched and serial runs produce
byte-identical artifacts and may be mixed freely: the sweep primes
batches opportunistically and falls back to per-config simulation on any
batch fault (see :mod:`repro.flow.sweep`).
"""

from __future__ import annotations

from typing import Iterable

from repro.check import checks_enabled
from repro.check.invariants import CoreInvariantChecker
from repro.checkpoint.checkpoint import Checkpoint
from repro.obs.flight import FlightRecorder
from repro.obs.heartbeat import HeartbeatEmitter
from repro.obs.tracer import get_tracer
from repro.uarch.config import BoomConfig
from repro.uarch.core import BoomCore
from repro.uarch.ftrace import FetchTrace

__all__ = ["simulate_checkpoint", "simulate_raw_runs_batched"]


def simulate_checkpoint(config: BoomConfig, program,
                        checkpoint: Checkpoint, interval_size: int, *,
                        trace: FetchTrace | None = None) -> dict:
    """Run one checkpoint through the detailed core; the raw record.

    The single source of truth for stage-4 semantics: the serial path
    (:func:`repro.pipeline.stages.simulate_raw_runs`) and the batched
    engine both call this, so their records cannot drift.  With
    ``trace`` the core replays the shared oracle fetch stream instead of
    restoring and re-executing its own functional state; the stats are
    bit-identical either way.
    """
    tracer = get_tracer()
    heartbeat = None
    emitter = None
    if tracer.enabled:
        window_hint = checkpoint.measure_instructions or interval_size
        emitter = HeartbeatEmitter(
            tracer, "core.instr", units="instructions",
            total=checkpoint.warmup_instructions + window_hint,
            workload=program.name, config=config.name,
            checkpoint=checkpoint.interval_index)
        heartbeat = lambda retired, cycles: emitter(retired,
                                                    cycles=cycles)
    with tracer.span("detailed_sim.checkpoint",
                     workload=program.name, config=config.name,
                     checkpoint=checkpoint.interval_index):
        if trace is None:
            core = BoomCore(config, program, state=checkpoint.restore())
        else:
            core = BoomCore(config, program, trace=trace)
        # The flight recorder and invariant checker both ride the
        # heartbeat observer slot (each chaining whatever was there
        # before), so a recorded/checked run takes the same loop as a
        # traced one and produces byte-identical artifacts —
        # REPRO_FLIGHT and REPRO_CHECK are deliberately not part of
        # the stage fingerprint.
        recorder = FlightRecorder.for_session(
            core, workload=program.name,
            checkpoint=checkpoint.interval_index, wrapped=heartbeat)
        if recorder is not None:
            heartbeat = recorder
        checker = None
        if checks_enabled():
            checker = CoreInvariantChecker(core, wrapped=heartbeat)
            heartbeat = checker
        if checkpoint.warmup_instructions:
            core.run(checkpoint.warmup_instructions,
                     heartbeat=heartbeat)
        if recorder is not None:
            # Closes the warmup phase with a boundary sample *before*
            # the stats window swaps, so the warmup tail is captured.
            recorder.set_phase("measure")
        stats = core.begin_measurement()
        window = checkpoint.measure_instructions or interval_size
        measured = core.run(window, heartbeat=heartbeat)
        if checker is not None:
            checker.check()
        if recorder is not None:
            recorder.finish()
    if emitter is not None:
        emitter.finish(checkpoint.warmup_instructions + measured)
    return {
        "interval_index": checkpoint.interval_index,
        "weight": checkpoint.weight,
        "warmup_instructions": checkpoint.warmup_instructions,
        "measured_instructions": measured,
        "stats": stats.to_dict(),
    }


def simulate_raw_runs_batched(configs: Iterable[BoomConfig], program,
                              checkpoints: list[Checkpoint],
                              interval_size: int) -> dict[str, list[dict]]:
    """Stage 4 for many configs over one checkpoint set, batched.

    Checkpoint-major: each checkpoint's state is reconstructed once into
    a shared :class:`FetchTrace`, every config replays it, then the
    trace is dropped — at most one trace (one functional state plus the
    recorded entries of the hungriest consumer) is live at a time.
    Returns ``{config.name: raw records}`` where each record list is
    exactly what :func:`repro.pipeline.stages.simulate_raw_runs` would
    have produced for that config alone.
    """
    configs = tuple(configs)
    names = [config.name for config in configs]
    if len(set(names)) != len(names):
        raise ValueError("batched simulation requires unique config "
                         "names (records are keyed by name)")
    raw: dict[str, list[dict]] = {name: [] for name in names}
    for checkpoint in checkpoints:
        trace = FetchTrace(program, checkpoint.restore())
        for config in configs:
            raw[config.name].append(simulate_checkpoint(
                config, program, checkpoint, interval_size, trace=trace))
    return raw
