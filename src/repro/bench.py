"""The tracked performance-benchmark harness (``repro-cli bench``).

The paper's methodology only pays off when simulated-slices-per-second
is high: every stage of the flow (BBV profiling, checkpoint creation,
detailed simulation) funnels through the two pure-Python inner loops in
:mod:`repro.sim.executor` and :mod:`repro.uarch.core`.  This module
measures those hot paths against a pinned set of workloads x configs and
emits a ``BENCH_<date>.json`` snapshot, so every PR is judged against the
previous one's throughput.

Metrics (all flat floats under ``metrics``):

* ``functional.<mode>.instr_per_s`` — functional-executor retire rate,
  per dispatch mode (``superblock`` fast path vs the ``reference``
  per-instruction loop used by the equivalence tests);
* ``profiled.instr_per_s`` — retire rate with the BBV control hook
  installed (the gem5-probe analogue);
* ``core.<config>.cycles_per_s`` / ``core.<config>.instr_per_s`` —
  detailed-core simulation rate over a measured window;
* ``core.batched.cycles_per_s`` — aggregate detailed-core rate when one
  checkpoint is replayed across all three paper presets through the
  batched engine (shared fetch trace); the headline win of the batched
  sweep path, with ``core.batched.speedup_over_serial`` reported
  alongside for context;
* ``stage.<name>_s`` — cold wall-clock of each pipeline stage;
* ``dse.points_per_s`` — design points swept per second through a
  pinned cold DSE lattice (the ``repro-cli dse`` throughput);
* ``peak_rss_kb`` — peak resident set of the benchmark process;
* ``calibration.ops_per_s`` — a fixed pure-Python loop, used to
  normalize cross-machine comparisons (CI runners are not the dev box).

Snapshots are compared metric-by-metric; ``--check`` fails on a >30 %
regression of any calibration-normalized throughput metric, which is the
CI perf-smoke gate.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from dataclasses import dataclass
from datetime import date
from pathlib import Path
from time import perf_counter

SCHEMA_VERSION = 1

#: metrics where larger is better; only these are regression-gated
THROUGHPUT_PREFIXES = ("functional.", "profiled.", "core.", "dse.",
                       "serve.")

#: throughput metrics excluded from the regression gate: the reference
#: dispatch loop is kept for equivalence testing, not performance, and
#: its rate swings with CPython's adaptive-specialization warmup — noisy
#: enough to false-alarm a 30 % gate on CI runners; speedup ratios divide
#: two noisy rates, so they are reported but not gated either
UNGATED_PREFIXES = ("functional.reference.",
                    "functional.speedup_over_reference",
                    "core.batched.speedup_over_serial")

#: default regression gate: fail when a normalized throughput metric
#: drops by more than this fraction vs the baseline snapshot
DEFAULT_THRESHOLD = 0.30

#: the pinned benchmark set — changing it invalidates cross-snapshot
#: comparability, so treat it like a schema change
FUNCTIONAL_WORKLOADS = ("sha", "dijkstra")
CORE_WORKLOADS = ("sha", "dijkstra")
CORE_CONFIGS = ("MediumBOOM", "MegaBOOM")
STAGE_WORKLOAD = "qsort"
DSE_WORKLOAD = "sha"
DSE_POINTS = 8
#: job-server benchmark: N concurrent clients submitting the identical
#: tiny sweep; throughput measures request-hash dedup + one compute
SERVE_CLIENTS = 8
SERVE_WORKLOAD = "sha"
SERVE_CONFIG = "SmallBOOM"
#: batched-replay benchmark: one checkpoint, replayed across the three
#: paper presets.  Captured 20k instructions in (steady-state compression
#: loop, past workload init) so the window measures representative work.
BATCH_WORKLOAD = "sha"
BATCH_SCALE = 0.5
BATCH_CAPTURE = 20_000


@dataclass(frozen=True)
class BenchLimits:
    """Instruction/cycle budgets for one harness run."""

    functional_instructions: int = 400_000
    profiled_instructions: int = 250_000
    core_warmup: int = 2_000
    core_window: int = 8_000
    stage_scale: float = 0.2
    repeats: int = 3

    @classmethod
    def quick(cls) -> "BenchLimits":
        # Best-of-4 on the small budgets: CI runners share cores, and the
        # regression gate should reflect achievable throughput, not the
        # noisiest repeat.
        return cls(functional_instructions=120_000,
                   profiled_instructions=80_000,
                   core_warmup=1_000, core_window=3_000,
                   stage_scale=0.1, repeats=4)


# ----------------------------------------------------------------------
# individual measurements
# ----------------------------------------------------------------------

def _best(repeats: int, fn) -> tuple[float, float]:
    """Run ``fn`` ``repeats`` times; return (best elapsed, work units).

    ``fn`` returns the number of work units it performed; the best
    (minimum) wall-clock over the repeats is the least-noisy estimate of
    the true cost, standard micro-benchmark practice.
    """
    best = float("inf")
    units = 0.0
    for _ in range(repeats):
        start = perf_counter()
        units = float(fn())
        elapsed = perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, units


def _make_executor(program, mode: str):
    """Build an Executor in ``mode``; falls back when the executor
    predates dispatch modes (used to benchmark pre-optimization trees)."""
    from repro.sim.executor import Executor

    try:
        return Executor(program, dispatch=mode)
    except TypeError:
        return Executor(program)


def executor_modes() -> tuple[str, ...]:
    """Dispatch modes supported by the executor under test."""
    from repro.sim.executor import Executor

    try:
        Executor.__init__.__wrapped__  # pragma: no cover - never set
    except AttributeError:
        pass
    import inspect

    if "dispatch" in inspect.signature(Executor.__init__).parameters:
        return ("superblock", "reference")
    return ("reference",)


def measure_functional(limits: BenchLimits,
                       metrics: dict[str, float]) -> None:
    from repro.workloads.suite import build_program

    for mode in executor_modes():
        total_rate = 0.0
        for workload in FUNCTIONAL_WORKLOADS:
            program = build_program(workload, scale=1.0, seed=17)

            def run() -> int:
                executor = _make_executor(program, mode)
                return executor.run(
                    max_instructions=limits.functional_instructions)

            elapsed, retired = _best(limits.repeats, run)
            rate = retired / elapsed
            metrics[f"functional.{mode}.{workload}.instr_per_s"] = rate
            total_rate += rate
        metrics[f"functional.{mode}.instr_per_s"] = \
            total_rate / len(FUNCTIONAL_WORKLOADS)
    # The default-dispatch alias is what pre/post snapshots compare on:
    # before superblock dispatch existed this is the reference loop.
    metrics["functional.instr_per_s"] = metrics.get(
        "functional.superblock.instr_per_s",
        metrics["functional.reference.instr_per_s"])
    if "functional.superblock.instr_per_s" in metrics:
        metrics["functional.speedup_over_reference"] = (
            metrics["functional.superblock.instr_per_s"]
            / metrics["functional.reference.instr_per_s"])


def measure_profiled(limits: BenchLimits,
                     metrics: dict[str, float]) -> None:
    """BBV-profiling throughput: the control-hook path of the executor."""
    from repro.workloads.suite import build_program

    program = build_program("sha", scale=1.0, seed=17)

    def run() -> int:
        executor = _make_executor(program, "superblock")
        counts = [0]

        def hook(start: int, end: int) -> None:
            counts[0] += ((end - start) >> 2) + 1

        return executor.run(
            max_instructions=limits.profiled_instructions,
            control_hook=hook)

    elapsed, retired = _best(limits.repeats, run)
    metrics["profiled.instr_per_s"] = retired / elapsed


def measure_core(limits: BenchLimits, metrics: dict[str, float]) -> None:
    from repro.uarch.config import config_by_name
    from repro.uarch.core import BoomCore
    from repro.workloads.suite import build_program

    for config_name in CORE_CONFIGS:
        config = config_by_name(config_name)
        cycle_rate = 0.0
        instr_rate = 0.0
        for workload in CORE_WORKLOADS:
            program = build_program(workload, scale=1.0, seed=17)

            def run() -> int:
                core = BoomCore(config, program)
                core.run(limits.core_warmup)
                stats = core.begin_measurement()
                core.run(limits.core_window)
                run.cycles = stats.cycles  # type: ignore[attr-defined]
                return stats.retired

            elapsed, retired = _best(limits.repeats, run)
            cycles = float(run.cycles)  # type: ignore[attr-defined]
            cycle_rate += cycles / elapsed
            instr_rate += retired / elapsed
        n = len(CORE_WORKLOADS)
        metrics[f"core.{config_name}.cycles_per_s"] = cycle_rate / n
        metrics[f"core.{config_name}.instr_per_s"] = instr_rate / n
    metrics["core.cycles_per_s"] = sum(
        metrics[f"core.{c}.cycles_per_s"] for c in CORE_CONFIGS) \
        / len(CORE_CONFIGS)


def measure_batched(limits: BenchLimits,
                    metrics: dict[str, float]) -> None:
    """Batched replay of one checkpoint across the three paper presets.

    The serial leg restores the checkpoint once per config and lets each
    core's oracle frontend re-execute the functional model at fetch —
    the pre-batching flow.  The batched leg records the config-invariant
    fetch stream once (:class:`~repro.uarch.ftrace.FetchTrace`) and
    replays it through every config's private timing.  Both legs produce
    bit-identical stats (gated by ``tests/sim/test_equivalence.py``);
    the tracked metric is aggregate simulated cycles per second across
    the whole batch.
    """
    from repro.checkpoint.checkpoint import Checkpoint
    from repro.sim.executor import Executor
    from repro.uarch.config import ALL_CONFIGS
    from repro.uarch.core import BoomCore
    from repro.uarch.ftrace import FetchTrace
    from repro.workloads.suite import build_program

    program = build_program(BATCH_WORKLOAD, scale=BATCH_SCALE, seed=17)
    executor = Executor(program)
    executor.run(max_instructions=BATCH_CAPTURE)
    checkpoint = Checkpoint.capture(
        executor.state, workload=BATCH_WORKLOAD, interval_index=0,
        weight=1.0, warmup_instructions=limits.core_warmup)

    def run_one(core) -> int:
        core.run(limits.core_warmup)
        stats = core.begin_measurement()
        core.run(limits.core_window)
        return stats.cycles

    def serial() -> int:
        cycles = 0
        for config in ALL_CONFIGS:
            core = BoomCore(config, program, state=checkpoint.restore())
            cycles += run_one(core)
        return cycles

    def batched() -> int:
        trace = FetchTrace(program, checkpoint.restore())
        cycles = 0
        for config in ALL_CONFIGS:
            cycles += run_one(BoomCore(config, program, trace=trace))
        return cycles

    serial_elapsed, _ = _best(limits.repeats, serial)
    batched_elapsed, cycles = _best(limits.repeats, batched)
    metrics["core.batched.cycles_per_s"] = cycles / batched_elapsed
    metrics["core.batched.speedup_over_serial"] = (
        serial_elapsed / batched_elapsed)


def measure_stages(limits: BenchLimits, metrics: dict[str, float]) -> None:
    """Cold wall-clock of each pipeline stage for one pinned workload."""
    from repro.flow.experiment import FlowSettings
    from repro.pipeline.artifacts import ArtifactStore
    from repro.pipeline.stages import ExperimentPipeline
    from repro.uarch.config import config_by_name

    settings = FlowSettings(scale=limits.stage_scale, seed=17)
    pipeline = ExperimentPipeline(ArtifactStore(None), settings)
    config = config_by_name("MediumBOOM")
    steps = (
        ("bbv_profile", lambda: pipeline.profile(STAGE_WORKLOAD)),
        ("simpoint_selection", lambda: pipeline.selection(STAGE_WORKLOAD)),
        ("checkpoints", lambda: pipeline.checkpoints(STAGE_WORKLOAD)),
        ("detailed_sim", lambda: pipeline.detailed(STAGE_WORKLOAD, config)),
        ("power_report", lambda: pipeline.power_runs(STAGE_WORKLOAD,
                                                     config)),
    )
    for name, step in steps:
        start = perf_counter()
        step()
        metrics[f"stage.{name}_s"] = perf_counter() - start


def measure_dse(limits: BenchLimits, metrics: dict[str, float]) -> None:
    """Cold DSE sweep throughput over a pinned 8-point lattice.

    Cacheless on purpose: the metric tracks how fast the flow chews
    through fresh design points, not how fast it replays the artifact
    store.
    """
    from repro.flow.dse import run_dse
    from repro.flow.experiment import FlowSettings
    from repro.uarch.space import SpaceSpec

    spec = SpaceSpec(base="MediumBOOM", count=DSE_POINTS, seed=17,
                     include_presets=False)
    outcome = run_dse(spec,
                      settings=FlowSettings(scale=limits.stage_scale,
                                            seed=17),
                      cache_dir=None, workloads=[DSE_WORKLOAD])
    metrics["dse.points_per_s"] = outcome.points_per_s


def measure_serve(limits: BenchLimits, metrics: dict[str, float]) -> None:
    """Concurrent duplicate submissions through a live job server.

    Cold cache, ``SERVE_CLIENTS`` clients, one identical request each:
    the wall clock covers HTTP round-trips, request-hash arbitration,
    one underlying compute, and result fan-out — the whole
    sweep-as-a-service overhead on top of the pipeline itself.
    """
    import tempfile

    from repro.serve import ServerThread, run_load

    request = {"kind": "sweep", "scale": limits.stage_scale,
               "workloads": [SERVE_WORKLOAD], "configs": [SERVE_CONFIG]}
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache:
        with ServerThread(cache, workers=2, max_queue=32) as host:
            report = run_load(host.port, request, clients=SERVE_CLIENTS,
                              mode="duplicate", timeout=300.0)
    if report.failed or not report.byte_identical:
        raise RuntimeError(f"serve bench failed: {report.to_dict()}")
    metrics["serve.sweeps_per_s"] = report.sweeps_per_s


def measure_calibration(metrics: dict[str, float]) -> None:
    """A fixed pure-Python loop: the machine-speed yardstick.

    Every gated metric is divided by this score, so its noise multiplies
    into every regression ratio.  An untimed warmup iteration gets the
    loop past CPython's adaptive-specialization ramp, and best-of-5
    (vs best-of-3 elsewhere) narrows the yardstick's own spread.
    """

    def spin() -> int:
        acc = 0
        for i in range(1_000_000):
            acc = (acc ^ i) + (i & 7)
        return 1_000_000

    spin()  # warmup: specialize the bytecode before timing
    elapsed, ops = _best(5, spin)
    metrics["calibration.ops_per_s"] = ops / elapsed


def peak_rss_kb() -> float:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0.0
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover
        usage //= 1024
    return float(usage)


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------

def run_bench(limits: BenchLimits | None = None, *,
              quick: bool = False) -> dict:
    """Run the full harness; returns the snapshot dict."""
    if limits is None:
        limits = BenchLimits.quick() if quick else BenchLimits()
    metrics: dict[str, float] = {}
    measure_calibration(metrics)
    measure_functional(limits, metrics)
    measure_profiled(limits, metrics)
    measure_core(limits, metrics)
    measure_batched(limits, metrics)
    measure_stages(limits, metrics)
    measure_dse(limits, metrics)
    measure_serve(limits, metrics)
    metrics["peak_rss_kb"] = peak_rss_kb()
    return {
        "schema": SCHEMA_VERSION,
        "date": date.today().isoformat(),
        "quick": limits == BenchLimits.quick(),
        "host": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
            "system": platform.system(),
        },
        "limits": {
            "functional_instructions": limits.functional_instructions,
            "profiled_instructions": limits.profiled_instructions,
            "core_warmup": limits.core_warmup,
            "core_window": limits.core_window,
            "stage_scale": limits.stage_scale,
            "repeats": limits.repeats,
        },
        "metrics": metrics,
    }


def normalized(snapshot: dict, metric: str) -> float | None:
    """Throughput metric divided by the snapshot's calibration score.

    Normalization makes snapshots from different machines comparable:
    both the metric and the yardstick scale with interpreter speed.
    """
    metrics = snapshot.get("metrics", {})
    value = metrics.get(metric)
    cal = metrics.get("calibration.ops_per_s")
    if value is None or not cal:
        return None
    return value / cal


def compare(current: dict, baseline: dict) -> dict[str, dict]:
    """Metric-by-metric comparison (raw and normalized ratios)."""
    out: dict[str, dict] = {}
    base_metrics = baseline.get("metrics", {})
    for metric, value in current.get("metrics", {}).items():
        base = base_metrics.get(metric)
        if base is None or not isinstance(base, (int, float)):
            continue
        entry: dict = {"current": value, "baseline": base}
        if base:
            entry["ratio"] = value / base
        norm_now = normalized(current, metric)
        norm_base = normalized(baseline, metric)
        if norm_now is not None and norm_base:
            entry["normalized_ratio"] = norm_now / norm_base
        out[metric] = entry
    return out


def regression_failures(current: dict, baseline: dict,
                        threshold: float = DEFAULT_THRESHOLD) -> list[str]:
    """Throughput metrics that regressed past ``threshold`` (normalized)."""
    failures = []
    for metric, entry in compare(current, baseline).items():
        if not metric.startswith(THROUGHPUT_PREFIXES):
            continue
        if metric.startswith(UNGATED_PREFIXES):
            continue
        ratio = entry.get("normalized_ratio", entry.get("ratio"))
        if ratio is not None and ratio < 1.0 - threshold:
            failures.append(
                f"{metric}: {entry['current']:.0f} vs baseline "
                f"{entry['baseline']:.0f} (normalized ratio {ratio:.2f} "
                f"< {1.0 - threshold:.2f})")
    return failures


def find_previous_snapshot(root: Path) -> Path | None:
    """The most recent committed ``BENCH_<date>.json`` under ``root``."""
    candidates = sorted(root.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def load_snapshots(root: Path) -> list[tuple[str, dict]]:
    """All readable ``BENCH_*.json`` under ``root``, oldest first."""
    snapshots: list[tuple[str, dict]] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            snapshots.append((path.name, json.loads(path.read_text())))
        except ValueError:
            print(f"warning: unreadable snapshot {path}", file=sys.stderr)
    return snapshots


def format_trend(snapshots: list[tuple[str, dict]], *,
                 metrics: list[str] | None = None) -> str:
    """Per-metric trajectory across committed snapshots.

    One row per metric, one column per snapshot: the calibration-
    normalized ratio vs the *previous* snapshot (so ``1.00`` is flat,
    ``2.00`` means that PR doubled the metric), with the latest raw
    value at the end of the row.  Metrics default to the gated
    throughput set — the history that used to require grepping every
    ``BENCH_*.json`` by hand.
    """
    if len(snapshots) < 2:
        return "(need at least two BENCH_*.json snapshots for a trend)"
    if metrics is None:
        names = sorted({
            metric
            for _, snapshot in snapshots
            for metric in snapshot.get("metrics", {})
            if metric.startswith(THROUGHPUT_PREFIXES)
            and not metric.startswith(UNGATED_PREFIXES)})
    else:
        names = list(metrics)
    dates = [name.removeprefix("BENCH_").removesuffix(".json")
             for name, _ in snapshots]
    width = max(len(d) for d in dates[1:])
    header = f"{'metric':<42}" + "".join(
        f" {d:>{width}}" for d in dates[1:]) + f" {'latest':>14}"
    lines = [header, "-" * len(header)]
    for metric in names:
        cells = []
        for (_, previous), (_, current) in zip(snapshots, snapshots[1:]):
            now = normalized(current, metric)
            before = normalized(previous, metric)
            if now is None or before is None:
                now = current.get("metrics", {}).get(metric)
                before = previous.get("metrics", {}).get(metric)
            if now is None or not before:
                cells.append(f"{'-':>{width}}")
            else:
                cells.append(f"{now / before:>{width}.2f}")
        latest = snapshots[-1][1].get("metrics", {}).get(metric)
        latest_cell = f"{latest:>14,.1f}" if latest is not None \
            else f"{'-':>14}"
        lines.append(f"{metric:<42}" + "".join(f" {c}" for c in cells)
                     + f" {latest_cell}")
    return "\n".join(lines)


def format_snapshot(snapshot: dict, comparison: dict | None = None) -> str:
    lines = [f"benchmark snapshot {snapshot['date']} "
             f"(quick={snapshot.get('quick', False)})"]
    for metric in sorted(snapshot["metrics"]):
        value = snapshot["metrics"][metric]
        line = f"  {metric:<42} {value:>14,.1f}"
        if comparison and metric in comparison:
            ratio = comparison[metric].get("ratio")
            if ratio is not None:
                line += f"  ({ratio:.2f}x vs baseline)"
        lines.append(line)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="hot-path benchmark harness; emits BENCH_<date>.json")
    parser.add_argument("--quick", action="store_true",
                        help="small budgets for CI smoke runs")
    parser.add_argument("--output", "-o", default=None,
                        help="output path (default BENCH_<date>.json in "
                             "the current directory)")
    parser.add_argument("--baseline", default=None,
                        help="snapshot to compare against (default: the "
                             "latest BENCH_*.json in the current dir)")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on a regression past --threshold")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed fractional regression (default 0.30)")
    parser.add_argument("--no-write", action="store_true",
                        help="measure and compare without writing a file")
    parser.add_argument("--trend", action="store_true",
                        help="print the per-metric trajectory across all "
                             "committed BENCH_*.json and exit (no "
                             "measurement)")
    parser.add_argument("--trend-dir", default=None,
                        help="directory holding BENCH_*.json snapshots "
                             "(default: benchmarks/ when it has any, else "
                             "the current directory)")
    parser.add_argument("--metric", action="append", default=None,
                        help="restrict --trend to this metric (repeatable)")
    args = parser.parse_args(argv)

    if args.trend:
        if args.trend_dir:
            root = Path(args.trend_dir)
        else:
            root = Path("benchmarks")
            if not any(root.glob("BENCH_*.json")):
                root = Path.cwd()
        print(format_trend(load_snapshots(root), metrics=args.metric))
        return 0

    snapshot = run_bench(quick=args.quick)

    baseline = None
    baseline_path = Path(args.baseline) if args.baseline else \
        find_previous_snapshot(Path.cwd())
    if baseline_path is not None and baseline_path.exists():
        try:
            baseline = json.loads(baseline_path.read_text())
        except ValueError:
            print(f"warning: unreadable baseline {baseline_path}",
                  file=sys.stderr)

    comparison = compare(snapshot, baseline) if baseline else None
    if comparison:
        snapshot["baseline"] = str(baseline_path)
        snapshot["comparison"] = comparison

    print(format_snapshot(snapshot, comparison))

    if not args.no_write:
        output = Path(args.output) if args.output else \
            Path(f"BENCH_{snapshot['date']}.json")
        output.write_text(json.dumps(snapshot, indent=2, sort_keys=True)
                          + "\n")
        print(f"wrote {output}")

    if args.check and baseline:
        failures = regression_failures(snapshot, baseline, args.threshold)
        if failures:
            print("PERFORMANCE REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"regression check passed (threshold "
              f"{args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
