"""BOOM configurations — Table I of the paper.

The paper analyzes three SonicBOOM design points of increasing
aggressiveness: MediumBOOM (2-wide), LargeBOOM (3-wide) and MegaBOOM
(4-wide).  Table I itself is not included in the paper text, so parameter
values here are reconstructed from the public SonicBOOM/Chipyard configs
plus every constraint the paper states explicitly:

* decode widths 2 / 3 / 4 (§IV-D: sha IPC approaches each width);
* integer RF ports 6R/3W, 8R/4W, 12R/6W (§IV-B, Integer Register File);
* FP RF ports double from LargeBOOM to MegaBOOM (Key Takeaway #2);
* MegaBOOM's integer issue queue has 40 slots (Fig. 8);
* MediumBOOM's BTB is half the size of the other two (§IV-B, Branch
  Predictor);
* LargeBOOM and MegaBOOM have identical L1D size/associativity, but
  MegaBOOM has two memory units and twice the MSHRs (Key Takeaway #8);
* LargeBOOM and MegaBOOM share the same L1I configuration (§IV-B).

All three designs run at the same 500 MHz clock (§IV-A), so they differ
only in IPC and power.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.errors import ConfigError

#: The paper's fixed clock for all configurations (§IV-A).
CLOCK_HZ = 500_000_000


@dataclass(frozen=True)
class CacheParams:
    """One L1 cache: size, associativity, line size, and MSHR count."""

    size_bytes: int
    ways: int
    mshrs: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        # Positivity first: a degenerate geometry like size_bytes=0 (or
        # any size smaller than one way of lines that still divides
        # evenly) used to yield sets == 0, which slipped through the
        # power-of-two check below (0 & -1 == 0).  A design-space
        # generator must not be able to emit such a point.
        if self.ways <= 0 or self.mshrs <= 0 or self.line_bytes <= 0:
            raise ConfigError("cache needs positive ways/mshrs/line size")
        if self.size_bytes <= 0 \
                or self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigError("cache size must divide into ways * lines")
        if self.sets < 1 or self.sets & (self.sets - 1):
            raise ConfigError(
                "cache set count must be a positive power of two")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass(frozen=True)
class PredictorParams:
    """Branch predictor structure sizes."""

    kind: str = "tage"            # "tage" or "gshare" (ablation baseline)
    btb_entries: int = 512
    ras_entries: int = 32
    # TAGE: a bimodal base table plus tagged components.
    tage_base_entries: int = 4096
    tage_table_entries: int = 512
    tage_tables: int = 4
    tage_tag_bits: int = 9
    tage_history_lengths: tuple[int, ...] = (4, 8, 16, 32)
    # gshare (used when kind == "gshare"; sized like the predecessor
    # study's predictor [14])
    gshare_entries: int = 16384
    gshare_history_bits: int = 14

    def __post_init__(self) -> None:
        if self.kind not in ("tage", "gshare"):
            raise ConfigError(f"unknown predictor kind {self.kind!r}")
        if len(self.tage_history_lengths) != self.tage_tables:
            raise ConfigError("one history length per TAGE table required")


@dataclass(frozen=True)
class BoomConfig:
    """A complete BOOM core configuration (one Table I column)."""

    name: str
    fetch_width: int
    decode_width: int
    rob_entries: int
    int_phys_regs: int
    fp_phys_regs: int
    int_iq_entries: int
    mem_iq_entries: int
    fp_iq_entries: int
    int_rf_read_ports: int
    int_rf_write_ports: int
    fp_rf_read_ports: int
    fp_rf_write_ports: int
    ldq_entries: int
    stq_entries: int
    mem_units: int
    alu_units: int
    fp_units: int
    fetch_buffer_entries: int
    ftq_entries: int
    max_branches: int        # in-flight branch tags (rename snapshots)
    predictor: PredictorParams
    icache: CacheParams
    dcache: CacheParams
    #: issue queue implementation: "collapsing" (SonicBOOM's default) or
    #: "ring" (non-collapsing, age-ordered — the Key Takeaway #5
    #: alternative in the style of Folegnani & González)
    issue_queue_kind: str = "collapsing"
    #: lazy FP allocation-list snapshots: only snapshot the FP rename
    #: unit on branches while FP instructions are in flight (the
    #: Key Takeaway #3 optimization)
    fp_rename_lazy_snapshots: bool = False

    def __post_init__(self) -> None:
        if self.issue_queue_kind not in ("collapsing", "ring"):
            raise ConfigError(
                f"unknown issue queue kind {self.issue_queue_kind!r}")
        if self.decode_width <= 0 or self.fetch_width < self.decode_width:
            raise ConfigError("fetch width must cover decode width")
        if self.rob_entries < 2 * self.decode_width:
            raise ConfigError("ROB too small for the machine width")
        if self.int_phys_regs <= 32 or self.fp_phys_regs <= 32:
            raise ConfigError("need more physical than architectural regs")
        if min(self.int_iq_entries, self.mem_iq_entries,
               self.fp_iq_entries) <= 0:
            raise ConfigError("issue queues need at least one entry")
        if self.mem_units < 1 or self.alu_units < 1 or self.fp_units < 1:
            raise ConfigError("need at least one unit of each kind")

    @property
    def commit_width(self) -> int:
        """BOOM retires at core width."""
        return self.decode_width

    def _ablated(self, tag: str, **changes) -> "BoomConfig":
        """An ablation of this config, named after its own content.

        The old scheme (``f"{name}-{kind}"``) mangled names: repeated
        application stacked suffixes (``MediumBOOM-gshare-gshare``), and
        a generated config whose name happened to contain ``-gshare``
        could collide with a genuinely different ablated config in every
        name-keyed map (sweep state, result maps, analysis series).
        Names now carry the stable content hash of the ablated config,
        so equal names imply equal hardware.
        """
        ablated = replace(self, **changes)
        base = self.name.split("@", 1)[0]
        return replace(ablated,
                       name=f"{base}-{tag}@{config_id(ablated)[:10]}")

    def with_predictor(self, kind: str) -> "BoomConfig":
        """This config with a different direction predictor (ablations)."""
        if self.predictor.kind == kind:
            return self
        return self._ablated(kind,
                             predictor=replace(self.predictor, kind=kind))

    def with_issue_queues(self, kind: str) -> "BoomConfig":
        """This config with a different issue-queue design (ablations)."""
        if self.issue_queue_kind == kind:
            return self
        return self._ablated(f"{kind}iq", issue_queue_kind=kind)

    def with_lazy_fp_snapshots(self) -> "BoomConfig":
        """This config with the Key Takeaway #3 rename optimization."""
        if self.fp_rename_lazy_snapshots:
            return self
        return self._ablated("lazyfp", fp_rename_lazy_snapshots=True)

    def describe(self) -> dict[str, object]:
        """Table I row for this configuration."""
        return {
            "Configuration": self.name,
            "Fetch width": self.fetch_width,
            "Decode width": self.decode_width,
            "ROB entries": self.rob_entries,
            "Int phys regs": self.int_phys_regs,
            "FP phys regs": self.fp_phys_regs,
            "Int IQ / Mem IQ / FP IQ": (f"{self.int_iq_entries}/"
                                        f"{self.mem_iq_entries}/"
                                        f"{self.fp_iq_entries}"),
            "Int RF ports (R/W)": (f"{self.int_rf_read_ports}R/"
                                   f"{self.int_rf_write_ports}W"),
            "FP RF ports (R/W)": (f"{self.fp_rf_read_ports}R/"
                                  f"{self.fp_rf_write_ports}W"),
            "LDQ/STQ": f"{self.ldq_entries}/{self.stq_entries}",
            "Memory units": self.mem_units,
            "BTB entries": self.predictor.btb_entries,
            "L1I": (f"{self.icache.size_bytes // 1024}KiB/"
                    f"{self.icache.ways}w/{self.icache.mshrs}mshr"),
            "L1D": (f"{self.dcache.size_bytes // 1024}KiB/"
                    f"{self.dcache.ways}w/{self.dcache.mshrs}mshr"),
        }


# SmallBOOM is not part of the paper's study (Table I covers
# Medium/Large/Mega) but is a standard SonicBOOM design point; it is
# provided for design-space exploration beyond the paper.
SMALL_BOOM = BoomConfig(
    name="SmallBOOM",
    fetch_width=4,
    decode_width=1,
    rob_entries=32,
    int_phys_regs=52,
    fp_phys_regs=48,
    int_iq_entries=8,
    mem_iq_entries=8,
    fp_iq_entries=8,
    int_rf_read_ports=3,
    int_rf_write_ports=2,
    fp_rf_read_ports=3,
    fp_rf_write_ports=1,
    ldq_entries=8,
    stq_entries=8,
    mem_units=1,
    alu_units=1,
    fp_units=1,
    fetch_buffer_entries=8,
    ftq_entries=16,
    max_branches=8,
    predictor=PredictorParams(btb_entries=128, tage_base_entries=1024,
                              tage_table_entries=128),
    icache=CacheParams(size_bytes=16 * 1024, ways=4, mshrs=2),
    dcache=CacheParams(size_bytes=16 * 1024, ways=4, mshrs=2),
)

MEDIUM_BOOM = BoomConfig(
    name="MediumBOOM",
    fetch_width=4,
    decode_width=2,
    rob_entries=64,
    int_phys_regs=80,
    fp_phys_regs=64,
    int_iq_entries=20,
    mem_iq_entries=12,
    fp_iq_entries=16,
    int_rf_read_ports=6,
    int_rf_write_ports=3,
    fp_rf_read_ports=3,
    fp_rf_write_ports=2,
    ldq_entries=16,
    stq_entries=16,
    mem_units=1,
    alu_units=2,
    fp_units=1,
    fetch_buffer_entries=16,
    ftq_entries=32,
    max_branches=12,
    # The 2-wide frontend carries a half-size BTB (paper §IV-B) and a
    # proportionally smaller TAGE.
    predictor=PredictorParams(btb_entries=256, tage_base_entries=2048,
                              tage_table_entries=256),
    icache=CacheParams(size_bytes=16 * 1024, ways=4, mshrs=2),
    dcache=CacheParams(size_bytes=16 * 1024, ways=4, mshrs=4),
)

LARGE_BOOM = BoomConfig(
    name="LargeBOOM",
    fetch_width=8,
    decode_width=3,
    rob_entries=96,
    int_phys_regs=100,
    fp_phys_regs=96,
    int_iq_entries=32,
    mem_iq_entries=24,
    fp_iq_entries=24,
    int_rf_read_ports=8,
    int_rf_write_ports=4,
    fp_rf_read_ports=4,
    fp_rf_write_ports=2,
    ldq_entries=24,
    stq_entries=24,
    mem_units=1,
    alu_units=3,
    fp_units=1,
    fetch_buffer_entries=24,
    ftq_entries=32,
    max_branches=16,
    predictor=PredictorParams(btb_entries=512),
    icache=CacheParams(size_bytes=32 * 1024, ways=8, mshrs=2),
    dcache=CacheParams(size_bytes=32 * 1024, ways=8, mshrs=4),
)

MEGA_BOOM = BoomConfig(
    name="MegaBOOM",
    fetch_width=8,
    decode_width=4,
    rob_entries=128,
    int_phys_regs=128,
    fp_phys_regs=128,
    int_iq_entries=40,      # Fig. 8: 40 integer issue slots
    mem_iq_entries=24,
    fp_iq_entries=32,
    int_rf_read_ports=12,
    int_rf_write_ports=6,
    fp_rf_read_ports=8,     # 2x LargeBOOM (Key Takeaway #2)
    fp_rf_write_ports=4,
    ldq_entries=32,
    stq_entries=32,
    mem_units=2,            # two memory execution units (Key Takeaway #8)
    alu_units=4,
    fp_units=2,
    fetch_buffer_entries=32,
    ftq_entries=40,
    max_branches=20,
    predictor=PredictorParams(btb_entries=512),
    icache=CacheParams(size_bytes=32 * 1024, ways=8, mshrs=2),
    dcache=CacheParams(size_bytes=32 * 1024, ways=8, mshrs=8),  # 2x MSHRs
)

#: the paper's sweep axis (Table I) — the *default* axis; any iterable
#: of BoomConfigs is an equally valid one (see repro.uarch.space)
ALL_CONFIGS: tuple[BoomConfig, ...] = (MEDIUM_BOOM, LARGE_BOOM, MEGA_BOOM)

#: every named design point, including SmallBOOM (not in the paper's
#: study, but a legal neighborhood center for design-space exploration)
PRESET_CONFIGS: tuple[BoomConfig, ...] = (SMALL_BOOM,) + ALL_CONFIGS


def config_id(config: BoomConfig) -> str:
    """Stable content hash of a configuration, excluding its name.

    The digest covers the canonical JSON form (sorted keys) of every
    field *value*, so it is independent of field declaration order and
    of how the config was built — a point reached by ``replace`` chains,
    keyword construction, or lattice generation hashes identically when
    the hardware is identical.  Defaults are materialized into values,
    so changing a dataclass *default* never silently re-identifies
    configs that spelled the value out.  The display name is excluded:
    it is presentation, not hardware.
    """
    payload = asdict(config)
    del payload["name"]
    canonical = json.dumps({"boom_config": payload}, sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def config_by_name(name: str) -> BoomConfig:
    """Look up one of the standard (preset) configurations."""
    for config in PRESET_CONFIGS:
        if config.name.lower() == name.lower():
            return config
    known = ", ".join(c.name for c in PRESET_CONFIGS)
    raise ConfigError(f"unknown configuration {name!r} (known: {known})")
