"""Collapsing issue queues.

BOOM's three distributed issue units (integer, memory, floating point)
each use a *collapsing* queue: entries shift toward the head as older
entries issue, keeping the oldest-first priority encoder simple — at the
cost of register writes for every shifted entry on every issue (Key
Takeaway #5).  The model counts those shifts, per-slot writes, and
per-slot per-cycle occupancy; the latter two generate Fig. 8.
"""

from __future__ import annotations

from typing import Callable

from repro.uarch.stats import IssueQueueStats
from repro.uarch.uop import Uop

#: Shared empty result for selects that issue nothing (callers must not
#: mutate select()'s return value).
_NO_ISSUE: list[Uop] = []


class IssueQueue:
    """One collapsing issue queue."""

    def __init__(self, name: str, entries: int,
                 stats: IssueQueueStats) -> None:
        self.name = name
        self.entries = entries
        self.stats = stats
        stats.ensure_slots(entries)
        self._queue: list[Uop] = []
        self._occ_hist = [0] * (entries + 1)

    def rebind_stats(self, stats: IssueQueueStats) -> None:
        self.flush_samples()
        stats.ensure_slots(self.entries)
        self.stats = stats

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def has_space(self) -> bool:
        return len(self._queue) < self.entries

    def insert(self, uop: Uop) -> None:
        """Dispatch writes the uop into the first free (tail) slot."""
        stats = self.stats
        stats.writes += 1
        stats.slot_writes[len(self._queue)] += 1
        self._queue.append(uop)

    def select(self, cycle: int, max_issue: int,
               can_issue: Callable[[Uop, int], bool]) -> list[Uop]:
        """Oldest-first select of ready uops; collapses the queue.

        ``can_issue(uop, cycle)`` combines operand readiness with the
        caller's structural checks (FU availability, LSU ordering, MSHRs).
        Selected entries are removed; survivors shift toward the head with
        one counted register write per moved entry.  Entries ahead of the
        first issued uop never move, so the survivor list is only built
        (and the queue only rewritten) once something actually issues.
        """
        queue = self._queue
        if not queue or max_issue <= 0:
            return _NO_ISSUE
        issued: list[Uop] | None = None
        kept: list[Uop] = queue  # replaced on first issue
        stats = self.stats
        slot_writes = stats.slot_writes
        for index, uop in enumerate(queue):
            if issued is None:
                if can_issue(uop, cycle):
                    issued = [uop]
                    kept = queue[:index]
            elif len(issued) < max_issue and can_issue(uop, cycle):
                issued.append(uop)
            else:
                new_index = len(kept)
                if new_index != index:
                    stats.shifts += 1
                    slot_writes[new_index] += 1
                kept.append(uop)
        if issued is None:
            return _NO_ISSUE
        self._queue = kept
        stats.issues += len(issued)
        return issued

    def wakeup(self) -> None:
        """A completing destination tag is broadcast to this queue."""
        self.stats.wakeup_broadcasts += 1

    def sample(self) -> None:
        """Per-cycle occupancy sampling (total and per slot)."""
        stats = self.stats
        occupancy = len(self._queue)
        stats.occupancy += occupancy
        slots = stats.slot_occupancy
        for index in range(occupancy):
            slots[index] += 1

    def sample_batched(self) -> None:
        """Record this cycle's occupancy in the histogram (hot path).

        A collapsing queue always occupies the slot prefix ``0..occ-1``,
        so the occupancy histogram losslessly encodes the same per-slot
        residency :meth:`sample` counts cycle by cycle;
        :meth:`flush_samples` converts it in one pass.
        """
        self._occ_hist[len(self._queue)] += 1

    def flush_samples(self) -> None:
        """Fold the batched histogram into the stats counters."""
        hist = self._occ_hist
        stats = self.stats
        slots = stats.slot_occupancy
        cycles_above = 0
        for occ in range(len(hist) - 1, 0, -1):
            count = hist[occ]
            if count:
                cycles_above += count
                stats.occupancy += occ * count
                hist[occ] = 0
            if cycles_above:
                slots[occ - 1] += cycles_above
        hist[0] = 0


class RingIssueQueue:
    """A non-collapsing, age-ordered issue queue (Key Takeaway #5).

    Entries stay in their slots from dispatch to issue — no shift writes —
    at the cost of an age matrix for the oldest-first select (Folegnani &
    González's energy-effective issue logic).  Interface-compatible with
    :class:`IssueQueue`, so the core takes either via
    ``BoomConfig.issue_queue_kind``.
    """

    def __init__(self, name: str, entries: int,
                 stats: IssueQueueStats) -> None:
        self.name = name
        self.entries = entries
        self.stats = stats
        stats.ensure_slots(entries)
        self._slots: list[Uop | None] = [None] * entries
        self._count = 0

    def rebind_stats(self, stats: IssueQueueStats) -> None:
        stats.ensure_slots(self.entries)
        self.stats = stats

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    def has_space(self) -> bool:
        return self._count < self.entries

    def insert(self, uop: Uop) -> None:
        """Dispatch writes the uop into the first free slot (no shifts)."""
        for index, occupant in enumerate(self._slots):
            if occupant is None:
                self._slots[index] = uop
                self._count += 1
                self.stats.writes += 1
                self.stats.slot_writes[index] += 1
                return
        raise IndexError("insert into a full issue queue")

    def select(self, cycle: int, max_issue: int,
               can_issue: Callable[[Uop, int], bool]) -> list[Uop]:
        """Oldest-first (by sequence number) select across all slots."""
        if self._count == 0 or max_issue <= 0:
            return []
        occupied = [(uop.seq, index, uop)
                    for index, uop in enumerate(self._slots)
                    if uop is not None]
        occupied.sort()
        issued: list[Uop] = []
        for _, index, uop in occupied:
            if len(issued) >= max_issue:
                break
            if can_issue(uop, cycle):
                issued.append(uop)
                self._slots[index] = None
                self._count -= 1
        self.stats.issues += len(issued)
        return issued

    def wakeup(self) -> None:
        self.stats.wakeup_broadcasts += 1

    def sample(self) -> None:
        stats = self.stats
        stats.occupancy += self._count
        slots = stats.slot_occupancy
        for index, occupant in enumerate(self._slots):
            if occupant is not None:
                slots[index] += 1

    def sample_batched(self) -> None:
        # Occupied slots are scattered, not a prefix, so a histogram
        # cannot reconstruct per-slot residency: sample eagerly instead.
        self.sample()

    def flush_samples(self) -> None:
        pass


def make_issue_queue(kind: str, name: str, entries: int,
                     stats: IssueQueueStats):
    """Factory for the configured issue-queue implementation."""
    if kind == "ring":
        return RingIssueQueue(name, entries, stats)
    return IssueQueue(name, entries, stats)
