"""Config-invariant fetch trace: the oracle instruction stream, recorded once.

The detailed core is oracle-driven: fetch steps a functional model
instruction-by-instruction so branch outcomes and effective addresses are
known at fetch time (frontend.py).  Those outcomes are a pure function of
the checkpointed architectural state — identical for *every* uarch config
that replays the same checkpoint.  Replaying a SimPoint across N configs
therefore re-executes the same semantics N times.

A :class:`FetchTrace` lifts that work out of the per-config loop: it steps
one private functional model and records, per dynamic instruction, the
decoded template, fetch pc, effective address, taken flag, and next pc.
Each config's :class:`~repro.uarch.frontend.TraceFetchUnit` then replays
the shared stream through its own private timing (I-cache, predictor,
fetch buffer), producing bit-identical stats to oracle-driven fetch.

The trace extends lazily in chunks: configs consume it at different rates
(different fetch widths and stall patterns), and the builder only runs as
far as the hungriest consumer needs.
"""

from __future__ import annotations

from repro.isa.program import Program, TEXT_BASE
from repro.sim.state import ArchState, MASK64
from repro.uarch.decode import DecodedOp, decode_program

#: Trace-entry tuple layout: (decoded template, pc, effective address,
#: taken flag, next pc).
Entry = tuple[DecodedOp, int, int, bool, int]

_CHUNK = 16384


class FetchTrace:
    """Lazily-built oracle fetch stream for one checkpoint replay."""

    __slots__ = ("program", "entries", "start_pc", "exited", "_state",
                 "_ops")

    def __init__(self, program: Program, state: ArchState) -> None:
        self.program = program
        self.entries: list[Entry] = []
        self.start_pc = state.pc
        self.exited = state.exited
        self._state = state
        self._ops = decode_program(program)

    def __len__(self) -> int:
        return len(self.entries)

    def ensure(self, count: int) -> None:
        """Extend the trace to at least ``count`` entries (or exhaustion).

        Extends by at least a chunk per call so replay-side checks stay
        out of the hot loop.
        """
        entries = self.entries
        if self.exited or len(entries) >= count:
            return
        state = self._state
        ops = self._ops
        append = entries.append
        x = state.x
        budget = max(count, len(entries) + _CHUNK) - len(entries)
        while budget > 0 and not state.exited:
            pc = state.pc
            dec = ops[(pc - TEXT_BASE) >> 2]
            if dec.is_mem:
                mem_addr = (x[dec.rs1] + dec.imm) & MASK64
            else:
                mem_addr = 0
            next_pc = dec.fn(state, dec.instr)
            if next_pc is not None:
                state.pc = next_pc
                append((dec, pc, mem_addr, True, next_pc))
            else:
                next_pc = pc + 4
                state.pc = next_pc
                append((dec, pc, mem_addr, False, next_pc))
            budget -= 1
        self.exited = state.exited
