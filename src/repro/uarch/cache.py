"""Set-associative L1 cache timing model with MSHRs.

True LRU replacement, write-back with dirty bits, and a bounded set of
miss-status handling registers.  The model answers one question per
access: *how many cycles until the data is available*, and `None` when no
MSHR is free (the requester must retry) — which is exactly the structural
behaviour Key Takeaway #8 attributes MegaBOOM's extra D-cache power to.
"""

from __future__ import annotations

from repro.uarch.config import CacheParams
from repro.uarch.stats import CacheStats

#: L2 round-trip at 500 MHz, matching a Chipyard SoC's inclusive L2.
DEFAULT_MISS_PENALTY = 22


class L1Cache:
    """One L1 cache instance (used for both I- and D-side)."""

    def __init__(self, params: CacheParams, stats: CacheStats,
                 hit_latency: int = 3,
                 miss_penalty: int = DEFAULT_MISS_PENALTY) -> None:
        self.params = params
        self.stats = stats
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty
        self._line_shift = params.line_bytes.bit_length() - 1
        self._set_mask = params.sets - 1
        # Per set: list of [tag, dirty] in LRU order (index 0 = LRU).
        self._sets: list[list[list]] = [[] for _ in range(params.sets)]
        # Outstanding misses: line address -> cycle the fill completes.
        self._mshrs: dict[int, int] = {}

    def rebind_stats(self, stats: CacheStats) -> None:
        self.stats = stats

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._line_shift
        return line, line & self._set_mask

    def _retire_mshrs(self, cycle: int) -> None:
        done = [line for line, ready in self._mshrs.items() if ready <= cycle]
        for line in done:
            del self._mshrs[line]

    def mshr_occupancy(self, cycle: int) -> int:
        if not self._mshrs:
            return 0
        self._retire_mshrs(cycle)
        return len(self._mshrs)

    def mshrs_in_flight(self, cycle: int) -> int:
        """Live MSHR count at ``cycle``, without retiring expired entries.

        Unlike :meth:`mshr_occupancy` this never mutates the MSHR table,
        so observers (repro.check) can call it without perturbing the
        lazily-retired state the access path sees.
        """
        return sum(1 for ready in self._mshrs.values() if ready > cycle)

    def access(self, address: int, cycle: int,
               is_write: bool = False) -> int | None:
        """Access the cache; returns data-ready latency or None (retry).

        ``None`` means every MSHR is busy with other lines — the request
        cannot even be accepted this cycle.
        """
        stats = self.stats
        line, set_index = self._locate(address)
        ways = self._sets[set_index]
        for position, entry in enumerate(ways):
            if entry[0] == line:
                # Hit: move to MRU, set dirty on writes.
                if position != len(ways) - 1:
                    ways.append(ways.pop(position))
                if is_write:
                    entry[1] = True
                    stats.writes += 1
                else:
                    stats.reads += 1
                # If the line's fill is still in flight, this is really a
                # secondary miss: wait for the outstanding MSHR.
                pending = self._mshrs.get(line)
                if pending is not None and pending > cycle:
                    stats.misses += 1
                    return max(self.hit_latency, pending - cycle)
                return self.hit_latency
        # Miss path.
        self._retire_mshrs(cycle)
        pending = self._mshrs.get(line)
        if pending is not None:
            # Secondary miss merges into the existing MSHR.
            if is_write:
                stats.writes += 1
            else:
                stats.reads += 1
            stats.misses += 1
            return max(self.hit_latency, pending - cycle)
        if len(self._mshrs) >= self.params.mshrs:
            # Refused: the requester retries, so count only the stall.
            stats.mshr_full_stalls += 1
            return None
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.misses += 1
        ready = cycle + self.miss_penalty
        self._mshrs[line] = ready
        stats.mshr_allocs += 1
        # Fill now (timing handled via the returned latency); evict LRU.
        if len(ways) >= self.params.ways:
            victim = ways.pop(0)
            if victim[1]:
                stats.writebacks += 1
        ways.append([line, is_write])
        return self.miss_penalty

    def warm_reset_stats(self) -> None:
        """Keep cache contents, zero the counters (measurement start)."""
        self.stats = CacheStats()
