"""The BOOM design space as a first-class object (ROADMAP item 3).

The paper studies exactly three SonicBOOM design points; this module
generalizes that trio into a declarative *parameter lattice*: each
:class:`ParamAxis` names one ``BoomConfig`` field (dotted paths reach
into the nested cache/predictor params) and enumerates its legal rungs.
A :class:`DesignSpace` combines a preset *base* configuration, the axes,
and composable legality constraints; every sampler — exhaustive
:meth:`DesignSpace.grid`, :meth:`DesignSpace.neighborhood` rings around
the base, seeded :meth:`DesignSpace.random` — produces only *legal*
``BoomConfig`` instances:

* construction itself re-runs ``BoomConfig.__post_init__`` (and the
  nested ``CacheParams``/``PredictorParams`` validation), so nothing a
  dataclass would reject can leave the generator, and
* the structural :data:`DEFAULT_CONSTRAINTS` (port/width coupling, LSQ
  vs ROB sizing, MSHR vs LDQ coverage, power-of-two BTBs) reject points
  that are constructible but architecturally nonsensical.

Generated points are named ``dse-<config_id>``, the stable content hash
of :func:`repro.uarch.config.config_id`, so they flow through the
content-addressed artifact store, sweep state, and every name-keyed
analysis map without collisions — and a lattice point whose content
equals a known preset *is* that preset (same object, same name, same
cache keys), which keeps the paper's three presets bit-identical no
matter how they were reached.

Sampling is deterministic: a fixed seed yields the same point list, in
the same order, across process restarts and platforms (``random.Random``
with integer seeding; no set/dict iteration feeds the draw order).

Example::

    from repro.uarch.space import DesignSpace, SpaceSpec, generate_points

    points = generate_points(SpaceSpec(base="LargeBOOM", count=64))
    space = DesignSpace.around(config_by_name("LargeBOOM"))
    points = space.neighborhood(count=64, radius=2)
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, replace
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import ConfigError
from repro.uarch.config import (
    BoomConfig,
    PRESET_CONFIGS,
    config_by_name,
    config_id,
)

__all__ = [
    "ParamAxis",
    "DesignSpace",
    "SpaceSpec",
    "DEFAULT_AXES",
    "DEFAULT_CONSTRAINTS",
    "generate_points",
    "spec_from_dict",
    "spec_to_dict",
    "points_to_dict",
    "points_from_dict",
]

#: a composable legality predicate over fully constructed configs
Constraint = Callable[[BoomConfig], bool]

#: format version of the serialized space/point documents
SPACE_FORMAT = 1


@dataclass(frozen=True)
class ParamAxis:
    """One lattice dimension: a config field and its ordered rungs.

    ``path`` is the ``BoomConfig`` field name, dotted for the nested
    parameter blocks (``dcache.mshrs``, ``predictor.btb_entries``).
    ``values`` are the legal rungs in ascending order; neighborhood
    sampling steps along them, so spacing encodes how coarsely the
    dimension is explored.
    """

    path: str
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigError(f"axis {self.path!r} has no rungs")
        if list(self.values) != sorted(set(self.values)):
            raise ConfigError(
                f"axis {self.path!r} rungs must be ascending and unique")

    def nearest_index(self, value: int) -> int:
        """Index of the rung closest to ``value`` (ties go low)."""
        return min(range(len(self.values)),
                   key=lambda i: (abs(self.values[i] - value), i))


#: the studied parameters — §6 of the issue: ROB, IQ banks, RF ports,
#: MSHRs, fetch/decode width, BTB, LDQ/STQ, physical registers
DEFAULT_AXES: tuple[ParamAxis, ...] = (
    ParamAxis("decode_width", (1, 2, 3, 4, 5)),
    ParamAxis("fetch_width", (4, 8)),
    ParamAxis("rob_entries", (32, 48, 64, 80, 96, 112, 128, 160)),
    ParamAxis("int_phys_regs", (48, 64, 80, 96, 100, 112, 128, 144)),
    ParamAxis("fp_phys_regs", (48, 64, 80, 96, 112, 128)),
    ParamAxis("int_iq_entries", (8, 12, 16, 20, 24, 32, 40, 48)),
    ParamAxis("mem_iq_entries", (8, 12, 16, 20, 24, 32)),
    ParamAxis("fp_iq_entries", (8, 16, 24, 32, 40)),
    ParamAxis("int_rf_read_ports", (4, 6, 8, 10, 12, 14)),
    ParamAxis("int_rf_write_ports", (2, 3, 4, 5, 6, 7)),
    ParamAxis("fp_rf_read_ports", (2, 3, 4, 6, 8)),
    ParamAxis("fp_rf_write_ports", (1, 2, 3, 4)),
    ParamAxis("ldq_entries", (8, 12, 16, 24, 32, 40)),
    ParamAxis("stq_entries", (8, 12, 16, 24, 32, 40)),
    ParamAxis("dcache.mshrs", (1, 2, 4, 8, 16)),
    ParamAxis("icache.mshrs", (1, 2, 4)),
    ParamAxis("predictor.btb_entries", (128, 256, 512, 1024)),
)


# ----------------------------------------------------------------------
# structural legality constraints (beyond dataclass validation)
# ----------------------------------------------------------------------

def _rf_ports_cover_width(config: BoomConfig) -> bool:
    """Integer RF ports must feed the machine width (2 reads + 1 write
    per issued op, ports at least paired read:write)."""
    return (config.int_rf_read_ports >= 2 * config.decode_width
            and config.int_rf_write_ports >= config.decode_width
            and config.int_rf_read_ports >= config.int_rf_write_ports)


def _lsq_fits_rob(config: BoomConfig) -> bool:
    """In-flight memory ops live in the ROB too."""
    return (config.ldq_entries <= config.rob_entries
            and config.stq_entries <= config.rob_entries)


def _mshrs_covered_by_ldq(config: BoomConfig) -> bool:
    """More outstanding misses than load-queue slots is dead silicon."""
    return config.dcache.mshrs <= config.ldq_entries


def _iqs_fit_rob(config: BoomConfig) -> bool:
    """Issue-queue slots beyond 2x the ROB can never fill."""
    total = (config.int_iq_entries + config.mem_iq_entries
             + config.fp_iq_entries)
    return total <= 2 * config.rob_entries


def _regs_cover_rob(config: BoomConfig) -> bool:
    """Enough rename headroom: at least half the ROB renameable."""
    return (config.int_phys_regs >= 32 + config.rob_entries // 2
            and config.fp_phys_regs >= 32 + config.rob_entries // 4)


def _btb_power_of_two(config: BoomConfig) -> bool:
    entries = config.predictor.btb_entries
    return entries >= 1 and entries & (entries - 1) == 0


DEFAULT_CONSTRAINTS: tuple[Constraint, ...] = (
    _rf_ports_cover_width,
    _lsq_fits_rob,
    _mshrs_covered_by_ldq,
    _iqs_fit_rob,
    _regs_cover_rob,
    _btb_power_of_two,
)

#: content hash -> preset, for snapping generated points onto the named
#: designs so preset artifacts stay bit-identical however reached
_PRESETS_BY_ID: dict[str, BoomConfig] = {
    config_id(config): config for config in PRESET_CONFIGS}


def _replace_path(config: BoomConfig, path: str, value: int) -> BoomConfig:
    """``dataclasses.replace`` through a dotted field path."""
    if "." not in path:
        return replace(config, **{path: value})
    outer, inner = path.split(".", 1)
    if "." in inner:
        raise ConfigError(f"axis path {path!r} nests too deep")
    nested = getattr(config, outer)
    return replace(config, **{outer: replace(nested, **{inner: value})})


def _read_path(config: BoomConfig, path: str) -> int:
    node = config
    for part in path.split("."):
        node = getattr(node, part)
    return node


@dataclass(frozen=True)
class DesignSpace:
    """A preset-anchored parameter lattice with legality constraints."""

    base: BoomConfig
    axes: tuple[ParamAxis, ...] = DEFAULT_AXES
    constraints: tuple[Constraint, ...] = DEFAULT_CONSTRAINTS

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for axis in self.axes:
            if axis.path in seen:
                raise ConfigError(f"duplicate axis {axis.path!r}")
            seen.add(axis.path)

    @classmethod
    def around(cls, base: BoomConfig | str,
               axes: tuple[ParamAxis, ...] = DEFAULT_AXES,
               constraints: tuple[Constraint, ...] = DEFAULT_CONSTRAINTS,
               ) -> "DesignSpace":
        """The default lattice centered on ``base`` (config or preset
        name)."""
        if isinstance(base, str):
            base = config_by_name(base)
        return cls(base=base, axes=axes, constraints=constraints)

    # ------------------------------------------------------------------
    # point construction
    # ------------------------------------------------------------------

    def apply(self, overrides: Mapping[str, int]) -> BoomConfig:
        """Build the config at lattice point ``overrides`` (axis path ->
        value), without legality screening beyond dataclass validation.

        The result is named ``dse-<config_id>`` — unless its content
        matches a known preset, in which case the preset itself is
        returned so downstream cache keys and analysis maps are
        identical to a hand-written sweep over the presets.
        """
        known = {axis.path for axis in self.axes}
        config = self.base
        for path, value in overrides.items():
            if path not in known:
                raise ConfigError(f"unknown axis {path!r}")
            config = _replace_path(config, path, value)
        cid = config_id(config)
        preset = _PRESETS_BY_ID.get(cid)
        if preset is not None:
            return preset
        return replace(config, name=f"dse-{cid[:12]}")

    def legalize(self, overrides: Mapping[str, int]) -> BoomConfig | None:
        """The config at ``overrides`` if legal, else ``None``."""
        try:
            config = self.apply(overrides)
        except ConfigError:
            return None
        if not all(constraint(config) for constraint in self.constraints):
            return None
        return config

    def is_legal(self, config: BoomConfig) -> bool:
        """Whether a fully built config passes every constraint (the
        dataclass already validated it on construction)."""
        return all(constraint(config) for constraint in self.constraints)

    def base_indexes(self) -> tuple[int, ...]:
        """The base config's position: nearest rung along each axis."""
        return tuple(axis.nearest_index(_read_path(self.base, axis.path))
                     for axis in self.axes)

    def overrides_for(self, config: BoomConfig) -> dict[str, int]:
        """The axis values a config occupies (for serialization), only
        where it differs from the base."""
        return {axis.path: _read_path(config, axis.path)
                for axis in self.axes
                if _read_path(config, axis.path)
                != _read_path(self.base, axis.path)}

    # ------------------------------------------------------------------
    # samplers — every one deterministic and deduplicated by config ID
    # ------------------------------------------------------------------

    def _emit(self, candidates: Iterable[Mapping[str, int]],
              count: int | None) -> list[BoomConfig]:
        out: list[BoomConfig] = []
        seen: set[str] = set()
        for overrides in candidates:
            config = self.legalize(overrides)
            if config is None:
                continue
            cid = config_id(config)
            if cid in seen:
                continue
            seen.add(cid)
            out.append(config)
            if count is not None and len(out) >= count:
                break
        return out

    def grid(self, count: int | None = None) -> list[BoomConfig]:
        """Exhaustive row-major lattice walk (legal points only).

        The full Cartesian product is astronomically large for the
        default axes, so ``count`` is effectively mandatory there; grids
        are intended for small custom axis sets.
        """
        paths = [axis.path for axis in self.axes]
        product = itertools.product(*(axis.values for axis in self.axes))
        return self._emit(
            (dict(zip(paths, values)) for values in product), count)

    def _neighborhood_candidates(self, radius: int, max_changed: int,
                                 ) -> Iterator[dict[str, int]]:
        """Rings around the base, nearest first: all points reachable by
        moving up to ``max_changed`` axes by up to ``radius`` rungs,
        enumerated in deterministic (ring, axis-order) order."""
        center = self.base_indexes()
        yield {}
        offsets = [step for magnitude in range(1, radius + 1)
                   for step in (-magnitude, magnitude)]
        for changed in range(1, max_changed + 1):
            for axis_combo in itertools.combinations(
                    range(len(self.axes)), changed):
                for steps in itertools.product(offsets, repeat=changed):
                    overrides: dict[str, int] = {}
                    for axis_index, step in zip(axis_combo, steps):
                        axis = self.axes[axis_index]
                        rung = center[axis_index] + step
                        if not 0 <= rung < len(axis.values):
                            break
                        overrides[axis.path] = axis.values[rung]
                    else:
                        yield overrides

    def neighborhood(self, count: int | None = None, radius: int = 2,
                     max_changed: int = 2) -> list[BoomConfig]:
        """Legal points around the base, nearest rings first.

        The base point itself is first (snapped to its preset identity
        when the base is a preset), so the anchor design always appears
        in its own neighborhood.
        """
        return self._emit(
            self._neighborhood_candidates(radius, max_changed), count)

    def random(self, count: int, seed: int = 0) -> list[BoomConfig]:
        """Seeded uniform draws over the full lattice, rejection-sampled
        to legal points.  Deterministic for a fixed seed across process
        restarts; returns fewer than ``count`` points only if the legal
        lattice is smaller than asked for.
        """
        rng = random.Random(seed)
        attempts = max(1000, count * 400)

        def draws() -> Iterator[dict[str, int]]:
            for _ in range(attempts):
                yield {axis.path: rng.choice(axis.values)
                       for axis in self.axes}

        return self._emit(draws(), count)


# ----------------------------------------------------------------------
# generation specs (the serializable recipe behind `repro-cli dse`)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SpaceSpec:
    """A reproducible recipe for one generated point set."""

    base: str = "LargeBOOM"
    mode: str = "neighborhood"           # neighborhood | random | grid
    count: int = 64
    radius: int = 2
    max_changed: int = 2
    seed: int = 17
    #: also include the paper's three presets (frontier anchors)
    include_presets: bool = True

    def __post_init__(self) -> None:
        if self.mode not in ("neighborhood", "random", "grid"):
            raise ConfigError(f"unknown sampling mode {self.mode!r}")
        if self.count < 1:
            raise ConfigError("need at least one design point")


def generate_points(spec: SpaceSpec,
                    space: DesignSpace | None = None) -> list[BoomConfig]:
    """Materialize a spec into its deterministic design-point list.

    With ``include_presets`` the paper presets lead the list (they are
    the frontier anchors the acceptance criteria name), followed by the
    generated points; duplicates collapse by config ID.  A neighborhood
    too small for ``count`` is topped up with seeded random-legal draws,
    so the requested lattice size is met whenever the legal space allows.
    """
    if space is None:
        space = DesignSpace.around(spec.base)
    if spec.mode == "neighborhood":
        generated = space.neighborhood(count=spec.count, radius=spec.radius,
                                       max_changed=spec.max_changed)
        if len(generated) < spec.count:
            have = {config_id(config) for config in generated}
            for config in space.random(spec.count, seed=spec.seed):
                if config_id(config) not in have:
                    generated.append(config)
                    have.add(config_id(config))
                if len(generated) >= spec.count:
                    break
    elif spec.mode == "random":
        generated = space.random(spec.count, seed=spec.seed)
    else:
        generated = space.grid(count=spec.count)

    if not spec.include_presets:
        return generated
    from repro.uarch.config import ALL_CONFIGS

    points = list(ALL_CONFIGS)
    have = {config_id(config) for config in points}
    for config in generated:
        cid = config_id(config)
        if cid not in have:
            points.append(config)
            have.add(cid)
    return points


# ----------------------------------------------------------------------
# serialization (the `dse generate` artifact)
# ----------------------------------------------------------------------

def spec_to_dict(spec: SpaceSpec) -> dict:
    return {
        "base": spec.base,
        "mode": spec.mode,
        "count": spec.count,
        "radius": spec.radius,
        "max_changed": spec.max_changed,
        "seed": spec.seed,
        "include_presets": spec.include_presets,
    }


def spec_from_dict(data: Mapping) -> SpaceSpec:
    return SpaceSpec(**{key: data[key] for key in spec_to_dict(SpaceSpec())
                        if key in data})


def points_to_dict(spec: SpaceSpec, points: list[BoomConfig],
                   space: DesignSpace | None = None) -> dict:
    """The serialized space document: spec + every point's identity.

    Generated points serialize as overrides relative to the base preset;
    presets serialize by name.  Reconstructing through
    :func:`points_from_dict` yields configs with identical content
    hashes — and therefore identical artifact cache keys.
    """
    if space is None:
        space = DesignSpace.around(spec.base)
    records = []
    preset_names = {config.name for config in PRESET_CONFIGS}
    for config in points:
        record: dict = {"id": config_id(config), "name": config.name}
        if config.name in preset_names:
            record["preset"] = config.name
        else:
            record["params"] = space.overrides_for(config)
        records.append(record)
    return {"format": SPACE_FORMAT, "spec": spec_to_dict(spec),
            "points": records}


def points_from_dict(data: Mapping) -> tuple[SpaceSpec, list[BoomConfig]]:
    """Rebuild (spec, points) from a serialized space document.

    Every rebuilt point is checked against its recorded content hash, so
    a space file from a different axis/default vintage fails loudly
    instead of silently sweeping different hardware.
    """
    if data.get("format") != SPACE_FORMAT:
        raise ConfigError(
            f"unsupported space document format {data.get('format')!r}")
    spec = spec_from_dict(data["spec"])
    space = DesignSpace.around(spec.base)
    points: list[BoomConfig] = []
    for record in data["points"]:
        if "preset" in record:
            config = config_by_name(record["preset"])
        else:
            config = space.apply(record["params"])
        if config_id(config) != record["id"]:
            raise ConfigError(
                f"space document drift: point {record['name']!r} rebuilt "
                f"with id {config_id(config)}, recorded {record['id']}")
        points.append(config)
    return spec, points
