"""The reorder buffer.

BOOM uses a merged register file, so the ROB holds bookkeeping only (no
instruction data) — the reason its power share is modest (§IV-B).  The
model is an ordered queue with capacity stalls, per-cycle occupancy
sampling, and in-order commit of completed uops.
"""

from __future__ import annotations

from collections import deque

from repro.uarch.stats import RobStats
from repro.uarch.uop import COMPLETED, Uop


class ReorderBuffer:
    """In-order retirement window."""

    def __init__(self, entries: int, stats: RobStats) -> None:
        self.entries = entries
        self.stats = stats
        self._queue: deque[Uop] = deque()

    def rebind_stats(self, stats: RobStats) -> None:
        self.stats = stats

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        """In-flight uops in program order (oldest first)."""
        return iter(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    def has_space(self) -> bool:
        return len(self._queue) < self.entries

    def push(self, uop: Uop) -> None:
        self._queue.append(uop)
        self.stats.dispatch_writes += 1

    def head(self) -> Uop | None:
        return self._queue[0] if self._queue else None

    def head_completed(self, cycle: int) -> bool:
        head = self.head()
        return (head is not None and head.state == COMPLETED
                and head.complete_cycle <= cycle)

    def pop(self) -> Uop:
        self.stats.commit_reads += 1
        return self._queue.popleft()

    def sample(self) -> None:
        self.stats.occupancy += len(self._queue)
