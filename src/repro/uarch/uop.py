"""Micro-op: one instruction in flight through the detailed core.

Uops are created at fetch (with oracle outcome information from the
functional model), renamed at dispatch (source producers resolved), and
tracked until commit.  State is a tiny integer enum for speed.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction

DISPATCHED = 0
ISSUED = 1
COMPLETED = 2

_NEVER = 1 << 60


class Uop:
    """One in-flight micro-op."""

    __slots__ = ("seq", "instr", "opclass", "opclass_name", "queue", "srcs",
                 "src_regs", "dest_kind", "state", "complete_cycle", "taken",
                 "mispredicted", "btb_bubble", "is_load", "is_store",
                 "is_control", "mem_addr", "addr_ready", "dispatch_cycle",
                 "issue_cycle", "x_reads", "f_reads", "fp_snapshotted",
                 "trace_key")

    def __init__(self, seq: int, instr: Instruction) -> None:
        self.seq = seq
        self.instr = instr
        self.opclass = instr.opclass
        self.opclass_name = instr.opclass.name
        self.queue = instr.opclass.issue_queue
        self.srcs: tuple = ()
        spec = instr.spec
        x_reads = 0
        f_reads = 0
        for cls, reg in ((spec.src1, instr.rs1), (spec.src2, instr.rs2),
                         (spec.src3, instr.rs3)):
            if cls == "x":
                if reg:
                    x_reads += 1
            elif cls == "f":
                f_reads += 1
        self.x_reads = x_reads
        self.f_reads = f_reads
        self.src_regs = instr.source_regs()
        if instr.writes_x:
            self.dest_kind = "x"
        elif instr.writes_f:
            self.dest_kind = "f"
        else:
            self.dest_kind = ""
        self.state = DISPATCHED
        self.complete_cycle = _NEVER
        self.taken = False
        self.mispredicted = False
        self.fp_snapshotted = False
        self.btb_bubble = False
        self.is_load = instr.is_load
        self.is_store = instr.is_store
        self.is_control = instr.opclass.is_control
        self.mem_addr = 0
        self.addr_ready = not instr.is_store
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.trace_key = f"{instr.pc:#x}"

    def ready(self, cycle: int) -> bool:
        """All source operands available at ``cycle``."""
        for producer in self.srcs:
            if producer.state != COMPLETED or producer.complete_cycle > cycle:
                return False
        return True

    def __repr__(self) -> str:
        return (f"Uop(#{self.seq} {self.instr.mnemonic} "
                f"pc=0x{self.instr.pc:x} state={self.state})")
