"""The SonicBOOM-like out-of-order core: the cycle-level pipeline loop.

One :class:`BoomCore` instance wires together the fetch unit (with its
branch predictor and L1I), the rename stage (two units, branch snapshots),
the ROB, the three collapsing issue queues, the physical register files,
the execution units, the LSU, and the L1D — and advances them one cycle at
a time:

    commit -> complete -> issue -> dispatch -> fetch -> sample

The core is the *detailed simulation* stage of the paper's flow (Fig. 3,
step 5): it executes SimPoint checkpoints (warm-up excluded from stats)
and produces the per-component activity counters the power model turns
into Figs. 5-8, plus the IPC of Fig. 10.

Example::

    core = BoomCore(MEGA_BOOM, program, state=checkpoint.restore())
    core.run(checkpoint.warmup_instructions)       # warm-up
    stats = core.begin_measurement()
    core.run(interval_size)                        # measured window
    print(stats.ipc)
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instructions import OpClass
from repro.isa.program import Program
from repro.sim.state import ArchState
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.cache import L1Cache
from repro.uarch.config import BoomConfig
from repro.uarch.execute import ExecutionUnits
from repro.uarch.frontend import (REDIRECT_PENALTY, _LINE_SHIFT, FetchUnit,
                                  TraceFetchUnit)
from repro.uarch.ftrace import FetchTrace
from repro.uarch.issue import make_issue_queue
from repro.uarch.lsu import LoadStoreUnit
from repro.uarch.rename import RenameStage
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import CoreStats
from repro.uarch.uop import COMPLETED, ISSUED, Uop

_FORWARD_LATENCY = 4
_SAFETY_FACTOR = 400  # max cycles per requested instruction before we bail
_HEARTBEAT_STRIDE = 4096  # cycles between heartbeat-observer callbacks


class BoomCore:
    """Cycle-level model of one BOOM core plus its L1 caches."""

    def __init__(self, config: BoomConfig, program: Program,
                 state: ArchState | None = None,
                 trace: FetchTrace | None = None) -> None:
        self.config = config
        self.program = program
        self.stats = CoreStats()
        stats = self.stats
        self.bpu = BranchPredictionUnit(config.predictor, stats.predictor)
        self.icache = L1Cache(config.icache, stats.icache, hit_latency=1)
        self.dcache = L1Cache(config.dcache, stats.dcache, hit_latency=3)
        if trace is not None:
            # Batched replay: the shared oracle trace stands in for the
            # per-core functional model (no ArchState needed).
            self.frontend: FetchUnit = TraceFetchUnit(
                config, program, trace, self.bpu, self.icache,
                stats.frontend)
        else:
            if state is None:
                state = ArchState.for_program(program)
            self.frontend = FetchUnit(config, program, state, self.bpu,
                                      self.icache, stats.frontend)
        # The specialized fused loop replicates the collapsing-queue select
        # inline; ring-queue configs replay the trace via the generic loop.
        self._fused = (trace is not None
                       and config.issue_queue_kind == "collapsing")
        self.rename = RenameStage(config, stats.int_rename, stats.fp_rename)
        self.rob = ReorderBuffer(config.rob_entries, stats.rob)
        kind = config.issue_queue_kind
        self.iq_int = make_issue_queue(kind, "int", config.int_iq_entries,
                                       stats.int_iq)
        self.iq_mem = make_issue_queue(kind, "mem", config.mem_iq_entries,
                                       stats.mem_iq)
        self.iq_fp = make_issue_queue(kind, "fp", config.fp_iq_entries,
                                      stats.fp_iq)
        self.lsu = LoadStoreUnit(config, stats.lsu)
        self.fus = ExecutionUnits(config, stats.execute)
        self.cycle = 0
        self.retired_total = 0
        self.branches_in_flight = 0
        self.fp_in_flight = 0
        #: set to a list to record (uop, commit cycle) pairs (debugging /
        #: pipeline visualization; see repro.uarch.pipeview)
        self.retire_log: list[tuple[Uop, int]] | None = None
        self._completions: dict[int, list[Uop]] = {}
        self._queues = {"int": self.iq_int, "mem": self.iq_mem,
                        "fp": self.iq_fp}

    # ------------------------------------------------------------------
    # measurement windows
    # ------------------------------------------------------------------

    def begin_measurement(self) -> CoreStats:
        """Start a fresh stats window (keeps all warm state)."""
        stats = CoreStats()
        self.stats = stats
        self.bpu.rebind_stats(stats.predictor)
        self.icache.rebind_stats(stats.icache)
        self.dcache.rebind_stats(stats.dcache)
        self.frontend.rebind_stats(stats.frontend)
        self.rename.rebind_stats(stats.int_rename, stats.fp_rename)
        self.rob.rebind_stats(stats.rob)
        self.iq_int.rebind_stats(stats.int_iq)
        self.iq_mem.rebind_stats(stats.mem_iq)
        self.iq_fp.rebind_stats(stats.fp_iq)
        self.lsu.rebind_stats(stats.lsu)
        self.fus.rebind_stats(stats.execute)
        return stats

    # ------------------------------------------------------------------
    # the cycle loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int | None = None,
            heartbeat=None) -> int:
        """Advance the pipeline until ``max_instructions`` retire.

        Without a budget, runs until the program exits and the pipeline
        drains.  Returns the number of instructions retired by this call.

        ``heartbeat`` (optional) is a progress observer called as
        ``heartbeat(retired_this_call, cycles_this_call)`` every
        ``_HEARTBEAT_STRIDE`` cycles.  It only reads the counters — the
        loop's termination conditions and step sequence are identical
        with and without it, so a traced run retires exactly the same
        instructions as an untraced one.  The ``heartbeat is None``
        generic path is the original loop, untouched, to keep the hot
        path free of per-cycle bookkeeping; the fused loop takes the
        observer directly (its hoisted state is settled back onto the
        core before every callback, so observers read consistent stats
        mid-run on either loop).
        """
        start = self.retired_total
        start_cycle = self.cycle
        target = None if max_instructions is None \
            else start + max_instructions
        budget = max_instructions if max_instructions is not None \
            else 1 << 40
        deadline = self.cycle + _SAFETY_FACTOR * (budget + 64)
        try:
            if self._fused and self.retire_log is None:
                self._run_fused(target, deadline, heartbeat=heartbeat,
                                hb_start=start, hb_start_cycle=start_cycle)
            elif heartbeat is None:
                while True:
                    if target is not None \
                            and self.retired_total >= target:
                        break
                    if self.frontend.out_of_instructions \
                            and self.rob.is_empty:
                        break
                    self._step()
                    if self.cycle > deadline:
                        raise SimulationError(
                            f"pipeline made no progress for "
                            f"{_SAFETY_FACTOR}x the instruction budget "
                            f"(deadlock?) at cycle {self.cycle}")
            else:
                countdown = _HEARTBEAT_STRIDE
                while True:
                    if target is not None and self.retired_total >= target:
                        break
                    if self.frontend.out_of_instructions \
                            and self.rob.is_empty:
                        break
                    self._step()
                    countdown -= 1
                    if countdown == 0:
                        countdown = _HEARTBEAT_STRIDE
                        heartbeat(self.retired_total - start,
                                  self.cycle - start_cycle)
                    if self.cycle > deadline:
                        raise SimulationError(
                            f"pipeline made no progress for "
                            f"{_SAFETY_FACTOR}x the instruction budget "
                            f"(deadlock?) at cycle {self.cycle}")
        finally:
            # Issue-queue occupancy is sampled into histograms per cycle;
            # fold them into the stats counters whenever control leaves
            # the cycle loop so readers always see settled stats.
            self.iq_int.flush_samples()
            self.iq_mem.flush_samples()
            self.iq_fp.flush_samples()
        return self.retired_total - start

    def _step(self) -> None:
        cycle = self.cycle
        self._commit(cycle)
        self._complete(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self.frontend.cycle(cycle)
        self._sample(cycle)
        self.cycle = cycle + 1
        self.stats.cycles += 1

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        rob = self.rob
        width = self.config.commit_width
        while width > 0 and rob.head_completed(cycle):
            head = rob.head()
            if head.is_store:
                # Stores write the data cache at commit.
                latency = self.dcache.access(head.mem_addr, cycle,
                                             is_write=True)
                if latency is None:
                    break  # all MSHRs busy; retry next cycle
            rob.pop()
            self.rename.commit(head)
            if head.is_load or head.is_store:
                self.lsu.commit(head)
            if head.is_control:
                self.branches_in_flight -= 1
            if head.dest_kind == "f" or head.queue == "fp":
                self.fp_in_flight -= 1
            if self.retire_log is not None:
                self.retire_log.append((head, cycle))
            # Retire-point occupancy attribution (sampled after the
            # retiring uop has left every structure).
            acc = self.stats.accounting
            acc.retires_sampled += 1
            acc.rob_occupancy_at_retire += len(rob)
            acc.iq_occupancy_at_retire += (len(self.iq_int)
                                           + len(self.iq_mem)
                                           + len(self.iq_fp))
            acc.lsu_occupancy_at_retire += len(self.lsu)
            self.stats.count_retired(head.opclass_name)
            self.retired_total += 1
            width -= 1

    # ------------------------------------------------------------------
    # completion / writeback
    # ------------------------------------------------------------------

    def _complete(self, cycle: int) -> None:
        done = self._completions.pop(cycle, None)
        if not done:
            return
        stats = self.stats
        for uop in done:
            uop.state = COMPLETED
            if uop.dest_kind == "x":
                stats.int_regfile.writes += 1
            elif uop.dest_kind == "f":
                stats.fp_regfile.writes += 1
            if uop.dest_kind:
                # Destination tags broadcast to all three issue queues.
                self.iq_int.wakeup()
                self.iq_mem.wakeup()
                self.iq_fp.wakeup()
            if uop.mispredicted:
                self.rename.recover(fp=uop.fp_snapshotted)
                stats.rob.flushes += 1

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        config = self.config
        self.iq_int.select(cycle, config.alu_units, self._try_issue_int)
        self.iq_mem.select(cycle, config.mem_units, self._try_issue_mem)
        self.iq_fp.select(cycle, config.fp_units, self._try_issue_fp)

    def _try_issue_int(self, uop: Uop, cycle: int) -> bool:
        if not uop.ready(cycle):
            return False
        if not self.fus.can_accept(uop.opclass, cycle):
            return False
        latency = self.fus.dispatch(uop.opclass, cycle)
        self._finish_issue(uop, cycle, latency)
        return True

    def _try_issue_fp(self, uop: Uop, cycle: int) -> bool:
        return self._try_issue_int(uop, cycle)

    def _try_issue_mem(self, uop: Uop, cycle: int) -> bool:
        if not uop.ready(cycle):
            return False
        if uop.is_load:
            if not self.lsu.load_may_issue(uop):
                return False
            self.fus.count_load_agu()
            if self.lsu.forwards_from_store(uop):
                latency = _FORWARD_LATENCY
            else:
                access = self.dcache.access(uop.mem_addr, cycle)
                if access is None:
                    return False  # MSHRs exhausted; retry
                latency = access
        else:  # store address+data ready: AGU pass
            latency = self.fus.dispatch(uop.opclass, cycle)
            uop.addr_ready = True
        self._finish_issue(uop, cycle, latency)
        return True

    def _finish_issue(self, uop: Uop, cycle: int, latency: int) -> None:
        uop.state = ISSUED
        uop.issue_cycle = cycle
        stats = self.stats
        # Operand delivery: recently-completed producers arrive on the
        # bypass network; everything else reads the register file.
        bypassed_x = 0
        bypassed_f = 0
        for producer in uop.srcs:
            if producer.complete_cycle >= cycle - 1:
                if producer.dest_kind == "x":
                    bypassed_x += 1
                else:
                    bypassed_f += 1
        stats.int_regfile.bypasses += bypassed_x
        stats.fp_regfile.bypasses += bypassed_f
        stats.int_regfile.reads += max(0, uop.x_reads - bypassed_x)
        stats.fp_regfile.reads += max(0, uop.f_reads - bypassed_f)
        complete_cycle = cycle + latency
        uop.complete_cycle = complete_cycle
        self._completions.setdefault(complete_cycle, []).append(uop)

    # ------------------------------------------------------------------
    # dispatch (decode + rename)
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        buffer = self.frontend.buffer
        if not buffer:
            return
        stats = self.stats
        width = self.config.decode_width
        while width > 0 and buffer:
            uop = buffer[0]
            if not self.rob.has_space():
                stats.rob.full_stall_cycles += 1
                return
            queue = self._queues[uop.queue]
            if not queue.has_space():
                queue.stats.full_stall_cycles += 1
                return
            if not self.rename.can_rename(uop):
                unit = self.rename.unit_for(uop.dest_kind)
                unit.stats.stall_cycles += 1
                return
            if uop.is_control and \
                    self.branches_in_flight >= self.config.max_branches:
                return
            if (uop.is_load or uop.is_store) and \
                    not self.lsu.can_dispatch(uop):
                return
            buffer.popleft()
            stats.frontend.fetch_buffer_reads += 1
            fp_snapshot = (not self.config.fp_rename_lazy_snapshots
                           or self.fp_in_flight > 0)
            self.rename.rename(uop, fp_snapshot=fp_snapshot)
            uop.dispatch_cycle = cycle
            self.rob.push(uop)
            queue.insert(uop)
            if uop.is_load or uop.is_store:
                self.lsu.dispatch(uop)
            if uop.is_control:
                self.branches_in_flight += 1
            if uop.dest_kind == "f" or uop.queue == "fp":
                self.fp_in_flight += 1
            by_trace = stats.accounting.dispatch_by_trace
            key = uop.trace_key
            by_trace[key] = by_trace.get(key, 0) + 1
            width -= 1

    # ------------------------------------------------------------------
    # per-cycle occupancy sampling
    # ------------------------------------------------------------------

    def _sample(self, cycle: int) -> None:
        self.rob.sample()
        self.iq_int.sample_batched()
        self.iq_mem.sample_batched()
        self.iq_fp.sample_batched()
        self.lsu.sample()
        self.stats.dcache.mshr_occupancy += self.dcache.mshr_occupancy(cycle)

    # ------------------------------------------------------------------
    # the fused trace-replay loop (batched engine)
    # ------------------------------------------------------------------

    def _run_fused(self, target: int | None, deadline: int,
                   heartbeat=None, hb_start: int = 0,
                   hb_start_cycle: int = 0) -> None:
        """Specialized cycle loop for trace-driven (batched) replay.

        Semantically identical to iterating :meth:`_step`: same stage
        order, same counter updates, same termination and deadline
        conditions — gated bit-identical against the generic loop by
        ``tests/sim/test_equivalence.py``.  The per-cycle stage bodies
        (commit, complete, the collapsing-queue selects, dispatch/rename,
        sampling) are inlined here with hot state hoisted into locals, so
        per-cycle Python dispatch collapses into one loop body.  Only
        built for collapsing issue queues with no retire log; every other
        shape replays the trace through the generic loop.

        ``heartbeat`` matches the :meth:`run` observer contract: every
        ``_HEARTBEAT_STRIDE`` cycles the hoisted locals are settled back
        onto the core/stats tree (``settle`` below, the same fold the
        exit path performs) and the observer is called — so invariant
        checkers and flight recorders read exactly the state a generic
        loop would show, while the ``heartbeat is None`` cost is one
        integer decrement and compare per cycle.
        """
        config = self.config
        stats = self.stats
        fe = self.frontend
        trace = fe.trace
        trace_entries = trace.entries
        fe_predict = fe._predict
        buffer = fe.buffer
        fetch_width = config.fetch_width
        fetch_buffer_entries = config.fetch_buffer_entries
        icache_access = self.icache.access
        icache_hit = self.icache.hit_latency
        bpu_stats = stats.predictor
        rob = self.rob
        rob_q = rob._queue
        rob_entries = rob.entries
        rob_stats = stats.rob
        iq_int = self.iq_int
        iq_mem = self.iq_mem
        iq_fp = self.iq_fp
        int_q = iq_int._queue
        mem_q = iq_mem._queue
        fp_q = iq_fp._queue
        int_iq_stats = stats.int_iq
        mem_iq_stats = stats.mem_iq
        fp_iq_stats = stats.fp_iq
        int_iq_entries = iq_int.entries
        mem_iq_entries = iq_mem.entries
        fp_iq_entries = iq_fp.entries
        int_slot_writes = int_iq_stats.slot_writes
        mem_slot_writes = mem_iq_stats.slot_writes
        fp_slot_writes = fp_iq_stats.slot_writes
        int_hist = iq_int._occ_hist
        mem_hist = iq_mem._occ_hist
        fp_hist = iq_fp._occ_hist
        lsu = self.lsu
        ldq = lsu._ldq
        stq = lsu._stq
        lsu_stats = stats.lsu
        ldq_entries = config.ldq_entries
        stq_entries = config.stq_entries
        fus = self.fus
        exec_stats = stats.execute
        dcache = self.dcache
        dcache_access = dcache.access
        dcache_mshrs = dcache._mshrs
        dcache_stats = stats.dcache
        int_unit = self.rename.int_unit
        fp_unit = self.rename.fp_unit
        int_ren_stats = int_unit.stats
        fp_ren_stats = fp_unit.stats
        int_rf = stats.int_regfile
        fp_rf = stats.fp_regfile
        frontend_stats = stats.frontend
        completions = self._completions
        acc = stats.accounting
        by_trace = acc.dispatch_by_trace
        by_class = stats.retired_by_class
        commit_width = config.commit_width
        decode_width = config.decode_width
        alu_units = config.alu_units
        mem_units = config.mem_units
        fp_units = config.fp_units
        max_branches = config.max_branches
        lazy_fp = config.fp_rename_lazy_snapshots
        _COMPLETED = COMPLETED
        _ISSUED = ISSUED
        _ALU = OpClass.ALU
        _SYSTEM = OpClass.SYSTEM
        _BRANCH = OpClass.BRANCH
        _JAL = OpClass.JAL
        _JALR = OpClass.JALR
        _MUL = OpClass.MUL
        _DIV = OpClass.DIV
        _FP_ALU = OpClass.FP_ALU
        _FP_MUL = OpClass.FP_MUL
        _FP_CVT = OpClass.FP_CVT
        _FP_DIV = OpClass.FP_DIV
        _REDIRECT = REDIRECT_PENALTY
        _LINE = _LINE_SHIFT
        cycle = self.cycle
        retired_total = self.retired_total
        entry_retired = retired_total
        branches_in_flight = self.branches_in_flight
        fp_in_flight = self.fp_in_flight
        cycles_count = 0
        # Structure sizes tracked incrementally (mirrors len() exactly:
        # every append/popleft/remove/rebind below adjusts its counter).
        rob_n = len(rob_q)
        int_n = len(int_q)
        mem_n = len(mem_q)
        fp_n = len(fp_q)
        ldq_n = len(ldq)
        stq_n = len(stq)
        buf_n = len(buffer)
        # Frontend cursor state, hoisted for the duration of the call
        # (fe_predict writes fe.blocked_by / fe.stall_until; the fetch
        # block re-syncs the locals right after any predictor call).
        pos = fe.pos
        fe_pc = fe.pc
        seq = fe._seq
        stall_until = fe.stall_until
        blocked = fe.blocked_by
        exited = trace.exited
        n_entries = len(trace_entries)
        # Per-call accumulators for counters bumped (multiple times) per
        # cycle; folded into the stats tree in the finally block.
        fbo = 0        # frontend fetch_buffer_occupancy
        fs = 0         # frontend fetch_stall_cycles
        ica = 0        # icache accesses == predictor lookups
        icm = 0        # icache misses
        fbw = 0        # fetch_buffer_writes
        fbr = 0        # fetch_buffer_reads
        dw = 0         # rob dispatch_writes
        rob_occ = 0    # rob occupancy sum
        ldq_occ = 0
        stq_occ = 0
        acc_rob = 0    # accounting occupancy-at-retire sums
        acc_iq = 0
        acc_lsu = 0
        wb = 0         # wakeup broadcasts (same count for all 3 queues)
        irf_w = 0      # int regfile writes
        fprf_w = 0     # fp regfile writes
        # A queue goes "stale" after a scan that issued nothing and
        # mutated no state; readiness is event-driven (a completion, a
        # dispatch into the queue, or a busy-divider retry), so a stale
        # queue scans identically — and silently — until the next event.
        int_stale = False
        mem_stale = False
        fp_stale = False

        def finish_issue(uop: Uop, cycle: int, latency: int) -> None:
            # Inline twin of _finish_issue (closure-hoisted stats refs).
            uop.state = _ISSUED
            uop.issue_cycle = cycle
            bypassed_x = 0
            bypassed_f = 0
            threshold = cycle - 1
            for producer in uop.srcs:
                if producer.complete_cycle >= threshold:
                    if producer.dest_kind == "x":
                        bypassed_x += 1
                    else:
                        bypassed_f += 1
            int_rf.bypasses += bypassed_x
            fp_rf.bypasses += bypassed_f
            extra = uop.x_reads - bypassed_x
            if extra > 0:
                int_rf.reads += extra
            extra = uop.f_reads - bypassed_f
            if extra > 0:
                fp_rf.reads += extra
            complete_cycle = cycle + latency
            uop.complete_cycle = complete_cycle
            bucket = completions.get(complete_cycle)
            if bucket is None:
                completions[complete_cycle] = [uop]
            else:
                bucket.append(uop)

        def settle() -> None:
            # Locals are authoritative inside the loop; sync them back
            # onto the core and fold the per-call accumulators into the
            # stats tree, then zero the accumulators so the fold stays
            # additive.  Runs on loop exit and before every heartbeat
            # callback: after it returns the core reads exactly as if
            # the generic loop had been stepping it.
            nonlocal cycles_count, entry_retired, fbo, fs, ica, icm, \
                fbw, fbr, dw, rob_occ, ldq_occ, stq_occ, acc_rob, \
                acc_iq, acc_lsu, wb, irf_w, fprf_w
            self.cycle = cycle
            self.retired_total = retired_total
            self.branches_in_flight = branches_in_flight
            self.fp_in_flight = fp_in_flight
            stats.cycles += cycles_count
            fe.pos = pos
            fe.pc = fe_pc
            fe._seq = seq
            fe.stall_until = stall_until
            fe.blocked_by = blocked
            delta = retired_total - entry_retired
            stats.retired += delta
            rob_stats.commit_reads += delta
            acc.retires_sampled += delta
            acc.rob_occupancy_at_retire += acc_rob
            acc.iq_occupancy_at_retire += acc_iq
            acc.lsu_occupancy_at_retire += acc_lsu
            rob_stats.occupancy += rob_occ
            rob_stats.dispatch_writes += dw
            frontend_stats.fetch_buffer_occupancy += fbo
            frontend_stats.fetch_stall_cycles += fs
            frontend_stats.icache_accesses += ica
            frontend_stats.icache_misses += icm
            frontend_stats.fetch_buffer_writes += fbw
            frontend_stats.fetch_buffer_reads += fbr
            bpu_stats.lookups += ica
            lsu_stats.ldq_occupancy += ldq_occ
            lsu_stats.stq_occupancy += stq_occ
            int_iq_stats.wakeup_broadcasts += wb
            mem_iq_stats.wakeup_broadcasts += wb
            fp_iq_stats.wakeup_broadcasts += wb
            int_rf.writes += irf_w
            fp_rf.writes += fprf_w
            cycles_count = 0
            entry_retired = retired_total
            fbo = fs = ica = icm = fbw = fbr = dw = 0
            rob_occ = ldq_occ = stq_occ = 0
            acc_rob = acc_iq = acc_lsu = 0
            wb = irf_w = fprf_w = 0

        # -1 when unobserved: the countdown decrements forever without
        # hitting zero, so the disabled cost is one int op per cycle.
        countdown = _HEARTBEAT_STRIDE if heartbeat is not None else -1

        try:
            while True:
                if target is not None and retired_total >= target:
                    break
                if not buf_n and not rob_n and exited \
                        and pos >= n_entries:
                    break

                # ---- commit ----
                width = commit_width
                while width > 0 and rob_n:
                    head = rob_q[0]
                    if head.state != _COMPLETED \
                            or head.complete_cycle > cycle:
                        break
                    if head.is_store:
                        latency = dcache_access(head.mem_addr, cycle,
                                                is_write=True)
                        if latency is None:
                            break  # all MSHRs busy; retry next cycle
                    rob_q.popleft()
                    rob_n -= 1
                    dest_kind = head.dest_kind
                    if dest_kind:
                        unit = int_unit if dest_kind == "x" else fp_unit
                        unit.free += 1
                        unit.stats.freelist_frees += 1
                        unit.total_frees += 1
                        producers = unit.producers
                        rd = head.instr.rd
                        if producers.get(rd) is head:
                            del producers[rd]
                    if head.is_load:
                        ldq.remove(head)
                        ldq_n -= 1
                    elif head.is_store:
                        stq.remove(head)
                        stq_n -= 1
                    if head.is_control:
                        branches_in_flight -= 1
                    if dest_kind == "f" or head.queue == "fp":
                        fp_in_flight -= 1
                    acc_rob += rob_n
                    acc_iq += int_n + mem_n + fp_n
                    acc_lsu += ldq_n + stq_n
                    name = head.opclass_name
                    by_class[name] = by_class.get(name, 0) + 1
                    retired_total += 1
                    width -= 1

                # ---- complete / writeback ----
                done = completions.pop(cycle, None)
                if done:
                    int_stale = mem_stale = fp_stale = False
                    for uop in done:
                        uop.state = _COMPLETED
                        dest_kind = uop.dest_kind
                        if dest_kind == "x":
                            irf_w += 1
                        elif dest_kind == "f":
                            fprf_w += 1
                        if dest_kind:
                            wb += 1
                        if uop.mispredicted:
                            int_ren_stats.snapshot_restores += 1
                            int_unit.total_restores += 1
                            if uop.fp_snapshotted:
                                fp_ren_stats.snapshot_restores += 1
                                fp_unit.total_restores += 1
                            rob_stats.flushes += 1

                # ---- issue: int queue (collapsing select, inlined) ----
                if int_n and not int_stale:
                    kept = None
                    kept_n = 0
                    issued_n = 0
                    index = 0
                    div_blocked = False
                    for uop in int_q:
                        took = False
                        if kept is None or issued_n < alu_units:
                            ok = True
                            for producer in uop.srcs:
                                if producer.state != _COMPLETED \
                                        or producer.complete_cycle > cycle:
                                    ok = False
                                    break
                            if ok:
                                # ExecutionUnits.can_accept + dispatch,
                                # unrolled per opclass (same counters and
                                # latencies as execute.LATENCY).
                                opclass = uop.opclass
                                latency = 0
                                if opclass is _ALU or opclass is _SYSTEM:
                                    exec_stats.alu_ops += 1
                                    latency = 1
                                elif opclass is _BRANCH \
                                        or opclass is _JAL \
                                        or opclass is _JALR:
                                    exec_stats.branch_ops += 1
                                    exec_stats.alu_ops += 1
                                    latency = 1
                                elif opclass is _MUL:
                                    exec_stats.mul_ops += 1
                                    latency = 3
                                elif opclass is _FP_ALU:
                                    exec_stats.fp_alu_ops += 1
                                    latency = 3
                                elif opclass is _FP_MUL:
                                    exec_stats.fp_mul_ops += 1
                                    latency = 4
                                elif opclass is _FP_CVT:
                                    exec_stats.fp_cvt_ops += 1
                                    latency = 2
                                elif opclass is _DIV:
                                    if fus._div_busy_until <= cycle:
                                        fus._div_busy_until = cycle + 13
                                        exec_stats.div_ops += 1
                                        exec_stats.div_busy_cycles += 13
                                        latency = 13
                                    else:
                                        div_blocked = True
                                elif opclass is _FP_DIV:
                                    if fus._fp_div_busy_until <= cycle:
                                        fus._fp_div_busy_until = cycle + 16
                                        exec_stats.fp_div_ops += 1
                                        latency = 16
                                    else:
                                        div_blocked = True
                                if latency:
                                    finish_issue(uop, cycle, latency)
                                    took = True
                        if took:
                            if kept is None:
                                kept = int_q[:index]
                                kept_n = index
                            issued_n += 1
                        elif kept is not None:
                            if kept_n != index:
                                int_iq_stats.shifts += 1
                                int_slot_writes[kept_n] += 1
                            kept.append(uop)
                            kept_n += 1
                        index += 1
                    if kept is not None:
                        iq_int._queue = int_q = kept
                        int_n = kept_n
                        int_iq_stats.issues += issued_n
                    elif not div_blocked:
                        int_stale = True

                # ---- issue: mem queue ----
                if mem_n and not mem_stale:
                    kept = None
                    kept_n = 0
                    issued_n = 0
                    index = 0
                    touched = False
                    for uop in mem_q:
                        took = False
                        if kept is None or issued_n < mem_units:
                            ok = True
                            for producer in uop.srcs:
                                if producer.state != _COMPLETED \
                                        or producer.complete_cycle > cycle:
                                    ok = False
                                    break
                            if ok:
                                if uop.is_load:
                                    lseq = uop.seq
                                    may = True
                                    for store in stq:
                                        if store.seq > lseq:
                                            break
                                        if not store.addr_ready:
                                            may = False
                                            break
                                    if may:
                                        touched = True
                                        exec_stats.agu_ops += 1
                                        addr = uop.mem_addr
                                        tline = addr >> 3
                                        hit = False
                                        searches = 0
                                        for store in stq:
                                            if store.seq > lseq:
                                                break
                                            searches += 1
                                            if store.addr_ready and \
                                                    (store.mem_addr >> 3) \
                                                    == tline:
                                                hit = True
                                        lsu_stats.cam_searches += searches
                                        if hit:
                                            lsu_stats.forwards += 1
                                            finish_issue(uop, cycle,
                                                         _FORWARD_LATENCY)
                                            took = True
                                        else:
                                            access = dcache_access(addr,
                                                                   cycle)
                                            if access is not None:
                                                finish_issue(uop, cycle,
                                                             access)
                                                took = True
                                else:
                                    # Store AGU pass: STORE/FP_STORE both
                                    # count one AGU op, single-cycle.
                                    exec_stats.agu_ops += 1
                                    uop.addr_ready = True
                                    finish_issue(uop, cycle, 1)
                                    took = True
                        if took:
                            if kept is None:
                                kept = mem_q[:index]
                                kept_n = index
                            issued_n += 1
                        elif kept is not None:
                            if kept_n != index:
                                mem_iq_stats.shifts += 1
                                mem_slot_writes[kept_n] += 1
                            kept.append(uop)
                            kept_n += 1
                        index += 1
                    if kept is not None:
                        iq_mem._queue = mem_q = kept
                        mem_n = kept_n
                        mem_iq_stats.issues += issued_n
                    elif not touched:
                        # No load reached its AGU/CAM step, so the scan
                        # was side-effect free and will stay that way
                        # until a completion, dispatch, or store issue.
                        mem_stale = True

                # ---- issue: fp queue ----
                if fp_n and not fp_stale:
                    kept = None
                    kept_n = 0
                    issued_n = 0
                    index = 0
                    div_blocked = False
                    for uop in fp_q:
                        took = False
                        if kept is None or issued_n < fp_units:
                            ok = True
                            for producer in uop.srcs:
                                if producer.state != _COMPLETED \
                                        or producer.complete_cycle > cycle:
                                    ok = False
                                    break
                            if ok:
                                # ExecutionUnits.can_accept + dispatch,
                                # unrolled per opclass (same counters and
                                # latencies as execute.LATENCY).
                                opclass = uop.opclass
                                latency = 0
                                if opclass is _ALU or opclass is _SYSTEM:
                                    exec_stats.alu_ops += 1
                                    latency = 1
                                elif opclass is _BRANCH \
                                        or opclass is _JAL \
                                        or opclass is _JALR:
                                    exec_stats.branch_ops += 1
                                    exec_stats.alu_ops += 1
                                    latency = 1
                                elif opclass is _MUL:
                                    exec_stats.mul_ops += 1
                                    latency = 3
                                elif opclass is _FP_ALU:
                                    exec_stats.fp_alu_ops += 1
                                    latency = 3
                                elif opclass is _FP_MUL:
                                    exec_stats.fp_mul_ops += 1
                                    latency = 4
                                elif opclass is _FP_CVT:
                                    exec_stats.fp_cvt_ops += 1
                                    latency = 2
                                elif opclass is _DIV:
                                    if fus._div_busy_until <= cycle:
                                        fus._div_busy_until = cycle + 13
                                        exec_stats.div_ops += 1
                                        exec_stats.div_busy_cycles += 13
                                        latency = 13
                                    else:
                                        div_blocked = True
                                elif opclass is _FP_DIV:
                                    if fus._fp_div_busy_until <= cycle:
                                        fus._fp_div_busy_until = cycle + 16
                                        exec_stats.fp_div_ops += 1
                                        latency = 16
                                    else:
                                        div_blocked = True
                                if latency:
                                    finish_issue(uop, cycle, latency)
                                    took = True
                        if took:
                            if kept is None:
                                kept = fp_q[:index]
                                kept_n = index
                            issued_n += 1
                        elif kept is not None:
                            if kept_n != index:
                                fp_iq_stats.shifts += 1
                                fp_slot_writes[kept_n] += 1
                            kept.append(uop)
                            kept_n += 1
                        index += 1
                    if kept is not None:
                        iq_fp._queue = fp_q = kept
                        fp_n = kept_n
                        fp_iq_stats.issues += issued_n
                    elif not div_blocked:
                        fp_stale = True

                # ---- dispatch (decode + rename) ----
                if buf_n:
                    width = decode_width
                    while width > 0 and buf_n:
                        uop = buffer[0]
                        if rob_n >= rob_entries:
                            rob_stats.full_stall_cycles += 1
                            break
                        qname = uop.queue
                        if qname == "int":
                            if int_n >= int_iq_entries:
                                int_iq_stats.full_stall_cycles += 1
                                break
                            q = int_q
                            q_stats = int_iq_stats
                            q_n = int_n
                            qsel = 0
                        elif qname == "mem":
                            if mem_n >= mem_iq_entries:
                                mem_iq_stats.full_stall_cycles += 1
                                break
                            q = mem_q
                            q_stats = mem_iq_stats
                            q_n = mem_n
                            qsel = 1
                        else:
                            if fp_n >= fp_iq_entries:
                                fp_iq_stats.full_stall_cycles += 1
                                break
                            q = fp_q
                            q_stats = fp_iq_stats
                            q_n = fp_n
                            qsel = 2
                        dest_kind = uop.dest_kind
                        if dest_kind:
                            unit = int_unit if dest_kind == "x" else fp_unit
                            if unit.free <= 0:
                                unit.stats.stall_cycles += 1
                                break
                        if uop.is_control \
                                and branches_in_flight >= max_branches:
                            break
                        if uop.is_load:
                            if ldq_n >= ldq_entries:
                                break
                        elif uop.is_store:
                            if stq_n >= stq_entries:
                                break
                        buffer.popleft()
                        buf_n -= 1
                        fbr += 1
                        fp_snapshot = (not lazy_fp) or fp_in_flight > 0
                        sources = []
                        for kind, reg in uop.src_regs:
                            unit = int_unit if kind == "x" else fp_unit
                            unit.stats.map_reads += 1
                            producer = unit.producers.get(reg)
                            if producer is not None:
                                sources.append(producer)
                        uop.srcs = tuple(sources)
                        if dest_kind:
                            unit = int_unit if dest_kind == "x" else fp_unit
                            unit.free -= 1
                            unit_stats = unit.stats
                            unit_stats.freelist_allocs += 1
                            unit_stats.map_writes += 1
                            unit.total_allocs += 1
                            unit.producers[uop.instr.rd] = uop
                        if uop.is_control:
                            int_ren_stats.snapshots += 1
                            int_unit.total_snapshots += 1
                            if fp_snapshot:
                                fp_ren_stats.snapshots += 1
                                fp_unit.total_snapshots += 1
                                uop.fp_snapshotted = True
                        uop.dispatch_cycle = cycle
                        rob_q.append(uop)
                        rob_n += 1
                        dw += 1
                        q_stats.writes += 1
                        q_stats.slot_writes[q_n] += 1
                        q.append(uop)
                        if qsel == 0:
                            int_n = q_n + 1
                            int_stale = False
                        elif qsel == 1:
                            mem_n = q_n + 1
                            mem_stale = False
                        else:
                            fp_n = q_n + 1
                            fp_stale = False
                        if uop.is_load:
                            ldq.append(uop)
                            ldq_n += 1
                            lsu_stats.ldq_writes += 1
                        elif uop.is_store:
                            stq.append(uop)
                            stq_n += 1
                            lsu_stats.stq_writes += 1
                        if uop.is_control:
                            branches_in_flight += 1
                        if dest_kind == "f" or qname == "fp":
                            fp_in_flight += 1
                        key = uop.trace_key
                        by_trace[key] = by_trace.get(key, 0) + 1
                        width -= 1

                # ---- fetch (TraceFetchUnit.cycle, inlined) ----
                fbo += buf_n
                if pos + fetch_width > n_entries and not exited:
                    trace.ensure(pos + fetch_width)
                    n_entries = len(trace_entries)
                    exited = trace.exited
                if pos < n_entries or not exited:
                    if blocked is not None:
                        if blocked.state == _COMPLETED and cycle >= \
                                blocked.complete_cycle + _REDIRECT:
                            fe.blocked_by = blocked = None
                        else:
                            fs += 1
                    if blocked is None:
                        if cycle < stall_until:
                            fs += 1
                        else:
                            space = fetch_buffer_entries - buf_n
                            if space > 0:
                                latency = icache_access(fe_pc, cycle)
                                ica += 1
                                if latency is None:
                                    stall_until = cycle + 1
                                    fs += 1
                                elif latency > icache_hit:
                                    icm += 1
                                    stall_until = cycle + latency
                                    fs += 1
                                else:
                                    budget = fetch_width \
                                        if fetch_width < space else space
                                    line = fe_pc >> _LINE
                                    predicted = False
                                    while budget > 0 and pos < n_entries:
                                        entry = trace_entries[pos]
                                        dec, epc, mem_addr, taken, \
                                            next_pc = entry
                                        if epc >> _LINE != line:
                                            break
                                        uop = dec.make_uop(seq)
                                        seq += 1
                                        if dec.is_mem:
                                            uop.mem_addr = mem_addr
                                        pos += 1
                                        fe_pc = next_pc
                                        buffer.append(uop)
                                        buf_n += 1
                                        fbw += 1
                                        budget -= 1
                                        if dec.is_control:
                                            predicted = True
                                            if fe_predict(uop, epc, taken,
                                                          next_pc, cycle):
                                                break
                                    if predicted:
                                        # _predict may have set a redirect
                                        # block or a BTB bubble; re-sync
                                        # the hoisted locals.  A stale
                                        # stall_until is always <= cycle
                                        # (it last gated a passed cycle),
                                        # so re-reading it is harmless.
                                        blocked = fe.blocked_by
                                        stall_until = fe.stall_until

                # ---- per-cycle occupancy sampling ----
                rob_occ += rob_n
                int_hist[int_n] += 1
                mem_hist[mem_n] += 1
                fp_hist[fp_n] += 1
                ldq_occ += ldq_n
                stq_occ += stq_n
                if dcache_mshrs:
                    dcache_stats.mshr_occupancy += \
                        dcache.mshr_occupancy(cycle)

                cycle += 1
                cycles_count += 1
                countdown -= 1
                if countdown == 0:
                    countdown = _HEARTBEAT_STRIDE
                    settle()
                    heartbeat(retired_total - hb_start,
                              cycle - hb_start_cycle)
                if cycle > deadline:
                    raise SimulationError(
                        f"pipeline made no progress for "
                        f"{_SAFETY_FACTOR}x the instruction budget "
                        f"(deadlock?) at cycle {cycle}")
        finally:
            # Settle before control (or an exception) leaves the loop.
            settle()
