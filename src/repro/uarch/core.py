"""The SonicBOOM-like out-of-order core: the cycle-level pipeline loop.

One :class:`BoomCore` instance wires together the fetch unit (with its
branch predictor and L1I), the rename stage (two units, branch snapshots),
the ROB, the three collapsing issue queues, the physical register files,
the execution units, the LSU, and the L1D — and advances them one cycle at
a time:

    commit -> complete -> issue -> dispatch -> fetch -> sample

The core is the *detailed simulation* stage of the paper's flow (Fig. 3,
step 5): it executes SimPoint checkpoints (warm-up excluded from stats)
and produces the per-component activity counters the power model turns
into Figs. 5-8, plus the IPC of Fig. 10.

Example::

    core = BoomCore(MEGA_BOOM, program, state=checkpoint.restore())
    core.run(checkpoint.warmup_instructions)       # warm-up
    stats = core.begin_measurement()
    core.run(interval_size)                        # measured window
    print(stats.ipc)
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instructions import OpClass
from repro.isa.program import Program
from repro.sim.state import ArchState
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.cache import L1Cache
from repro.uarch.config import BoomConfig
from repro.uarch.execute import ExecutionUnits
from repro.uarch.frontend import FetchUnit
from repro.uarch.issue import make_issue_queue
from repro.uarch.lsu import LoadStoreUnit
from repro.uarch.rename import RenameStage
from repro.uarch.rob import ReorderBuffer
from repro.uarch.stats import CoreStats
from repro.uarch.uop import COMPLETED, ISSUED, Uop

_FORWARD_LATENCY = 4
_SAFETY_FACTOR = 400  # max cycles per requested instruction before we bail
_HEARTBEAT_STRIDE = 4096  # cycles between heartbeat-observer callbacks


class BoomCore:
    """Cycle-level model of one BOOM core plus its L1 caches."""

    def __init__(self, config: BoomConfig, program: Program,
                 state: ArchState | None = None) -> None:
        self.config = config
        self.program = program
        if state is None:
            state = ArchState.for_program(program)
        self.stats = CoreStats()
        stats = self.stats
        self.bpu = BranchPredictionUnit(config.predictor, stats.predictor)
        self.icache = L1Cache(config.icache, stats.icache, hit_latency=1)
        self.dcache = L1Cache(config.dcache, stats.dcache, hit_latency=3)
        self.frontend = FetchUnit(config, program, state, self.bpu,
                                  self.icache, stats.frontend)
        self.rename = RenameStage(config, stats.int_rename, stats.fp_rename)
        self.rob = ReorderBuffer(config.rob_entries, stats.rob)
        kind = config.issue_queue_kind
        self.iq_int = make_issue_queue(kind, "int", config.int_iq_entries,
                                       stats.int_iq)
        self.iq_mem = make_issue_queue(kind, "mem", config.mem_iq_entries,
                                       stats.mem_iq)
        self.iq_fp = make_issue_queue(kind, "fp", config.fp_iq_entries,
                                      stats.fp_iq)
        self.lsu = LoadStoreUnit(config, stats.lsu)
        self.fus = ExecutionUnits(config, stats.execute)
        self.cycle = 0
        self.retired_total = 0
        self.branches_in_flight = 0
        self.fp_in_flight = 0
        #: set to a list to record (uop, commit cycle) pairs (debugging /
        #: pipeline visualization; see repro.uarch.pipeview)
        self.retire_log: list[tuple[Uop, int]] | None = None
        self._completions: dict[int, list[Uop]] = {}
        self._queues = {"int": self.iq_int, "mem": self.iq_mem,
                        "fp": self.iq_fp}

    # ------------------------------------------------------------------
    # measurement windows
    # ------------------------------------------------------------------

    def begin_measurement(self) -> CoreStats:
        """Start a fresh stats window (keeps all warm state)."""
        stats = CoreStats()
        self.stats = stats
        self.bpu.rebind_stats(stats.predictor)
        self.icache.rebind_stats(stats.icache)
        self.dcache.rebind_stats(stats.dcache)
        self.frontend.rebind_stats(stats.frontend)
        self.rename.rebind_stats(stats.int_rename, stats.fp_rename)
        self.rob.rebind_stats(stats.rob)
        self.iq_int.rebind_stats(stats.int_iq)
        self.iq_mem.rebind_stats(stats.mem_iq)
        self.iq_fp.rebind_stats(stats.fp_iq)
        self.lsu.rebind_stats(stats.lsu)
        self.fus.rebind_stats(stats.execute)
        return stats

    # ------------------------------------------------------------------
    # the cycle loop
    # ------------------------------------------------------------------

    def run(self, max_instructions: int | None = None,
            heartbeat=None) -> int:
        """Advance the pipeline until ``max_instructions`` retire.

        Without a budget, runs until the program exits and the pipeline
        drains.  Returns the number of instructions retired by this call.

        ``heartbeat`` (optional) is a progress observer called as
        ``heartbeat(retired_this_call, cycles_this_call)`` every
        ``_HEARTBEAT_STRIDE`` cycles.  It only reads the counters — the
        loop's termination conditions and step sequence are identical
        with and without it, so a traced run retires exactly the same
        instructions as an untraced one.  The ``heartbeat is None`` path
        is the original loop, untouched, to keep the hot path free of
        per-cycle bookkeeping.
        """
        start = self.retired_total
        start_cycle = self.cycle
        target = None if max_instructions is None \
            else start + max_instructions
        budget = max_instructions if max_instructions is not None \
            else 1 << 40
        deadline = self.cycle + _SAFETY_FACTOR * (budget + 64)
        try:
            if heartbeat is None:
                while True:
                    if target is not None and self.retired_total >= target:
                        break
                    if self.frontend.out_of_instructions \
                            and self.rob.is_empty:
                        break
                    self._step()
                    if self.cycle > deadline:
                        raise SimulationError(
                            f"pipeline made no progress for "
                            f"{_SAFETY_FACTOR}x the instruction budget "
                            f"(deadlock?) at cycle {self.cycle}")
            else:
                countdown = _HEARTBEAT_STRIDE
                while True:
                    if target is not None and self.retired_total >= target:
                        break
                    if self.frontend.out_of_instructions \
                            and self.rob.is_empty:
                        break
                    self._step()
                    countdown -= 1
                    if countdown == 0:
                        countdown = _HEARTBEAT_STRIDE
                        heartbeat(self.retired_total - start,
                                  self.cycle - start_cycle)
                    if self.cycle > deadline:
                        raise SimulationError(
                            f"pipeline made no progress for "
                            f"{_SAFETY_FACTOR}x the instruction budget "
                            f"(deadlock?) at cycle {self.cycle}")
        finally:
            # Issue-queue occupancy is sampled into histograms per cycle;
            # fold them into the stats counters whenever control leaves
            # the cycle loop so readers always see settled stats.
            self.iq_int.flush_samples()
            self.iq_mem.flush_samples()
            self.iq_fp.flush_samples()
        return self.retired_total - start

    def _step(self) -> None:
        cycle = self.cycle
        self._commit(cycle)
        self._complete(cycle)
        self._issue(cycle)
        self._dispatch(cycle)
        self.frontend.cycle(cycle)
        self._sample(cycle)
        self.cycle = cycle + 1
        self.stats.cycles += 1

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def _commit(self, cycle: int) -> None:
        rob = self.rob
        width = self.config.commit_width
        while width > 0 and rob.head_completed(cycle):
            head = rob.head()
            if head.is_store:
                # Stores write the data cache at commit.
                latency = self.dcache.access(head.mem_addr, cycle,
                                             is_write=True)
                if latency is None:
                    break  # all MSHRs busy; retry next cycle
            rob.pop()
            self.rename.commit(head)
            if head.is_load or head.is_store:
                self.lsu.commit(head)
            if head.is_control:
                self.branches_in_flight -= 1
            if head.dest_kind == "f" or head.queue == "fp":
                self.fp_in_flight -= 1
            if self.retire_log is not None:
                self.retire_log.append((head, cycle))
            self.stats.count_retired(head.opclass_name)
            self.retired_total += 1
            width -= 1

    # ------------------------------------------------------------------
    # completion / writeback
    # ------------------------------------------------------------------

    def _complete(self, cycle: int) -> None:
        done = self._completions.pop(cycle, None)
        if not done:
            return
        stats = self.stats
        for uop in done:
            uop.state = COMPLETED
            if uop.dest_kind == "x":
                stats.int_regfile.writes += 1
            elif uop.dest_kind == "f":
                stats.fp_regfile.writes += 1
            if uop.dest_kind:
                # Destination tags broadcast to all three issue queues.
                self.iq_int.wakeup()
                self.iq_mem.wakeup()
                self.iq_fp.wakeup()
            if uop.mispredicted:
                self.rename.recover(fp=uop.fp_snapshotted)
                stats.rob.flushes += 1

    # ------------------------------------------------------------------
    # issue
    # ------------------------------------------------------------------

    def _issue(self, cycle: int) -> None:
        config = self.config
        self.iq_int.select(cycle, config.alu_units, self._try_issue_int)
        self.iq_mem.select(cycle, config.mem_units, self._try_issue_mem)
        self.iq_fp.select(cycle, config.fp_units, self._try_issue_fp)

    def _try_issue_int(self, uop: Uop, cycle: int) -> bool:
        if not uop.ready(cycle):
            return False
        if not self.fus.can_accept(uop.opclass, cycle):
            return False
        latency = self.fus.dispatch(uop.opclass, cycle)
        self._finish_issue(uop, cycle, latency)
        return True

    def _try_issue_fp(self, uop: Uop, cycle: int) -> bool:
        return self._try_issue_int(uop, cycle)

    def _try_issue_mem(self, uop: Uop, cycle: int) -> bool:
        if not uop.ready(cycle):
            return False
        if uop.is_load:
            if not self.lsu.load_may_issue(uop):
                return False
            self.fus.count_load_agu()
            if self.lsu.forwards_from_store(uop):
                latency = _FORWARD_LATENCY
            else:
                access = self.dcache.access(uop.mem_addr, cycle)
                if access is None:
                    return False  # MSHRs exhausted; retry
                latency = access
        else:  # store address+data ready: AGU pass
            latency = self.fus.dispatch(uop.opclass, cycle)
            uop.addr_ready = True
        self._finish_issue(uop, cycle, latency)
        return True

    def _finish_issue(self, uop: Uop, cycle: int, latency: int) -> None:
        uop.state = ISSUED
        uop.issue_cycle = cycle
        stats = self.stats
        # Operand delivery: recently-completed producers arrive on the
        # bypass network; everything else reads the register file.
        bypassed_x = 0
        bypassed_f = 0
        for producer in uop.srcs:
            if producer.complete_cycle >= cycle - 1:
                if producer.dest_kind == "x":
                    bypassed_x += 1
                else:
                    bypassed_f += 1
        stats.int_regfile.bypasses += bypassed_x
        stats.fp_regfile.bypasses += bypassed_f
        stats.int_regfile.reads += max(0, uop.x_reads - bypassed_x)
        stats.fp_regfile.reads += max(0, uop.f_reads - bypassed_f)
        complete_cycle = cycle + latency
        uop.complete_cycle = complete_cycle
        self._completions.setdefault(complete_cycle, []).append(uop)

    # ------------------------------------------------------------------
    # dispatch (decode + rename)
    # ------------------------------------------------------------------

    def _dispatch(self, cycle: int) -> None:
        buffer = self.frontend.buffer
        if not buffer:
            return
        stats = self.stats
        width = self.config.decode_width
        while width > 0 and buffer:
            uop = buffer[0]
            if not self.rob.has_space():
                stats.rob.full_stall_cycles += 1
                return
            queue = self._queues[uop.queue]
            if not queue.has_space():
                queue.stats.full_stall_cycles += 1
                return
            if not self.rename.can_rename(uop):
                unit = self.rename.unit_for(uop.dest_kind)
                unit.stats.stall_cycles += 1
                return
            if uop.is_control and \
                    self.branches_in_flight >= self.config.max_branches:
                return
            if (uop.is_load or uop.is_store) and \
                    not self.lsu.can_dispatch(uop):
                return
            buffer.popleft()
            stats.frontend.fetch_buffer_reads += 1
            fp_snapshot = (not self.config.fp_rename_lazy_snapshots
                           or self.fp_in_flight > 0)
            self.rename.rename(uop, fp_snapshot=fp_snapshot)
            uop.dispatch_cycle = cycle
            self.rob.push(uop)
            queue.insert(uop)
            if uop.is_load or uop.is_store:
                self.lsu.dispatch(uop)
            if uop.is_control:
                self.branches_in_flight += 1
            if uop.dest_kind == "f" or uop.queue == "fp":
                self.fp_in_flight += 1
            width -= 1

    # ------------------------------------------------------------------
    # per-cycle occupancy sampling
    # ------------------------------------------------------------------

    def _sample(self, cycle: int) -> None:
        self.rob.sample()
        self.iq_int.sample_batched()
        self.iq_mem.sample_batched()
        self.iq_fp.sample_batched()
        self.lsu.sample()
        self.stats.dcache.mshr_occupancy += self.dcache.mshr_occupancy(cycle)
