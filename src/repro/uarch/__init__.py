"""The BOOM-like out-of-order cycle model in three configurations."""

from repro.uarch.config import (
    ALL_CONFIGS,
    BoomConfig,
    CacheParams,
    CLOCK_HZ,
    config_by_name,
    LARGE_BOOM,
    MEDIUM_BOOM,
    MEGA_BOOM,
    PredictorParams,
    SMALL_BOOM,
)
from repro.uarch.core import BoomCore
from repro.uarch.stats import CoreStats

__all__ = [
    "ALL_CONFIGS",
    "BoomConfig",
    "CacheParams",
    "CLOCK_HZ",
    "config_by_name",
    "LARGE_BOOM",
    "MEDIUM_BOOM",
    "MEGA_BOOM",
    "PredictorParams",
    "SMALL_BOOM",
    "BoomCore",
    "CoreStats",
]
