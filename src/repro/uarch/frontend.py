"""The fetch stage: instruction cache, branch prediction, fetch buffer.

The detailed core is oracle-driven: the frontend steps its own functional
model instruction-by-instruction as it fetches, so branch outcomes and
memory addresses are known at fetch.  The *timing* consequences are then
modeled faithfully:

* the I-cache is accessed once per active fetch cycle; misses stall fetch;
* a fetch group ends at a taken control-flow instruction or a cache-line
  boundary;
* BTB misses on taken control flow cost a short front-end bubble
  (redirect-at-decode);
* a mispredicted branch stops instruction supply until it resolves in the
  backend plus a redirect penalty — the trace-driven equivalent of
  fetching the wrong path and squashing it.

Fetched uops land in the fetch buffer, which decouples fetch from decode
(the paper's explanation for the I-cache's uniform access pattern).
"""

from __future__ import annotations

from collections import deque

from repro.isa.program import Program, TEXT_BASE
from repro.sim.state import ArchState, MASK64
from repro.uarch.bpu import BranchPredictionUnit
from repro.uarch.cache import L1Cache
from repro.uarch.config import BoomConfig
from repro.uarch.decode import decode_program
from repro.uarch.stats import FrontendStats
from repro.uarch.uop import COMPLETED, Uop
from repro.isa.instructions import OpClass

#: cycles from mispredict resolution until new uops reach the buffer
#: (front-end refill through fetch, decode and rename)
REDIRECT_PENALTY = 5
#: decode-stage redirect for taken control flow the BTB did not know
BTB_BUBBLE = 2

_LINE_SHIFT = 6


class FetchUnit:
    """Oracle-driven fetch with a real predictor and I-cache in the loop."""

    def __init__(self, config: BoomConfig, program: Program,
                 state: ArchState, bpu: BranchPredictionUnit,
                 icache: L1Cache, stats: FrontendStats) -> None:
        self.config = config
        self.program = program
        self.state = state
        self.bpu = bpu
        self.icache = icache
        self.stats = stats
        self._ops = decode_program(program)
        self.buffer: deque[Uop] = deque()
        self.stall_until = 0
        self.blocked_by: Uop | None = None
        self._seq = 0

    def rebind_stats(self, stats: FrontendStats) -> None:
        self.stats = stats

    @property
    def exited(self) -> bool:
        return self.state.exited

    @property
    def fetched(self) -> int:
        """Total uops fetched — equally, instructions the oracle state has
        executed (the frontend steps its functional model at fetch)."""
        return self._seq

    @property
    def out_of_instructions(self) -> bool:
        return self.state.exited and not self.buffer

    def cycle(self, cycle: int) -> None:
        """Run one fetch cycle."""
        stats = self.stats
        stats.fetch_buffer_occupancy += len(self.buffer)
        if self.state.exited:
            return
        if self.blocked_by is not None:
            blocker = self.blocked_by
            if blocker.state == COMPLETED and \
                    cycle >= blocker.complete_cycle + REDIRECT_PENALTY:
                self.blocked_by = None
            else:
                stats.fetch_stall_cycles += 1
                return
        if cycle < self.stall_until:
            stats.fetch_stall_cycles += 1
            return
        space = self.config.fetch_buffer_entries - len(self.buffer)
        if space <= 0:
            return
        # One I-cache access and one predictor lookup per active cycle.
        latency = self.icache.access(self.state.pc, cycle)
        stats.icache_accesses += 1
        self.bpu.stats.lookups += 1
        if latency is None:
            self.stall_until = cycle + 1
            stats.fetch_stall_cycles += 1
            return
        if latency > self.icache.hit_latency:
            stats.icache_misses += 1
            self.stall_until = cycle + latency
            stats.fetch_stall_cycles += 1
            return
        self._fetch_group(cycle, min(self.config.fetch_width, space))

    def _fetch_group(self, cycle: int, budget: int) -> None:
        state = self.state
        ops = self._ops
        stats = self.stats
        buffer = self.buffer
        x = state.x
        line = state.pc >> _LINE_SHIFT
        seq = self._seq
        while budget > 0 and not state.exited:
            pc = state.pc
            if pc >> _LINE_SHIFT != line:
                break  # next line is a new fetch group (new I$ access)
            dec = ops[(pc - TEXT_BASE) >> 2]
            uop = dec.make_uop(seq)
            seq += 1
            if dec.is_mem:
                uop.mem_addr = (x[dec.rs1] + dec.imm) & MASK64
            next_pc = dec.fn(state, dec.instr)
            taken = next_pc is not None
            state.pc = next_pc if taken else pc + 4
            buffer.append(uop)
            stats.fetch_buffer_writes += 1
            budget -= 1
            if dec.is_control:
                if self._predict(uop, pc, taken, state.pc, cycle):
                    break
        self._seq = seq

    def _predict(self, uop: Uop, pc: int, taken: bool,
                 actual_next: int, cycle: int) -> bool:
        """Drive the predictor for one control uop.

        Returns True when the fetch group must end this cycle (taken
        control flow or a discovered mispredict).
        """
        bpu = self.bpu
        opclass = uop.opclass
        mispredicted = False
        bubble = False
        if opclass is OpClass.BRANCH:
            uop.taken = taken
            mispredicted = bpu.predict_conditional(pc, taken, actual_next)
        elif opclass is OpClass.JAL:
            uop.taken = True
            bubble = bpu.predict_jump(pc, actual_next)
            if uop.instr.rd == 1:  # call: push the return address
                bpu.ras.push(pc + 4)
        else:  # JALR
            uop.taken = True
            instr = uop.instr
            is_return = instr.rd == 0 and instr.rs1 in (1, 5)
            is_call = instr.rd == 1
            mispredicted = bpu.predict_indirect(
                pc, actual_next, is_return=is_return, is_call=is_call,
                return_address=pc + 4)
        if mispredicted:
            uop.mispredicted = True
            self.blocked_by = uop
            return True
        if taken:
            if bubble:
                # Taken control flow the BTB did not know: the target is
                # only available after decode, costing a short bubble.
                uop.btb_bubble = True
                self.stall_until = cycle + 1 + BTB_BUBBLE
            # Correctly-predicted taken control flow ends the fetch group.
            return True
        return False


class TraceFetchUnit(FetchUnit):
    """Fetch driven by a shared pre-recorded oracle trace.

    Replays the config-invariant instruction stream recorded in a
    :class:`~repro.uarch.ftrace.FetchTrace` through this config's private
    fetch timing.  Every timing decision — I-cache access, predictor
    lookups, fetch-group boundaries, stall bookkeeping — follows the exact
    code path of the oracle-driven :class:`FetchUnit`, so the stats it
    produces are bit-identical; only the semantic execution of the
    functional model is replaced by reading recorded entries.  One trace
    instance may feed many cores (the batched engine's shared front-end
    work); each unit keeps a private cursor.
    """

    def __init__(self, config: BoomConfig, program: Program, trace,
                 bpu: BranchPredictionUnit, icache: L1Cache,
                 stats: FrontendStats) -> None:
        self.config = config
        self.program = program
        self.trace = trace
        self.bpu = bpu
        self.icache = icache
        self.stats = stats
        self._ops = decode_program(program)
        self.buffer = deque()
        self.stall_until = 0
        self.blocked_by = None
        self._seq = 0
        self.pc = trace.start_pc
        self.pos = 0

    @property
    def exited(self) -> bool:
        # The oracle FetchUnit's state.exited flips right after the exit
        # instruction is fetched; in trace terms that is "cursor past the
        # end of an exhausted trace".
        trace = self.trace
        return trace.exited and self.pos >= len(trace.entries)

    @property
    def out_of_instructions(self) -> bool:
        return self.exited and not self.buffer

    def cycle(self, cycle: int) -> None:
        """Run one fetch cycle (mirrors :meth:`FetchUnit.cycle`)."""
        stats = self.stats
        stats.fetch_buffer_occupancy += len(self.buffer)
        trace = self.trace
        fetch_width = self.config.fetch_width
        if len(trace.entries) < self.pos + fetch_width and not trace.exited:
            trace.ensure(self.pos + fetch_width)
        if trace.exited and self.pos >= len(trace.entries):
            return
        if self.blocked_by is not None:
            blocker = self.blocked_by
            if blocker.state == COMPLETED and \
                    cycle >= blocker.complete_cycle + REDIRECT_PENALTY:
                self.blocked_by = None
            else:
                stats.fetch_stall_cycles += 1
                return
        if cycle < self.stall_until:
            stats.fetch_stall_cycles += 1
            return
        space = self.config.fetch_buffer_entries - len(self.buffer)
        if space <= 0:
            return
        latency = self.icache.access(self.pc, cycle)
        stats.icache_accesses += 1
        self.bpu.stats.lookups += 1
        if latency is None:
            self.stall_until = cycle + 1
            stats.fetch_stall_cycles += 1
            return
        if latency > self.icache.hit_latency:
            stats.icache_misses += 1
            self.stall_until = cycle + latency
            stats.fetch_stall_cycles += 1
            return
        self._fetch_group(cycle, min(fetch_width, space))

    def _fetch_group(self, cycle: int, budget: int) -> None:
        entries = self.trace.entries
        end = len(entries)
        stats = self.stats
        buffer = self.buffer
        pos = self.pos
        line = self.pc >> _LINE_SHIFT
        seq = self._seq
        while budget > 0 and pos < end:
            dec, pc, mem_addr, taken, next_pc = entries[pos]
            if pc >> _LINE_SHIFT != line:
                break  # next line is a new fetch group (new I$ access)
            uop = dec.make_uop(seq)
            seq += 1
            if dec.is_mem:
                uop.mem_addr = mem_addr
            pos += 1
            self.pc = next_pc
            buffer.append(uop)
            stats.fetch_buffer_writes += 1
            budget -= 1
            if dec.is_control:
                if self._predict(uop, pc, taken, next_pc, cycle):
                    break
        self._seq = seq
        self.pos = pos
