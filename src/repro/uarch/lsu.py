"""The load/store unit: LDQ, STQ, ordering, and store-to-load forwarding.

Loads may issue out of order but only once every older store in the STQ
has a known address (a conservative but deadlock-free memory-dependence
policy).  A load whose address matches an older, still-in-flight store
forwards from the STQ instead of reading the data cache; every such check
is a CAM search across the occupied STQ entries — one of the LSU's main
power terms (§IV-B).
"""

from __future__ import annotations

from repro.uarch.config import BoomConfig
from repro.uarch.stats import LsuStats
from repro.uarch.uop import Uop


class LoadStoreUnit:
    """LDQ/STQ bookkeeping and memory-ordering checks."""

    def __init__(self, config: BoomConfig, stats: LsuStats) -> None:
        self.config = config
        self.stats = stats
        self._ldq: list[Uop] = []
        self._stq: list[Uop] = []

    def rebind_stats(self, stats: LsuStats) -> None:
        self.stats = stats

    def __len__(self) -> int:
        return len(self._ldq) + len(self._stq)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def can_dispatch(self, uop: Uop) -> bool:
        if uop.is_load:
            return len(self._ldq) < self.config.ldq_entries
        if uop.is_store:
            return len(self._stq) < self.config.stq_entries
        return True

    def dispatch(self, uop: Uop) -> None:
        if uop.is_load:
            self._ldq.append(uop)
            self.stats.ldq_writes += 1
        elif uop.is_store:
            self._stq.append(uop)
            self.stats.stq_writes += 1

    # ------------------------------------------------------------------
    # issue-side ordering checks
    # ------------------------------------------------------------------

    def load_may_issue(self, load: Uop) -> bool:
        """True when every older store has computed its address."""
        for store in self._stq:
            if store.seq > load.seq:
                break
            if not store.addr_ready:
                return False
        return True

    def forwards_from_store(self, load: Uop) -> bool:
        """STQ CAM search: does an older store supply this load's line?

        Forwarding matches on the 8-byte-aligned address, which covers the
        aligned access patterns the workloads use.
        """
        target = load.mem_addr >> 3
        hit = False
        searches = 0
        for store in self._stq:
            if store.seq > load.seq:
                break
            searches += 1
            if store.addr_ready and (store.mem_addr >> 3) == target:
                hit = True
        self.stats.cam_searches += searches
        if hit:
            self.stats.forwards += 1
        return hit

    # ------------------------------------------------------------------
    # commit
    # ------------------------------------------------------------------

    def commit(self, uop: Uop) -> None:
        if uop.is_load:
            self._ldq.remove(uop)
        elif uop.is_store:
            self._stq.remove(uop)

    def sample(self) -> None:
        self.stats.ldq_occupancy += len(self._ldq)
        self.stats.stq_occupancy += len(self._stq)
