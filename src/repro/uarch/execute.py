"""Execution units: latencies, pipelining, and structural hazards.

Latencies follow SonicBOOM's published pipeline: single-cycle ALU and
branch resolution, a 3-cycle pipelined multiplier, an iterative
(unpipelined) integer divider, a 4-cycle FMA pipe, and an iterative FP
divide/sqrt unit.  Loads get their latency from the data cache model.
"""

from __future__ import annotations

from repro.isa.instructions import OpClass
from repro.uarch.config import BoomConfig
from repro.uarch.stats import ExecuteStats

LATENCY: dict[OpClass, int] = {
    OpClass.ALU: 1,
    OpClass.BRANCH: 1,
    OpClass.JAL: 1,
    OpClass.JALR: 1,
    OpClass.MUL: 3,
    OpClass.DIV: 13,           # iterative, unpipelined
    OpClass.STORE: 1,          # address generation
    OpClass.FP_STORE: 1,
    OpClass.FP_ALU: 3,
    OpClass.FP_MUL: 4,
    OpClass.FP_DIV: 16,        # iterative, unpipelined
    OpClass.FP_CVT: 2,
    OpClass.SYSTEM: 1,
}

_UNPIPELINED = {OpClass.DIV: "div", OpClass.FP_DIV: "fp_div"}


class ExecutionUnits:
    """Structural-hazard tracking for the FU pool."""

    def __init__(self, config: BoomConfig, stats: ExecuteStats) -> None:
        self.config = config
        self.stats = stats
        self._div_busy_until = 0
        self._fp_div_busy_until = 0

    def rebind_stats(self, stats: ExecuteStats) -> None:
        self.stats = stats

    def can_accept(self, opclass: OpClass, cycle: int) -> bool:
        """Structural check beyond issue-width (iterative units only)."""
        unit = _UNPIPELINED.get(opclass)
        if unit == "div":
            return self._div_busy_until <= cycle
        if unit == "fp_div":
            return self._fp_div_busy_until <= cycle
        return True

    def dispatch(self, opclass: OpClass, cycle: int) -> int:
        """Start executing; returns the op latency and counts activity."""
        latency = LATENCY[opclass]
        stats = self.stats
        if opclass is OpClass.DIV:
            self._div_busy_until = cycle + latency
            stats.div_ops += 1
            stats.div_busy_cycles += latency
        elif opclass is OpClass.FP_DIV:
            self._fp_div_busy_until = cycle + latency
            stats.fp_div_ops += 1
        elif opclass is OpClass.MUL:
            stats.mul_ops += 1
        elif opclass is OpClass.ALU or opclass is OpClass.SYSTEM:
            stats.alu_ops += 1
        elif opclass in (OpClass.BRANCH, OpClass.JAL, OpClass.JALR):
            stats.branch_ops += 1
            stats.alu_ops += 1      # branches resolve in an ALU pipe
        elif opclass is OpClass.FP_ALU:
            stats.fp_alu_ops += 1
        elif opclass is OpClass.FP_MUL:
            stats.fp_mul_ops += 1
        elif opclass is OpClass.FP_CVT:
            stats.fp_cvt_ops += 1
        elif opclass in (OpClass.STORE, OpClass.FP_STORE):
            stats.agu_ops += 1
        return latency

    def count_load_agu(self) -> None:
        self.stats.agu_ops += 1
