"""Register renaming: map tables, free lists, and branch snapshots.

BOOM renames integer and floating-point registers in two separate rename
units, each with a map table and a free list of physical registers.  On
*every* dispatched branch, both units snapshot their allocation lists so a
mispredict can restore them — the mechanism behind Key Takeaway #3: the FP
Rename Unit burns power even in programs that never touch FP registers,
because the snapshot copies happen per branch regardless.

The model tracks free-register *counts* (dispatch stalls when a unit runs
out) and the in-flight producer of every architectural register (the
dependence edges the issue queues wait on).
"""

from __future__ import annotations

from repro.uarch.config import BoomConfig
from repro.uarch.stats import RenameStats
from repro.uarch.uop import Uop

_ARCH_REGS = 32


class RenameUnit:
    """One rename unit (integer or floating point)."""

    def __init__(self, kind: str, phys_regs: int,
                 stats: RenameStats) -> None:
        self.kind = kind
        self.phys_regs = phys_regs
        self.free = phys_regs - _ARCH_REGS
        self.stats = stats
        #: architectural register -> most recent in-flight producer
        self.producers: dict[int, Uop] = {}
        # Lifetime conservation counters.  Unlike ``stats`` (rebound at
        # every measurement-window boundary) these span the unit's whole
        # life, so repro.check can assert allocs - frees == in-flight
        # destinations and restores <= snapshots at any cycle.
        self.total_allocs = 0
        self.total_frees = 0
        self.total_snapshots = 0
        self.total_restores = 0

    def rebind_stats(self, stats: RenameStats) -> None:
        self.stats = stats

    def can_allocate(self) -> bool:
        return self.free > 0

    def allocate(self, uop: Uop) -> None:
        """Claim a destination physical register for ``uop``."""
        self.free -= 1
        self.stats.freelist_allocs += 1
        self.stats.map_writes += 1
        self.total_allocs += 1
        self.producers[uop.instr.rd] = uop

    def release(self, uop: Uop) -> None:
        """Commit: the previous mapping's physical register is freed."""
        self.free += 1
        self.stats.freelist_frees += 1
        self.total_frees += 1
        producer = self.producers.get(uop.instr.rd)
        if producer is uop:
            del self.producers[uop.instr.rd]

    def lookup(self, reg: int) -> Uop | None:
        """Map-table read: the in-flight producer of ``reg`` (or None)."""
        self.stats.map_reads += 1
        return self.producers.get(reg)

    def snapshot(self) -> None:
        """Branch dispatch: copy the allocation list (power event)."""
        self.stats.snapshots += 1
        self.total_snapshots += 1

    def restore(self) -> None:
        """Mispredict recovery: restore the allocation list."""
        self.stats.snapshot_restores += 1
        self.total_restores += 1


class RenameStage:
    """Both rename units plus the shared dispatch-side bookkeeping."""

    def __init__(self, config: BoomConfig, int_stats: RenameStats,
                 fp_stats: RenameStats) -> None:
        self.config = config
        self.int_unit = RenameUnit("x", config.int_phys_regs, int_stats)
        self.fp_unit = RenameUnit("f", config.fp_phys_regs, fp_stats)

    def rebind_stats(self, int_stats: RenameStats,
                     fp_stats: RenameStats) -> None:
        self.int_unit.rebind_stats(int_stats)
        self.fp_unit.rebind_stats(fp_stats)

    def unit_for(self, kind: str) -> RenameUnit:
        return self.int_unit if kind == "x" else self.fp_unit

    def can_rename(self, uop: Uop) -> bool:
        """Is a destination register available for ``uop``?"""
        if not uop.dest_kind:
            return True
        return self.unit_for(uop.dest_kind).can_allocate()

    def rename(self, uop: Uop, fp_snapshot: bool = True) -> None:
        """Resolve sources through the map tables, allocate the dest.

        On branches, *both* units snapshot their allocation lists — this
        is deliberate and matches SonicBOOM (Key Takeaway #3).  With the
        lazy-snapshot optimization the core passes ``fp_snapshot=False``
        while no FP instructions are in flight, and the FP copy is
        skipped.
        """
        sources = []
        for kind, reg in uop.src_regs:
            producer = self.unit_for(kind).lookup(reg)
            if producer is not None:
                sources.append(producer)
        uop.srcs = tuple(sources)
        if uop.dest_kind:
            self.unit_for(uop.dest_kind).allocate(uop)
        if uop.is_control:
            self.int_unit.snapshot()
            if fp_snapshot:
                self.fp_unit.snapshot()
                uop.fp_snapshotted = True

    def commit(self, uop: Uop) -> None:
        if uop.dest_kind:
            self.unit_for(uop.dest_kind).release(uop)

    def recover(self, fp: bool = True) -> None:
        """Mispredict resolution restores the snapshotted allocation lists.

        The integer unit always snapshots on a control uop, so it always
        restores.  Under lazy FP snapshots the FP copy may have been
        skipped at rename time; restoring a snapshot that was never taken
        would charge the power model for a phantom copy (restores would
        exceed snapshots), so the core passes ``fp=uop.fp_snapshotted``.
        """
        self.int_unit.restore()
        if fp:
            self.fp_unit.restore()
