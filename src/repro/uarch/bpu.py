"""Branch prediction: TAGE, the gshare baseline, BTB, and RAS.

SonicBOOM's default direction predictor is TAGE; the paper's predecessor
study [14] used gshare, and Key Takeaway #7 compares the two (TAGE burns
~2.5x the power).  Both are implemented here behind one interface so the
ablation benchmark can swap them per configuration.

The model is trace-driven: predictions are made against the oracle outcome
at fetch time, global history is updated with the actual outcome (the
standard trace-driven simplification), and every structure access bumps an
activity counter for the power model.
"""

from __future__ import annotations

from repro.uarch.config import PredictorParams
from repro.uarch.stats import PredictorStats

_TAKEN_THRESHOLD = 2  # 2-bit counters: 0,1 not-taken / 2,3 taken


def _fold(value: int, bits: int, out_bits: int) -> int:
    """XOR-fold the low ``bits`` of ``value`` into ``out_bits`` bits."""
    value &= (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & ((1 << out_bits) - 1)
        value >>= out_bits
    return folded


class BranchTargetBuffer:
    """Direct-mapped BTB: (tag, target) per entry."""

    def __init__(self, entries: int, stats: PredictorStats) -> None:
        self.entries = entries
        self._tags = [0] * entries
        self._targets = [0] * entries
        self._valid = [False] * entries
        self.stats = stats

    def _index(self, pc: int) -> int:
        return (pc >> 2) % self.entries

    def lookup(self, pc: int) -> int | None:
        """Predicted target for ``pc``, or None on a BTB miss."""
        self.stats.btb_lookups += 1
        index = self._index(pc)
        if self._valid[index] and self._tags[index] == pc:
            return self._targets[index]
        self.stats.btb_misses += 1
        return None

    def update(self, pc: int, target: int) -> None:
        self.stats.btb_updates += 1
        index = self._index(pc)
        self._tags[index] = pc
        self._targets[index] = target
        self._valid[index] = True


class ReturnAddressStack:
    """A bounded return-address stack."""

    def __init__(self, entries: int, stats: PredictorStats) -> None:
        self.entries = entries
        self._stack: list[int] = []
        self.stats = stats

    def push(self, address: int) -> None:
        self.stats.ras_pushes += 1
        if len(self._stack) == self.entries:
            self._stack.pop(0)
        self._stack.append(address)

    def pop(self) -> int | None:
        self.stats.ras_pops += 1
        return self._stack.pop() if self._stack else None


class GsharePredictor:
    """Classic gshare: global history XOR pc indexes 2-bit counters."""

    kind = "gshare"

    def __init__(self, params: PredictorParams,
                 stats: PredictorStats) -> None:
        self.entries = params.gshare_entries
        self.history_bits = params.gshare_history_bits
        self._table = [1] * self.entries  # weakly not-taken
        self._history = 0
        self.stats = stats

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def predict(self, pc: int) -> bool:
        self.stats.dir_table_reads += 1
        return self._table[self._index(pc)] >= _TAKEN_THRESHOLD

    def update(self, pc: int, taken: bool) -> None:
        self.stats.dir_updates += 1
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            self._table[index] = min(3, counter + 1)
        else:
            self._table[index] = max(0, counter - 1)
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask


class TagePredictor:
    """TAGE: a bimodal base plus tagged tables with geometric histories."""

    kind = "tage"

    def __init__(self, params: PredictorParams,
                 stats: PredictorStats) -> None:
        self.params = params
        self.stats = stats
        self._base = [1] * params.tage_base_entries
        self.num_tables = params.tage_tables
        size = params.tage_table_entries
        # Per tagged table: tags, 3-bit signed-ish counters (0..7), useful.
        self._tags = [[0] * size for _ in range(self.num_tables)]
        self._ctrs = [[4] * size for _ in range(self.num_tables)]
        self._useful = [[0] * size for _ in range(self.num_tables)]
        self._valid = [[False] * size for _ in range(self.num_tables)]
        self._history = 0
        self._history_lengths = params.tage_history_lengths
        self._index_bits = (size - 1).bit_length()
        self._provider: int | None = None
        self._provider_index = 0
        self._pred: bool = False
        self._altpred: bool = False

    def _table_index(self, pc: int, table: int) -> int:
        length = self._history_lengths[table]
        folded = _fold(self._history, length, self._index_bits)
        return ((pc >> 2) ^ folded ^ (table << 1)) % \
            self.params.tage_table_entries

    def _table_tag(self, pc: int, table: int) -> int:
        length = self._history_lengths[table]
        folded = _fold(self._history, length, self.params.tage_tag_bits)
        return ((pc >> 3) ^ (folded << 1)) & \
            ((1 << self.params.tage_tag_bits) - 1)

    def predict(self, pc: int) -> bool:
        """Predict direction; all tables are read in parallel (power!)."""
        self.stats.dir_table_reads += self.num_tables + 1  # + base table
        base_pred = self._base[(pc >> 2) % len(self._base)] \
            >= _TAKEN_THRESHOLD
        self._provider = None
        self._pred = base_pred
        self._altpred = base_pred
        for table in range(self.num_tables - 1, -1, -1):
            index = self._table_index(pc, table)
            if self._valid[table][index] and \
                    self._tags[table][index] == self._table_tag(pc, table):
                if self._provider is None:
                    self._provider = table
                    self._provider_index = index
                    self._pred = self._ctrs[table][index] >= 4
                else:
                    self._altpred = self._ctrs[table][index] >= 4
                    break
        return self._pred

    def update(self, pc: int, taken: bool) -> None:
        """Train the provider and allocate on mispredicts."""
        self.stats.dir_updates += 1
        if self._provider is not None:
            table, index = self._provider, self._provider_index
            counter = self._ctrs[table][index]
            self._ctrs[table][index] = min(7, counter + 1) if taken \
                else max(0, counter - 1)
            if self._pred != self._altpred:
                useful = self._useful[table][index]
                self._useful[table][index] = min(3, useful + 1) \
                    if self._pred == taken else max(0, useful - 1)
        else:
            base_index = (pc >> 2) % len(self._base)
            counter = self._base[base_index]
            self._base[base_index] = min(3, counter + 1) if taken \
                else max(0, counter - 1)
        if self._pred != taken:
            self._allocate(pc, taken)
        longest = self._history_lengths[-1]
        self._history = ((self._history << 1) | int(taken)) & \
            ((1 << longest) - 1)

    def _allocate(self, pc: int, taken: bool) -> None:
        """On a mispredict, claim an entry in a longer-history table."""
        start = (self._provider + 1) if self._provider is not None else 0
        for table in range(start, self.num_tables):
            index = self._table_index(pc, table)
            if not self._valid[table][index] or \
                    self._useful[table][index] == 0:
                self._valid[table][index] = True
                self._tags[table][index] = self._table_tag(pc, table)
                self._ctrs[table][index] = 4 if taken else 3
                self._useful[table][index] = 0
                self.stats.allocations += 1
                return
        # No victim: age usefulness so future allocations succeed.
        for table in range(start, self.num_tables):
            index = self._table_index(pc, table)
            self._useful[table][index] = max(
                0, self._useful[table][index] - 1)


def make_direction_predictor(params: PredictorParams,
                             stats: PredictorStats):
    """Factory: the configured direction predictor."""
    if params.kind == "gshare":
        return GsharePredictor(params, stats)
    return TagePredictor(params, stats)


class BranchPredictionUnit:
    """The full front-end predictor: direction + BTB + RAS."""

    def __init__(self, params: PredictorParams,
                 stats: PredictorStats) -> None:
        self.params = params
        self.stats = stats
        self.direction = make_direction_predictor(params, stats)
        self.btb = BranchTargetBuffer(params.btb_entries, stats)
        self.ras = ReturnAddressStack(params.ras_entries, stats)

    def rebind_stats(self, stats: PredictorStats) -> None:
        """Swap the stats sink (measurement-window boundaries)."""
        self.stats = stats
        self.direction.stats = stats
        self.btb.stats = stats
        self.ras.stats = stats

    # ------------------------------------------------------------------
    # per-control-instruction prediction against the oracle outcome
    # ------------------------------------------------------------------

    def predict_conditional(self, pc: int, actual_taken: bool,
                            actual_target: int) -> bool:
        """Predict a conditional branch; returns True on mispredict."""
        predicted_taken = self.direction.predict(pc)
        mispredicted = predicted_taken != actual_taken
        target_ok = True
        if predicted_taken and actual_taken:
            target_ok = self.btb.lookup(pc) == actual_target
            if not target_ok:
                self.btb.update(pc, actual_target)
        elif actual_taken:
            self.btb.update(pc, actual_target)
        self.direction.update(pc, actual_taken)
        if mispredicted:
            self.stats.mispredicts += 1
        return mispredicted

    def predict_jump(self, pc: int, actual_target: int) -> bool:
        """Direct jump (jal): returns True if the BTB missed the target."""
        known = self.btb.lookup(pc)
        if known != actual_target:
            self.btb.update(pc, actual_target)
            return True
        return False

    def predict_indirect(self, pc: int, actual_target: int,
                         is_return: bool, is_call: bool,
                         return_address: int) -> bool:
        """Indirect jump (jalr): RAS for returns, BTB otherwise."""
        if is_return:
            predicted = self.ras.pop()
        else:
            predicted = self.btb.lookup(pc)
        if is_call:
            self.ras.push(return_address)
        mispredicted = predicted != actual_target
        if mispredicted:
            self.stats.mispredicts += 1
            if not is_return:
                self.btb.update(pc, actual_target)
        return mispredicted
