"""Per-program decode cache: the detailed core's uop-template store.

Each static instruction is decoded exactly once per :class:`Program`: its
semantic handler, opclass, issue queue, destination kind, register-read
counts, renamed source list, and classification flags are precomputed into
a :class:`DecodedOp` template.  Fetch then stamps out :class:`Uop`
instances from the template with direct slot stores — no per-fetch spec
walks, enum property lookups, or string comparisons.

The decode table is shared between every :class:`~repro.uarch.frontend.
FetchUnit` built for the same program (checkpointed detailed runs build
one core per SimPoint), via an id-keyed cache with weakref eviction —
the same lifetime scheme as the functional executor's superblock cache.
"""

from __future__ import annotations

import weakref

from repro.isa.instructions import Instruction
from repro.isa.program import Program
from repro.sim.semantics import semantics_for
from repro.uarch.uop import DISPATCHED, _NEVER, Uop


class DecodedOp:
    """Immutable per-static-instruction template for fast uop creation."""

    __slots__ = ("fn", "instr", "opclass", "opclass_name", "queue",
                 "dest_kind", "x_reads", "f_reads", "src_regs", "is_load",
                 "is_store", "is_mem", "is_control", "addr_ready",
                 "rs1", "imm", "trace_key")

    def __init__(self, instr: Instruction) -> None:
        self.fn = semantics_for(instr)
        self.instr = instr
        opclass = instr.opclass
        self.opclass = opclass
        self.opclass_name = opclass.name
        self.queue = opclass.issue_queue
        spec = instr.spec
        x_reads = 0
        f_reads = 0
        for cls, reg in ((spec.src1, instr.rs1), (spec.src2, instr.rs2),
                         (spec.src3, instr.rs3)):
            if cls == "x":
                if reg:
                    x_reads += 1
            elif cls == "f":
                f_reads += 1
        self.x_reads = x_reads
        self.f_reads = f_reads
        self.src_regs = instr.source_regs()
        if instr.writes_x:
            self.dest_kind = "x"
        elif instr.writes_f:
            self.dest_kind = "f"
        else:
            self.dest_kind = ""
        self.is_load = instr.is_load
        self.is_store = instr.is_store
        self.is_mem = self.is_load or self.is_store
        self.is_control = opclass.is_control
        self.addr_ready = not self.is_store
        self.rs1 = instr.rs1
        self.imm = instr.imm
        self.trace_key = f"{instr.pc:#x}"

    def make_uop(self, seq: int) -> Uop:
        """Stamp out one in-flight uop from this template (hot path)."""
        uop = Uop.__new__(Uop)
        uop.seq = seq
        uop.instr = self.instr
        uop.opclass = self.opclass
        uop.opclass_name = self.opclass_name
        uop.queue = self.queue
        uop.srcs = ()
        uop.src_regs = self.src_regs
        uop.dest_kind = self.dest_kind
        uop.x_reads = self.x_reads
        uop.f_reads = self.f_reads
        uop.state = DISPATCHED
        uop.complete_cycle = _NEVER
        uop.taken = False
        uop.mispredicted = False
        uop.fp_snapshotted = False
        uop.btb_bubble = False
        uop.is_load = self.is_load
        uop.is_store = self.is_store
        uop.is_control = self.is_control
        uop.mem_addr = 0
        uop.addr_ready = self.addr_ready
        uop.dispatch_cycle = -1
        uop.issue_cycle = -1
        uop.trace_key = self.trace_key
        return uop


#: Program identity -> decode table, evicted when the program is collected.
_DECODE_CACHES: dict[int, list[DecodedOp]] = {}


def _assign_trace_keys(table: list[DecodedOp]) -> None:
    """Label every template with its static basic-block leader pc.

    Leaders are the program entry, every instruction after a control
    transfer, and every statically-known branch/jump target.  The label is
    a pure function of the program text, so the serial and batched engines
    attribute dispatches to identical trace keys.
    """
    if not table:
        return
    pcs = {dec.instr.pc for dec in table}
    leaders = {table[0].instr.pc}
    for dec in table:
        if dec.is_control:
            instr = dec.instr
            leaders.add(instr.pc + 4)
            if dec.opclass_name in ("BRANCH", "JAL"):
                target = instr.pc + instr.imm
                if target in pcs:
                    leaders.add(target)
    current = table[0].instr.pc
    for dec in table:
        pc = dec.instr.pc
        if pc in leaders:
            current = pc
        dec.trace_key = f"{current:#x}"


def decode_program(program: Program) -> list[DecodedOp]:
    """Return the (shared, cached) decode table for ``program``."""
    key = id(program)
    table = _DECODE_CACHES.get(key)
    if table is None:
        table = [DecodedOp(instr) for instr in program.instructions]
        _assign_trace_keys(table)
        _DECODE_CACHES[key] = table
        weakref.finalize(program, _DECODE_CACHES.pop, key, None)
    return table
